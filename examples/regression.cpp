/**
 * @file
 * @brief LS-SVM regression (LS-SVR) example — the regression support the
 *        paper lists as future work (§V), built on the identical reduced
 *        linear system with real-valued targets.
 *
 * Fits y = sin(2x) + noise with the RBF kernel and reports MSE / R^2.
 */

#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/core/metrics.hpp"
#include "plssvm/detail/rng.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

int main() {
    // 1. sample a noisy sine
    auto engine = plssvm::detail::make_engine(42);
    const std::size_t n = 256;
    plssvm::aos_matrix<double> points{ n, 1 };
    std::vector<double> targets(n);
    for (std::size_t i = 0; i < n; ++i) {
        points(i, 0) = plssvm::detail::uniform_real<double>(engine, -3.0, 3.0);
        targets[i] = std::sin(2.0 * points(i, 0)) + 0.05 * plssvm::detail::standard_normal<double>(engine);
    }
    const plssvm::data_set<double> data{ std::move(points), std::move(targets) };

    // 2. LS-SVR with the RBF kernel
    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    params.gamma = 1.0;
    params.cost = 50.0;
    plssvm::backend::openmp::csvm<double> svm{ params };
    const auto model = svm.fit_regression(data, plssvm::solver_control{ .epsilon = 1e-8 });

    // 3. evaluate on the training grid
    const auto predicted = svm.predict_values(model, data);
    std::printf("LS-SVR on y = sin(2x) + N(0, 0.05^2), %zu samples:\n", n);
    std::printf("  CG iterations: %zu\n", model.num_iterations());
    std::printf("  MSE:  %.6f\n", plssvm::metrics::mean_squared_error(predicted, data.labels()));
    std::printf("  MAE:  %.6f\n", plssvm::metrics::mean_absolute_error(predicted, data.labels()));
    std::printf("  R^2:  %.4f\n", plssvm::metrics::r2_score(predicted, data.labels()));

    // 4. sample a few predictions along the curve
    std::printf("\n  x        truth     prediction\n");
    plssvm::aos_matrix<double> grid{ 7, 1 };
    for (std::size_t i = 0; i < 7; ++i) {
        grid(i, 0) = -3.0 + static_cast<double>(i);
    }
    const plssvm::data_set<double> grid_data{ std::move(grid) };
    const auto curve = svm.predict_values(model, grid_data);
    for (std::size_t i = 0; i < 7; ++i) {
        const double x = -3.0 + static_cast<double>(i);
        std::printf("  %+.1f     %+.4f   %+.4f\n", x, std::sin(2.0 * x), curve[i]);
    }
    return 0;
}
