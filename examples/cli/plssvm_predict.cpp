/**
 * @file
 * @brief `plssvm-predict`: LIBSVM-compatible prediction CLI (drop-in `svm-predict`).
 *
 * Usage: plssvm-predict test_file model_file output_file
 *
 * Writes one predicted label per line to output_file. If the test file
 * carries labels, the accuracy is reported like `svm-predict` does.
 */

#include "plssvm/core/data_set.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/exceptions.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

int main(int argc, char **argv) {
    if (argc != 4) {
        std::printf("Usage: plssvm-predict test_file model_file output_file\n");
        return argc == 1 ? EXIT_SUCCESS : EXIT_FAILURE;
    }
    try {
        const auto model = plssvm::model<double>::load(argv[2]);
        // the test file may omit trailing zero features the model knows about
        const auto data = plssvm::data_set<double>::from_file(argv[1], model.num_features());

        const auto labels = plssvm::predict_labels(model, data.points());

        std::ofstream out{ argv[3] };
        if (!out) {
            std::fprintf(stderr, "Error: can't open output file '%s'\n", argv[3]);
            return EXIT_FAILURE;
        }
        for (const double label : labels) {
            out << label << '\n';
        }

        if (data.has_labels()) {
            std::size_t correct = 0;
            for (std::size_t i = 0; i < labels.size(); ++i) {
                correct += labels[i] == data.labels()[i];
            }
            std::printf("Accuracy = %.4f%% (%zu/%zu) (classification)\n",
                        100.0 * static_cast<double>(correct) / static_cast<double>(labels.size()),
                        correct, labels.size());
        }
        return EXIT_SUCCESS;
    } catch (const plssvm::exception &e) {
        std::fprintf(stderr, "Error: %s\n", e.what());
        return EXIT_FAILURE;
    }
}
