/**
 * @file
 * @brief `plssvm-train`: LIBSVM-compatible training CLI (drop-in `svm-train`).
 *
 * Usage: plssvm-train [options] training_set_file [model_file]
 *
 * LIBSVM options supported:
 *   -t kernel_type : 0 = linear, 1 = polynomial, 2 = rbf, 3 = sigmoid (default 0)
 *   -d degree      : polynomial degree (default 3)
 *   -g gamma       : kernel gamma (default 1/num_features)
 *   -r coef0       : polynomial/sigmoid coef0 (default 0)
 *   -c cost        : C parameter (default 1)
 *   -e epsilon     : CG relative-residual termination (default 0.001)
 *
 * PLSSVM extensions:
 *   -b backend     : openmp | cuda | opencl | sycl (default openmp)
 *   -D device      : simulated device name, repeatable for multi-GPU
 *                    (e.g. -D a100 -D a100; device backends only)
 *   -i max_iter    : CG iteration budget (default: system size)
 *   -q             : quiet mode
 */

#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/ext/cross_validation.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

void print_usage() {
    std::printf("Usage: plssvm-train [options] training_set_file [model_file]\n"
                "options:\n"
                "  -t kernel_type : 0=linear, 1=polynomial, 2=rbf, 3=sigmoid (default 0)\n"
                "  -d degree      : polynomial degree (default 3)\n"
                "  -g gamma       : kernel gamma (default 1/num_features)\n"
                "  -r coef0       : polynomial/sigmoid coef0 (default 0)\n"
                "  -c cost        : C parameter (default 1)\n"
                "  -e epsilon     : CG relative residual termination (default 0.001)\n"
                "  -b backend     : openmp | cuda | opencl | sycl (default openmp)\n"
                "  -D device      : simulated device (repeatable for multi-GPU)\n"
                "  -i max_iter    : CG iteration budget\n"
                "  -v folds       : k-fold cross-validation mode (like svm-train -v)\n"
                "  -q             : quiet mode\n");
}

}  // namespace

int main(int argc, char **argv) {
    plssvm::parameter params;
    plssvm::solver_control ctrl;
    ctrl.epsilon = 1e-3;
    plssvm::backend_type backend = plssvm::backend_type::openmp;
    std::vector<plssvm::sim::device_spec> devices;
    bool quiet = false;
    std::size_t cv_folds = 0;

    int arg = 1;
    try {
        for (; arg < argc && argv[arg][0] == '-'; ++arg) {
            const std::string flag{ argv[arg] };
            if (flag == "-q") {
                quiet = true;
                continue;
            }
            if (flag == "-h" || flag == "--help") {
                print_usage();
                return EXIT_SUCCESS;
            }
            if (arg + 1 >= argc) {
                std::fprintf(stderr, "Missing value for option %s\n", flag.c_str());
                return EXIT_FAILURE;
            }
            const std::string value{ argv[++arg] };
            if (flag == "-t") {
                params.kernel = plssvm::kernel_type_from_string(value);
            } else if (flag == "-d") {
                params.degree = std::stoi(value);
            } else if (flag == "-g") {
                params.gamma = std::stod(value);
            } else if (flag == "-r") {
                params.coef0 = std::stod(value);
            } else if (flag == "-c") {
                params.cost = std::stod(value);
            } else if (flag == "-e") {
                ctrl.epsilon = std::stod(value);
            } else if (flag == "-b") {
                backend = plssvm::backend_type_from_string(value);
            } else if (flag == "-D") {
                devices.push_back(plssvm::sim::devices::by_name(value));
            } else if (flag == "-i") {
                ctrl.max_iterations = std::stoul(value);
            } else if (flag == "-v") {
                cv_folds = std::stoul(value);
            } else {
                std::fprintf(stderr, "Unknown option %s\n", flag.c_str());
                print_usage();
                return EXIT_FAILURE;
            }
        }

        if (arg >= argc) {
            print_usage();
            return EXIT_FAILURE;
        }
        const std::string input_file{ argv[arg] };
        const std::string model_file = arg + 1 < argc ? argv[arg + 1] : input_file + ".model";

        const auto data = plssvm::data_set<double>::from_file(input_file);
        if (!quiet) {
            std::printf("Read %zu data points with %zu features from '%s'\n",
                        data.num_data_points(), data.num_features(), input_file.c_str());
        }

        if (cv_folds > 0) {
            // cross-validation mode: report the accuracy estimate, no model file
            const auto cv = plssvm::ext::cross_validate(backend, params, data, cv_folds, ctrl, 42, devices);
            std::printf("Cross Validation Accuracy = %.4f%% (+- %.4f%%)\n",
                        100.0 * cv.mean_accuracy, 100.0 * cv.stddev_accuracy);
            return EXIT_SUCCESS;
        }

        auto svm = plssvm::make_csvm<double>(backend, params, devices);
        const auto model = svm->fit(data, ctrl);
        model.save(model_file);

        if (!quiet) {
            std::printf("Trained with backend '%s' in %zu CG iterations\n",
                        std::string{ svm->backend_name() }.c_str(), model.num_iterations());
            std::printf("Training accuracy: %.4f\n", svm->score(model, data));
            std::printf("Model written to '%s'\n", model_file.c_str());
        }
        return EXIT_SUCCESS;
    } catch (const plssvm::exception &e) {
        std::fprintf(stderr, "Error: %s\n", e.what());
        return EXIT_FAILURE;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "Invalid argument: %s\n", e.what());
        return EXIT_FAILURE;
    }
}
