/**
 * @file
 * @brief `plssvm-scale`: LIBSVM-compatible feature scaling CLI (drop-in `svm-scale`).
 *
 * Usage: plssvm-scale [options] data_file
 *   -l lower : lower bound of the target interval (default -1)
 *   -u upper : upper bound of the target interval (default +1)
 *   -s file  : save the learned scaling factors to file
 *   -r file  : restore scaling factors from file (ignores -l/-u)
 *   -o file  : output file (default: stdout-like `<data_file>.scaled`)
 *
 * The paper preprocesses the SAT-6 data set with exactly this tool (§IV-B).
 */

#include "plssvm/core/data_set.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/io/scaling.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char **argv) {
    double lower = -1.0;
    double upper = 1.0;
    std::string save_file;
    std::string restore_file;
    std::string output_file;

    int arg = 1;
    try {
        for (; arg < argc && argv[arg][0] == '-'; ++arg) {
            const std::string flag{ argv[arg] };
            if (arg + 1 >= argc) {
                std::fprintf(stderr, "Missing value for option %s\n", flag.c_str());
                return EXIT_FAILURE;
            }
            const std::string value{ argv[++arg] };
            if (flag == "-l") {
                lower = std::stod(value);
            } else if (flag == "-u") {
                upper = std::stod(value);
            } else if (flag == "-s") {
                save_file = value;
            } else if (flag == "-r") {
                restore_file = value;
            } else if (flag == "-o") {
                output_file = value;
            } else {
                std::fprintf(stderr, "Unknown option %s\n", flag.c_str());
                return EXIT_FAILURE;
            }
        }
        if (arg >= argc) {
            std::printf("Usage: plssvm-scale [-l lower] [-u upper] [-s save_file | -r restore_file] [-o output_file] data_file\n");
            return EXIT_FAILURE;
        }
        const std::string input_file{ argv[arg] };
        if (output_file.empty()) {
            output_file = input_file + ".scaled";
        }

        auto data = plssvm::data_set<double>::from_file(input_file);
        if (!restore_file.empty()) {
            const auto factors = plssvm::io::scaling<double>::load(restore_file);
            data.scale(factors);
        } else {
            const auto factors = data.scale(lower, upper);
            if (!save_file.empty()) {
                factors.save(save_file);
            }
        }
        data.save_libsvm(output_file);
        std::printf("Scaled %zu data points into '%s'\n", data.num_data_points(), output_file.c_str());
        return EXIT_SUCCESS;
    } catch (const plssvm::exception &e) {
        std::fprintf(stderr, "Error: %s\n", e.what());
        return EXIT_FAILURE;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "Invalid argument: %s\n", e.what());
        return EXIT_FAILURE;
    }
}
