/**
 * @file
 * @brief `plssvm-convert`: convert between the two supported data formats
 *        (LIBSVM sparse <-> ARFF), with optional dense LIBSVM output.
 *
 * Usage: plssvm-convert [-f libsvm|libsvm-dense|arff] input_file output_file
 *
 * The output format defaults to the opposite family of the input (detected
 * by extension, like `data_set::from_file`).
 */

#include "plssvm/core/data_set.hpp"
#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/io/arff.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char **argv) {
    std::string format;
    int arg = 1;
    for (; arg < argc && argv[arg][0] == '-'; ++arg) {
        const std::string flag{ argv[arg] };
        if (flag == "-f" && arg + 1 < argc) {
            format = plssvm::detail::to_lower_case(argv[++arg]);
        } else {
            std::printf("Usage: plssvm-convert [-f libsvm|libsvm-dense|arff] input_file output_file\n");
            return flag == "-h" || flag == "--help" ? EXIT_SUCCESS : EXIT_FAILURE;
        }
    }
    if (arg + 2 > argc) {
        std::printf("Usage: plssvm-convert [-f libsvm|libsvm-dense|arff] input_file output_file\n");
        return EXIT_FAILURE;
    }
    const std::string input{ argv[arg] };
    const std::string output{ argv[arg + 1] };

    try {
        const auto data = plssvm::data_set<double>::from_file(input);
        if (format.empty()) {
            // default: convert to the other family
            const bool input_is_arff = plssvm::detail::ends_with(plssvm::detail::to_lower_case(input), ".arff");
            format = input_is_arff ? "libsvm" : "arff";
        }

        const std::vector<double> *labels = data.has_labels() ? &data.labels() : nullptr;
        if (format == "arff") {
            plssvm::io::write_arff_file(output, data.points(), labels);
        } else if (format == "libsvm") {
            data.save_libsvm(output, /*sparse=*/true);
        } else if (format == "libsvm-dense") {
            data.save_libsvm(output, /*sparse=*/false);
        } else {
            std::fprintf(stderr, "Unknown output format '%s'\n", format.c_str());
            return EXIT_FAILURE;
        }
        std::printf("Converted %zu points (%zu features%s) from '%s' to %s '%s'\n",
                    data.num_data_points(), data.num_features(),
                    data.has_labels() ? ", labeled" : "", input.c_str(), format.c_str(), output.c_str());
        return EXIT_SUCCESS;
    } catch (const plssvm::exception &e) {
        std::fprintf(stderr, "Error: %s\n", e.what());
        return EXIT_FAILURE;
    }
}
