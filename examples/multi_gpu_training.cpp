/**
 * @file
 * @brief Multi-GPU training via the feature-wise data split (paper §III-C-5).
 *
 * Trains the same linear-kernel problem on 1, 2, and 4 simulated A100s,
 * showing (a) identical models regardless of device count, (b) the simulated
 * speedup, and (c) the per-device memory reduction that lets multi-GPU
 * setups learn data sets that do not fit on a single GPU (paper §IV-G).
 */

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/datagen/make_classification.hpp"

#include <cstdio>
#include <vector>

int main() {
    plssvm::datagen::classification_params gen;
    gen.num_points = 1024;
    gen.num_features = 256;
    gen.class_sep = 1.5;
    const auto data = plssvm::datagen::make_classification<double>(gen);

    const plssvm::parameter params{ plssvm::kernel_type::linear };
    const plssvm::solver_control ctrl{ .epsilon = 1e-6 };

    std::printf("%-8s %14s %10s %18s %10s\n", "devices", "sim cg [ms]", "speedup", "mem/device [MiB]", "rho");

    double single_device_seconds = 0.0;
    for (const std::size_t num_devices : { 1, 2, 4 }) {
        const std::vector<plssvm::sim::device_spec> specs(num_devices, plssvm::sim::devices::nvidia_a100());
        plssvm::backend::cuda::csvm<double> svm{ params, specs };
        const auto model = svm.fit(data, ctrl);

        const double cg_seconds = svm.performance_tracker().get("cg").sim_seconds;
        if (num_devices == 1) {
            single_device_seconds = cg_seconds;
        }
        std::printf("%-8zu %14.2f %9.2fx %18.2f %10.6f\n",
                    num_devices,
                    cg_seconds * 1e3,
                    single_device_seconds / cg_seconds,
                    static_cast<double>(svm.peak_device_memory(0)) / (1024.0 * 1024.0),
                    model.rho());
    }
    std::printf("\nThe model (rho column) is identical for every device count: the\n"
                "feature split changes the work partitioning, not the mathematics.\n");
    return 0;
}
