/**
 * @file
 * @brief Train the same problem on every backend and simulated GPU, printing
 *        a small Table-I-style comparison (runtime behaviour of the backends).
 *
 * Demonstrates: runtime backend selection, the simulated-device registry, and
 * the per-component performance tracker.
 */

#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/exceptions.hpp"

#include <cstdio>
#include <string>
#include <vector>

int main() {
    plssvm::datagen::classification_params gen;
    gen.num_points = 768;
    gen.num_features = 64;
    gen.class_sep = 1.2;
    const auto data = plssvm::datagen::make_classification<double>(gen);

    const plssvm::parameter params{ plssvm::kernel_type::linear };
    const plssvm::solver_control ctrl{ .epsilon = 1e-6 };

    std::printf("%-30s %-8s %12s %10s %8s\n", "device", "backend", "sim cg [ms]", "CG iters", "accuracy");

    for (const auto &spec : plssvm::sim::devices::all()) {
        for (const auto backend : { plssvm::backend_type::cuda, plssvm::backend_type::opencl, plssvm::backend_type::sycl }) {
            try {
                const auto svm = plssvm::make_csvm<double>(backend, params, { spec });
                const auto model = svm->fit(data, ctrl);
                const double sim_ms = svm->performance_tracker().get("cg").sim_seconds * 1e3;
                std::printf("%-30s %-8s %12.2f %10zu %7.1f%%\n",
                            spec.name.c_str(), std::string{ svm->backend_name() }.c_str(),
                            sim_ms, model.num_iterations(), 100.0 * svm->score(model, data));
            } catch (const plssvm::unsupported_backend_exception &) {
                // e.g. CUDA on the AMD / Intel devices -- mirrors the "--" cells
                // of the paper's Table I
                std::printf("%-30s %-8s %12s %10s %8s\n", spec.name.c_str(),
                            plssvm::backend_type_to_string(backend).data(), "--", "--", "--");
            }
        }
    }
    return 0;
}
