/**
 * @file
 * @brief Multi-class land-cover classification with one-vs-all LS-SVMs —
 *        the multi-class support the paper lists as future work (§V),
 *        demonstrated on the six original SAT-6 classes.
 */

#include "plssvm/core/metrics.hpp"
#include "plssvm/datagen/sat6.hpp"
#include "plssvm/ext/cross_validation.hpp"
#include "plssvm/ext/multiclass.hpp"

#include <cstdio>

int main() {
    // six-class SAT-6-like data (building/road/barren/trees/grassland/water)
    plssvm::datagen::sat6_params gen;
    gen.num_images = 480;
    gen.image_size = 16;
    gen.binary_labels = false;
    gen.seed = 42;
    const auto train = plssvm::datagen::make_sat6<double>(gen);
    gen.num_images = 120;
    gen.seed = 43;
    const auto test = plssvm::datagen::make_sat6<double>(gen);

    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    params.gamma = 1.0 / static_cast<double>(train.num_features());
    params.cost = 10.0;

    plssvm::ext::one_vs_all<double> classifier{ plssvm::backend_type::openmp, params };
    const auto model = classifier.fit(train, plssvm::solver_control{ .epsilon = 1e-6 });

    std::printf("one-vs-all LS-SVM over %zu classes (%zu train / %zu test images)\n",
                model.num_classes(), train.num_data_points(), test.num_data_points());
    std::printf("train accuracy: %.2f %%\n", 100.0 * classifier.score(model, train));
    std::printf("test accuracy:  %.2f %%\n", 100.0 * classifier.score(model, test));

    // per-class precision/recall on the test split
    const auto predicted = classifier.predict(model, test);
    std::printf("\n%-12s %10s %10s %10s\n", "class", "precision", "recall", "F1");
    for (std::size_t c = 0; c < 6; ++c) {
        const auto cm = plssvm::metrics::confusion(predicted, test.labels(), static_cast<double>(c));
        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n",
                    plssvm::datagen::sat6_class_name(static_cast<plssvm::datagen::sat6_class>(c)).data(),
                    100.0 * plssvm::metrics::precision(cm),
                    100.0 * plssvm::metrics::recall(cm),
                    100.0 * plssvm::metrics::f1_score(cm));
    }

    // cross-validation of the paper's *binary* problem on the same imagery
    gen.num_images = 300;
    gen.binary_labels = true;
    const auto binary = plssvm::datagen::make_sat6<double>(gen);
    const auto cv = plssvm::ext::cross_validate(plssvm::backend_type::openmp, params, binary, 5);
    std::printf("\n5-fold CV on the binary man-made/natural problem: %.2f %% (+- %.2f %%)\n",
                100.0 * cv.mean_accuracy, 100.0 * cv.stddev_accuracy);
    return 0;
}
