/**
 * @file
 * @brief Serving quickstart: train a model, register it on the shared
 *        executor, serve synchronous batches and asynchronous single-point
 *        requests with in-engine scaling (raw-feature clients), hot-swap a
 *        retrained model with zero downtime, print the stats.
 *
 * `--qos` runs the admission-control demo instead: class-tagged submission
 * (interactive / batch / background), token-bucket rate limiting and
 * queue-depth shedding with the typed `request_shed_exception`, deadline
 * budgets, and the per-class stats JSON snapshot.
 *
 * `--stats-interval <s>` runs the observability demo: a scraper thread
 * polls the registry's Prometheus text exposition every <s> seconds while
 * traffic flows, exactly like a metrics agent would. `--dump-traces`
 * additionally prints the flight recorder's JSON trace dump (the last N
 * complete request lifecycles per class) on exit, plus the automatic
 * violation dump captured at the first deadline miss.
 *
 * `--listen [port]` runs the network serving demo: the epoll front-end of
 * `plssvm::serve::net` is started over the registry (port 0 = ephemeral)
 * and a loopback client exercises both wire modes — the curl-able JSON
 * lines (readiness probe + one prediction) and the binary framing. With
 * `--serve-seconds <s>` the server then stays up so you can poke it from
 * another terminal with `nc`.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/serving_demo
 *   ./build/examples/serving_demo --qos
 *   ./build/examples/serving_demo --stats-interval 1 --dump-traces
 *   ./build/examples/serving_demo --listen 7143 --serve-seconds 60
 */

#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/detail/tracker.hpp"
#include "plssvm/serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

// loopback client of the `--listen` demo
#include <arpa/inet.h>    // htons, htonl
#include <csignal>        // std::signal, SIGTERM, SIGINT
#include <netinet/in.h>   // sockaddr_in, INADDR_LOOPBACK
#include <sys/socket.h>   // socket, connect
#include <unistd.h>       // write, read, close

namespace {

/// SIGTERM/SIGINT observed while `--listen` serves: triggers a graceful
/// drain (stop accepting, settle inflight requests, exit 0) instead of
/// killing responses mid-write.
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void on_shutdown_signal(int) { g_shutdown_requested = 1; }

/// The `--qos` mode: graceful degradation under class-tagged overload.
int qos_demo() {
    using plssvm::serve::class_index;
    using plssvm::serve::request_class;
    using plssvm::serve::request_options;
    using namespace std::chrono_literals;

    // 1. train a small model to serve
    plssvm::datagen::classification_params gen;
    gen.num_points = 512;
    gen.num_features = 16;
    gen.class_sep = 1.5;
    const auto train = plssvm::datagen::make_classification<double>(gen);
    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    const auto svm = plssvm::make_csvm<double>(plssvm::backend_type::openmp, params);
    const auto model = svm->fit(plssvm::data_set<double>{ plssvm::aos_matrix<double>{ train.points() }, std::vector<double>(train.labels()) },
                                plssvm::solver_control{ .epsilon = 1e-6 });

    // 2. QoS policy: interactive traffic gets a deadline budget and a short
    //    shed queue (fail fast under overload), background traffic is
    //    rate-limited to a trickle, batch sits in between; the adaptive
    //    tuner may grow batches up to 128 under load
    plssvm::serve::engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 32;
    config.batch_delay = std::chrono::microseconds{ 200 };
    config.qos.classes[class_index(request_class::interactive)].max_pending = 64;
    config.qos.classes[class_index(request_class::interactive)].deadline_budget = 20ms;
    config.qos.classes[class_index(request_class::batch)].max_pending = 512;
    config.qos.classes[class_index(request_class::background)].rate_limit = 200.0;  // req/s
    config.qos.classes[class_index(request_class::background)].burst = 50.0;
    config.qos.adaptive.max_batch_size = 128;
    plssvm::serve::inference_engine<double> engine{ model, config };
    std::printf("QoS engine up: interactive max_pending=64 deadline=20ms, background rate=200/s burst=50\n");

    // 3. a mixed burst: every point is submitted under a class chosen
    //    round-robin; overload sheds excess with a TYPED error the caller
    //    can catch and turn into a retry/backoff decision
    gen.seed = 7;
    const auto queries = plssvm::datagen::make_classification<double>(gen).points();
    std::vector<std::future<double>> admitted;
    std::size_t shed = 0;
    for (std::size_t round = 0; round < 8; ++round) {
        for (std::size_t p = 0; p < queries.num_rows(); ++p) {
            const request_class cls = static_cast<request_class>(p % plssvm::serve::num_request_classes);
            try {
                admitted.push_back(engine.submit(
                    std::vector<double>(queries.row_data(p), queries.row_data(p) + queries.num_cols()),
                    request_options{ .cls = cls }));
            } catch (const plssvm::serve::request_shed_exception &e) {
                ++shed;
                if (shed == 1) {
                    std::printf("first shed: %s\n", e.what());
                }
            }
        }
    }
    for (std::future<double> &f : admitted) {
        (void) f.get();  // every admitted request is answered
    }
    std::printf("burst of %zu submissions: %zu admitted+answered, %zu shed (graceful degradation)\n",
                admitted.size() + shed, admitted.size(), shed);

    // 4. per-class accounting: who was admitted, who was shed, which class
    //    missed deadlines, and where the adaptive batch targets ended up
    const plssvm::serve::serve_stats stats = engine.stats();
    for (const request_class cls : plssvm::serve::all_request_classes) {
        const plssvm::serve::class_serve_stats &c = stats.classes[class_index(cls)];
        std::printf("  %-11s admitted %5zu | shed %4zu (rate %zu, queue %zu) | deadline misses %3zu | p99 %7.0f us | target batch %zu\n",
                    std::string{ plssvm::serve::request_class_to_string(cls) }.c_str(),
                    c.admitted, c.shed_rate_limited + c.shed_queue_full, c.shed_rate_limited, c.shed_queue_full,
                    c.deadline_misses, 1e6 * c.p99_latency_seconds, c.target_batch_size);
    }
    std::printf("batch saturation %.2f, flush timer wakeups %zu\n", stats.batch_saturation, stats.flush_timer_wakeups);

    // 5. the scrape format: one JSON snapshot per engine (registries expose
    //    the same per resident model via registry.stats_json())
    const std::string json = engine.stats_json();
    std::printf("stats JSON snapshot (%zu bytes): %.120s...\n", json.size(), json.c_str());
    return 0;
}

/// The `--stats-interval` mode: a Prometheus scraper thread polls the
/// registry while traffic flows; `--dump-traces` prints the flight-recorder
/// JSON on exit.
int obs_demo(const double stats_interval_s, const bool dump_traces) {
    using namespace std::chrono_literals;

    // 1. train a small model and register it — the observability plane is on
    //    by default (sampling rate 1.0 for every class)
    plssvm::datagen::classification_params gen;
    gen.num_points = 512;
    gen.num_features = 16;
    gen.class_sep = 1.5;
    const auto train = plssvm::datagen::make_classification<double>(gen);
    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    const auto svm = plssvm::make_csvm<double>(plssvm::backend_type::openmp, params);
    const auto model = svm->fit(plssvm::data_set<double>{ plssvm::aos_matrix<double>{ train.points() }, std::vector<double>(train.labels()) },
                                plssvm::solver_control{ .epsilon = 1e-6 });

    plssvm::serve::engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 32;
    config.batch_delay = std::chrono::microseconds{ 200 };
    plssvm::serve::model_registry<double> registry{ /*capacity=*/4, config };
    auto engine = registry.load("obs-demo", model);
    std::printf("observability demo: tracing on, scraping metrics every %.1f s\n", stats_interval_s);

    // 2. the scraper: what a Prometheus agent would do — poll the text
    //    exposition on a fixed interval and ship it off. Here we print a
    //    digest (size + a few representative sample lines) per scrape.
    std::atomic<bool> stop{ false };
    std::thread scraper{ [&]() {
        std::size_t scrape = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::duration<double>(stats_interval_s));
            const std::string text = registry.metrics_text();
            std::size_t families = 0;
            for (std::size_t pos = text.find("# TYPE"); pos != std::string::npos; pos = text.find("# TYPE", pos + 1)) {
                ++families;
            }
            std::printf("scrape #%zu: %zu bytes, %zu metric families\n", ++scrape, text.size(), families);
            // surface one histogram line so the scrape is visibly real
            const std::size_t line = text.find("plssvm_serve_stage_latency_seconds_bucket");
            if (line != std::string::npos) {
                std::printf("  %.*s\n", static_cast<int>(text.find('\n', line) - line), text.c_str() + line);
            }
        }
    } };

    // 3. traffic: plain async submits plus a deadline-carrying slice — the
    //    recorder always traces deadline requests, and an impossible 1 us
    //    budget forces a deadline miss that triggers the automatic
    //    violation dump
    gen.seed = 7;
    const auto queries = plssvm::datagen::make_classification<double>(gen).points();
    const auto demo_deadline = std::chrono::steady_clock::now() + std::chrono::duration<double>(2.0 * stats_interval_s + 0.5);
    std::size_t submitted = 0;
    while (std::chrono::steady_clock::now() < demo_deadline) {
        std::vector<std::future<double>> futures;
        for (std::size_t p = 0; p < queries.num_rows(); ++p) {
            plssvm::serve::request_options options;
            if (p % 64 == 63) {
                options.deadline = p % 128 == 127 ? std::chrono::microseconds{ 1 }  // guaranteed miss
                                                  : std::chrono::microseconds{ 50000 };
            }
            futures.push_back(engine->submit(
                std::vector<double>(queries.row_data(p), queries.row_data(p) + queries.num_cols()), options));
        }
        for (std::future<double> &f : futures) {
            (void) f.get();
        }
        submitted += futures.size();
        std::this_thread::sleep_for(50ms);
    }
    stop.store(true);
    scraper.join();

    // 4. the recorder's bookkeeping: every completed request carried the
    //    full admit -> enqueue -> seal -> dispatch -> complete stamp chain
    const auto &recorder = engine->recorder();
    std::printf("served %zu requests: %zu traces recorded, %zu sheds, %zu violation dumps\n",
                submitted, recorder.traces_recorded(), recorder.sheds_recorded(), recorder.violation_dumps());

    const std::string violation = engine->last_violation_dump();
    if (!violation.empty()) {
        std::printf("violation dump captured at the first deadline miss (%zu bytes)\n", violation.size());
    }
    if (dump_traces) {
        const std::string dump = engine->dump_traces();
        std::printf("flight recorder dump (%zu bytes):\n%.400s%s\n", dump.size(), dump.c_str(),
                    dump.size() > 400 ? "\n  ... (truncated)" : "");
    }
    return 0;
}

/// The `--listen` mode: serve a registry over TCP via the epoll front-end
/// and exercise both wire modes with a loopback client.
int listen_demo(const std::uint16_t port, const double serve_seconds) {
    namespace net = plssvm::serve::net;

    // 1. train a small model and register it, exactly like the quickstart
    plssvm::datagen::classification_params gen;
    gen.num_points = 512;
    gen.num_features = 16;
    gen.class_sep = 1.5;
    const auto train = plssvm::datagen::make_classification<double>(gen);
    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    const auto svm = plssvm::make_csvm<double>(plssvm::backend_type::openmp, params);
    const auto model = svm->fit(plssvm::data_set<double>{ plssvm::aos_matrix<double>{ train.points() }, std::vector<double>(train.labels()) },
                                plssvm::solver_control{ .epsilon = 1e-6 });

    plssvm::serve::engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 32;
    config.batch_delay = std::chrono::microseconds{ 200 };
    plssvm::serve::model_registry<double> registry{ /*capacity=*/4, config };
    (void) registry.load("quickstart", model);

    // 2. the network front-end: requests from every connection flow into
    //    the same micro-batcher, so concurrent sockets feed one batch
    net::net_server_config server_config;
    server_config.port = port;
    server_config.event_threads = 2;
    net::net_server server{ server_config, std::make_shared<net::registry_dispatcher<double>>(registry) };
    std::printf("serving \"quickstart\" on 127.0.0.1:%u (binary frames and JSON lines share the port)\n", server.port());
    std::printf("try from another terminal:\n");
    std::printf("  printf '{\"op\":\"ready\"}\\n' | nc 127.0.0.1 %u\n", server.port());
    std::printf("  printf '{\"model\":\"quickstart\",\"id\":1,\"features\":[0.1,...x16]}\\n' | nc 127.0.0.1 %u\n\n", server.port());

    // 3. the built-in loopback client: a readiness probe and one prediction
    //    over the JSON-lines mode (what nc/curl would send)
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr *>(&addr), sizeof(addr)) != 0) {
        std::fprintf(stderr, "loopback connect failed\n");
        return 1;
    }
    std::string request = "{\"op\":\"ready\"}\n{\"model\":\"quickstart\",\"id\":7,\"features\":[";
    for (std::size_t feature = 0; feature < gen.num_features; ++feature) {
        request += (feature == 0 ? "" : ",") + std::to_string(train.points().row_data(0)[feature]);
    }
    request += "]}\n";
    if (::write(fd, request.data(), request.size()) != static_cast<ssize_t>(request.size())) {
        std::fprintf(stderr, "loopback write failed\n");
        ::close(fd);
        return 1;
    }
    std::string received;
    char buf[4096];
    while (std::count(received.begin(), received.end(), '\n') < 2) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
            break;
        }
        received.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::printf("loopback JSON-lines exchange:\n%s", received.c_str());

    // 4. net-plane stats: connection/request counters and stage latency
    const net::net_counters counters = server.counters();
    std::printf("net counters: %llu accepted, %llu requests, %llu ok, ready=%s\n",
                static_cast<unsigned long long>(counters.connections_accepted),
                static_cast<unsigned long long>(counters.requests_total),
                static_cast<unsigned long long>(counters.responses_ok),
                server.ready() ? "true" : "false");

    if (serve_seconds > 0.0) {
        // 5. graceful drain on SIGTERM/SIGINT: stop accepting, flip the
        //    readiness probe to not-ready, let inflight requests settle,
        //    then exit 0 — what an orchestrator's rolling restart expects
        std::signal(SIGTERM, on_shutdown_signal);
        std::signal(SIGINT, on_shutdown_signal);
        std::printf("serving for %.0f more second(s) (SIGTERM drains gracefully)...\n", serve_seconds);
        const auto serve_until = std::chrono::steady_clock::now() + std::chrono::duration<double>(serve_seconds);
        while (std::chrono::steady_clock::now() < serve_until && g_shutdown_requested == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds{ 50 });
        }
        if (g_shutdown_requested != 0) {
            std::printf("shutdown signal received: draining (inflight=%llu, ready -> false)\n",
                        static_cast<unsigned long long>(server.inflight()));
            server.begin_drain();
            const auto drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds{ 10 };
            while (server.inflight() > 0 && std::chrono::steady_clock::now() < drain_deadline) {
                std::this_thread::sleep_for(std::chrono::milliseconds{ 10 });
            }
            std::printf("drained: inflight=%llu\n", static_cast<unsigned long long>(server.inflight()));
            server.stop();
            std::printf("graceful shutdown complete\n");
            return 0;
        }
        std::printf("final net stats: %s\n", server.stats_json().c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char **argv) {
    if (argc > 1 && std::strcmp(argv[1], "--qos") == 0) {
        return qos_demo();
    }
    bool listen_mode = false;
    std::uint16_t listen_port = 0;
    double serve_seconds = 0.0;
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--listen") == 0) {
            listen_mode = true;
            if (arg + 1 < argc && argv[arg + 1][0] != '-') {
                listen_port = static_cast<std::uint16_t>(std::atoi(argv[++arg]));
            }
        } else if (std::strcmp(argv[arg], "--serve-seconds") == 0 && arg + 1 < argc) {
            serve_seconds = std::atof(argv[++arg]);
        }
    }
    if (listen_mode) {
        return listen_demo(listen_port, serve_seconds);
    }
    double stats_interval_s = 0.0;
    bool dump_traces = false;
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--stats-interval") == 0 && arg + 1 < argc) {
            stats_interval_s = std::atof(argv[++arg]);
        } else if (std::strcmp(argv[arg], "--dump-traces") == 0) {
            dump_traces = true;
        }
    }
    if (stats_interval_s > 0.0 || dump_traces) {
        return obs_demo(stats_interval_s > 0.0 ? stats_interval_s : 1.0, dump_traces);
    }
    // 1. generate raw training data and fit the server-side scaling on it:
    //    clients will send UNSCALED features, the engine applies the
    //    transform inside the batch path (it is versioned with the model)
    plssvm::datagen::classification_params gen;
    gen.num_points = 512;
    gen.num_features = 16;
    gen.class_sep = 1.5;
    auto train = plssvm::datagen::make_classification<double>(gen);
    auto scaling = std::make_shared<plssvm::io::scaling<double>>(-1.0, 1.0);
    plssvm::aos_matrix<double> scaled_points = train.points();
    scaling->fit_transform(scaled_points);
    const plssvm::data_set<double> scaled_train{ std::move(scaled_points), std::vector<double>(train.labels()) };

    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    const auto svm = plssvm::make_csvm<double>(plssvm::backend_type::openmp, params);
    const auto model = svm->fit(scaled_train, plssvm::solver_control{ .epsilon = 1e-6 });

    // 2. register the model. All engines of the registry share ONE executor
    //    (here: the process-wide pool); `num_threads` is the engine's lane
    //    quota on it, not a private pool size. The registry compiles the
    //    model once and freezes it into an immutable snapshot together with
    //    the scaling transform.
    plssvm::serve::engine_config config;
    config.num_threads = 4;  // lane quota on the shared executor
    config.max_batch_size = 64;
    config.batch_delay = std::chrono::microseconds{ 250 };
    plssvm::serve::model_registry<double> registry{ /*capacity=*/8, config };
    auto engine = registry.load("quickstart", model, scaling);
    std::printf("engine runs on a shared executor with %zu workers (lane quota %zu), snapshot v%llu\n",
                engine->stats().executor_threads, engine->num_threads(),
                static_cast<unsigned long long>(engine->snapshot_version()));

    // 3. synchronous batch prediction over RAW client features: one call,
    //    scaled server-side, partitioned across the executor lane
    gen.seed = 99;
    const auto raw_queries = plssvm::datagen::make_classification<double>(gen).points();
    const std::vector<double> labels = engine->predict(raw_queries);
    std::printf("sync batch: predicted %zu labels from raw features, first = %+.0f\n", labels.size(), labels.front());

    // 4. asynchronous single-point requests (also raw): the micro-batcher
    //    coalesces them into batched kernel invocations
    std::vector<std::future<double>> futures;
    for (std::size_t p = 0; p < 256; ++p) {
        futures.push_back(engine->submit(std::vector<double>(raw_queries.row_data(p), raw_queries.row_data(p) + raw_queries.num_cols())));
    }
    std::size_t agree = 0;
    for (std::size_t p = 0; p < futures.size(); ++p) {
        agree += futures[p].get() == labels[p];
    }
    std::printf("async submit: %zu/%zu labels agree with the sync batch\n", agree, futures.size());

    // 5. zero-downtime reload: retrain and hot-swap. The replacement is
    //    shadow-compiled on the executor's background lane and swapped in
    //    atomically — the engine pointer keeps serving throughout, requests
    //    in flight finish on the snapshot they started with.
    const auto retrained = svm->fit(scaled_train, plssvm::solver_control{ .epsilon = 1e-8 });
    std::future<void> swap = registry.reload("quickstart", retrained, scaling);
    (void) engine->predict(raw_queries);  // still serving while compiling
    swap.get();                           // the new snapshot is live
    std::printf("hot-swapped to snapshot v%llu after %zu reload(s), same engine pointer\n",
                static_cast<unsigned long long>(engine->snapshot_version()), engine->stats().reloads);

    // 6. serving statistics, also publishable through the library tracker
    const plssvm::serve::serve_stats stats = engine->stats();
    std::printf("served %zu requests in %zu batches (mean batch %.1f)\n",
                stats.total_requests, stats.total_batches, stats.mean_batch_size);
    std::printf("latency p50 %.0f us | p99 %.0f us | throughput %.0f req/s\n",
                1e6 * stats.p50_latency_seconds, 1e6 * stats.p99_latency_seconds, stats.requests_per_second);
    std::printf("lane queue depth %zu (max %zu), %zu stolen tasks, executor threads %zu\n",
                stats.queue_depth, stats.max_queue_depth, stats.steals, stats.executor_threads);

    plssvm::detail::tracker tracker;
    engine->report_to(tracker);
    std::printf("tracker metric serve/p99_latency_s = %.6f, serve/snapshot_version = %.0f\n",
                tracker.get_metric("serve/p99_latency_s"), tracker.get_metric("serve/snapshot_version"));

    return 0;
}
