/**
 * @file
 * @brief Serving quickstart: train a model, register it, serve synchronous
 *        batches and asynchronous single-point requests, print the stats.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/serving_demo
 */

#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/detail/tracker.hpp"
#include "plssvm/serve/serve.hpp"

#include <cstdio>
#include <future>
#include <vector>

int main() {
    // 1. train a small RBF model (stand-in for loading one from disk with
    //    `registry.load_file("churn-v3", "churn.model")`)
    plssvm::datagen::classification_params gen;
    gen.num_points = 512;
    gen.num_features = 16;
    gen.class_sep = 1.5;
    const auto train = plssvm::datagen::make_classification<double>(gen);

    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    const auto svm = plssvm::make_csvm<double>(plssvm::backend_type::openmp, params);
    const auto model = svm->fit(train, plssvm::solver_control{ .epsilon = 1e-6 });

    // 2. register the model: the registry compiles it once (collapsed w /
    //    SoA support vectors / cached norms) and owns the serving engine
    plssvm::serve::engine_config config;
    config.num_threads = 4;
    config.max_batch_size = 64;
    config.batch_delay = std::chrono::microseconds{ 250 };
    plssvm::serve::model_registry<double> registry{ /*capacity=*/8 };
    auto engine = registry.load("quickstart", model, config);

    // 3. synchronous batch prediction: one call, partitioned across the pool
    gen.seed = 99;
    const auto queries = plssvm::datagen::make_classification<double>(gen).points();
    const std::vector<double> labels = engine->predict(queries);
    std::printf("sync batch: predicted %zu labels, first = %+.0f\n", labels.size(), labels.front());

    // 4. asynchronous single-point requests: the micro-batcher coalesces them
    //    into batched kernel invocations under the size/deadline policy
    std::vector<std::future<double>> futures;
    for (std::size_t p = 0; p < 256; ++p) {
        futures.push_back(engine->submit(std::vector<double>(queries.row_data(p), queries.row_data(p) + queries.num_cols())));
    }
    std::size_t agree = 0;
    for (std::size_t p = 0; p < futures.size(); ++p) {
        agree += futures[p].get() == labels[p];
    }
    std::printf("async submit: %zu/%zu labels agree with the sync batch\n", agree, futures.size());

    // 5. serving statistics, also publishable through the library tracker
    const plssvm::serve::serve_stats stats = engine->stats();
    std::printf("served %zu requests in %zu batches (mean batch %.1f)\n",
                stats.total_requests, stats.total_batches, stats.mean_batch_size);
    std::printf("latency p50 %.0f us | p99 %.0f us | throughput %.0f req/s\n",
                1e6 * stats.p50_latency_seconds, 1e6 * stats.p99_latency_seconds, stats.requests_per_second);

    plssvm::detail::tracker tracker;
    engine->report_to(tracker);
    std::printf("tracker metric serve/p99_latency_s = %.6f\n", tracker.get_metric("serve/p99_latency_s"));

    return 0;
}
