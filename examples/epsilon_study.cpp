/**
 * @file
 * @brief The epsilon trade-off of the paper's Fig. 3 as a runnable example:
 *        CG termination threshold vs. iterations, runtime, and accuracy.
 *
 * The paper's takeaway: runtime does not explode when epsilon shrinks by many
 * orders of magnitude; past the accuracy plateau the exact choice is not
 * critical (§IV-F).
 */

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/datagen/make_classification.hpp"

#include <cstdio>

int main() {
    plssvm::datagen::classification_params gen;
    gen.num_points = 1024;
    gen.num_features = 128;
    gen.class_sep = 1.0;  // deliberately hard: noticeable class overlap
    gen.flip_y = 0.01;
    const auto data = plssvm::datagen::make_classification<double>(gen);

    const plssvm::parameter params{ plssvm::kernel_type::linear };

    std::printf("%-10s %10s %14s %10s\n", "epsilon", "CG iters", "sim cg [ms]", "accuracy");
    for (double epsilon = 1e-1; epsilon >= 1e-15; epsilon *= 1e-2) {
        plssvm::backend::cuda::csvm<double> svm{ params };
        const auto model = svm.fit(data, plssvm::solver_control{ .epsilon = epsilon });
        std::printf("%-10.0e %10zu %14.2f %9.1f%%\n",
                    epsilon, model.num_iterations(),
                    svm.performance_tracker().get("cg").sim_seconds * 1e3,
                    100.0 * svm.score(model, data));
    }
    return 0;
}
