/**
 * @file
 * @brief SAT-6-style land-cover classification (paper §IV-D scenario).
 *
 * Trains an RBF-kernel LS-SVM to separate man-made structures (buildings,
 * roads) from natural land cover (barren land, trees, grassland, water) on
 * synthetic 28x28x4 RGB-IR image patches, compares against the
 * ThunderSVM-style baseline, and reports accuracies on a held-out test split
 * -- the full pipeline of the paper's real-world experiment, at a size this
 * host handles.
 */

#include "plssvm/baselines/thunder/thunder_svc.hpp"
#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/datagen/sat6.hpp"

#include <cstdio>

int main() {
    // training / test split sizes mirror the paper's 324k/81k 4:1 ratio
    plssvm::datagen::sat6_params gen;
    gen.num_images = 1024;
    gen.seed = 42;
    const auto train = plssvm::datagen::make_sat6<double>(gen);
    gen.num_images = 256;
    gen.seed = 43;
    const auto test = plssvm::datagen::make_sat6<double>(gen);

    std::printf("SAT-6-like data: %zu train / %zu test images, %zu features each\n",
                train.num_data_points(), test.num_data_points(), train.num_features());

    // the paper reaches its best SAT-6 accuracy with the RBF kernel
    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::rbf;
    params.gamma = 1.0 / static_cast<double>(train.num_features());
    params.cost = 10.0;

    // PLSSVM on a simulated A100
    const auto svm = plssvm::make_csvm<double>(plssvm::backend_type::cuda, params);
    const auto model = svm->fit(train, plssvm::solver_control{ .epsilon = 1e-5 });
    std::printf("PLSSVM   : train %.2f %%, test %.2f %%, sim time %.2f s (%zu CG iterations)\n",
                100.0 * svm->score(model, train), 100.0 * svm->score(model, test),
                svm->performance_tracker().total_sim_seconds(), model.num_iterations());

    // ThunderSVM-style baseline on the same simulated GPU
    plssvm::baseline::thunder::thunder_svc<double> thunder{ params };
    const auto thunder_model = thunder.fit(train, 1e-3);
    std::printf("Thunder  : train %.2f %%, test %.2f %%, sim time %.2f s\n",
                100.0 * thunder.score(thunder_model, train), 100.0 * thunder.score(thunder_model, test),
                thunder.last_sim_seconds());

    return 0;
}
