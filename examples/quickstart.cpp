/**
 * @file
 * @brief Quickstart: generate a small data set, train an LS-SVM, evaluate it,
 *        and round-trip the model through a LIBSVM-compatible file.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/datagen/make_classification.hpp"

#include <cstdio>

int main() {
    // 1. create a synthetic binary classification problem (the paper's
    //    "planes" generator: two adjacent Gaussian clusters, 1 % label noise)
    plssvm::datagen::classification_params gen;
    gen.num_points = 1024;
    gen.num_features = 32;
    gen.class_sep = 1.5;
    gen.seed = 7;
    const auto train = plssvm::datagen::make_classification<double>(gen);
    gen.seed = 8;  // independent draw from the same distribution
    const auto test = plssvm::datagen::make_classification<double>(gen);

    // 2. configure the SVM: linear kernel, C = 1
    plssvm::parameter params;
    params.kernel = plssvm::kernel_type::linear;
    params.cost = 1.0;

    // 3. pick a backend at runtime -- openmp runs on the host CPU; cuda /
    //    opencl / sycl execute on the simulated device layer
    const auto svm = plssvm::make_csvm<double>(plssvm::backend_type::openmp, params);

    // 4. train; epsilon is the CG relative-residual termination criterion
    const auto model = svm->fit(train, plssvm::solver_control{ .epsilon = 1e-6 });
    std::printf("trained in %zu CG iterations\n", model.num_iterations());
    std::printf("training accuracy: %.2f %%\n", 100.0 * svm->score(model, train));
    std::printf("test accuracy:     %.2f %%\n", 100.0 * svm->score(model, test));

    // 5. persist the model in the LIBSVM model format and load it back
    model.save("quickstart.model");
    const auto reloaded = plssvm::model<double>::load("quickstart.model");
    const double reload_acc = plssvm::accuracy(reloaded, test.points(), test.labels());
    std::printf("test accuracy after model round-trip: %.2f %%\n", 100.0 * reload_acc);

    return 0;
}
