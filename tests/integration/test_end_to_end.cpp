/**
 * @file
 * @brief Integration tests exercising the full user workflow across modules:
 *        generate -> scale -> write files -> read back -> train -> save model
 *        -> reload -> predict on held-out data, for every backend; plus
 *        float/double parity and cross-solver accuracy agreement (the paper's
 *        "accuracies on par with the SMO approaches" claim).
 */

#include "plssvm/baselines/smo/svc.hpp"
#include "plssvm/baselines/thunder/thunder_svc.hpp"
#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/io/scaling.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>

namespace {

using plssvm::backend_type;
using plssvm::data_set;
using plssvm::parameter;

[[nodiscard]] data_set<double> planes(const std::size_t m, const std::uint64_t seed) {
    plssvm::datagen::classification_params gen;
    gen.num_points = m;
    gen.num_features = 12;
    gen.class_sep = 1.4;
    gen.flip_y = 0.01;
    gen.seed = seed;
    return plssvm::datagen::make_classification<double>(gen);
}

class EndToEndAllBackends : public ::testing::TestWithParam<backend_type> {};

TEST_P(EndToEndAllBackends, FullPipelineThroughFiles) {
    // per-backend file names: the four instantiations run concurrently under
    // `ctest -j` and must not clobber each other's files
    const std::string suffix{ plssvm::backend_type_to_string(GetParam()) };
    const std::string data_file = "/tmp/plssvm_e2e_train_" + suffix + ".libsvm";
    const std::string scale_file = "/tmp/plssvm_e2e_scale_" + suffix + ".txt";
    const std::string model_file = "/tmp/plssvm_e2e_" + suffix + ".model";

    // generate + scale + persist
    auto train = planes(220, 1);
    const auto factors = train.scale(-1.0, 1.0);
    factors.save(scale_file);
    train.save_libsvm(data_file);

    // read back and train
    const auto loaded = data_set<double>::from_file(data_file);
    auto svm = plssvm::make_csvm<double>(GetParam(), parameter{ plssvm::kernel_type::linear });
    const auto model = svm->fit(loaded, plssvm::solver_control{ .epsilon = 1e-8 });
    model.save(model_file);

    // fresh process equivalent: reload everything and predict held-out data
    const auto restored_factors = plssvm::io::scaling<double>::load(scale_file);
    auto test = planes(80, 2);
    test.scale(restored_factors);
    const auto restored_model = plssvm::model<double>::load(model_file);
    const double accuracy = plssvm::accuracy(restored_model, test.points(), test.labels());
    EXPECT_GE(accuracy, 0.9) << "backend: " << plssvm::backend_type_to_string(GetParam());

    std::remove(data_file.c_str());
    std::remove(scale_file.c_str());
    std::remove(model_file.c_str());
}

INSTANTIATE_TEST_SUITE_P(Backends, EndToEndAllBackends,
                         ::testing::Values(backend_type::openmp, backend_type::cuda,
                                           backend_type::opencl, backend_type::sycl),
                         [](const auto &info) { return std::string{ plssvm::backend_type_to_string(info.param) }; });

TEST(EndToEnd, AllSolversReachComparableAccuracy) {
    // the paper's headline fairness claim: LS-SVM accuracy is on par with the
    // SMO implementations at matched termination quality (§IV)
    const auto train = planes(400, 5);
    const auto test = planes(150, 6);

    const parameter params{ plssvm::kernel_type::linear };
    auto lssvm = plssvm::make_csvm<double>(backend_type::openmp, params);
    const double lssvm_acc = lssvm->score(lssvm->fit(train, plssvm::solver_control{ .epsilon = 1e-6 }), test);

    plssvm::baseline::smo::svc<double> libsvm{ params };
    const double libsvm_acc = libsvm.score(libsvm.fit(train, 1e-4), test);

    plssvm::baseline::thunder::thunder_svc<double> thunder{ params, std::nullopt };
    const double thunder_acc = thunder.score(thunder.fit(train, 1e-4), test);

    EXPECT_NEAR(lssvm_acc, libsvm_acc, 0.05);
    EXPECT_NEAR(lssvm_acc, thunder_acc, 0.05);
    EXPECT_GE(lssvm_acc, 0.85);
}

TEST(EndToEnd, FloatAndDoubleAgreeOnPredictions) {
    // the paper supports single/double via a template switch (§III); at
    // moderate conditioning the predicted labels must coincide
    plssvm::datagen::classification_params gen;
    gen.num_points = 150;
    gen.num_features = 10;
    gen.class_sep = 2.0;
    gen.seed = 8;
    const auto data64 = plssvm::datagen::make_classification<double>(gen);
    const auto data32 = plssvm::datagen::make_classification<float>(gen);

    auto svm64 = plssvm::make_csvm<double>(backend_type::openmp, parameter{});
    auto svm32 = plssvm::make_csvm<float>(backend_type::openmp, parameter{});
    const auto labels64 = svm64->predict(svm64->fit(data64, plssvm::solver_control{ .epsilon = 1e-6 }), data64);
    const auto labels32 = svm32->predict(svm32->fit(data32, plssvm::solver_control{ .epsilon = 1e-4 }), data32);

    std::size_t agree = 0;
    for (std::size_t i = 0; i < labels64.size(); ++i) {
        agree += static_cast<float>(labels64[i]) == labels32[i];
    }
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(labels64.size()), 0.98);
}

TEST(EndToEnd, ArbitraryLabelValuesSurviveTheFullPipeline) {
    // LIBSVM data may label classes e.g. 3 / 7; predictions and the model
    // file must stay in the original label domain
    plssvm::datagen::classification_params gen;
    gen.num_points = 100;
    gen.num_features = 6;
    gen.class_sep = 3.0;
    gen.flip_y = 0.0;
    const auto base = plssvm::datagen::make_classification<double>(gen);
    std::vector<double> labels(base.num_data_points());
    for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = base.labels()[i] > 0 ? 7.0 : 3.0;
    }
    const data_set<double> data{ base.points(), std::move(labels) };

    auto svm = plssvm::make_csvm<double>(backend_type::openmp, parameter{});
    const auto model = svm->fit(data, plssvm::solver_control{ .epsilon = 1e-8 });
    const auto predicted = svm->predict(model, data);
    for (const double label : predicted) {
        EXPECT_TRUE(label == 7.0 || label == 3.0);
    }

    const std::string model_file = "/tmp/plssvm_e2e_labels.model";
    model.save(model_file);
    const auto reloaded = plssvm::model<double>::load(model_file);
    EXPECT_DOUBLE_EQ(reloaded.positive_label(), model.positive_label());
    EXPECT_DOUBLE_EQ(reloaded.negative_label(), model.negative_label());
    std::remove(model_file.c_str());
}

TEST(EndToEnd, RepeatedFitsOnTheSameCsvmAreIndependent) {
    const auto data_a = planes(120, 10);
    const auto data_b = planes(90, 11);
    auto svm = plssvm::make_csvm<double>(backend_type::cuda, parameter{});
    const auto model_a1 = svm->fit(data_a, plssvm::solver_control{ .epsilon = 1e-10 });
    const auto model_b = svm->fit(data_b, plssvm::solver_control{ .epsilon = 1e-10 });
    const auto model_a2 = svm->fit(data_a, plssvm::solver_control{ .epsilon = 1e-10 });
    for (std::size_t i = 0; i < model_a1.alpha().size(); ++i) {
        EXPECT_NEAR(model_a1.alpha()[i], model_a2.alpha()[i], 1e-10);
    }
    EXPECT_EQ(model_b.num_support_vectors(), 90U);
}

}  // namespace
