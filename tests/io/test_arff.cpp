/**
 * @file
 * @brief Tests of the ARFF parser (PLSSVM's second input format).
 */

#include "plssvm/exceptions.hpp"
#include "plssvm/io/arff.hpp"
#include "plssvm/io/file_reader.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using plssvm::io::file_reader;
using plssvm::io::parse_arff;

[[nodiscard]] file_reader make_reader(const std::string &content) {
    return file_reader::from_string(content, '\0');
}

constexpr const char *valid_header =
    "@RELATION test\n"
    "@ATTRIBUTE f0 NUMERIC\n"
    "@ATTRIBUTE f1 REAL\n"
    "@ATTRIBUTE class {-1,1}\n"
    "@DATA\n";

TEST(ArffParser, ParsesDenseRows) {
    const auto result = parse_arff<double>(make_reader(std::string{ valid_header } + "1.0,2.0,1\n-0.5,0.25,-1\n"));
    EXPECT_TRUE(result.has_labels);
    EXPECT_EQ(result.relation_name, "test");
    ASSERT_EQ(result.points.num_rows(), 2U);
    ASSERT_EQ(result.points.num_cols(), 2U);
    EXPECT_DOUBLE_EQ(result.points(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(result.points(1, 1), 0.25);
    EXPECT_DOUBLE_EQ(result.labels[0], 1.0);
    EXPECT_DOUBLE_EQ(result.labels[1], -1.0);
}

TEST(ArffParser, ParsesSparseRows) {
    const auto result = parse_arff<double>(make_reader(std::string{ valid_header } + "{0 2.5, 2 1}\n{1 -1.5, 2 -1}\n"));
    EXPECT_DOUBLE_EQ(result.points(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(result.points(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(result.labels[0], 1.0);
    EXPECT_DOUBLE_EQ(result.points(1, 1), -1.5);
}

TEST(ArffParser, HeaderWithoutClassAttribute) {
    const auto result = parse_arff<double>(make_reader("@RELATION r\n@ATTRIBUTE a NUMERIC\n@DATA\n1.5\n2.5\n"));
    EXPECT_FALSE(result.has_labels);
    EXPECT_EQ(result.points.num_rows(), 2U);
}

TEST(ArffParser, SkipsPercentComments) {
    const auto result = parse_arff<double>(make_reader("% top comment\n" + std::string{ valid_header } + "1,2,1\n% mid comment\n3,4,-1\n"));
    EXPECT_EQ(result.points.num_rows(), 2U);
}

TEST(ArffParser, CaseInsensitiveDirectives) {
    const auto result = parse_arff<double>(make_reader("@relation r\n@attribute a numeric\n@data\n1\n2\n"));
    EXPECT_EQ(result.points.num_rows(), 2U);
}

TEST(ArffParser, MissingDataDirectiveThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader("@RELATION r\n@ATTRIBUTE a NUMERIC\n")),
                 plssvm::invalid_file_format_exception);
}

TEST(ArffParser, NoFeatureAttributesThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader("@RELATION r\n@DATA\n1\n")),
                 plssvm::invalid_file_format_exception);
}

TEST(ArffParser, ClassAttributeNotLastThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader("@RELATION r\n@ATTRIBUTE class {0,1}\n@ATTRIBUTE a NUMERIC\n@DATA\n1,1\n")),
                 plssvm::invalid_file_format_exception);
}

TEST(ArffParser, WrongColumnCountThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader(std::string{ valid_header } + "1.0,2.0\n")),
                 plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) parse_arff<double>(make_reader(std::string{ valid_header } + "1,2,3,4\n")),
                 plssvm::invalid_file_format_exception);
}

TEST(ArffParser, InvalidNumericValueThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader(std::string{ valid_header } + "a,b,1\n")),
                 plssvm::invalid_file_format_exception);
}

TEST(ArffParser, SparseIndexOutOfRangeThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader(std::string{ valid_header } + "{7 1.0}\n")),
                 plssvm::invalid_file_format_exception);
}

TEST(ArffParser, NoDataRowsThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader(valid_header)), plssvm::invalid_data_exception);
}

TEST(ArffParser, StringAttributeThrows) {
    EXPECT_THROW((void) parse_arff<double>(make_reader("@RELATION r\n@ATTRIBUTE a STRING\n@DATA\nfoo\n")),
                 plssvm::invalid_file_format_exception);
}

TEST(ArffWriter, RoundTripThroughFile) {
    plssvm::aos_matrix<double> points{ 2, 3 };
    points(0, 0) = 1.0;
    points(1, 2) = -0.5;
    const std::vector<double> labels{ 1.0, -1.0 };
    const std::string path = "/tmp/plssvm_test_roundtrip.arff";
    plssvm::io::write_arff_file(path, points, &labels, "roundtrip");

    const auto reparsed = plssvm::io::parse_arff_file<double>(path);
    EXPECT_EQ(reparsed.points, points);
    EXPECT_EQ(reparsed.labels, labels);
    EXPECT_EQ(reparsed.relation_name, "roundtrip");
    std::remove(path.c_str());
}

}  // namespace
