/**
 * @file
 * @brief Tests of the LIBSVM model file format: save/load round trips and
 *        prediction invariance ("drop-in replacement" claim, paper §I).
 */

#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/io/file_reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace {

using plssvm::data_set;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::parameter;

[[nodiscard]] data_set<double> make_data(const kernel_type kt = kernel_type::linear) {
    (void) kt;
    plssvm::datagen::classification_params gen;
    gen.num_points = 96;
    gen.num_features = 6;
    gen.class_sep = 2.0;
    gen.flip_y = 0.0;
    return plssvm::datagen::make_classification<double>(gen);
}

class ModelIoAllKernels : public ::testing::TestWithParam<kernel_type> {};

TEST_P(ModelIoAllKernels, SaveLoadPreservesPredictions) {
    const auto data = make_data();
    parameter params{ GetParam() };
    params.gamma = 0.5;
    params.coef0 = 1.0;
    plssvm::backend::openmp::csvm<double> svm{ params };
    const auto trained = svm.fit(data, plssvm::solver_control{ .epsilon = 1e-8 });

    const std::string path = "/tmp/plssvm_test_model_io.model";
    trained.save(path);
    const auto loaded = model<double>::load(path);

    EXPECT_EQ(loaded.params().kernel, params.kernel);
    EXPECT_EQ(loaded.num_support_vectors(), trained.num_support_vectors());
    EXPECT_NEAR(loaded.rho(), trained.rho(), 1e-12);

    const auto original = plssvm::predict_labels(trained, data.points());
    const auto reloaded = plssvm::predict_labels(loaded, data.points());
    EXPECT_EQ(original, reloaded);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Kernels, ModelIoAllKernels,
                         ::testing::Values(kernel_type::linear, kernel_type::polynomial,
                                           kernel_type::rbf, kernel_type::sigmoid),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(ModelIo, HeaderContainsLibsvmFields) {
    const auto data = make_data();
    plssvm::backend::openmp::csvm<double> svm{ parameter{ kernel_type::rbf } };
    const auto trained = svm.fit(data);
    const std::string path = "/tmp/plssvm_test_model_header.model";
    trained.save(path);

    std::ifstream file{ path };
    std::string contents{ std::istreambuf_iterator<char>{ file }, std::istreambuf_iterator<char>{} };
    EXPECT_NE(contents.find("svm_type c_svc"), std::string::npos);
    EXPECT_NE(contents.find("kernel_type rbf"), std::string::npos);
    EXPECT_NE(contents.find("nr_class 2"), std::string::npos);
    EXPECT_NE(contents.find("total_sv"), std::string::npos);
    EXPECT_NE(contents.find("rho"), std::string::npos);
    EXPECT_NE(contents.find("label"), std::string::npos);
    EXPECT_NE(contents.find("nr_sv"), std::string::npos);
    EXPECT_NE(contents.find("\nSV\n"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ModelIo, GammaPersistedEvenWhenDefaulted) {
    // training with the 1/num_features default must store the resolved gamma
    const auto data = make_data();
    plssvm::backend::openmp::csvm<double> svm{ parameter{ kernel_type::rbf } };  // gamma unset
    const auto trained = svm.fit(data);
    const std::string path = "/tmp/plssvm_test_model_gamma.model";
    trained.save(path);
    const auto loaded = model<double>::load(path);
    ASSERT_TRUE(loaded.params().gamma.has_value());
    EXPECT_DOUBLE_EQ(*loaded.params().gamma, 1.0 / 6.0);
    std::remove(path.c_str());
}

TEST(ModelIo, LoadRejectsMissingSvMarker) {
    const std::string path = "/tmp/plssvm_test_model_bad1.model";
    std::ofstream{ path } << "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 1\nrho 0\n";
    EXPECT_THROW((void) model<double>::load(path), plssvm::invalid_file_format_exception);
    std::remove(path.c_str());
}

TEST(ModelIo, LoadRejectsWrongSvCount) {
    const std::string path = "/tmp/plssvm_test_model_bad2.model";
    std::ofstream{ path } << "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nSV\n0.5 1:1\n";
    EXPECT_THROW((void) model<double>::load(path), plssvm::invalid_file_format_exception);
    std::remove(path.c_str());
}

TEST(ModelIo, LoadRejectsNonBinaryModels) {
    const std::string path = "/tmp/plssvm_test_model_bad3.model";
    std::ofstream{ path } << "svm_type c_svc\nkernel_type linear\nnr_class 3\ntotal_sv 1\nrho 0\nSV\n0.5 1:1\n";
    EXPECT_THROW((void) model<double>::load(path), plssvm::invalid_file_format_exception);
    std::remove(path.c_str());
}

TEST(ModelIo, LoadRejectsUnsupportedSvmType) {
    const std::string path = "/tmp/plssvm_test_model_bad4.model";
    std::ofstream{ path } << "svm_type epsilon_svr\nkernel_type linear\nnr_class 2\ntotal_sv 1\nrho 0\nSV\n0.5 1:1\n";
    EXPECT_THROW((void) model<double>::load(path), plssvm::invalid_file_format_exception);
    std::remove(path.c_str());
}

TEST(ModelIo, HandWrittenLibsvmModelLoads) {
    // a minimal model file as LIBSVM's svm-train would emit it
    const std::string path = "/tmp/plssvm_test_model_libsvm.model";
    std::ofstream{ path } << "svm_type c_svc\n"
                             "kernel_type linear\n"
                             "nr_class 2\n"
                             "total_sv 2\n"
                             "rho 0.25\n"
                             "label 1 -1\n"
                             "nr_sv 1 1\n"
                             "SV\n"
                             "0.5 1:1.0 2:2.0\n"
                             "-0.5 1:-1.0 2:-2.0\n";
    const auto loaded = model<double>::load(path);
    EXPECT_EQ(loaded.num_support_vectors(), 2U);
    EXPECT_EQ(loaded.num_features(), 2U);
    EXPECT_DOUBLE_EQ(loaded.rho(), 0.25);
    EXPECT_DOUBLE_EQ(loaded.positive_label(), 1.0);
    EXPECT_DOUBLE_EQ(loaded.negative_label(), -1.0);

    // decision value at (1, 2): 0.5*(1+4) - 0.5*(-1-4) - 0.25 = 5 - 0.25
    plssvm::aos_matrix<double> point{ 1, 2 };
    point(0, 0) = 1.0;
    point(0, 1) = 2.0;
    const auto values = plssvm::decision_values(loaded, point);
    EXPECT_NEAR(values[0], 4.75, 1e-12);
    std::remove(path.c_str());
}

TEST(Model, ConstructorValidatesSizes) {
    plssvm::aos_matrix<double> sv{ 2, 2 };
    EXPECT_THROW((model<double>{ parameter{}, sv, std::vector<double>{ 1.0 }, 0.0, 1.0, -1.0 }),
                 plssvm::invalid_data_exception);
}

TEST(Model, LabelFromDecision) {
    plssvm::aos_matrix<double> sv{ 1, 1 };
    const model<double> m{ parameter{}, sv, std::vector<double>{ 1.0 }, 0.0, 7.0, 3.0 };
    EXPECT_DOUBLE_EQ(m.label_from_decision(0.5), 7.0);
    EXPECT_DOUBLE_EQ(m.label_from_decision(-0.5), 3.0);
    EXPECT_DOUBLE_EQ(m.label_from_decision(0.0), 3.0);  // ties go negative
}

}  // namespace
