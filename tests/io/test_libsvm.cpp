/**
 * @file
 * @brief Tests of the LIBSVM data file parser/writer: sparse densification,
 *        error handling, and write/read round trips.
 */

#include "plssvm/exceptions.hpp"
#include "plssvm/io/file_reader.hpp"
#include "plssvm/io/libsvm.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using plssvm::io::file_reader;
using plssvm::io::parse_libsvm;

[[nodiscard]] file_reader make_reader(const std::string &content) {
    return file_reader::from_string(content);
}

TEST(LibsvmParser, ParsesLabeledSparseLines) {
    const auto result = parse_libsvm<double>(make_reader("1 1:0.5 3:2.0\n-1 2:1.5\n"));
    EXPECT_TRUE(result.has_labels);
    ASSERT_EQ(result.points.num_rows(), 2U);
    ASSERT_EQ(result.points.num_cols(), 3U);
    EXPECT_DOUBLE_EQ(result.points(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(result.points(0, 1), 0.0);  // densified zero
    EXPECT_DOUBLE_EQ(result.points(0, 2), 2.0);
    EXPECT_DOUBLE_EQ(result.points(1, 1), 1.5);
    EXPECT_DOUBLE_EQ(result.labels[0], 1.0);
    EXPECT_DOUBLE_EQ(result.labels[1], -1.0);
}

TEST(LibsvmParser, ParsesUnlabeledLines) {
    const auto result = parse_libsvm<double>(make_reader("1:1.0 2:2.0\n1:3.0\n"));
    EXPECT_FALSE(result.has_labels);
    EXPECT_TRUE(result.labels.empty());
    EXPECT_EQ(result.points.num_rows(), 2U);
    EXPECT_EQ(result.points.num_cols(), 2U);
}

TEST(LibsvmParser, SkipsCommentsAndEmptyLines) {
    const auto result = parse_libsvm<double>(make_reader("# header comment\n\n1 1:1\n\n# tail\n-1 1:2\n"));
    EXPECT_EQ(result.points.num_rows(), 2U);
}

TEST(LibsvmParser, AcceptsRealValuedLabels) {
    const auto result = parse_libsvm<double>(make_reader("3.5 1:1\n-2.25 1:2\n"));
    EXPECT_DOUBLE_EQ(result.labels[0], 3.5);
    EXPECT_DOUBLE_EQ(result.labels[1], -2.25);
}

TEST(LibsvmParser, MinNumFeaturesExtendsWidth) {
    const auto result = parse_libsvm<double>(make_reader("1 1:1\n"), 5);
    EXPECT_EQ(result.points.num_cols(), 5U);
}

TEST(LibsvmParser, EmptyFileThrows) {
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("")), plssvm::invalid_data_exception);
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("# only comments\n")), plssvm::invalid_data_exception);
}

TEST(LibsvmParser, MixedLabeledUnlabeledThrows) {
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("1 1:1\n1:2\n")), plssvm::invalid_file_format_exception);
}

TEST(LibsvmParser, NonAscendingIndicesThrow) {
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("1 3:1 2:1\n")), plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("1 2:1 2:2\n")), plssvm::invalid_file_format_exception);
}

TEST(LibsvmParser, ZeroOrNegativeIndicesThrow) {
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("1 0:1\n")), plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("1 -2:1\n")), plssvm::invalid_file_format_exception);
}

TEST(LibsvmParser, MalformedValueThrows) {
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("1 1:abc\n")), plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("xyz 1:1\n")), plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) parse_libsvm<double>(make_reader("1 1\n")), plssvm::invalid_file_format_exception);
}

TEST(LibsvmParser, LineWithOnlyLabel) {
    // legal: a point whose features are all zero
    const auto result = parse_libsvm<double>(make_reader("1 1:1\n-1\n"));
    EXPECT_EQ(result.points.num_rows(), 2U);
    EXPECT_DOUBLE_EQ(result.points(1, 0), 0.0);
}

TEST(LibsvmWriter, SparseRoundTrip) {
    plssvm::aos_matrix<double> points{ 2, 3 };
    points(0, 0) = 1.5;
    points(1, 2) = -2.5;
    const std::vector<double> labels{ 1.0, -1.0 };
    const std::string written = plssvm::io::write_libsvm_string(points, &labels, /*sparse=*/true);
    // zeros must be omitted in sparse mode
    EXPECT_EQ(written.find("2:0"), std::string::npos);

    const auto reparsed = parse_libsvm<double>(make_reader(written));
    EXPECT_EQ(reparsed.points, points);
    EXPECT_EQ(reparsed.labels, labels);
}

TEST(LibsvmWriter, DenseWritesAllFeatures) {
    plssvm::aos_matrix<double> points{ 1, 3 };
    points(0, 1) = 4.0;
    const std::string written = plssvm::io::write_libsvm_string<double>(points, nullptr, /*sparse=*/false);
    EXPECT_NE(written.find("1:0"), std::string::npos);
    EXPECT_NE(written.find("2:4"), std::string::npos);
    EXPECT_NE(written.find("3:0"), std::string::npos);
}

TEST(LibsvmWriter, RoundTripPreservesDoublePrecision) {
    plssvm::aos_matrix<double> points{ 1, 1 };
    points(0, 0) = 0.1234567890123456789;  // not exactly representable
    const std::string written = plssvm::io::write_libsvm_string<double>(points, nullptr);
    const auto reparsed = parse_libsvm<double>(make_reader(written));
    EXPECT_DOUBLE_EQ(reparsed.points(0, 0), points(0, 0));
}

TEST(LibsvmWriter, LabelCountMismatchThrows) {
    plssvm::aos_matrix<double> points{ 2, 1 };
    const std::vector<double> labels{ 1.0 };
    EXPECT_THROW((void) plssvm::io::write_libsvm_string(points, &labels), plssvm::invalid_data_exception);
}

TEST(FileReader, MissingFileThrows) {
    EXPECT_THROW(file_reader{ "/nonexistent/path/data.libsvm" }, plssvm::file_not_found_exception);
}

TEST(FileReader, SplitsAndTrimsLines) {
    const auto reader = file_reader::from_string("  line1  \r\n\nline2\n# comment\n");
    ASSERT_EQ(reader.num_lines(), 2U);
    EXPECT_EQ(reader.line(0), "line1");
    EXPECT_EQ(reader.line(1), "line2");
}

}  // namespace
