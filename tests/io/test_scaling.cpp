/**
 * @file
 * @brief Tests of the svm-scale-equivalent feature scaling (paper §IV-B).
 */

#include "plssvm/exceptions.hpp"
#include "plssvm/io/scaling.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

using plssvm::aos_matrix;
using plssvm::io::scaling;

[[nodiscard]] aos_matrix<double> sample_points() {
    aos_matrix<double> points{ 3, 2 };
    points(0, 0) = 0.0;
    points(1, 0) = 5.0;
    points(2, 0) = 10.0;
    points(0, 1) = -2.0;
    points(1, 1) = 0.0;
    points(2, 1) = 2.0;
    return points;
}

TEST(Scaling, MapsToTargetInterval) {
    aos_matrix<double> points = sample_points();
    scaling<double> factors{ -1.0, 1.0 };
    factors.fit_transform(points);
    EXPECT_DOUBLE_EQ(points(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(points(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(points(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(points(0, 1), -1.0);
    EXPECT_DOUBLE_EQ(points(2, 1), 1.0);
}

TEST(Scaling, CustomInterval) {
    aos_matrix<double> points = sample_points();
    scaling<double> factors{ 0.0, 2.0 };
    factors.fit_transform(points);
    EXPECT_DOUBLE_EQ(points(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(points(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(points(2, 0), 2.0);
}

TEST(Scaling, ConstantFeatureMapsToMidpoint) {
    aos_matrix<double> points{ 2, 1 };
    points(0, 0) = 3.0;
    points(1, 0) = 3.0;
    scaling<double> factors{ -1.0, 1.0 };
    factors.fit_transform(points);
    EXPECT_DOUBLE_EQ(points(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(points(1, 0), 0.0);
}

TEST(Scaling, TestDataUsesTrainingFactors) {
    aos_matrix<double> train = sample_points();
    scaling<double> factors{ -1.0, 1.0 };
    factors.fit(train);

    aos_matrix<double> test{ 1, 2 };
    test(0, 0) = 20.0;  // beyond the training max: maps beyond +1 (svm-scale behaviour)
    test(0, 1) = 0.0;
    factors.transform(test);
    EXPECT_DOUBLE_EQ(test(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(test(0, 1), 0.0);
}

TEST(Scaling, FeatureCountMismatchThrows) {
    aos_matrix<double> train = sample_points();
    scaling<double> factors{ -1.0, 1.0 };
    factors.fit(train);
    aos_matrix<double> wrong{ 1, 3 };
    EXPECT_THROW(factors.transform(wrong), plssvm::invalid_data_exception);
}

TEST(Scaling, InvalidIntervalThrows) {
    EXPECT_THROW((scaling<double>{ 1.0, -1.0 }), plssvm::invalid_parameter_exception);
    EXPECT_THROW((scaling<double>{ 0.5, 0.5 }), plssvm::invalid_parameter_exception);
}

TEST(Scaling, SaveLoadRoundTrip) {
    aos_matrix<double> train = sample_points();
    scaling<double> factors{ -1.0, 1.0 };
    factors.fit(train);
    const std::string path = "/tmp/plssvm_test_scaling.txt";
    factors.save(path);

    const auto restored = scaling<double>::load(path);
    EXPECT_DOUBLE_EQ(restored.lower(), -1.0);
    EXPECT_DOUBLE_EQ(restored.upper(), 1.0);
    ASSERT_EQ(restored.factors().size(), 2U);
    EXPECT_DOUBLE_EQ(restored.factors()[0].min, 0.0);
    EXPECT_DOUBLE_EQ(restored.factors()[0].max, 10.0);

    // applying the restored factors must match applying the originals
    aos_matrix<double> a = sample_points();
    aos_matrix<double> b = sample_points();
    factors.transform(a);
    restored.transform(b);
    EXPECT_EQ(a, b);
    std::remove(path.c_str());
}

TEST(Scaling, LoadRejectsMalformedFiles) {
    const std::string path = "/tmp/plssvm_test_scaling_bad.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("y\n-1 1\n", f);  // wrong header
        std::fclose(f);
    }
    EXPECT_THROW((void) scaling<double>::load(path), plssvm::invalid_file_format_exception);
    std::remove(path.c_str());
}

}  // namespace
