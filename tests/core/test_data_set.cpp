/**
 * @file
 * @brief Tests of the `data_set` abstraction: label mapping, file loading,
 *        scaling integration, and validation.
 */

#include "plssvm/backends/backend_types.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/exceptions.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::data_set;

TEST(DataSet, UnlabeledConstruction) {
    aos_matrix<double> points{ 3, 2 };
    const data_set<double> data{ std::move(points) };
    EXPECT_EQ(data.num_data_points(), 3U);
    EXPECT_EQ(data.num_features(), 2U);
    EXPECT_FALSE(data.has_labels());
    EXPECT_FALSE(data.is_binary());
}

TEST(DataSet, BinaryLabelMappingFollowsFirstOccurrence) {
    aos_matrix<double> points{ 4, 1 };
    const data_set<double> data{ std::move(points), { 5.0, 2.0, 5.0, 2.0 } };
    ASSERT_TRUE(data.is_binary());
    // first distinct label (5.0) maps to +1
    EXPECT_EQ(data.binary_labels(), (std::vector<double>{ 1.0, -1.0, 1.0, -1.0 }));
    EXPECT_DOUBLE_EQ(data.original_label(1.0), 5.0);
    EXPECT_DOUBLE_EQ(data.original_label(-1.0), 2.0);
}

TEST(DataSet, CanonicalPlusMinusOneLabels) {
    aos_matrix<double> points{ 2, 1 };
    const data_set<double> data{ std::move(points), { -1.0, 1.0 } };
    EXPECT_EQ(data.binary_labels(), (std::vector<double>{ 1.0, -1.0 }));  // -1 seen first => maps to +1
    EXPECT_DOUBLE_EQ(data.original_label(1.0), -1.0);
}

TEST(DataSet, NonBinaryLabelAccessThrows) {
    aos_matrix<double> points{ 3, 1 };
    const data_set<double> data{ std::move(points), { 1.0, 2.0, 3.0 } };
    EXPECT_FALSE(data.is_binary());
    EXPECT_EQ(data.distinct_labels().size(), 3U);
    EXPECT_THROW((void) data.binary_labels(), plssvm::invalid_data_exception);
    EXPECT_THROW((void) data.original_label(1.0), plssvm::invalid_data_exception);
}

TEST(DataSet, SizeMismatchThrows) {
    aos_matrix<double> points{ 3, 1 };
    EXPECT_THROW((data_set<double>{ std::move(points), { 1.0 } }), plssvm::invalid_data_exception);
}

TEST(DataSet, EmptyThrows) {
    aos_matrix<double> empty;
    EXPECT_THROW((data_set<double>{ std::move(empty) }), plssvm::invalid_data_exception);
}

TEST(DataSet, FromLibsvmFile) {
    const std::string path = "/tmp/plssvm_test_dataset.libsvm";
    std::ofstream{ path } << "1 1:1.0 2:2.0\n-1 2:0.5\n";
    const auto data = data_set<double>::from_file(path);
    EXPECT_EQ(data.num_data_points(), 2U);
    EXPECT_EQ(data.num_features(), 2U);
    EXPECT_TRUE(data.is_binary());
    std::remove(path.c_str());
}

TEST(DataSet, FromArffFileByExtension) {
    const std::string path = "/tmp/plssvm_test_dataset.arff";
    std::ofstream{ path } << "@RELATION t\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE class {-1,1}\n@DATA\n1.5,1\n-0.5,-1\n";
    const auto data = data_set<double>::from_file(path);
    EXPECT_EQ(data.num_data_points(), 2U);
    EXPECT_EQ(data.num_features(), 1U);
    EXPECT_TRUE(data.has_labels());
    std::remove(path.c_str());
}

TEST(DataSet, SaveLibsvmRoundTrip) {
    aos_matrix<double> points{ 2, 3 };
    points(0, 0) = 1.0;
    points(1, 2) = -2.0;
    const data_set<double> data{ std::move(points), { 1.0, -1.0 } };
    const std::string path = "/tmp/plssvm_test_dataset_rt.libsvm";
    data.save_libsvm(path);
    const auto loaded = data_set<double>::from_file(path);
    EXPECT_EQ(loaded.points(), data.points());
    EXPECT_EQ(loaded.labels(), data.labels());
    std::remove(path.c_str());
}

TEST(DataSet, ScaleToInterval) {
    aos_matrix<double> points{ 2, 1 };
    points(0, 0) = 0.0;
    points(1, 0) = 10.0;
    data_set<double> data{ std::move(points), { 1.0, -1.0 } };
    const auto factors = data.scale(-1.0, 1.0);
    EXPECT_DOUBLE_EQ(data.points()(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(data.points()(1, 0), 1.0);
    EXPECT_TRUE(factors.fitted());
}

TEST(DataSet, ScaleTestDataWithTrainFactors) {
    aos_matrix<double> train_points{ 2, 1 };
    train_points(0, 0) = 0.0;
    train_points(1, 0) = 10.0;
    data_set<double> train{ std::move(train_points), { 1.0, -1.0 } };
    const auto factors = train.scale();

    aos_matrix<double> test_points{ 1, 1 };
    test_points(0, 0) = 5.0;
    data_set<double> test{ std::move(test_points) };
    test.scale(factors);
    EXPECT_DOUBLE_EQ(test.points()(0, 0), 0.0);
}

TEST(Parameter, EffectiveGammaDefault) {
    const plssvm::parameter params{};
    EXPECT_DOUBLE_EQ(params.effective_gamma(4), 0.25);
    plssvm::parameter explicit_gamma{};
    explicit_gamma.gamma = 2.0;
    EXPECT_DOUBLE_EQ(explicit_gamma.effective_gamma(4), 2.0);
}

TEST(Parameter, ValidationRejectsBadValues) {
    plssvm::parameter params{};
    params.cost = 0.0;
    EXPECT_THROW(params.validate(), plssvm::invalid_parameter_exception);
    params.cost = 1.0;
    params.kernel = plssvm::kernel_type::polynomial;
    params.degree = 0;
    EXPECT_THROW(params.validate(), plssvm::invalid_parameter_exception);
    params.degree = 3;
    params.gamma = -1.0;
    EXPECT_THROW(params.validate(), plssvm::invalid_parameter_exception);
}

TEST(SolverControl, ValidationRejectsBadValues) {
    plssvm::solver_control ctrl;
    ctrl.epsilon = 0.0;
    EXPECT_THROW(ctrl.validate(), plssvm::invalid_parameter_exception);
    ctrl.epsilon = 1.0;
    EXPECT_THROW(ctrl.validate(), plssvm::invalid_parameter_exception);
    ctrl.epsilon = 0.5;
    ctrl.residual_refresh_interval = 0;
    EXPECT_THROW(ctrl.validate(), plssvm::invalid_parameter_exception);
}

TEST(BackendTypes, RoundTripAndAliases) {
    for (const auto backend : { plssvm::backend_type::openmp, plssvm::backend_type::cuda,
                                plssvm::backend_type::opencl, plssvm::backend_type::sycl }) {
        EXPECT_EQ(plssvm::backend_type_from_string(plssvm::backend_type_to_string(backend)), backend);
    }
    EXPECT_EQ(plssvm::backend_type_from_string("OMP"), plssvm::backend_type::openmp);
    EXPECT_EQ(plssvm::backend_type_from_string("hipsycl"), plssvm::backend_type::sycl);
    EXPECT_EQ(plssvm::backend_type_from_string("dpc++"), plssvm::backend_type::sycl);
    EXPECT_THROW((void) plssvm::backend_type_from_string("vulkan"), plssvm::unsupported_backend_exception);
}

}  // namespace
