/**
 * @file
 * @brief Tests of the runtime backend factory and the performance tracker.
 */

#include "plssvm/backends/device/csvm.hpp"
#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/detail/tracker.hpp"
#include "plssvm/exceptions.hpp"

#include <gtest/gtest.h>

namespace {

using plssvm::backend_type;
using plssvm::parameter;

TEST(CsvmFactory, CreatesEveryBackend) {
    for (const auto backend : { backend_type::openmp, backend_type::cuda,
                                backend_type::opencl, backend_type::sycl }) {
        const auto svm = plssvm::make_csvm<double>(backend, parameter{});
        ASSERT_NE(svm, nullptr);
        EXPECT_EQ(svm->backend_name(), plssvm::backend_type_to_string(backend));
    }
}

TEST(CsvmFactory, FloatInstantiation) {
    const auto svm = plssvm::make_csvm<float>(backend_type::openmp, parameter{});
    plssvm::datagen::classification_params gen;
    gen.num_points = 96;
    gen.num_features = 8;
    gen.class_sep = 3.0;
    const auto data = plssvm::datagen::make_classification<float>(gen);
    const auto model = svm->fit(data, plssvm::solver_control{ .epsilon = 1e-4 });
    EXPECT_GE(svm->score(model, data), 0.95F);
}

TEST(CsvmFactory, DefaultDeviceIsA100) {
    const auto svm = plssvm::make_csvm<double>(backend_type::cuda, parameter{});
    // the device backends default to the paper's scaling GPU
    const auto *device_svm = dynamic_cast<plssvm::backend::device::device_csvm<double> *>(svm.get());
    ASSERT_NE(device_svm, nullptr);
    EXPECT_EQ(device_svm->num_devices(), 1U);
    EXPECT_EQ(device_svm->devices()[0].spec().name, "NVIDIA A100");
}

TEST(CsvmFactory, ExplicitDeviceList) {
    const std::vector<plssvm::sim::device_spec> specs{ plssvm::sim::devices::nvidia_v100(),
                                                       plssvm::sim::devices::nvidia_v100() };
    const auto svm = plssvm::make_csvm<double>(backend_type::opencl, parameter{}, specs);
    const auto *device_svm = dynamic_cast<plssvm::backend::device::device_csvm<double> *>(svm.get());
    ASSERT_NE(device_svm, nullptr);
    EXPECT_EQ(device_svm->num_devices(), 2U);
}

TEST(CsvmFactory, InvalidCombinationThrows) {
    EXPECT_THROW((void) plssvm::make_csvm<double>(backend_type::cuda, parameter{},
                                                  { plssvm::sim::devices::intel_uhd_p630() }),
                 plssvm::unsupported_backend_exception);
}

TEST(CsvmFactory, InvalidParameterThrowsAtConstruction) {
    parameter params;
    params.cost = -1.0;
    EXPECT_THROW((void) plssvm::make_csvm<double>(backend_type::openmp, params),
                 plssvm::invalid_parameter_exception);
}

// ---- performance tracker ----------------------------------------------------

TEST(Tracker, AccumulatesComponents) {
    plssvm::detail::tracker tracker;
    tracker.add("cg", 1.0, 2.0);
    tracker.add("cg", 0.5, 1.0);
    tracker.add("read", 0.25);
    const auto cg = tracker.get("cg");
    EXPECT_DOUBLE_EQ(cg.wall_seconds, 1.5);
    EXPECT_DOUBLE_EQ(cg.sim_seconds, 3.0);
    EXPECT_EQ(cg.invocations, 2U);
    EXPECT_DOUBLE_EQ(tracker.total_wall_seconds(), 1.75);
    EXPECT_DOUBLE_EQ(tracker.total_sim_seconds(), 3.0);
}

TEST(Tracker, UnknownComponentIsZero) {
    const plssvm::detail::tracker tracker;
    const auto entry = tracker.get("nonexistent");
    EXPECT_DOUBLE_EQ(entry.wall_seconds, 0.0);
    EXPECT_EQ(entry.invocations, 0U);
}

TEST(Tracker, ReportedSecondsPrefersSimTime) {
    plssvm::detail::component_timing timing;
    timing.wall_seconds = 5.0;
    EXPECT_DOUBLE_EQ(timing.reported_seconds(), 5.0);  // host component
    timing.sim_seconds = 2.0;
    EXPECT_DOUBLE_EQ(timing.reported_seconds(), 2.0);  // device component
}

TEST(Tracker, ClearResets) {
    plssvm::detail::tracker tracker;
    tracker.add("cg", 1.0);
    tracker.clear();
    EXPECT_TRUE(tracker.components().empty());
    EXPECT_DOUBLE_EQ(tracker.total_wall_seconds(), 0.0);
}

TEST(Tracker, ScopedTimerMeasuresElapsedTime) {
    plssvm::detail::tracker tracker;
    {
        const plssvm::detail::scoped_timer timer{ tracker, "scope" };
        volatile double sink = 0.0;
        for (int i = 0; i < 100000; ++i) {
            sink += static_cast<double>(i);
        }
        (void) sink;
    }
    EXPECT_GT(tracker.get("scope").wall_seconds, 0.0);
    EXPECT_EQ(tracker.get("scope").invocations, 1U);
}

}  // namespace
