/**
 * @file
 * @brief Unit tests for the scalar kernel functions (paper §II-E).
 */

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/exceptions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using plssvm::kernel_params;
using plssvm::kernel_type;
namespace kernels = plssvm::kernels;

TEST(KernelFunctions, DotProduct) {
    const std::vector<double> x{ 1.0, 2.0, 3.0 };
    const std::vector<double> y{ 4.0, -5.0, 6.0 };
    EXPECT_DOUBLE_EQ(kernels::dot(x.data(), y.data(), 3), 4.0 - 10.0 + 18.0);
}

TEST(KernelFunctions, DotProductEmpty) {
    const std::vector<double> x{};
    EXPECT_DOUBLE_EQ(kernels::dot(x.data(), x.data(), 0), 0.0);
}

TEST(KernelFunctions, SquaredEuclideanDistance) {
    const std::vector<double> x{ 1.0, 2.0 };
    const std::vector<double> y{ 4.0, 6.0 };
    EXPECT_DOUBLE_EQ(kernels::squared_euclidean_distance(x.data(), y.data(), 2), 9.0 + 16.0);
}

TEST(KernelFunctions, SquaredDistanceToSelfIsZero) {
    const std::vector<double> x{ 0.5, -1.5, 3.25 };
    EXPECT_DOUBLE_EQ(kernels::squared_euclidean_distance(x.data(), x.data(), 3), 0.0);
}

TEST(KernelFunctions, IntPow) {
    EXPECT_DOUBLE_EQ(kernels::int_pow(2.0, 0), 1.0);
    EXPECT_DOUBLE_EQ(kernels::int_pow(2.0, 1), 2.0);
    EXPECT_DOUBLE_EQ(kernels::int_pow(2.0, 10), 1024.0);
    EXPECT_DOUBLE_EQ(kernels::int_pow(-3.0, 3), -27.0);
    EXPECT_DOUBLE_EQ(kernels::int_pow(0.5, 2), 0.25);
}

TEST(KernelFunctions, LinearKernel) {
    const kernel_params<double> kp{ kernel_type::linear, 3, 1.0, 0.0 };
    const std::vector<double> x{ 1.0, 2.0 };
    const std::vector<double> y{ 3.0, 4.0 };
    EXPECT_DOUBLE_EQ(kernels::apply(kp, x.data(), y.data(), 2), 11.0);
}

TEST(KernelFunctions, PolynomialKernel) {
    const kernel_params<double> kp{ kernel_type::polynomial, 2, 0.5, 1.0 };
    const std::vector<double> x{ 1.0, 2.0 };
    const std::vector<double> y{ 3.0, 4.0 };
    // (0.5 * 11 + 1)^2 = 6.5^2
    EXPECT_DOUBLE_EQ(kernels::apply(kp, x.data(), y.data(), 2), 6.5 * 6.5);
}

TEST(KernelFunctions, RbfKernel) {
    const kernel_params<double> kp{ kernel_type::rbf, 3, 0.25, 0.0 };
    const std::vector<double> x{ 1.0, 2.0 };
    const std::vector<double> y{ 4.0, 6.0 };
    EXPECT_DOUBLE_EQ(kernels::apply(kp, x.data(), y.data(), 2), std::exp(-0.25 * 25.0));
}

TEST(KernelFunctions, RbfKernelOfIdenticalPointsIsOne) {
    const kernel_params<double> kp{ kernel_type::rbf, 3, 1.5, 0.0 };
    const std::vector<double> x{ 0.1, -0.7, 2.3 };
    EXPECT_DOUBLE_EQ(kernels::apply(kp, x.data(), x.data(), 3), 1.0);
}

TEST(KernelFunctions, SigmoidKernel) {
    const kernel_params<double> kp{ kernel_type::sigmoid, 3, 0.1, -0.5 };
    const std::vector<double> x{ 1.0, 2.0 };
    const std::vector<double> y{ 3.0, 4.0 };
    EXPECT_DOUBLE_EQ(kernels::apply(kp, x.data(), y.data(), 2), std::tanh(0.1 * 11.0 - 0.5));
}

TEST(KernelFunctions, FinishMatchesApplyForInnerProductKernels) {
    const std::vector<double> x{ 0.3, -1.2, 0.8 };
    const std::vector<double> y{ 1.1, 0.4, -0.6 };
    for (const kernel_type kt : { kernel_type::linear, kernel_type::polynomial, kernel_type::sigmoid }) {
        const kernel_params<double> kp{ kt, 3, 0.7, 0.2 };
        const double core = kernels::dot(x.data(), y.data(), 3);
        EXPECT_DOUBLE_EQ(kernels::finish(kp, core), kernels::apply(kp, x.data(), y.data(), 3));
    }
}

TEST(KernelFunctions, FinishMatchesApplyForRbf) {
    const std::vector<double> x{ 0.3, -1.2, 0.8 };
    const std::vector<double> y{ 1.1, 0.4, -0.6 };
    const kernel_params<double> kp{ kernel_type::rbf, 3, 0.7, 0.0 };
    const double core = kernels::squared_euclidean_distance(x.data(), y.data(), 3);
    EXPECT_DOUBLE_EQ(kernels::finish(kp, core), kernels::apply(kp, x.data(), y.data(), 3));
}

TEST(KernelFunctions, FeatureSplitSupport) {
    EXPECT_TRUE(kernels::supports_feature_split(kernel_type::linear));
    EXPECT_FALSE(kernels::supports_feature_split(kernel_type::polynomial));
    EXPECT_FALSE(kernels::supports_feature_split(kernel_type::rbf));
    EXPECT_FALSE(kernels::supports_feature_split(kernel_type::sigmoid));
}

TEST(KernelTypes, RoundTripStrings) {
    for (const kernel_type kt : { kernel_type::linear, kernel_type::polynomial, kernel_type::rbf, kernel_type::sigmoid }) {
        EXPECT_EQ(plssvm::kernel_type_from_string(plssvm::kernel_type_to_string(kt)), kt);
    }
}

TEST(KernelTypes, ParseAliases) {
    EXPECT_EQ(plssvm::kernel_type_from_string("poly"), kernel_type::polynomial);
    EXPECT_EQ(plssvm::kernel_type_from_string("radial"), kernel_type::rbf);
    EXPECT_EQ(plssvm::kernel_type_from_string("LINEAR"), kernel_type::linear);
    EXPECT_EQ(plssvm::kernel_type_from_string("0"), kernel_type::linear);
    EXPECT_EQ(plssvm::kernel_type_from_string("2"), kernel_type::rbf);
}

TEST(KernelTypes, ParseUnknownThrows) {
    EXPECT_THROW(plssvm::kernel_type_from_string("gaussian_process"), plssvm::invalid_parameter_exception);
    EXPECT_THROW(plssvm::kernel_type_from_string(""), plssvm::invalid_parameter_exception);
}

}  // namespace
