/**
 * @file
 * @brief Property tests on the *trained solution* itself: the returned
 *        (alpha, b) must satisfy the LS-SVM optimality system (Eq. 11) —
 *        a much stronger check than accuracy thresholds.
 */

#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/ext/grid_search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace {

using plssvm::data_set;
using plssvm::kernel_params;
using plssvm::kernel_type;
using plssvm::parameter;

[[nodiscard]] data_set<double> make_data(const std::size_t m, const std::uint64_t seed = 3) {
    plssvm::datagen::classification_params gen;
    gen.num_points = m;
    gen.num_features = 7;
    gen.class_sep = 1.5;
    gen.seed = seed;
    return plssvm::datagen::make_classification<double>(gen);
}

class SolutionOptimality : public ::testing::TestWithParam<kernel_type> {};

TEST_P(SolutionOptimality, TrainedSolutionSatisfiesTheFullSystem) {
    // Eq. 11: [Q 1; 1^T 0] [alpha; b] = [y; 0] with Q_ij = k(x_i,x_j) + d_ij/C.
    // The backend solves the *reduced* system (Eq. 14); verify against the
    // full un-reduced optimality conditions.
    const auto data = make_data(80);
    parameter params{ GetParam() };
    params.gamma = 0.4;
    params.coef0 = 0.8;
    params.cost = 2.0;
    plssvm::backend::openmp::csvm<double> svm{ params };
    // the polynomial kernel yields a badly conditioned system at this size;
    // give CG enough iterations to actually reach the tight residual
    plssvm::solver_control ctrl;
    ctrl.epsilon = 1e-12;
    ctrl.max_iterations = 20000;
    const auto model = svm.fit(data, ctrl);

    const std::size_t m = data.num_data_points();
    const std::size_t dim = data.num_features();
    const kernel_params<double> kp{ params.kernel, params.degree, 0.4, 0.8 };
    const std::vector<double> &alpha = model.alpha();
    const std::vector<double> &y = data.binary_labels();
    const double b = model.bias();

    // row i of the full system: sum_j Q_ij alpha_j + b = y_i
    double max_residual = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        double row = b;
        for (std::size_t j = 0; j < m; ++j) {
            double q = plssvm::kernels::apply(kp, data.points().row_data(i), data.points().row_data(j), dim);
            if (i == j) {
                q += 1.0 / params.cost;
            }
            row += q * alpha[j];
        }
        max_residual = std::max(max_residual, std::abs(row - y[i]));
    }
    EXPECT_LT(max_residual, 1e-6) << "kernel: " << plssvm::kernel_type_to_string(GetParam());

    // last row: sum_i alpha_i = 0
    double alpha_sum = 0.0;
    for (const double a : alpha) {
        alpha_sum += a;
    }
    EXPECT_NEAR(alpha_sum, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Kernels, SolutionOptimality,
                         ::testing::Values(kernel_type::linear, kernel_type::polynomial, kernel_type::rbf),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(SolutionProperties, DecisionValuesInterpolateLabelsAtHighCost) {
    // as C -> infinity the LS-SVM interpolates: f(x_i) -> y_i on the training set
    const auto data = make_data(60);
    parameter params{ kernel_type::rbf };
    params.gamma = 1.0;
    params.cost = 1e7;
    plssvm::backend::openmp::csvm<double> svm{ params };
    const auto model = svm.fit(data, plssvm::solver_control{ .epsilon = 1e-12 });
    const auto values = svm.predict_values(model, data);
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_NEAR(values[i], data.binary_labels()[i], 1e-3);
    }
}

TEST(SolutionProperties, SmallCostShrinksTheSolutionNorm) {
    // 1/C dominates the diagonal as C -> 0, so ||alpha|| must shrink
    const auto data = make_data(60);
    const auto norm_for_cost = [&](const double cost) {
        parameter params{ kernel_type::linear };
        params.cost = cost;
        plssvm::backend::openmp::csvm<double> svm{ params };
        const auto model = svm.fit(data, plssvm::solver_control{ .epsilon = 1e-10 });
        double norm = 0.0;
        for (const double a : model.alpha()) {
            norm += a * a;
        }
        return std::sqrt(norm);
    };
    EXPECT_LT(norm_for_cost(1e-4), norm_for_cost(1e2));
}

TEST(SolutionProperties, PredictionIsTranslationConsistentForLinearKernel) {
    // f(x) with the linear kernel is affine: doubling a feature's scale in
    // train+test data must not change predicted labels (w rescales inversely)
    const auto data = make_data(70);
    plssvm::backend::openmp::csvm<double> svm{ parameter{ kernel_type::linear } };
    const auto model = svm.fit(data, plssvm::solver_control{ .epsilon = 1e-10 });
    const auto labels = svm.predict(model, data);

    plssvm::aos_matrix<double> scaled = data.points();
    for (std::size_t i = 0; i < scaled.num_rows(); ++i) {
        scaled.row_data(i)[0] *= 2.0;
    }
    const data_set<double> scaled_data{ std::move(scaled), data.labels() };
    plssvm::backend::openmp::csvm<double> svm2{ parameter{ kernel_type::linear } };
    const auto model2 = svm2.fit(scaled_data, plssvm::solver_control{ .epsilon = 1e-10 });
    const auto labels2 = svm2.predict(model2, scaled_data);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        agree += labels[i] == labels2[i];
    }
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(labels.size()), 0.97);
}

// ---- grid search -------------------------------------------------------------

TEST(GridSearch, FindsAReasonableCombination) {
    const auto data = make_data(120);
    parameter base{ kernel_type::rbf };
    const auto result = plssvm::ext::grid_search(plssvm::backend_type::openmp, base, data,
                                                 { 0.1, 1.0, 10.0 }, { 0.01, 0.1, 1.0 }, 3);
    EXPECT_EQ(result.evaluated.size(), 9U);
    EXPECT_GE(result.best.mean_accuracy, 0.85);
    // the best point must be one of the evaluated ones
    bool found = false;
    for (const auto &point : result.evaluated) {
        found |= point.cost == result.best.cost && point.gamma == result.best.gamma;
    }
    EXPECT_TRUE(found);
}

TEST(GridSearch, EmptyGammaGridUsesDefault) {
    const auto data = make_data(80);
    const auto result = plssvm::ext::grid_search(plssvm::backend_type::openmp, parameter{}, data,
                                                 { 1.0 }, {}, 3);
    EXPECT_EQ(result.evaluated.size(), 1U);
    EXPECT_DOUBLE_EQ(result.evaluated[0].gamma, 0.0);
}

TEST(GridSearch, EmptyCostGridThrows) {
    const auto data = make_data(40);
    EXPECT_THROW((void) plssvm::ext::grid_search(plssvm::backend_type::openmp, parameter{}, data, {}),
                 plssvm::invalid_parameter_exception);
}

}  // namespace
