/**
 * @file
 * @brief Tests of the dense matrix types, the AoS->SoA transform with padding
 *        (paper §III-A), and the CSR sparse matrix substrate.
 */

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::csr_matrix;
using plssvm::soa_matrix;

TEST(AosMatrix, ZeroInitialised) {
    const aos_matrix<double> m{ 3, 4 };
    EXPECT_EQ(m.num_rows(), 3U);
    EXPECT_EQ(m.num_cols(), 4U);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_DOUBLE_EQ(m(r, c), 0.0);
        }
    }
}

TEST(AosMatrix, RowMajorLayout) {
    aos_matrix<double> m{ 2, 3 };
    m(0, 0) = 1.0;
    m(0, 2) = 3.0;
    m(1, 1) = 5.0;
    EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
    EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
    EXPECT_DOUBLE_EQ(m.data()[4], 5.0);
    EXPECT_DOUBLE_EQ(m.row_data(1)[1], 5.0);
}

TEST(AosMatrix, FromExistingStorage) {
    const aos_matrix<double> m{ 2, 2, { 1.0, 2.0, 3.0, 4.0 } };
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(AosMatrix, EmptyMatrix) {
    const aos_matrix<double> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.num_rows(), 0U);
}

TEST(SoaMatrix, PaddingRoundsUp) {
    const soa_matrix<double> m{ 10, 3, 16 };
    EXPECT_EQ(m.num_rows(), 10U);
    EXPECT_EQ(m.padded_rows(), 16U);
    const soa_matrix<double> exact{ 32, 3, 16 };
    EXPECT_EQ(exact.padded_rows(), 32U);
}

TEST(SoaMatrix, RoundUpHelper) {
    EXPECT_EQ(soa_matrix<double>::round_up(0, 8), 0U);
    EXPECT_EQ(soa_matrix<double>::round_up(1, 8), 8U);
    EXPECT_EQ(soa_matrix<double>::round_up(8, 8), 8U);
    EXPECT_EQ(soa_matrix<double>::round_up(9, 8), 16U);
    EXPECT_EQ(soa_matrix<double>::round_up(17, 1), 17U);
}

TEST(SoaMatrix, FeatureMajorLayout) {
    soa_matrix<double> m{ 2, 2, 4 };  // padded to 4 rows
    m(0, 0) = 1.0;
    m(1, 0) = 2.0;
    m(0, 1) = 3.0;
    // feature 0 occupies the first padded_rows entries
    EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
    EXPECT_DOUBLE_EQ(m.data()[1], 2.0);
    EXPECT_DOUBLE_EQ(m.data()[4], 3.0);
    EXPECT_DOUBLE_EQ(m.feature_data(0)[1], 2.0);
}

TEST(SoaMatrix, PaddingEntriesAreZero) {
    soa_matrix<double> m{ 3, 2, 8 };
    m(0, 0) = 7.0;
    for (std::size_t col = 0; col < 2; ++col) {
        for (std::size_t row = 3; row < 8; ++row) {
            EXPECT_DOUBLE_EQ(m(row, col), 0.0);
        }
    }
}

TEST(LayoutTransform, RoundTripPreservesValues) {
    aos_matrix<double> aos{ 5, 3 };
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            aos(r, c) = static_cast<double>(r * 10 + c);
        }
    }
    const soa_matrix<double> soa = plssvm::transform_to_soa(aos, 8);
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_DOUBLE_EQ(soa(r, c), aos(r, c));
        }
    }
    const aos_matrix<double> back = plssvm::transform_to_aos(soa);
    EXPECT_EQ(back, aos);
}

TEST(LayoutTransform, PaddingMultipleOne) {
    aos_matrix<double> aos{ 3, 2 };
    aos(2, 1) = -1.5;
    const soa_matrix<double> soa = plssvm::transform_to_soa(aos, 1);
    EXPECT_EQ(soa.padded_rows(), 3U);
    EXPECT_DOUBLE_EQ(soa(2, 1), -1.5);
}

// ---- CSR sparse matrix -----------------------------------------------------

TEST(CsrMatrix, DropsZeros) {
    aos_matrix<double> dense{ 2, 4 };
    dense(0, 1) = 2.0;
    dense(1, 3) = -3.0;
    const csr_matrix<double> sparse{ dense };
    EXPECT_EQ(sparse.num_nonzeros(), 2U);
    EXPECT_EQ(sparse.row_nnz(0), 1U);
    EXPECT_EQ(sparse.row_begin(0)->index, 1U);
    EXPECT_DOUBLE_EQ(sparse.row_begin(0)->value, 2.0);
}

TEST(CsrMatrix, ToDenseRoundTrip) {
    aos_matrix<double> dense{ 3, 5 };
    dense(0, 0) = 1.0;
    dense(1, 2) = 2.0;
    dense(1, 4) = 3.0;
    dense(2, 1) = -4.0;
    const csr_matrix<double> sparse{ dense };
    EXPECT_EQ(sparse.to_dense(), dense);
}

TEST(CsrMatrix, SparseDotMatchesDense) {
    aos_matrix<double> dense{ 2, 6 };
    dense(0, 0) = 1.0;
    dense(0, 3) = 2.0;
    dense(0, 5) = -1.0;
    dense(1, 3) = 4.0;
    dense(1, 4) = 7.0;
    const csr_matrix<double> sparse{ dense };
    // overlap only at index 3: 2 * 4 = 8
    EXPECT_DOUBLE_EQ(sparse.dot(0, 1), 8.0);
    EXPECT_DOUBLE_EQ(sparse.dot(0, 0), 1.0 + 4.0 + 1.0);
}

TEST(CsrMatrix, SparseSquaredDistanceMatchesDense) {
    aos_matrix<double> dense{ 2, 4 };
    dense(0, 0) = 1.0;
    dense(0, 2) = 3.0;
    dense(1, 1) = -2.0;
    dense(1, 2) = 1.0;
    const csr_matrix<double> sparse{ dense };
    // diff = (1, 2, 2, 0) => 1 + 4 + 4 = 9
    EXPECT_DOUBLE_EQ(sparse.squared_distance(0, 1), 9.0);
    EXPECT_DOUBLE_EQ(sparse.squared_distance(1, 1), 0.0);
}

TEST(CsrMatrix, EmptyRow) {
    const aos_matrix<double> dense{ 2, 3 };  // all zeros
    const csr_matrix<double> sparse{ dense };
    EXPECT_EQ(sparse.num_nonzeros(), 0U);
    EXPECT_DOUBLE_EQ(sparse.dot(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(sparse.squared_distance(0, 1), 0.0);
}

}  // namespace
