/**
 * @file
 * @brief Typed (float/double) tests of the numeric core — the paper's
 *        single/double template switch (§III) must give working classifiers
 *        in both precisions, not just compile.
 */

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/io/libsvm.hpp"
#include "plssvm/solver/cg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

template <typename T>
class FloatPrecision : public ::testing::Test {};

using RealTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(FloatPrecision, RealTypes);

TYPED_TEST(FloatPrecision, KernelFunctions) {
    using T = TypeParam;
    const std::vector<T> x{ T{ 1 }, T{ 2 }, T{ 3 } };
    const std::vector<T> y{ T{ -1 }, T{ 0.5 }, T{ 2 } };
    EXPECT_NEAR(plssvm::kernels::dot(x.data(), y.data(), 3), T{ 6 }, T{ 1e-5 });
    const plssvm::kernel_params<T> rbf{ plssvm::kernel_type::rbf, 3, T{ 0.1 }, T{ 0 } };
    const T dist2 = T{ 4 } + T{ 2.25 } + T{ 1 };
    EXPECT_NEAR(plssvm::kernels::apply(rbf, x.data(), y.data(), 3), std::exp(-T{ 0.1 } * dist2), T{ 1e-5 });
}

TYPED_TEST(FloatPrecision, LayoutTransformRoundTrip) {
    using T = TypeParam;
    plssvm::aos_matrix<T> aos{ 5, 3 };
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            aos(r, c) = static_cast<T>(r) - static_cast<T>(c) * T{ 0.5 };
        }
    }
    EXPECT_EQ(plssvm::transform_to_aos(plssvm::transform_to_soa(aos, 16)), aos);
}

TYPED_TEST(FloatPrecision, LibsvmRoundTrip) {
    using T = TypeParam;
    plssvm::aos_matrix<T> points{ 2, 2 };
    points(0, 0) = T{ 0.25 };
    points(1, 1) = T{ -1.5 };
    const std::vector<T> labels{ T{ 1 }, T{ -1 } };
    const std::string text = plssvm::io::write_libsvm_string(points, &labels);
    const auto parsed = plssvm::io::parse_libsvm<T>(plssvm::io::file_reader::from_string(text));
    EXPECT_EQ(parsed.points, points);
    EXPECT_EQ(parsed.labels, labels);
}

TYPED_TEST(FloatPrecision, CgSolvesDiagonalSystem) {
    using T = TypeParam;
    class diagonal_op final : public plssvm::solver::linear_operator<T> {
      public:
        [[nodiscard]] std::size_t size() const noexcept override { return 3; }
        void apply(const std::vector<T> &x, std::vector<T> &out) override {
            out[0] = T{ 2 } * x[0];
            out[1] = T{ 4 } * x[1];
            out[2] = T{ 8 } * x[2];
        }
    } op;
    const std::vector<T> b{ T{ 2 }, T{ 8 }, T{ 32 } };
    std::vector<T> x(3, T{ 0 });
    const auto result = plssvm::solver::conjugate_gradients(op, b, x, plssvm::solver_control{ .epsilon = 1e-5 });
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(x[0], T{ 1 }, T{ 1e-4 });
    EXPECT_NEAR(x[1], T{ 2 }, T{ 1e-4 });
    EXPECT_NEAR(x[2], T{ 4 }, T{ 1e-4 });
}

TYPED_TEST(FloatPrecision, TrainingReachesHighAccuracyOnBothBackends) {
    using T = TypeParam;
    plssvm::datagen::classification_params gen;
    gen.num_points = 128;
    gen.num_features = 8;
    gen.class_sep = 3.0;
    gen.flip_y = 0.0;
    const auto data = plssvm::datagen::make_classification<T>(gen);
    // float needs a looser CG tolerance than double
    const plssvm::solver_control ctrl{ .epsilon = std::is_same_v<T, float> ? 1e-4 : 1e-8 };

    plssvm::backend::openmp::csvm<T> host{ plssvm::parameter{} };
    EXPECT_GE(host.score(host.fit(data, ctrl), data), T{ 0.95 });

    plssvm::backend::cuda::csvm<T> device{ plssvm::parameter{} };
    EXPECT_GE(device.score(device.fit(data, ctrl), data), T{ 0.95 });
}

TYPED_TEST(FloatPrecision, DeviceMemoryAccountsElementSize) {
    using T = TypeParam;
    plssvm::sim::device dev{ plssvm::sim::devices::nvidia_a100(),
                             plssvm::sim::runtime_profile::for_device(plssvm::sim::backend_runtime::cuda,
                                                                      plssvm::sim::devices::nvidia_a100()) };
    const plssvm::sim::device_buffer<T> buffer{ dev, 100 };
    EXPECT_EQ(dev.allocated_bytes(), 100 * sizeof(T));
}

}  // namespace
