/**
 * @file
 * @brief End-to-end LS-SVM training tests across backends.
 *
 * Validates the core claim chain of the paper: the reduced system (Eq. 14)
 * solved with CG yields a classifier whose training accuracy matches the
 * data's separability, identically across all backends (the device backends
 * run the same math through the simulator).
 */

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/core/csvm_factory.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/exceptions.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace {

using plssvm::backend_type;
using plssvm::data_set;
using plssvm::kernel_type;
using plssvm::parameter;
using plssvm::solver_control;

[[nodiscard]] data_set<double> make_planes(const std::size_t points, const std::size_t features,
                                           const double sep = 2.0, const std::uint64_t seed = 42) {
    plssvm::datagen::classification_params params;
    params.num_points = points;
    params.num_features = features;
    params.class_sep = sep;
    params.flip_y = 0.0;
    params.seed = seed;
    return plssvm::datagen::make_classification<double>(params);
}

class LssvmTrainingAllBackends : public ::testing::TestWithParam<backend_type> {};

TEST_P(LssvmTrainingAllBackends, SeparableDataReachesHighTrainingAccuracy) {
    const data_set<double> data = make_planes(256, 16, 3.0);
    const auto svm = plssvm::make_csvm<double>(GetParam(), parameter{ kernel_type::linear });
    const auto trained = svm->fit(data, solver_control{ .epsilon = 1e-8 });
    EXPECT_GE(svm->score(trained, data), 0.97);
}

TEST_P(LssvmTrainingAllBackends, AllPointsAreSupportVectors) {
    const data_set<double> data = make_planes(128, 8);
    const auto svm = plssvm::make_csvm<double>(GetParam(), parameter{ kernel_type::linear });
    const auto trained = svm->fit(data);
    // LS-SVM: every training point is a support vector (paper §II-C)
    EXPECT_EQ(trained.num_support_vectors(), data.num_data_points());
}

TEST_P(LssvmTrainingAllBackends, AlphaSumsToZero) {
    const data_set<double> data = make_planes(128, 8);
    const auto svm = plssvm::make_csvm<double>(GetParam(), parameter{ kernel_type::linear });
    const auto trained = svm->fit(data, solver_control{ .epsilon = 1e-10 });
    // the eliminated constraint of the dual problem: sum_i alpha_i = 0
    double sum = 0.0;
    for (const double a : trained.alpha()) {
        sum += a;
    }
    EXPECT_NEAR(sum, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Backends, LssvmTrainingAllBackends,
                         ::testing::Values(backend_type::openmp, backend_type::cuda,
                                           backend_type::opencl, backend_type::sycl),
                         [](const auto &info) { return std::string{ plssvm::backend_type_to_string(info.param) }; });

TEST(LssvmTraining, OpenMpAndCudaProduceTheSameModel) {
    const data_set<double> data = make_planes(200, 12);
    const parameter params{ kernel_type::linear };
    const solver_control ctrl{ .epsilon = 1e-12 };

    plssvm::backend::openmp::csvm<double> cpu{ params };
    plssvm::backend::cuda::csvm<double> gpu{ params };
    const auto cpu_model = cpu.fit(data, ctrl);
    const auto gpu_model = gpu.fit(data, ctrl);

    ASSERT_EQ(cpu_model.alpha().size(), gpu_model.alpha().size());
    for (std::size_t i = 0; i < cpu_model.alpha().size(); ++i) {
        EXPECT_NEAR(cpu_model.alpha()[i], gpu_model.alpha()[i], 1e-6) << "alpha mismatch at index " << i;
    }
    EXPECT_NEAR(cpu_model.rho(), gpu_model.rho(), 1e-6);
}

class LssvmTrainingAllKernels : public ::testing::TestWithParam<kernel_type> {};

TEST_P(LssvmTrainingAllKernels, TrainsAndPredictsOnItsTrainingData) {
    const data_set<double> data = make_planes(192, 10, 2.5);
    parameter params{ GetParam() };
    params.gamma = 0.1;
    params.coef0 = 1.0;
    params.degree = 3;
    const auto svm = plssvm::make_csvm<double>(backend_type::openmp, params);
    const auto trained = svm->fit(data, solver_control{ .epsilon = 1e-8 });
    EXPECT_GE(svm->score(trained, data), 0.90) << "kernel: " << plssvm::kernel_type_to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kernels, LssvmTrainingAllKernels,
                         ::testing::Values(kernel_type::linear, kernel_type::polynomial, kernel_type::rbf),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(LssvmTraining, DeviceKernelsMatchHostForRbf) {
    // cross-check the blocked device kernels against the host reference path
    const data_set<double> data = make_planes(150, 7);
    parameter params{ kernel_type::rbf };
    params.gamma = 0.25;
    const solver_control ctrl{ .epsilon = 1e-12 };

    plssvm::backend::openmp::csvm<double> cpu{ params };
    plssvm::backend::cuda::csvm<double> gpu{ params };
    const auto cpu_model = cpu.fit(data, ctrl);
    const auto gpu_model = gpu.fit(data, ctrl);
    for (std::size_t i = 0; i < cpu_model.alpha().size(); ++i) {
        EXPECT_NEAR(cpu_model.alpha()[i], gpu_model.alpha()[i], 1e-6);
    }
}

TEST(LssvmTraining, UnlabeledDataThrows) {
    plssvm::aos_matrix<double> points{ 4, 2 };
    const data_set<double> data{ std::move(points) };
    plssvm::backend::openmp::csvm<double> svm{ parameter{} };
    EXPECT_THROW((void) svm.fit(data), plssvm::invalid_data_exception);
}

TEST(LssvmTraining, NonBinaryLabelsThrow) {
    plssvm::aos_matrix<double> points{ 3, 2 };
    const data_set<double> data{ std::move(points), std::vector<double>{ 1.0, 2.0, 3.0 } };
    plssvm::backend::openmp::csvm<double> svm{ parameter{} };
    EXPECT_THROW((void) svm.fit(data), plssvm::invalid_data_exception);
}

TEST(LssvmTraining, MultiDeviceNonLinearKernelThrows) {
    const data_set<double> data = make_planes(64, 8);
    parameter params{ kernel_type::rbf };
    const std::vector<plssvm::sim::device_spec> two_devices{ plssvm::sim::devices::nvidia_a100(),
                                                             plssvm::sim::devices::nvidia_a100() };
    plssvm::backend::cuda::csvm<double> svm{ params, two_devices };
    EXPECT_THROW((void) svm.fit(data), plssvm::unsupported_kernel_exception);
}

TEST(LssvmTraining, MultiDeviceLinearMatchesSingleDevice) {
    const data_set<double> data = make_planes(180, 13);  // odd feature count: uneven split
    const parameter params{ kernel_type::linear };
    const solver_control ctrl{ .epsilon = 1e-12 };

    plssvm::backend::cuda::csvm<double> one{ params, { plssvm::sim::devices::nvidia_a100() } };
    plssvm::backend::cuda::csvm<double> four{ params,
                                              std::vector<plssvm::sim::device_spec>(4, plssvm::sim::devices::nvidia_a100()) };
    const auto model_one = one.fit(data, ctrl);
    const auto model_four = four.fit(data, ctrl);
    for (std::size_t i = 0; i < model_one.alpha().size(); ++i) {
        EXPECT_NEAR(model_one.alpha()[i], model_four.alpha()[i], 1e-6);
    }
    EXPECT_NEAR(model_one.rho(), model_four.rho(), 1e-6);
}

TEST(LssvmTraining, CudaOnAmdDeviceThrows) {
    EXPECT_THROW((plssvm::backend::cuda::csvm<double>{
                     parameter{}, { plssvm::sim::devices::amd_radeon_vii() } }),
                 plssvm::unsupported_backend_exception);
}

TEST(LssvmTraining, TrackerRecordsPipelineComponents) {
    const data_set<double> data = make_planes(128, 8);
    plssvm::backend::cuda::csvm<double> svm{ parameter{ kernel_type::linear } };
    (void) svm.fit(data);
    const auto &tracker = svm.performance_tracker();
    EXPECT_GT(tracker.get("cg").sim_seconds, 0.0);
    EXPECT_EQ(tracker.get("transform").invocations, 1U);
    EXPECT_GT(tracker.get("h2d-sim").sim_seconds, 0.0);
}

}  // namespace
