/**
 * @file
 * @brief Unit tests for the classification/regression metrics.
 */

#include "plssvm/core/metrics.hpp"
#include "plssvm/exceptions.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace plssvm::metrics;

TEST(Metrics, ConfusionMatrixCounts) {
    const std::vector<double> predicted{ 1, 1, -1, -1, 1 };
    const std::vector<double> truth{ 1, -1, -1, 1, 1 };
    const auto cm = confusion(predicted, truth, 1.0);
    EXPECT_EQ(cm.true_positives, 2U);
    EXPECT_EQ(cm.false_positives, 1U);
    EXPECT_EQ(cm.false_negatives, 1U);
    EXPECT_EQ(cm.true_negatives, 1U);
    EXPECT_EQ(cm.total(), 5U);
}

TEST(Metrics, AccuracyScore) {
    const std::vector<double> predicted{ 1, 1, -1, -1 };
    const std::vector<double> truth{ 1, -1, -1, -1 };
    EXPECT_DOUBLE_EQ(accuracy_score(predicted, truth), 0.75);
}

TEST(Metrics, PerfectPredictions) {
    const std::vector<double> labels{ 1, -1, 1 };
    const auto cm = confusion(labels, labels, 1.0);
    EXPECT_DOUBLE_EQ(accuracy_score(labels, labels), 1.0);
    EXPECT_DOUBLE_EQ(precision(cm), 1.0);
    EXPECT_DOUBLE_EQ(recall(cm), 1.0);
    EXPECT_DOUBLE_EQ(f1_score(cm), 1.0);
}

TEST(Metrics, PrecisionRecallF1) {
    // 3 TP, 1 FP, 2 FN
    const std::vector<double> predicted{ 1, 1, 1, 1, -1, -1, -1 };
    const std::vector<double> truth{ 1, 1, 1, -1, 1, 1, -1 };
    const auto cm = confusion(predicted, truth, 1.0);
    EXPECT_DOUBLE_EQ(precision(cm), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(recall(cm), 3.0 / 5.0);
    const double p = 0.75;
    const double r = 0.6;
    EXPECT_DOUBLE_EQ(f1_score(cm), 2.0 * p * r / (p + r));
}

TEST(Metrics, DegenerateCasesYieldZero) {
    confusion_matrix cm;  // all zeros
    EXPECT_DOUBLE_EQ(precision(cm), 0.0);
    EXPECT_DOUBLE_EQ(recall(cm), 0.0);
    EXPECT_DOUBLE_EQ(f1_score(cm), 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
    const std::vector<double> a{ 1, 2 };
    const std::vector<double> b{ 1 };
    EXPECT_THROW((void) accuracy_score(a, b), plssvm::invalid_data_exception);
    EXPECT_THROW((void) mean_squared_error(a, b), plssvm::invalid_data_exception);
    const std::vector<double> empty;
    EXPECT_THROW((void) accuracy_score(empty, empty), plssvm::invalid_data_exception);
}

TEST(Metrics, MeanSquaredError) {
    const std::vector<double> predicted{ 1.0, 2.0, 3.0 };
    const std::vector<double> truth{ 1.0, 0.0, 0.0 };
    EXPECT_DOUBLE_EQ(mean_squared_error(predicted, truth), (0.0 + 4.0 + 9.0) / 3.0);
}

TEST(Metrics, MeanAbsoluteError) {
    const std::vector<double> predicted{ 1.0, -2.0 };
    const std::vector<double> truth{ -1.0, 2.0 };
    EXPECT_DOUBLE_EQ(mean_absolute_error(predicted, truth), 3.0);
}

TEST(Metrics, R2PerfectFitIsOne) {
    const std::vector<double> values{ 1.0, 2.0, 3.0, 4.0 };
    EXPECT_DOUBLE_EQ(r2_score(values, values), 1.0);
}

TEST(Metrics, R2MeanPredictorIsZero) {
    const std::vector<double> truth{ 1.0, 2.0, 3.0 };
    const std::vector<double> mean_prediction{ 2.0, 2.0, 2.0 };
    EXPECT_DOUBLE_EQ(r2_score(mean_prediction, truth), 0.0);
}

TEST(Metrics, R2WorseThanMeanIsNegative) {
    const std::vector<double> truth{ 1.0, 2.0, 3.0 };
    const std::vector<double> bad{ 3.0, 3.0, -3.0 };
    EXPECT_LT(r2_score(bad, truth), 0.0);
}

TEST(Metrics, R2ConstantTruth) {
    const std::vector<double> truth{ 2.0, 2.0 };
    EXPECT_DOUBLE_EQ(r2_score(truth, truth), 1.0);
    const std::vector<double> off{ 2.0, 3.0 };
    EXPECT_DOUBLE_EQ(r2_score(off, truth), 0.0);
}

}  // namespace
