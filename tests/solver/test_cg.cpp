/**
 * @file
 * @brief Tests of the CG solver: exact solutions, termination semantics,
 *        and property-based checks on random SPD systems.
 */

#include "plssvm/detail/rng.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/solver/cg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

namespace {

using plssvm::solver_control;
using plssvm::solver::cg_result;
using plssvm::solver::conjugate_gradients;
using plssvm::solver::linear_operator;

/// Dense symmetric operator for testing.
class dense_operator final : public linear_operator<double> {
  public:
    explicit dense_operator(std::vector<std::vector<double>> matrix) :
        matrix_{ std::move(matrix) } {}

    [[nodiscard]] std::size_t size() const noexcept override { return matrix_.size(); }

    void apply(const std::vector<double> &x, std::vector<double> &out) override {
        ++applications;
        for (std::size_t i = 0; i < matrix_.size(); ++i) {
            double sum = 0.0;
            for (std::size_t j = 0; j < matrix_.size(); ++j) {
                sum += matrix_[i][j] * x[j];
            }
            out[i] = sum;
        }
    }

    std::size_t applications{ 0 };

  private:
    std::vector<std::vector<double>> matrix_;
};

/// Random SPD matrix A = B^T B + shift * I.
[[nodiscard]] dense_operator random_spd(const std::size_t n, const std::uint64_t seed, const double shift = 1.0) {
    auto engine = plssvm::detail::make_engine(seed);
    std::vector<std::vector<double>> b(n, std::vector<double>(n));
    for (auto &row : b) {
        for (double &v : row) {
            v = plssvm::detail::standard_normal<double>(engine);
        }
    }
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t k = 0; k < n; ++k) {
                a[i][j] += b[k][i] * b[k][j];
            }
        }
        a[i][i] += shift;
    }
    return dense_operator{ std::move(a) };
}

TEST(ConjugateGradients, SolvesIdentityInOneIteration) {
    std::vector<std::vector<double>> eye{ { 1, 0 }, { 0, 1 } };
    dense_operator op{ eye };
    const std::vector<double> b{ 3.0, -4.0 };
    std::vector<double> x(2, 0.0);
    const cg_result result = conjugate_gradients(op, b, x, solver_control{ .epsilon = 1e-12 });
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 1U);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], -4.0, 1e-12);
}

TEST(ConjugateGradients, SolvesDiagonalSystem) {
    std::vector<std::vector<double>> diag{ { 2, 0, 0 }, { 0, 4, 0 }, { 0, 0, 8 } };
    dense_operator op{ diag };
    const std::vector<double> b{ 2.0, 8.0, 32.0 };
    std::vector<double> x(3, 0.0);
    const cg_result result = conjugate_gradients(op, b, x, solver_control{ .epsilon = 1e-12 });
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
    EXPECT_NEAR(x[2], 4.0, 1e-10);
}

TEST(ConjugateGradients, ZeroRhsYieldsZeroSolution) {
    dense_operator op = random_spd(8, 1);
    const std::vector<double> b(8, 0.0);
    std::vector<double> x(8, 5.0);  // non-zero initial guess must be reset
    const cg_result result = conjugate_gradients(op, b, x, solver_control{});
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0U);
    for (const double v : x) {
        EXPECT_DOUBLE_EQ(v, 0.0);
    }
}

TEST(ConjugateGradients, WarmStartFromExactSolutionConvergesImmediately) {
    dense_operator op = random_spd(6, 2);
    std::vector<double> x_true(6, 1.0);
    std::vector<double> b(6);
    op.apply(x_true, b);
    std::vector<double> x = x_true;
    const cg_result result = conjugate_gradients(op, b, x, solver_control{ .epsilon = 1e-10 });
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0U);
}

TEST(ConjugateGradients, IterationBudgetRespected) {
    dense_operator op = random_spd(32, 3, 0.01);  // poorly conditioned
    const std::vector<double> b(32, 1.0);
    std::vector<double> x(32, 0.0);
    solver_control ctrl;
    ctrl.epsilon = 1e-14;
    ctrl.max_iterations = 3;
    const cg_result result = conjugate_gradients(op, b, x, ctrl);
    EXPECT_EQ(result.iterations, 3U);
    EXPECT_FALSE(result.converged);
}

TEST(ConjugateGradients, StrictModeThrowsWhenBudgetExhausted) {
    dense_operator op = random_spd(32, 3, 0.01);
    const std::vector<double> b(32, 1.0);
    std::vector<double> x(32, 0.0);
    solver_control ctrl;
    ctrl.epsilon = 1e-14;
    ctrl.max_iterations = 2;
    ctrl.strict = true;
    EXPECT_THROW((void) conjugate_gradients(op, b, x, ctrl), plssvm::solver_exception);
}

TEST(ConjugateGradients, ObserverSeesMonotoneIterationNumbers) {
    dense_operator op = random_spd(16, 4);
    const std::vector<double> b(16, 1.0);
    std::vector<double> x(16, 0.0);
    std::vector<std::size_t> seen;
    (void) conjugate_gradients<double>(op, b, x, solver_control{ .epsilon = 1e-10 },
                                       [&](const std::size_t it, const double) { seen.push_back(it); });
    ASSERT_FALSE(seen.empty());
    for (std::size_t i = 1; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], seen[i - 1] + 1);
    }
}

TEST(ConjugateGradients, InvalidEpsilonThrows) {
    dense_operator op = random_spd(4, 5);
    const std::vector<double> b(4, 1.0);
    std::vector<double> x(4, 0.0);
    EXPECT_THROW((void) conjugate_gradients(op, b, x, solver_control{ .epsilon = 0.0 }),
                 plssvm::invalid_parameter_exception);
    EXPECT_THROW((void) conjugate_gradients(op, b, x, solver_control{ .epsilon = 1.5 }),
                 plssvm::invalid_parameter_exception);
}

// --- property-based sweep over random SPD systems ---------------------------

class CgRandomSpd : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(CgRandomSpd, ReachesRequestedRelativeResidual) {
    const auto [n, seed] = GetParam();
    dense_operator op = random_spd(n, seed);
    auto engine = plssvm::detail::make_engine(seed + 1000);
    std::vector<double> b(n);
    for (double &v : b) {
        v = plssvm::detail::standard_normal<double>(engine);
    }
    std::vector<double> x(n, 0.0);
    // in exact arithmetic CG terminates within n iterations; floating point
    // rounding needs head-room on ill-conditioned random systems
    solver_control ctrl;
    ctrl.epsilon = 1e-10;
    ctrl.max_iterations = 20 * n;
    const cg_result result = conjugate_gradients(op, b, x, ctrl);
    ASSERT_TRUE(result.converged);

    // verify the *true* residual, not the recurrence value
    std::vector<double> ax(n);
    op.apply(x, ax);
    double r2 = 0.0;
    double b2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        r2 += (b[i] - ax[i]) * (b[i] - ax[i]);
        b2 += b[i] * b[i];
    }
    EXPECT_LE(std::sqrt(r2 / b2), 1e-9);  // small slack over the recurrence bound
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgRandomSpd,
                         ::testing::Combine(::testing::Values(2, 5, 16, 33, 64),
                                            ::testing::Values(7, 8, 9)));

TEST(ConjugateGradients, ResidualRefreshKeepsDriftBounded) {
    // force frequent exact-residual recomputation and compare to the default
    dense_operator op1 = random_spd(48, 11, 0.1);
    dense_operator op2 = random_spd(48, 11, 0.1);
    auto engine = plssvm::detail::make_engine(12);
    std::vector<double> b(48);
    for (double &v : b) {
        v = plssvm::detail::standard_normal<double>(engine);
    }
    std::vector<double> x1(48, 0.0);
    std::vector<double> x2(48, 0.0);
    solver_control frequent;
    frequent.epsilon = 1e-12;
    frequent.max_iterations = 2000;
    frequent.residual_refresh_interval = 2;
    (void) conjugate_gradients(op1, b, x1, frequent);
    solver_control standard;
    standard.epsilon = 1e-12;
    standard.max_iterations = 2000;
    (void) conjugate_gradients(op2, b, x2, standard);
    for (std::size_t i = 0; i < 48; ++i) {
        EXPECT_NEAR(x1[i], x2[i], 1e-7);
    }
}

TEST(CgBlas, DotAxpyXpay) {
    const std::vector<double> x{ 1.0, 2.0, 3.0 };
    std::vector<double> y{ 4.0, 5.0, 6.0 };
    EXPECT_DOUBLE_EQ(plssvm::solver::dot_product(x, y), 4.0 + 10.0 + 18.0);
    plssvm::solver::axpy(2.0, x, y);  // y += 2x => (6, 9, 12)
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[2], 12.0);
    plssvm::solver::xpay(x, 0.5, y);  // y = x + 0.5 y => (4, 6.5, 9)
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 6.5);
    EXPECT_DOUBLE_EQ(y[2], 9.0);
}

}  // namespace
