/**
 * @file
 * @brief Tests of the paper's future-work extensions: one-vs-all multi-class
 *        classification and LS-SVM regression (LS-SVR).
 */

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/core/metrics.hpp"
#include "plssvm/datagen/sat6.hpp"
#include "plssvm/detail/rng.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/ext/multiclass.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using plssvm::backend_type;
using plssvm::data_set;
using plssvm::parameter;

/// Three Gaussian blobs with labels 0 / 1 / 2.
[[nodiscard]] data_set<double> make_blobs(const std::size_t per_class, const std::uint64_t seed = 11) {
    auto engine = plssvm::detail::make_engine(seed);
    const double centers[3][2] = { { 4.0, 0.0 }, { -4.0, 4.0 }, { 0.0, -4.0 } };
    plssvm::aos_matrix<double> points{ 3 * per_class, 2 };
    std::vector<double> labels(3 * per_class);
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < per_class; ++i) {
            const std::size_t row = c * per_class + i;
            points(row, 0) = centers[c][0] + plssvm::detail::standard_normal<double>(engine);
            points(row, 1) = centers[c][1] + plssvm::detail::standard_normal<double>(engine);
            labels[row] = static_cast<double>(c);
        }
    }
    return data_set<double>{ std::move(points), std::move(labels) };
}

TEST(OneVsAll, ClassifiesThreeBlobs) {
    const auto data = make_blobs(60);
    plssvm::ext::one_vs_all<double> classifier{ backend_type::openmp, parameter{ plssvm::kernel_type::linear } };
    const auto model = classifier.fit(data, plssvm::solver_control{ .epsilon = 1e-8 });
    EXPECT_EQ(model.num_classes(), 3U);
    EXPECT_GE(classifier.score(model, data), 0.95);
}

TEST(OneVsAll, PredictionsAreValidClassLabels) {
    const auto data = make_blobs(40);
    plssvm::ext::one_vs_all<double> classifier{ backend_type::openmp, parameter{} };
    const auto model = classifier.fit(data);
    const auto predicted = classifier.predict(model, data);
    for (const double label : predicted) {
        EXPECT_TRUE(label == 0.0 || label == 1.0 || label == 2.0);
    }
}

TEST(OneVsAll, WorksWithDeviceBackend) {
    const auto data = make_blobs(40);
    plssvm::ext::one_vs_all<double> classifier{ backend_type::cuda, parameter{ plssvm::kernel_type::linear } };
    const auto model = classifier.fit(data, plssvm::solver_control{ .epsilon = 1e-8 });
    EXPECT_GE(classifier.score(model, data), 0.95);
}

TEST(OneVsAll, BinaryProblemMatchesBinaryClassifier) {
    // on a binary data set one-vs-all must be as good as the plain csvm
    const auto blobs = make_blobs(50);
    // restrict to classes 0 and 1
    std::vector<double> labels;
    std::vector<double> values;
    for (std::size_t i = 0; i < blobs.num_data_points(); ++i) {
        if (blobs.labels()[i] < 2.0) {
            labels.push_back(blobs.labels()[i]);
            values.push_back(blobs.points()(i, 0));
            values.push_back(blobs.points()(i, 1));
        }
    }
    plssvm::aos_matrix<double> points{ labels.size(), 2, std::move(values) };
    const data_set<double> data{ std::move(points), std::move(labels) };

    plssvm::ext::one_vs_all<double> ova{ backend_type::openmp, parameter{} };
    plssvm::backend::openmp::csvm<double> binary{ parameter{} };
    const auto ova_score = ova.score(ova.fit(data), data);
    const auto binary_score = binary.score(binary.fit(data), data);
    EXPECT_NEAR(ova_score, binary_score, 0.02);
}

TEST(OneVsAll, Sat6SixClassProblem) {
    plssvm::datagen::sat6_params gen;
    gen.num_images = 240;
    gen.image_size = 12;  // smaller images keep the test fast
    gen.binary_labels = false;
    gen.mixed_fraction = 0.0;
    const auto data = plssvm::datagen::make_sat6<double>(gen);

    parameter params{ plssvm::kernel_type::rbf };
    params.gamma = 1.0 / static_cast<double>(data.num_features());
    params.cost = 10.0;
    plssvm::ext::one_vs_all<double> classifier{ backend_type::openmp, params };
    const auto model = classifier.fit(data, plssvm::solver_control{ .epsilon = 1e-6 });
    EXPECT_EQ(model.num_classes(), 6U);
    EXPECT_GE(classifier.score(model, data), 0.9);
}

TEST(OneVsAll, UnlabeledDataThrows) {
    plssvm::aos_matrix<double> points{ 4, 2 };
    const data_set<double> data{ std::move(points) };
    plssvm::ext::one_vs_all<double> classifier{ backend_type::openmp, parameter{} };
    EXPECT_THROW((void) classifier.fit(data), plssvm::invalid_data_exception);
}

TEST(OneVsAll, SingleClassThrows) {
    plssvm::aos_matrix<double> points{ 4, 2 };
    const data_set<double> data{ std::move(points), std::vector<double>(4, 1.0) };
    plssvm::ext::one_vs_all<double> classifier{ backend_type::openmp, parameter{} };
    EXPECT_THROW((void) classifier.fit(data), plssvm::invalid_data_exception);
}

// ---- LS-SVR regression -------------------------------------------------------

TEST(LsSvr, FitsLinearFunction) {
    // y = 2 x0 - 3 x1 + 1
    auto engine = plssvm::detail::make_engine(21);
    plssvm::aos_matrix<double> points{ 100, 2 };
    std::vector<double> targets(100);
    for (std::size_t i = 0; i < 100; ++i) {
        points(i, 0) = plssvm::detail::standard_normal<double>(engine);
        points(i, 1) = plssvm::detail::standard_normal<double>(engine);
        targets[i] = 2.0 * points(i, 0) - 3.0 * points(i, 1) + 1.0;
    }
    const data_set<double> data{ std::move(points), std::move(targets) };

    parameter params{ plssvm::kernel_type::linear };
    params.cost = 1000.0;  // light regularisation for a near-exact fit
    plssvm::backend::openmp::csvm<double> svm{ params };
    const auto model = svm.fit_regression(data, plssvm::solver_control{ .epsilon = 1e-10 });

    const auto predicted = svm.predict_values(model, data);
    EXPECT_GT(plssvm::metrics::r2_score(predicted, data.labels()), 0.999);
}

TEST(LsSvr, FitsNonlinearFunctionWithRbf) {
    // y = sin(2 x)
    auto engine = plssvm::detail::make_engine(22);
    plssvm::aos_matrix<double> points{ 150, 1 };
    std::vector<double> targets(150);
    for (std::size_t i = 0; i < 150; ++i) {
        points(i, 0) = plssvm::detail::uniform_real<double>(engine, -2.0, 2.0);
        targets[i] = std::sin(2.0 * points(i, 0));
    }
    const data_set<double> data{ std::move(points), std::move(targets) };

    parameter params{ plssvm::kernel_type::rbf };
    params.gamma = 2.0;
    params.cost = 100.0;
    plssvm::backend::openmp::csvm<double> svm{ params };
    const auto model = svm.fit_regression(data, plssvm::solver_control{ .epsilon = 1e-10 });

    const auto predicted = svm.predict_values(model, data);
    EXPECT_GT(plssvm::metrics::r2_score(predicted, data.labels()), 0.99);
    EXPECT_LT(plssvm::metrics::mean_squared_error(predicted, data.labels()), 1e-3);
}

TEST(LsSvr, DeviceBackendMatchesHost) {
    auto engine = plssvm::detail::make_engine(23);
    plssvm::aos_matrix<double> points{ 80, 3 };
    std::vector<double> targets(80);
    for (std::size_t i = 0; i < 80; ++i) {
        for (std::size_t f = 0; f < 3; ++f) {
            points(i, f) = plssvm::detail::standard_normal<double>(engine);
        }
        targets[i] = points(i, 0) + 0.5 * points(i, 1) * points(i, 1);
    }
    const data_set<double> data{ std::move(points), std::move(targets) };

    parameter params{ plssvm::kernel_type::rbf };
    params.gamma = 0.5;
    params.cost = 10.0;
    plssvm::backend::openmp::csvm<double> host{ params };
    plssvm::backend::cuda::csvm<double> device{ params };
    const auto host_model = host.fit_regression(data, plssvm::solver_control{ .epsilon = 1e-12 });
    const auto device_model = device.fit_regression(data, plssvm::solver_control{ .epsilon = 1e-12 });
    for (std::size_t i = 0; i < host_model.alpha().size(); ++i) {
        EXPECT_NEAR(host_model.alpha()[i], device_model.alpha()[i], 1e-6);
    }
}

TEST(LsSvr, RegressionOnUnlabeledDataThrows) {
    plssvm::aos_matrix<double> points{ 4, 2 };
    const data_set<double> data{ std::move(points) };
    plssvm::backend::openmp::csvm<double> svm{ parameter{} };
    EXPECT_THROW((void) svm.fit_regression(data), plssvm::invalid_data_exception);
}

}  // namespace
