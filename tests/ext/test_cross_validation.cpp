/**
 * @file
 * @brief Tests of k-fold cross-validation.
 */

#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/ext/cross_validation.hpp"

#include <gtest/gtest.h>

namespace {

using plssvm::backend_type;
using plssvm::parameter;

[[nodiscard]] plssvm::data_set<double> make_data(const std::size_t points = 200) {
    plssvm::datagen::classification_params gen;
    gen.num_points = points;
    gen.num_features = 8;
    gen.class_sep = 3.0;
    gen.flip_y = 0.0;
    gen.seed = 19;
    return plssvm::datagen::make_classification<double>(gen);
}

TEST(CrossValidation, FiveFoldOnSeparableData) {
    const auto data = make_data();
    const auto result = plssvm::ext::cross_validate(backend_type::openmp, parameter{}, data, 5);
    EXPECT_EQ(result.fold_accuracies.size(), 5U);
    EXPECT_GE(result.mean_accuracy, 0.9);
    for (const double accuracy : result.fold_accuracies) {
        EXPECT_GE(accuracy, 0.0);
        EXPECT_LE(accuracy, 1.0);
    }
    EXPECT_GE(result.stddev_accuracy, 0.0);
}

TEST(CrossValidation, DeterministicForFixedSeed) {
    const auto data = make_data(120);
    const auto a = plssvm::ext::cross_validate(backend_type::openmp, parameter{}, data, 4, {}, 7);
    const auto b = plssvm::ext::cross_validate(backend_type::openmp, parameter{}, data, 4, {}, 7);
    EXPECT_EQ(a.fold_accuracies, b.fold_accuracies);
}

TEST(CrossValidation, DifferentSeedsShuffleDifferently) {
    // mean accuracies may coincide, but identical *per-fold* vectors for all
    // three seeds would indicate the shuffle is ignored
    const auto data = make_data(150);
    plssvm::datagen::classification_params gen;  // a harder data set separates folds
    gen.num_points = 150;
    gen.num_features = 8;
    gen.class_sep = 0.8;
    gen.seed = 23;
    const auto hard = plssvm::datagen::make_classification<double>(gen);
    const auto a = plssvm::ext::cross_validate(backend_type::openmp, parameter{}, hard, 5, {}, 1);
    const auto b = plssvm::ext::cross_validate(backend_type::openmp, parameter{}, hard, 5, {}, 2);
    const auto c = plssvm::ext::cross_validate(backend_type::openmp, parameter{}, hard, 5, {}, 3);
    EXPECT_FALSE(a.fold_accuracies == b.fold_accuracies && b.fold_accuracies == c.fold_accuracies);
}

TEST(CrossValidation, WorksWithDeviceBackend) {
    const auto data = make_data(120);
    const auto result = plssvm::ext::cross_validate(backend_type::cuda, parameter{}, data, 3);
    EXPECT_EQ(result.fold_accuracies.size(), 3U);
    EXPECT_GE(result.mean_accuracy, 0.9);
}

TEST(CrossValidation, InvalidFoldCountThrows) {
    const auto data = make_data(50);
    EXPECT_THROW((void) plssvm::ext::cross_validate(backend_type::openmp, parameter{}, data, 1),
                 plssvm::invalid_parameter_exception);
    EXPECT_THROW((void) plssvm::ext::cross_validate(backend_type::openmp, parameter{}, data, 51),
                 plssvm::invalid_parameter_exception);
}

TEST(CrossValidation, UnlabeledDataThrows) {
    plssvm::aos_matrix<double> points{ 10, 2 };
    const plssvm::data_set<double> data{ std::move(points) };
    EXPECT_THROW((void) plssvm::ext::cross_validate(backend_type::openmp, parameter{}, data, 2),
                 plssvm::invalid_data_exception);
}

}  // namespace
