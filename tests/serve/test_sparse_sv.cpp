/**
 * @file
 * @brief Tests of the sparse compiled form of the support-vector panel:
 *        density-threshold form selection (including the exact boundary),
 *        nnz-aware dispatcher path choice surfacing in `serve_stats`,
 *        zero-downtime reloads that move a model between the dense and
 *        sparse forms under load, and registry-level form switches.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/serve/compiled_model.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/model_registry.hpp"
#include "plssvm/serve/predict_dispatcher.hpp"
#include "plssvm/serve/serve_stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::csr_matrix;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::compile_options;
using plssvm::serve::compiled_model;
using plssvm::serve::dispatch_params;
using plssvm::serve::engine_config;
using plssvm::serve::inference_engine;
using plssvm::serve::model_registry;
using plssvm::serve::predict_dispatcher;
using plssvm::serve::predict_path;
using plssvm::serve::predict_shape;
namespace test = plssvm::test;
using namespace std::chrono_literals;

/// Deterministic host profile so path-choice assertions never depend on the
/// machine-measured calibration numbers.
[[nodiscard]] dispatch_params injected_dispatch() {
    dispatch_params params;
    params.host.effective_gflops = 4.0;
    params.host.effective_bandwidth_gbs = 10.0;
    params.host.num_threads = 1;
    params.calibrate_host = false;
    return params;
}

// --- compile-form selection --------------------------------------------------

TEST(SparseSV, FormSelectionFollowsTheDensityThreshold) {
    // 37 x 16 panel with exactly 10% stored entries (before edge injection
    // shrinks it a little further)
    const model<double> sparse_model = test::random_sparse_model(kernel_type::rbf, 37, 16, 0.1, 3);
    const compiled_model<double> auto_form{ sparse_model };
    EXPECT_TRUE(auto_form.sparse_sv()) << "density " << auto_form.sv_density() << " is below the default threshold";
    EXPECT_LT(auto_form.sv_density(), compile_options{}.sparse_density_threshold);
    EXPECT_GT(auto_form.sv_nnz(), 0u);

    const model<double> dense_model = test::random_model(kernel_type::rbf, 37, 16, 3);
    const compiled_model<double> dense_form{ dense_model };
    EXPECT_FALSE(dense_form.sparse_sv());
    EXPECT_DOUBLE_EQ(dense_form.sv_density(), 1.0);
    EXPECT_EQ(dense_form.sv_nnz(), 37u * 16u);
}

TEST(SparseSV, DensityExactlyAtTheThresholdCompilesDense) {
    // a panel with NO injected edge cases so the density is exact: 8 x 16
    // cells, 32 stored entries -> density 0.25 == the default threshold
    plssvm::parameter params;
    params.kernel = kernel_type::rbf;
    params.gamma = 0.35;
    aos_matrix<double> sv = test::sparse_random_matrix(8, 16, 0.25, 5);
    const model<double> m{ params, std::move(sv), std::vector<double>(8, 0.5), 0.1, 1.0, -1.0 };
    const compiled_model<double> at_threshold{ m };
    ASSERT_DOUBLE_EQ(at_threshold.sv_density(), 0.25);
    EXPECT_FALSE(at_threshold.sparse_sv()) << "the threshold is strict: density == threshold stays dense";

    // nudging the threshold epsilon above the density flips the form
    const compiled_model<double> just_below{ m, compile_options{ .sparse_density_threshold = 0.25 + 1e-9 } };
    EXPECT_TRUE(just_below.sparse_sv());
}

TEST(SparseSV, ThresholdZeroDisablesAndLargeForcesTheSparseForm) {
    const model<double> m = test::random_sparse_model(kernel_type::polynomial, 21, 13, 0.05, 7);
    EXPECT_FALSE((compiled_model<double>{ m, compile_options{ .sparse_density_threshold = 0.0 } }.sparse_sv()));
    EXPECT_TRUE((compiled_model<double>{ m, compile_options{ .sparse_density_threshold = 1.5 } }.sparse_sv()));
    // an empty model never compiles sparse, whatever the threshold
    EXPECT_FALSE((compiled_model<double>{}.sparse_sv()));
}

TEST(SparseSV, SparseAndDenseFormsAgreeForAllKernels) {
    for (const kernel_type kernel : test::all_kernel_types()) {
        const model<double> m = test::random_sparse_model(kernel, 29, 17, 0.1, 13);
        const compiled_model<double> dense_form{ m, compile_options{ .sparse_density_threshold = 0.0 } };
        const compiled_model<double> sparse_form{ m, compile_options{ .sparse_density_threshold = 1.5 } };
        aos_matrix<double> queries = test::sparse_random_matrix(40, 17, 0.1, 14);
        test::inject_sparse_edge_cases(queries);

        const std::vector<double> expected = dense_form.decision_values(queries);
        const std::vector<double> via_sparse = sparse_form.decision_values(queries);
        const std::vector<double> via_csr = sparse_form.decision_values(csr_matrix<double>{ queries });
        for (std::size_t p = 0; p < expected.size(); ++p) {
            EXPECT_NEAR(via_sparse[p], expected[p], 1e-10 * (1.0 + std::abs(expected[p])))
                << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
            EXPECT_NEAR(via_csr[p], expected[p], 1e-10 * (1.0 + std::abs(expected[p])))
                << "kernel=" << plssvm::kernel_type_to_string(kernel) << " (csr) point=" << p;
        }
    }
}

// --- nnz-aware dispatcher ----------------------------------------------------

TEST(SparseSV, DispatcherRoutesSparseModelsToTheSparsePath) {
    const predict_dispatcher dispatcher{ injected_dispatch() };
    // 1% dense panel: the sparse sweep does ~1% of the flops and traffic
    const predict_shape sparse_model_shape{ 256, 512, 1024, kernel_type::rbf, /*sv_nnz=*/5120 };
    EXPECT_EQ(dispatcher.choose(sparse_model_shape), predict_path::host_sparse);
    EXPECT_LT(dispatcher.host_sparse_seconds(sparse_model_shape),
              dispatcher.host_seconds(256, 512, 1024, kernel_type::rbf));

    // no sparse compiled form -> the sparse path must not be offered
    const predict_shape dense_model_shape{ 256, 512, 1024, kernel_type::rbf, /*sv_nnz=*/0 };
    EXPECT_EQ(dispatcher.choose(dense_model_shape), predict_path::host_blocked);

    // tiny batches stay on the reference path regardless of sparsity
    predict_shape tiny = sparse_model_shape;
    tiny.batch_size = 2;
    EXPECT_EQ(dispatcher.choose(tiny), predict_path::reference);
}

TEST(SparseSV, DispatcherRoutesSparseLinearQueriesBySparsity) {
    const predict_dispatcher dispatcher{ injected_dispatch() };
    // CSR linear queries at 1% density: O(nnz) sweep wins
    const predict_shape sparse_queries{ 256, 512, 1024, kernel_type::linear, 0, /*sparse_query=*/true, /*query_nnz=*/2560 };
    EXPECT_EQ(dispatcher.choose(sparse_queries), predict_path::host_sparse);
    // dense linear batches never route sparse: the GEMV against w is already
    // independent of the SV panel
    const predict_shape dense_queries{ 256, 512, 1024, kernel_type::linear, /*sv_nnz=*/5120 };
    EXPECT_EQ(dispatcher.choose(dense_queries), predict_path::host_blocked);
}

TEST(SparseSV, CsrQueriesNeverRouteToTheDevice) {
    dispatch_params params = injected_dispatch();
    params.allow_device = true;
    params.host.effective_gflops = 0.001;  // pessimal host: the device would win any dense contest
    const predict_dispatcher dispatcher{ params };
    const predict_shape csr_shape{ 1024, 512, 64, kernel_type::rbf, /*sv_nnz=*/512 * 64, /*sparse_query=*/true, /*query_nnz=*/1024 * 64 };
    const predict_path path = dispatcher.choose(csr_shape);
    EXPECT_NE(path, predict_path::device);
}

TEST(SparseSV, EngineRecordsSparsePathInServeStats) {
    engine_config config;
    config.num_threads = 2;
    config.dispatch = injected_dispatch();
    // sparse rbf model, large dense batch -> host_sparse
    inference_engine<double> engine{ test::random_sparse_model(kernel_type::rbf, 64, 48, 0.05, 17), config };
    ASSERT_TRUE(engine.snapshot()->compiled.sparse_sv());

    const aos_matrix<double> big = test::sparse_random_matrix(256, 48, 0.05, 18);
    const std::vector<double> via_engine = engine.decision_values(big);
    // tiny batches still route to the reference sweep
    (void) engine.decision_values(test::sparse_random_matrix(2, 48, 0.05, 19));

    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.host_sparse_batches, 1u);
    EXPECT_EQ(stats.reference_batches, 1u);
    EXPECT_EQ(stats.host_blocked_batches, 0u);

    // and the sparse path agrees with the reference evaluation
    std::vector<double> reference(big.num_rows());
    engine.snapshot()->compiled.decision_values_reference_into(big, 0, big.num_rows(), reference.data());
    for (std::size_t p = 0; p < reference.size(); ++p) {
        EXPECT_NEAR(via_engine[p], reference[p], 1e-10 * (1.0 + std::abs(reference[p]))) << "point=" << p;
    }

    plssvm::detail::tracker tracker;
    engine.report_to(tracker, "serve");
    EXPECT_DOUBLE_EQ(tracker.get_metric("serve/host_sparse_batches"), 1.0);
}

TEST(SparseSV, EngineRecordsSparsePathForCsrLinearBatches) {
    engine_config config;
    config.num_threads = 2;
    config.dispatch = injected_dispatch();
    inference_engine<double> engine{ test::random_sparse_model(kernel_type::linear, 32, 64, 0.05, 23), config };

    const aos_matrix<double> queries = test::sparse_random_matrix(64, 64, 0.05, 24);
    (void) engine.decision_values(csr_matrix<double>{ queries });
    EXPECT_EQ(engine.stats().host_sparse_batches, 1u);
}

TEST(SparseSV, EngineKeepsDenseModelsOnTheBlockedPath) {
    engine_config config;
    config.num_threads = 2;
    config.dispatch = injected_dispatch();
    inference_engine<double> engine{ test::random_model(kernel_type::rbf, 37, 11), config };
    ASSERT_FALSE(engine.snapshot()->compiled.sparse_sv());
    (void) engine.decision_values(test::random_matrix(256, 11, 25));
    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.host_blocked_batches, 1u);
    EXPECT_EQ(stats.host_sparse_batches, 0u);
}

// --- zero-downtime dense <-> sparse form switches ----------------------------

TEST(SparseSV, ReloadMovesAModelBetweenDenseAndSparseForms) {
    engine_config config;
    config.num_threads = 2;
    config.dispatch = injected_dispatch();
    inference_engine<double> engine{ test::random_model(kernel_type::rbf, 37, 16, 41), config };
    EXPECT_FALSE(engine.snapshot()->compiled.sparse_sv());

    const model<double> sparse_replacement = test::random_sparse_model(kernel_type::rbf, 21, 16, 0.08, 43);
    engine.reload(sparse_replacement);
    EXPECT_EQ(engine.snapshot_version(), 2u);
    EXPECT_TRUE(engine.snapshot()->compiled.sparse_sv()) << "the engine's compile options must apply on reload";

    // back to a dense replacement -> dense form again
    engine.reload(test::random_model(kernel_type::rbf, 19, 16, 44));
    EXPECT_EQ(engine.snapshot_version(), 3u);
    EXPECT_FALSE(engine.snapshot()->compiled.sparse_sv());
}

TEST(SparseSV, RegistryReloadSwitchesFormsBehindAStableEnginePointer) {
    model_registry<double> registry{ 4 };
    const model<double> dense_v1 = test::random_model(kernel_type::rbf, 37, 16, 51);
    const model<double> sparse_v2 = test::random_sparse_model(kernel_type::rbf, 29, 16, 0.06, 52);
    auto engine = registry.load("tenant", dense_v1);
    EXPECT_FALSE(engine->snapshot()->compiled.sparse_sv());

    registry.reload("tenant", sparse_v2).get();
    EXPECT_EQ(registry.find("tenant"), engine) << "form switch must keep the resident engine";
    EXPECT_TRUE(engine->snapshot()->compiled.sparse_sv());

    const aos_matrix<double> points = test::sparse_random_matrix(16, 16, 0.06, 53);
    const std::vector<double> expected = compiled_model<double>{ sparse_v2 }.decision_values(points);
    const std::vector<double> actual = engine->decision_values(points);
    for (std::size_t p = 0; p < expected.size(); ++p) {
        EXPECT_NEAR(actual[p], expected[p], 1e-10 * (1.0 + std::abs(expected[p]))) << "point=" << p;
    }
}

// The reload-sparse stress scenario: producers hammer the engine with dense
// AND CSR batches while a reloader flips the SAME model between its dense and
// sparse compiled forms (install with opposite thresholds). Every response
// must match the model's values at all times — a form switch must be
// numerically invisible (within cross-form tolerance) and lose nothing.
TEST(SparseSV, ReloadFormFlipStressKeepsEveryResponseConsistent) {
    constexpr std::size_t dim = 24;
    constexpr std::size_t num_sv = 32;
    constexpr std::size_t batch_rows = 32;  // >= min_blocked_batch -> pooled paths
    constexpr std::size_t num_producers = 3;
    constexpr std::size_t iterations_per_producer = 40;
    constexpr std::size_t form_flips = 16;

    const model<double> m = test::random_sparse_model(kernel_type::rbf, num_sv, dim, 0.08, 61);
    aos_matrix<double> queries = test::sparse_random_matrix(64, dim, 0.08, 62);
    test::inject_sparse_edge_cases(queries);
    const csr_matrix<double> csr_queries{ queries };

    // ground truth from the reference sweep (form-independent baseline)
    const compiled_model<double> baseline{ m, compile_options{ .sparse_density_threshold = 0.0 } };
    std::vector<double> truth(queries.num_rows());
    baseline.decision_values_reference_into(queries, 0, queries.num_rows(), truth.data());
    const auto matches = [](const double a, const double b) {
        return std::abs(a - b) <= 1e-10 * (1.0 + std::abs(b));
    };

    engine_config config;
    config.num_threads = 2;
    config.dispatch = injected_dispatch();
    inference_engine<double> engine{ m, config };

    std::atomic<std::size_t> mismatches{ 0 };
    std::atomic<bool> start{ false };
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < num_producers; ++t) {
        threads.emplace_back([&, t]() {
            while (!start.load()) {
                std::this_thread::yield();
            }
            for (std::size_t it = 0; it < iterations_per_producer; ++it) {
                const std::size_t offset = (t * 11 + it * 5) % (queries.num_rows() - batch_rows);
                // dense batch through the dispatched path
                aos_matrix<double> batch{ batch_rows, dim };
                for (std::size_t r = 0; r < batch_rows; ++r) {
                    std::copy(queries.row_data(offset + r), queries.row_data(offset + r) + dim, batch.row_data(r));
                }
                const std::vector<double> dense_values = engine.decision_values(batch);
                // CSR batch through the sparse-query path
                const std::vector<double> csr_values = engine.decision_values(csr_queries);
                for (std::size_t r = 0; r < batch_rows; ++r) {
                    if (!matches(dense_values[r], truth[offset + r])) {
                        ++mismatches;
                    }
                }
                for (std::size_t r = 0; r < csr_values.size(); ++r) {
                    if (!matches(csr_values[r], truth[r])) {
                        ++mismatches;
                    }
                }
            }
        });
    }
    threads.emplace_back([&]() {
        while (!start.load()) {
            std::this_thread::yield();
        }
        for (std::size_t flip = 0; flip < form_flips; ++flip) {
            const double threshold = flip % 2 == 0 ? 1.5 : 0.0;  // sparse, dense, sparse, ...
            engine.install(compiled_model<double>{ m, compile_options{ .sparse_density_threshold = threshold } });
        }
    });
    start.store(true);
    for (std::thread &thread : threads) {
        thread.join();
    }

    EXPECT_EQ(mismatches.load(), 0u) << "a dense<->sparse form flip must be numerically invisible";
    EXPECT_EQ(engine.stats().reloads, form_flips);
    EXPECT_EQ(engine.snapshot_version(), 1u + form_flips);
    // flips alternate sparse, dense, ...: the final (even-count) flip used
    // threshold 0.0, so the engine ends on the dense form
    EXPECT_FALSE(engine.snapshot()->compiled.sparse_sv());
}

}  // namespace
