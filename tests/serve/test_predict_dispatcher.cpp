/**
 * @file
 * @brief Tests of the cost-model-driven `serve::predict_dispatcher`: path
 *        choice as a function of batch size under injected cost-model
 *        parameters, and the path counters surfacing in `serve_stats`.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/predict_dispatcher.hpp"
#include "plssvm/serve/serve_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::dispatch_params;
using plssvm::serve::engine_config;
using plssvm::serve::inference_engine;
using plssvm::serve::predict_dispatcher;
using plssvm::serve::predict_path;
namespace test = plssvm::test;

/// Injected parameters with a slow host and a fast, low-overhead device:
/// the crossover to the device lands between batch = 1 and batch = 1024.
[[nodiscard]] dispatch_params device_favouring_params() {
    dispatch_params params;
    params.min_blocked_batch = 8;
    params.allow_device = true;
    params.host.effective_gflops = 0.5;  // deliberately pessimistic host
    params.host.num_threads = 1;
    return params;
}

/// Injected parameters whose device never pays off: transfers are charged at
/// a prohibitive per-batch latency.
[[nodiscard]] dispatch_params host_favouring_params() {
    dispatch_params params;
    params.min_blocked_batch = 8;
    params.allow_device = true;
    params.host.effective_gflops = 1e6;  // absurdly fast host
    params.profile.transfer_latency_s = 10.0;
    return params;
}

TEST(PredictDispatcher, TinyBatchesTakeTheReferencePath) {
    const predict_dispatcher dispatcher{ device_favouring_params() };
    EXPECT_EQ(dispatcher.choose(1, 512, 64, kernel_type::rbf), predict_path::reference);
    EXPECT_EQ(dispatcher.choose(7, 512, 64, kernel_type::rbf), predict_path::reference);
    EXPECT_EQ(dispatcher.choose(0, 512, 64, kernel_type::rbf), predict_path::reference);
}

TEST(PredictDispatcher, PicksDifferentPathsForBatch1VsBatch1024) {
    // the issue's acceptance scenario, with injected cost-model parameters
    const predict_dispatcher dispatcher{ device_favouring_params() };
    const predict_path small = dispatcher.choose(1, 512, 64, kernel_type::rbf);
    const predict_path large = dispatcher.choose(1024, 512, 64, kernel_type::rbf);
    EXPECT_EQ(small, predict_path::reference);
    EXPECT_EQ(large, predict_path::device);
    EXPECT_NE(small, large);
}

TEST(PredictDispatcher, DeviceDisabledFallsBackToBlockedHost) {
    dispatch_params params = device_favouring_params();
    params.allow_device = false;
    const predict_dispatcher dispatcher{ params };
    EXPECT_EQ(dispatcher.choose(1024, 512, 64, kernel_type::rbf), predict_path::host_blocked);
}

TEST(PredictDispatcher, ProhibitiveTransferCostKeepsLargeBatchesOnTheHost) {
    const predict_dispatcher dispatcher{ host_favouring_params() };
    EXPECT_EQ(dispatcher.choose(1024, 512, 64, kernel_type::rbf), predict_path::host_blocked);
}

TEST(PredictDispatcher, CostEstimatesScaleWithBatchShape) {
    const predict_dispatcher dispatcher{ device_favouring_params() };
    // more points, SVs, or features -> strictly more estimated host time
    const double base = dispatcher.host_seconds(256, 512, 64, kernel_type::rbf);
    EXPECT_GT(dispatcher.host_seconds(512, 512, 64, kernel_type::rbf), base);
    EXPECT_GT(dispatcher.host_seconds(256, 1024, 64, kernel_type::rbf), base);
    EXPECT_GT(dispatcher.host_seconds(256, 512, 128, kernel_type::rbf), base);
    // the device estimate includes a fixed per-batch overhead: it must
    // exceed the pure roofline scaling at batch 1
    EXPECT_GT(dispatcher.device_seconds(1, 512, 64, kernel_type::rbf), 0.0);
}

TEST(PredictDispatcher, EngineRecordsChosenPathInServeStats) {
    const model<double> m = test::random_model(kernel_type::rbf, 37, 11);
    engine_config config;
    config.num_threads = 2;
    config.dispatch = device_favouring_params();
    inference_engine<double> engine{ m, config };

    // batch 1 -> reference path
    (void) engine.decision_values(test::random_matrix(1, 11, 3));
    // batch 1024 -> device path (injected params make the device win)
    const aos_matrix<double> big = test::random_matrix(1024, 11, 4);
    const std::vector<double> via_engine = engine.decision_values(big);

    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.reference_batches, 1u);
    EXPECT_EQ(stats.device_batches, 1u);
    EXPECT_EQ(stats.host_blocked_batches, 0u);
    EXPECT_EQ(stats.total_batches, 2u);

    // the device path must agree with the host paths within tolerance
    const std::vector<double> expected = engine.snapshot()->compiled.decision_values(big);
    for (std::size_t p = 0; p < expected.size(); ++p) {
        EXPECT_NEAR(via_engine[p], expected[p], 1e-9 * (1.0 + std::abs(expected[p])));
    }
}

TEST(PredictDispatcher, DefaultEngineUsesReferenceForTinyAndBlockedForLargeBatches) {
    // without injected parameters: tiny batches -> reference, big -> blocked
    inference_engine<double> engine{ test::random_model(kernel_type::rbf, 37, 11) };
    (void) engine.decision_values(test::random_matrix(2, 11, 5));
    (void) engine.decision_values(test::random_matrix(256, 11, 6));
    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.reference_batches, 1u);
    EXPECT_EQ(stats.host_blocked_batches, 1u);
    EXPECT_EQ(stats.device_batches, 0u);
}

TEST(PredictDispatcher, PathCountersReachTheTracker) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear, 37, 11) };
    (void) engine.decision_values(test::random_matrix(64, 11, 7));
    plssvm::detail::tracker tracker;
    engine.report_to(tracker, "serve");
    EXPECT_DOUBLE_EQ(tracker.get_metric("serve/host_blocked_batches"), 1.0);
    EXPECT_DOUBLE_EQ(tracker.get_metric("serve/reference_batches"), 0.0);
    EXPECT_DOUBLE_EQ(tracker.get_metric("serve/device_batches"), 0.0);
}

}  // namespace
