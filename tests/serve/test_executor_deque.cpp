/**
 * @file
 * @brief Stress tests for the Chase–Lev work-stealing deque underneath the
 *        serving executor: owner push/pop vs N concurrent thieves, index
 *        wraparound at tiny capacities (the ABA-prone regime), and ring
 *        growth racing in-flight steals.
 *
 * Every test checks the one invariant that matters for a work queue feeding
 * promises: each pushed element is consumed EXACTLY once — no element lost
 * (a dropped batch = a hung future) and none duplicated (a double-run task =
 * a double-settled promise). The suites run under the TSan CI job via the
 * `executor` ctest label, which is what actually validates the memory
 * orders; the assertions here validate the algorithm.
 */

#include "plssvm/serve/executor.hpp"
#include "plssvm/serve/work_stealing_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

namespace {

using plssvm::serve::detail::chase_lev_deque;

// value type: encode (producer-visible) payload ids as pointers-sized ints
using payload = std::size_t;

TEST(ExecutorDeque, OwnerPushPopIsLifo) {
    chase_lev_deque<payload> deque{ 8 };
    EXPECT_EQ(deque.size_estimate(), 0u);
    EXPECT_EQ(deque.pop(), std::nullopt);
    for (payload v = 1; v <= 5; ++v) {
        deque.push(v);
    }
    EXPECT_EQ(deque.size_estimate(), 5u);
    for (payload v = 5; v >= 1; --v) {
        const std::optional<payload> got = deque.pop();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, v);
    }
    EXPECT_EQ(deque.pop(), std::nullopt);
    EXPECT_EQ(deque.size_estimate(), 0u);
}

TEST(ExecutorDeque, StealTakesTheOldestElement) {
    chase_lev_deque<payload> deque{ 8 };
    deque.push(11);
    deque.push(22);
    deque.push(33);
    EXPECT_EQ(deque.steal(), std::optional<payload>{ 11 });  // FIFO end
    EXPECT_EQ(deque.pop(), std::optional<payload>{ 33 });    // LIFO end
    EXPECT_EQ(deque.steal(), std::optional<payload>{ 22 });
    EXPECT_EQ(deque.steal(), std::nullopt);
    EXPECT_EQ(deque.pop(), std::nullopt);
}

TEST(ExecutorDeque, GrowsBeyondInitialCapacityPreservingEveryElement) {
    chase_lev_deque<payload> deque{ 2 };
    const std::size_t initial_capacity = deque.capacity();
    constexpr std::size_t count = 1000;
    for (payload v = 0; v < count; ++v) {
        deque.push(v);
    }
    EXPECT_GT(deque.capacity(), initial_capacity);
    EXPECT_EQ(deque.size_estimate(), count);
    std::vector<bool> seen(count, false);
    // drain from both ends
    for (std::size_t i = 0; i < count; ++i) {
        const std::optional<payload> got = (i % 2 == 0) ? deque.pop() : deque.steal();
        ASSERT_TRUE(got.has_value());
        ASSERT_LT(*got, count);
        EXPECT_FALSE(seen[*got]) << "element " << *got << " consumed twice";
        seen[*got] = true;
    }
    EXPECT_EQ(deque.pop(), std::nullopt);
}

/// Owner pushes and pops while N thieves steal: every element consumed
/// exactly once, across repeated rounds.
TEST(ExecutorDeque, OwnerVersusManyThievesConsumesEachElementExactlyOnce) {
    constexpr std::size_t num_thieves = 4;
    constexpr std::size_t elements = 20000;
    chase_lev_deque<payload> deque{ 16 };
    std::vector<std::atomic<std::uint32_t>> consumed(elements);
    std::atomic<std::size_t> total_consumed{ 0 };
    std::atomic<bool> done_pushing{ false };

    std::vector<std::thread> thieves;
    thieves.reserve(num_thieves);
    for (std::size_t t = 0; t < num_thieves; ++t) {
        thieves.emplace_back([&]() {
            while (!done_pushing.load(std::memory_order_acquire) || deque.size_estimate() > 0) {
                if (const std::optional<payload> got = deque.steal()) {
                    consumed[*got].fetch_add(1, std::memory_order_relaxed);
                    total_consumed.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    // owner: push everything, interleaving pops (LIFO) like a real worker
    for (payload v = 0; v < elements; ++v) {
        deque.push(v);
        if (v % 3 == 0) {
            if (const std::optional<payload> got = deque.pop()) {
                consumed[*got].fetch_add(1, std::memory_order_relaxed);
                total_consumed.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    done_pushing.store(true, std::memory_order_release);
    // owner helps drain the rest
    while (total_consumed.load(std::memory_order_relaxed) < elements) {
        if (const std::optional<payload> got = deque.pop()) {
            consumed[*got].fetch_add(1, std::memory_order_relaxed);
            total_consumed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    for (std::thread &thief : thieves) {
        thief.join();
    }

    for (std::size_t v = 0; v < elements; ++v) {
        EXPECT_EQ(consumed[v].load(), 1u) << "element " << v << " consumed " << consumed[v].load() << " times";
    }
    EXPECT_EQ(total_consumed.load(), elements);
    EXPECT_EQ(deque.steal(), std::nullopt);
}

/// Tiny capacity forces the ring indices to wrap thousands of times while a
/// thief races the owner over the SAME slots — the classic ABA regime for
/// circular work-stealing deques. The exactly-once invariant must hold.
TEST(ExecutorDeque, WraparoundAtSmallCapacityKeepsExactlyOnceUnderRacingThief) {
    constexpr std::size_t elements = 50000;
    chase_lev_deque<payload> deque{ 2 };  // wraps every 2 pushes until growth
    std::vector<std::atomic<std::uint32_t>> consumed(elements);
    std::atomic<std::size_t> total_consumed{ 0 };
    std::atomic<bool> done{ false };

    std::thread thief{ [&]() {
        while (!done.load(std::memory_order_acquire) || deque.size_estimate() > 0) {
            if (const std::optional<payload> got = deque.steal()) {
                consumed[*got].fetch_add(1, std::memory_order_relaxed);
                total_consumed.fetch_add(1, std::memory_order_relaxed);
            }
        }
    } };

    // keep the deque shallow (pop almost every push) so top and bottom chase
    // each other around the tiny ring instead of triggering growth
    for (payload v = 0; v < elements; ++v) {
        deque.push(v);
        if (const std::optional<payload> got = deque.pop()) {
            consumed[*got].fetch_add(1, std::memory_order_relaxed);
            total_consumed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    done.store(true, std::memory_order_release);
    while (total_consumed.load(std::memory_order_relaxed) < elements) {
        if (const std::optional<payload> got = deque.pop()) {
            consumed[*got].fetch_add(1, std::memory_order_relaxed);
            total_consumed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    thief.join();

    for (std::size_t v = 0; v < elements; ++v) {
        ASSERT_EQ(consumed[v].load(), 1u) << "element " << v;
    }
}

/// Growth publishes a new ring while thieves hold references into the old
/// one: push bursts larger than the capacity force repeated growth mid-steal.
TEST(ExecutorDeque, GrowthUnderConcurrentStealLosesNothing) {
    constexpr std::size_t num_thieves = 3;
    constexpr std::size_t bursts = 50;
    constexpr std::size_t burst_size = 512;
    constexpr std::size_t elements = bursts * burst_size;
    chase_lev_deque<payload> deque{ 2 };
    std::vector<std::atomic<std::uint32_t>> consumed(elements);
    std::atomic<std::size_t> total_consumed{ 0 };
    std::atomic<bool> done{ false };

    std::vector<std::thread> thieves;
    for (std::size_t t = 0; t < num_thieves; ++t) {
        thieves.emplace_back([&]() {
            while (!done.load(std::memory_order_acquire) || deque.size_estimate() > 0) {
                if (const std::optional<payload> got = deque.steal()) {
                    consumed[*got].fetch_add(1, std::memory_order_relaxed);
                    total_consumed.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    for (std::size_t burst = 0; burst < bursts; ++burst) {
        // a whole burst without pops: guaranteed growth while thieves race
        for (std::size_t i = 0; i < burst_size; ++i) {
            deque.push(burst * burst_size + i);
        }
        // owner drains half of its own backlog LIFO
        for (std::size_t i = 0; i < burst_size / 2; ++i) {
            if (const std::optional<payload> got = deque.pop()) {
                consumed[*got].fetch_add(1, std::memory_order_relaxed);
                total_consumed.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    done.store(true, std::memory_order_release);
    while (total_consumed.load(std::memory_order_relaxed) < elements) {
        if (const std::optional<payload> got = deque.pop()) {
            consumed[*got].fetch_add(1, std::memory_order_relaxed);
            total_consumed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    for (std::thread &thief : thieves) {
        thief.join();
    }

    EXPECT_GE(deque.capacity(), burst_size);
    for (std::size_t v = 0; v < elements; ++v) {
        ASSERT_EQ(consumed[v].load(), 1u) << "element " << v;
    }
}

/// The cache-line layout the perf gate depends on is a compile-time contract.
TEST(ExecutorDeque, HotIndicesAreCacheLineSeparated) {
    EXPECT_EQ(alignof(chase_lev_deque<void *>), plssvm::serve::detail::cache_line_size);
    EXPECT_GE(sizeof(chase_lev_deque<void *>), 3 * plssvm::serve::detail::cache_line_size);
}

}  // namespace
