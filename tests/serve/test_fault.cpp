/**
 * @file
 * @brief Fault-tolerance tests (ctest label `fault`, all suites prefixed
 *        `Fault`): deterministic injector replay and rule targeting, circuit
 *        breaker lifecycle with a fake clock, fallback-ladder dispatch
 *        masking, batch bisection + quarantine through the engines, watchdog
 *        stall recovery and lane restart, typed shutdown settlement of queued
 *        promises, structured retry-after hints, and the health state
 *        machine (engine + registry aggregation + stats exposition).
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/backends/backend_types.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/detail/rng.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/ext/multiclass.hpp"
#include "plssvm/serve/fault.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/micro_batcher.hpp"
#include "plssvm/serve/model_registry.hpp"
#include "plssvm/serve/multiclass_engine.hpp"
#include "plssvm/serve/predict_dispatcher.hpp"
#include "plssvm/serve/qos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <exception>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::serve::engine_config;
using plssvm::serve::failure_kind;
using plssvm::serve::health_state;
using plssvm::serve::inference_engine;
using plssvm::serve::micro_batcher;
using plssvm::serve::multiclass_engine;
using plssvm::serve::predict_path;
using plssvm::serve::request_class;
using plssvm::serve::request_failed_exception;
using plssvm::serve::request_shed_exception;
using plssvm::serve::serve_stats;
namespace fault = plssvm::serve::fault;
namespace test = plssvm::test;
using namespace std::chrono_literals;

using time_point = std::chrono::steady_clock::time_point;

/// Fake-clock origin for the caller-clocked breaker tests.
[[nodiscard]] time_point fake_now(const std::chrono::microseconds offset = 0us) {
    return time_point{} + 1h + offset;
}

/// Poll until @p predicate holds or ~1 s elapses (post-batch bookkeeping like
/// the health refresh runs *after* the request futures settle).
template <typename Predicate>
[[nodiscard]] bool eventually(Predicate &&predicate) {
    for (int i = 0; i < 1000; ++i) {
        if (predicate()) {
            return true;
        }
        std::this_thread::sleep_for(1ms);
    }
    return predicate();
}

/// An engine config wired for deterministic fault tests: static batches of
/// @p batch_size coalesced over a generous flush window, shared injector.
[[nodiscard]] engine_config fault_test_config(std::shared_ptr<fault::injector> inject, const std::size_t batch_size = 8) {
    engine_config config;
    config.num_threads = 2;
    config.max_batch_size = batch_size;
    config.batch_delay = std::chrono::microseconds{ 20ms };
    config.qos.adaptive_batching = false;
    config.fault.inject = std::move(inject);
    return config;
}

// ---------------------------------------------------------------------------
// deterministic fault injector
// ---------------------------------------------------------------------------

TEST(FaultInjector, NoRulesIsANoOp) {
    fault::injector inj{ 7 };
    const fault::fault_rule fired = inj.evaluate(fault::fault_site::batch_kernel);
    EXPECT_EQ(fired.kind, fault::fault_kind::none);
    EXPECT_EQ(inj.evaluations(fault::fault_site::batch_kernel), 1u);
    EXPECT_EQ(inj.fired(fault::fault_site::batch_kernel), 0u);
    // the hooks are no-ops on a null injector too
    EXPECT_NO_THROW((void) fault::hook_batch_kernel(nullptr, predict_path::host_blocked, 0, 8));
    EXPECT_NO_THROW(fault::hook_dispatch(nullptr));
    EXPECT_NO_THROW(fault::hook_allocation(nullptr));
}

TEST(FaultInjector, SameSeedReplaysTheSameFiringSequence) {
    const auto run = [](const std::uint64_t seed) {
        fault::injector inj{ seed };
        inj.add_rule({ .site = fault::fault_site::dispatch, .kind = fault::fault_kind::kernel_throw, .probability = 0.35 });
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i) {
            fired.push_back(inj.evaluate(fault::fault_site::dispatch).kind != fault::fault_kind::none);
        }
        return fired;
    };
    const std::vector<bool> first = run(1234);
    const std::vector<bool> second = run(1234);
    EXPECT_EQ(first, second);
    // the probability actually thins the stream (not all-fire, not no-fire)
    const std::size_t count = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
    EXPECT_GT(count, 0u);
    EXPECT_LT(count, first.size());
}

TEST(FaultInjector, AfterAndLimitBoundTheFiringWindow) {
    fault::injector inj;
    inj.add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .after = 3, .limit = 2 });
    std::vector<bool> fired;
    for (int i = 0; i < 8; ++i) {
        fired.push_back(inj.evaluate(fault::fault_site::batch_kernel).kind != fault::fault_kind::none);
    }
    const std::vector<bool> expected{ false, false, false, true, true, false, false, false };
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(inj.fired(fault::fault_site::batch_kernel), 2u);
}

TEST(FaultInjector, PathFilterRestrictsARuleToOneDispatchPath) {
    fault::injector inj;
    inj.add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .path = predict_path::host_blocked });
    EXPECT_EQ(inj.evaluate(fault::fault_site::batch_kernel, predict_path::reference).kind, fault::fault_kind::none);
    EXPECT_EQ(inj.evaluate(fault::fault_site::batch_kernel, predict_path::device).kind, fault::fault_kind::none);
    EXPECT_EQ(inj.evaluate(fault::fault_site::batch_kernel, predict_path::host_blocked).kind, fault::fault_kind::kernel_throw);
}

TEST(FaultInjector, PoisonIndexFiresOnlyOnCoveringRanges) {
    fault::injector inj;
    inj.add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .poison_index = 5 });
    EXPECT_EQ(inj.evaluate(fault::fault_site::batch_kernel, {}, 0, 4).kind, fault::fault_kind::none);
    EXPECT_EQ(inj.evaluate(fault::fault_site::batch_kernel, {}, 6, 8).kind, fault::fault_kind::none);
    EXPECT_EQ(inj.evaluate(fault::fault_site::batch_kernel, {}, 0, 8).kind, fault::fault_kind::kernel_throw);
    EXPECT_EQ(inj.evaluate(fault::fault_site::batch_kernel, {}, 5, 6).kind, fault::fault_kind::kernel_throw);
}

TEST(FaultInjector, GlobalInjectorDrivesTheExecutorTaskHook) {
    fault::injector inj;
    inj.add_rule({ .site = fault::fault_site::executor_task, .kind = fault::fault_kind::slow_batch, .stall = 1ms });
    EXPECT_NO_THROW(fault::hook_executor_task());  // nothing installed
    fault::injector::install_global(&inj);
    fault::hook_executor_task();
    fault::injector::install_global(nullptr);
    EXPECT_EQ(inj.fired(fault::fault_site::executor_task), 1u);
    EXPECT_EQ(fault::injector::global(), nullptr);
    // kernel-throw hook actually throws the typed injected exception
    fault::injector thrower;
    thrower.add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw });
    EXPECT_THROW((void) fault::hook_batch_kernel(&thrower, predict_path::reference, 0, 1), fault::injected_fault_exception);
}

// ---------------------------------------------------------------------------
// circuit breaker + fallback ladder (fake clock, deterministic)
// ---------------------------------------------------------------------------

TEST(FaultBreaker, TripsOnceTheWindowedErrorRateIsReached) {
    fault::circuit_breaker breaker{ fault::breaker_config{ .window = 8, .trip_error_rate = 0.5, .min_samples = 4 } };
    EXPECT_TRUE(breaker.allow(fake_now()));
    breaker.record(true, fake_now());
    breaker.record(true, fake_now());
    breaker.record(false, fake_now());
    EXPECT_EQ(breaker.current(fake_now()), fault::breaker_state::closed) << "below min_samples";
    breaker.record(false, fake_now());  // 2 errors / 4 samples = 50% at min_samples
    EXPECT_EQ(breaker.current(fake_now()), fault::breaker_state::open);
    EXPECT_FALSE(breaker.allow(fake_now()));
    EXPECT_EQ(breaker.trips(), 1u);
}

TEST(FaultBreaker, HalfOpenProbesCloseAfterConsecutiveSuccesses) {
    const fault::breaker_config config{ .window = 8, .trip_error_rate = 0.5, .min_samples = 2, .open_duration = 100ms, .half_open_probes = 2 };
    fault::circuit_breaker breaker{ config };
    breaker.record(false, fake_now());
    breaker.record(false, fake_now());
    EXPECT_EQ(breaker.current(fake_now()), fault::breaker_state::open);
    EXPECT_FALSE(breaker.allow(fake_now(50ms))) << "cooldown not elapsed";
    EXPECT_TRUE(breaker.allow(fake_now(150ms))) << "cooldown elapsed -> half-open probe allowed";
    EXPECT_EQ(breaker.current(fake_now(150ms)), fault::breaker_state::half_open);
    breaker.record(true, fake_now(151ms));
    EXPECT_EQ(breaker.current(fake_now(151ms)), fault::breaker_state::half_open) << "one probe is not enough";
    breaker.record(true, fake_now(152ms));
    EXPECT_EQ(breaker.current(fake_now(152ms)), fault::breaker_state::closed);
    EXPECT_EQ(breaker.trips(), 1u);
}

TEST(FaultBreaker, HalfOpenFailureReopensWithAFreshCooldown) {
    const fault::breaker_config config{ .window = 8, .trip_error_rate = 0.5, .min_samples = 2, .open_duration = 100ms };
    fault::circuit_breaker breaker{ config };
    breaker.record(false, fake_now());
    breaker.record(false, fake_now());
    EXPECT_TRUE(breaker.allow(fake_now(150ms)));
    breaker.record(false, fake_now(151ms));  // failed probe
    EXPECT_EQ(breaker.current(fake_now(152ms)), fault::breaker_state::open);
    EXPECT_FALSE(breaker.allow(fake_now(200ms))) << "cooldown restarts from the failed probe";
    EXPECT_TRUE(breaker.allow(fake_now(300ms)));
    EXPECT_EQ(breaker.trips(), 2u);
}

TEST(FaultLadder, MasksTrippedPathsButNeverReference) {
    fault::path_ladder ladder{ fault::breaker_config{ .min_samples = 2, .open_duration = 10s } };
    ladder.record(predict_path::host_blocked, false, fake_now());
    ladder.record(predict_path::host_blocked, false, fake_now());
    // pathological case: even the reference breaker tripping must not mask it
    ladder.record(predict_path::reference, false, fake_now());
    ladder.record(predict_path::reference, false, fake_now());
    const fault::path_mask mask = ladder.allowed(fake_now(1ms));
    EXPECT_FALSE(mask.allows(predict_path::host_blocked));
    EXPECT_TRUE(mask.allows(predict_path::reference));
    EXPECT_TRUE(mask.allows(predict_path::host_sparse));
    EXPECT_TRUE(mask.allows(predict_path::device));
    EXPECT_EQ(ladder.trips(), 2u);
    EXPECT_EQ(ladder.trips(predict_path::host_blocked), 1u);
}

TEST(FaultDispatcher, MaskedChooseDemotesDownTheLadder) {
    fault::path_mask no_blocked = fault::path_mask::all();
    no_blocked.allowed[static_cast<std::size_t>(predict_path::host_blocked)] = false;
    const plssvm::serve::predict_shape shape{ 1024, 512, 64, kernel_type::rbf };

    // device enabled: with the host path tripped, the remaining competitive
    // path (device) takes the traffic
    plssvm::serve::dispatch_params params;
    params.min_blocked_batch = 8;
    params.allow_device = true;
    const plssvm::serve::predict_dispatcher with_device{ params };
    const predict_path unmasked = with_device.choose(shape, fault::path_mask::all());
    EXPECT_EQ(unmasked, with_device.choose(shape)) << "a full mask must reduce to the plain choice";
    EXPECT_EQ(with_device.choose(shape, no_blocked), predict_path::device);

    // host-only deployment: masking the blocked path leaves reference as the
    // bottom rung of the ladder
    params.allow_device = false;
    const plssvm::serve::predict_dispatcher host_only{ params };
    EXPECT_EQ(host_only.choose(shape), predict_path::host_blocked);
    EXPECT_EQ(host_only.choose(shape, no_blocked), predict_path::reference)
        << "with every competitive path masked, reference is the last resort";
}

// ---------------------------------------------------------------------------
// engine: retry, bisection + quarantine, typed errors
// ---------------------------------------------------------------------------

TEST(FaultEngine, TransientKernelFaultIsRetriedAndEveryRequestCompletes) {
    auto inject = std::make_shared<fault::injector>();
    inject->add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .limit = 1 });
    inference_engine<double> engine{ test::random_model(kernel_type::linear), fault_test_config(inject) };

    const aos_matrix<double> points = test::random_matrix(8, 11, 3);
    const std::vector<double> expected = engine.predict(points);
    std::vector<std::future<double>> futures;
    for (std::size_t i = 0; i < points.num_rows(); ++i) {
        futures.push_back(engine.submit(std::vector<double>(points.row_data(i), points.row_data(i) + points.num_cols())));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        EXPECT_EQ(futures[i].get(), expected[i]) << "request " << i;
    }
    const serve_stats stats = engine.stats();
    EXPECT_GE(stats.fault.batch_retries, 1u);
    EXPECT_EQ(stats.fault.quarantined_requests, 0u) << "a transient fault must not quarantine anything";
}

TEST(FaultEngine, PoisonedRequestIsQuarantinedAndTheRestComplete) {
    auto inject = std::make_shared<fault::injector>();
    // the first request of every batch is poisoned: only ranges covering
    // batch-local index 0 throw, so bisection isolates exactly that request
    inject->add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .poison_index = 0 });
    inference_engine<double> engine{ test::random_model(kernel_type::rbf), fault_test_config(inject) };

    const aos_matrix<double> points = test::random_matrix(8, 11, 5);
    const std::vector<double> expected = engine.predict(points);
    std::vector<std::future<double>> futures;
    for (std::size_t i = 0; i < points.num_rows(); ++i) {
        futures.push_back(engine.submit(std::vector<double>(points.row_data(i), points.row_data(i) + points.num_cols())));
    }
    std::size_t quarantined = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            EXPECT_EQ(futures[i].get(), expected[i]) << "surviving request " << i;
        } catch (const request_failed_exception &e) {
            ++quarantined;
            EXPECT_EQ(e.kind(), failure_kind::kernel_error);
            EXPECT_NE(std::string{ e.what() }.find("quarantined"), std::string::npos) << e.what();
        }
    }
    EXPECT_GE(quarantined, 1u);
    EXPECT_LT(quarantined, futures.size()) << "bisection must isolate, not fail the whole batch";
    const serve_stats stats = engine.stats();
    EXPECT_EQ(stats.fault.quarantined_requests, quarantined);
    EXPECT_GE(stats.fault.batch_bisections, 1u);
    // one quarantine in the observation window degrades the engine's health
    EXPECT_TRUE(eventually([&] { return engine.health() == health_state::degraded; }));
    EXPECT_TRUE(eventually([&] { return engine.recorder().health_dumps() >= 1u; }));
    EXPECT_NE(engine.last_health_dump().find("health:"), std::string::npos);
}

TEST(FaultEngine, InjectedAllocationFailureSurfacesAsTypedAllocationError) {
    auto inject = std::make_shared<fault::injector>();
    inject->add_rule({ .site = fault::fault_site::allocation, .kind = fault::fault_kind::alloc_failure });
    inference_engine<double> engine{ test::random_model(kernel_type::linear), fault_test_config(inject, 4) };

    std::vector<std::future<double>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(engine.submit(std::vector<double>(11, 0.25)));
    }
    for (std::future<double> &f : futures) {
        try {
            (void) f.get();
            FAIL() << "every attempt hits the allocation fault, so every request must fail typed";
        } catch (const request_failed_exception &e) {
            EXPECT_EQ(e.kind(), failure_kind::allocation);
        }
    }
}

TEST(FaultEngine, WrongResultInjectionCorruptsExactlyOneSlot) {
    auto inject = std::make_shared<fault::injector>();
    inject->add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::wrong_result, .limit = 1 });
    inference_engine<double> engine{ test::random_model(kernel_type::linear), fault_test_config(inject) };

    const aos_matrix<double> points = test::random_matrix(8, 11, 9);
    const std::vector<double> expected = engine.predict(points);
    std::vector<std::future<double>> futures;
    for (std::size_t i = 0; i < points.num_rows(); ++i) {
        futures.push_back(engine.submit(std::vector<double>(points.row_data(i), points.row_data(i) + points.num_cols())));
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        if (futures[i].get() != expected[i]) {
            ++mismatches;
        }
    }
    EXPECT_EQ(mismatches, 1u) << "wrong_result corrupts the first slot of the firing attempt's range, nothing else";
}

// ---------------------------------------------------------------------------
// engine: watchdog stall recovery
// ---------------------------------------------------------------------------

TEST(FaultEngine, WatchdogFailsAStalledBatchAndRestartsTheLane) {
    auto inject = std::make_shared<fault::injector>();
    inject->add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::worker_stall, .limit = 1, .stall = 500ms });
    engine_config config = fault_test_config(inject, 1);
    config.batch_delay = std::chrono::microseconds{ 1ms };
    config.fault.watchdog.stall_timeout = std::chrono::microseconds{ 50ms };
    inference_engine<double> engine{ test::random_model(kernel_type::linear), config };

    std::future<double> stalled = engine.submit(std::vector<double>(11, 0.5));
    try {
        (void) stalled.get();
        FAIL() << "the stalled batch must fail with a typed worker_stall error";
    } catch (const request_failed_exception &e) {
        EXPECT_EQ(e.kind(), failure_kind::worker_stall);
    }
    // the watchdog settles the stalled futures *before* recording the stall
    // counters, so the stats are eventually consistent here — poll
    EXPECT_TRUE(eventually([&] { return engine.stats().fault.stall_restarts == 1u; }));
    EXPECT_TRUE(eventually([&] { return engine.stats().fault.stall_failed_requests == 1u; }));
    // the restarted lane serves new traffic (the stall rule is exhausted)
    const aos_matrix<double> point = test::random_matrix(1, 11, 17);
    const std::vector<double> expected = engine.predict(point);
    std::future<double> next = engine.submit(std::vector<double>(point.row_data(0), point.row_data(0) + point.num_cols()));
    EXPECT_EQ(next.get(), expected.front());
    // a stall forces the health state machine to critical for its window
    EXPECT_GE(engine.stats().fault.health_transitions, 1u);
}

// ---------------------------------------------------------------------------
// shutdown settlement (satellite: no promise is ever destroyed unsettled)
// ---------------------------------------------------------------------------

TEST(FaultShutdown, FailPendingSettlesQueuedPromisesWithTypedErrors) {
    micro_batcher<double> batcher{ plssvm::serve::batch_policy{ 64, std::chrono::microseconds{ 1s } } };
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 3; ++i) {
        futures.push_back(batcher.enqueue(std::vector<double>{ 1.0, 2.0 }, request_class::interactive,
                                          std::chrono::microseconds{ 0 }, std::chrono::steady_clock::now(), 0));
    }
    // waiters are already blocked on the futures when the batcher stops
    std::vector<std::thread> waiters;
    std::vector<std::exception_ptr> outcomes(futures.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        waiters.emplace_back([&futures, &outcomes, i] {
            try {
                (void) futures[i].get();
            } catch (...) {
                outcomes[i] = std::current_exception();
            }
        });
    }
    EXPECT_EQ(batcher.fail_pending(std::exception_ptr{}), 3u);
    for (std::thread &t : waiters) {
        t.join();
    }
    for (const std::exception_ptr &outcome : outcomes) {
        ASSERT_NE(outcome, nullptr) << "every waiter must be released with an error, not blocked forever";
        try {
            std::rethrow_exception(outcome);
        } catch (const request_failed_exception &e) {
            EXPECT_EQ(e.kind(), failure_kind::engine_shutdown);
        }
    }
    // the batcher is stopped now: a late enqueue fails typed too
    EXPECT_THROW((void) batcher.enqueue(std::vector<double>{ 1.0 }, request_class::interactive,
                                        std::chrono::microseconds{ 0 }, std::chrono::steady_clock::now(), 0),
                 request_failed_exception);
}

TEST(FaultShutdown, BatcherDestructionSettlesQueuedPromises) {
    std::future<double> orphan;
    {
        micro_batcher<double> batcher{ plssvm::serve::batch_policy{ 64, std::chrono::microseconds{ 1s } } };
        orphan = batcher.enqueue(std::vector<double>{ 1.0 }, request_class::background,
                                 std::chrono::microseconds{ 0 }, std::chrono::steady_clock::now(), 0);
    }
    try {
        (void) orphan.get();
        FAIL() << "a promise queued at destruction must carry a typed error";
    } catch (const request_failed_exception &e) {
        EXPECT_EQ(e.kind(), failure_kind::engine_shutdown);
    }
}

// ---------------------------------------------------------------------------
// retry-after hint (satellite: structured backpressure)
// ---------------------------------------------------------------------------

TEST(FaultRetryAfter, RateLimitedShedCarriesTheBucketRefillHint) {
    engine_config config;
    config.num_threads = 2;
    config.qos.classes[plssvm::serve::class_index(request_class::interactive)].rate_limit = 10.0;
    config.qos.classes[plssvm::serve::class_index(request_class::interactive)].burst = 1.0;
    inference_engine<double> engine{ test::random_model(kernel_type::linear), config };

    std::future<double> admitted = engine.submit(std::vector<double>(11, 0.1));
    bool shed = false;
    try {
        (void) engine.submit(std::vector<double>(11, 0.2));
    } catch (const request_shed_exception &e) {
        shed = true;
        // 10 tokens/s, empty bucket: the next token is ~100 ms out
        EXPECT_GT(e.retry_after().count(), 0);
        EXPECT_LE(e.retry_after(), std::chrono::microseconds{ 150ms });
    }
    EXPECT_TRUE(shed);
    (void) admitted.get();
    const serve_stats stats = engine.stats();
    EXPECT_DOUBLE_EQ(stats.classes[plssvm::serve::class_index(request_class::interactive)].retry_after_hint_seconds, 0.1);
    EXPECT_NE(engine.stats_json().find("\"retry_after_hint_s\": 1.000000e-01"), std::string::npos);
}

// ---------------------------------------------------------------------------
// fallback ladder end to end: breaker trip reroutes live traffic
// ---------------------------------------------------------------------------

TEST(FaultEngine, TrippedPathReroutesTrafficDownTheLadder) {
    auto inject = std::make_shared<fault::injector>();
    // the blocked host path persistently fails; reference stays healthy
    inject->add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .path = predict_path::host_blocked });
    // batch 64 deterministically picks the blocked host path (the default
    // cost model routes 64-point batches there, see the dispatcher tests)
    engine_config config = fault_test_config(inject, 64);
    config.fault.breaker.min_samples = 2;
    config.fault.breaker.window = 8;
    config.fault.breaker.open_duration = std::chrono::microseconds{ 10s };  // stays open for the whole test
    inference_engine<double> engine{ test::random_model(kernel_type::linear), config };

    const aos_matrix<double> points = test::random_matrix(64, 11, 21);
    const std::vector<double> expected = engine.predict(points);  // sync path, unaffected
    std::vector<std::future<double>> futures;
    for (std::size_t i = 0; i < points.num_rows(); ++i) {
        futures.push_back(engine.submit(std::vector<double>(points.row_data(i), points.row_data(i) + points.num_cols())));
    }
    // attempt 1 + 2 fail on host_blocked and trip its breaker (min_samples
    // 2); attempt 3 re-chooses under the new mask and lands on reference —
    // every request completes without quarantine
    for (std::size_t i = 0; i < futures.size(); ++i) {
        EXPECT_EQ(futures[i].get(), expected[i]) << "request " << i;
    }
    const serve_stats stats = engine.stats();
    EXPECT_GE(stats.fault.breaker_trips, 1u);
    EXPECT_EQ(stats.fault.breaker_states[static_cast<std::size_t>(predict_path::host_blocked)], fault::breaker_state::open);
    EXPECT_GE(stats.reference_batches, 1u) << "rerouted batches must show up in the path counts";
    EXPECT_EQ(stats.fault.quarantined_requests, 0u);
    // an open breaker drives the engine critical, visible in JSON too
    EXPECT_TRUE(eventually([&] { return engine.health() == health_state::critical; }));
    const std::string json = engine.stats_json();
    EXPECT_NE(json.find("\"health\": \"critical\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"host_blocked\": \"open\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// health state machine + exposition
// ---------------------------------------------------------------------------

TEST(FaultHealth, MonitorTransitionsAreEdgeTriggeredAndRecover) {
    fault::health_monitor monitor;
    EXPECT_EQ(monitor.state(), health_state::healthy);
    fault::health_inputs inputs;
    inputs.breaker_open = true;
    const fault::health_transition to_critical = monitor.observe(inputs);
    EXPECT_TRUE(to_critical.changed);
    EXPECT_EQ(to_critical.from, health_state::healthy);
    EXPECT_EQ(to_critical.to, health_state::critical);
    EXPECT_FALSE(monitor.observe(inputs).changed) << "steady state must not re-transition";
    inputs.breaker_open = false;
    inputs.breaker_half_open = true;
    EXPECT_EQ(monitor.observe(inputs).to, health_state::degraded);
    inputs.breaker_half_open = false;
    const fault::health_transition recovered = monitor.observe(inputs);
    EXPECT_TRUE(recovered.changed);
    EXPECT_EQ(recovered.to, health_state::healthy);
    EXPECT_EQ(monitor.transitions(), 3u);
}

TEST(FaultHealth, ShedRateDrivesDegradedAndCritical) {
    fault::health_monitor monitor;
    fault::health_inputs inputs;
    inputs.admission_attempts = 100;
    inputs.shed = 10;  // 10% shed in the window
    EXPECT_EQ(monitor.observe(inputs).to, health_state::degraded);
    inputs.admission_attempts = 200;
    inputs.shed = 80;  // 70/100 shed in this window
    EXPECT_EQ(monitor.observe(inputs).to, health_state::critical);
    inputs.admission_attempts = 300;
    inputs.shed = 80;  // clean window: deltas decide, not lifetime totals
    EXPECT_EQ(monitor.observe(inputs).to, health_state::healthy);
}

TEST(FaultHealth, RegistryAggregatesWorstEngineHealth) {
    plssvm::serve::model_registry<double> registry{ 4, engine_config{ .num_threads = 2 } };
    (void) registry.load("clean", test::random_model(kernel_type::linear));
    EXPECT_EQ(registry.health(), health_state::healthy);
    EXPECT_EQ(registry.stats_json().rfind("{\"health\": \"healthy\"", 0), 0u);

    auto inject = std::make_shared<fault::injector>();
    inject->add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .poison_index = 0 });
    auto poisoned = registry.load("poisoned", test::random_model(kernel_type::rbf), fault_test_config(inject));
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(poisoned->submit(std::vector<double>(11, 0.3)));
    }
    for (std::future<double> &f : futures) {
        try {
            (void) f.get();
        } catch (const request_failed_exception &) {
        }
    }
    EXPECT_TRUE(eventually([&] { return registry.health() == health_state::degraded; }));
    EXPECT_EQ(registry.stats_json().rfind("{\"health\": \"degraded\"", 0), 0u);
    EXPECT_NE(registry.metrics_text().find("plssvm_serve_registry_health 1"), std::string::npos);
}

TEST(FaultStats, JsonAndPrometheusExposeTheFaultPlane) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear), engine_config{ .num_threads = 2 } };
    const std::string json = engine.stats_json();
    for (const char *key : { "\"fault\": {", "\"health\": \"healthy\"", "\"quarantined_requests\": 0",
                             "\"stall_restarts\": 0", "\"breaker_trips\": 0", "\"breakers\": {",
                             "\"batch_retries\": 0", "\"batch_bisections\": 0", "\"shutdown_failed_requests\": 0" }) {
        EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
    }
    const std::string text = engine.metrics_text();
    for (const char *family : { "plssvm_serve_health ", "plssvm_serve_quarantined_requests_total",
                                "plssvm_serve_breaker_state{", "plssvm_serve_breaker_trips_total",
                                "plssvm_serve_stall_restarts_total", "plssvm_serve_retry_after_hint_seconds" }) {
        EXPECT_NE(text.find(family), std::string::npos) << "missing " << family;
    }
}

// ---------------------------------------------------------------------------
// multi-class engine shares the fault plane
// ---------------------------------------------------------------------------

TEST(FaultMulticlass, PoisonedRequestIsQuarantinedAndSurvivorsMatchSync) {
    auto blobs_engine = plssvm::detail::make_engine(13);
    const double centers[3][2] = { { 4.0, 0.0 }, { -4.0, 4.0 }, { 0.0, -4.0 } };
    aos_matrix<double> train_points{ 90, 2 };
    std::vector<double> train_labels(90);
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < 30; ++i) {
            const std::size_t row = c * 30 + i;
            train_points(row, 0) = centers[c][0] + plssvm::detail::standard_normal<double>(blobs_engine);
            train_points(row, 1) = centers[c][1] + plssvm::detail::standard_normal<double>(blobs_engine);
            train_labels[row] = static_cast<double>(c);
        }
    }
    plssvm::data_set<double> data{ std::move(train_points), std::move(train_labels) };
    plssvm::parameter params;
    params.kernel = kernel_type::linear;
    plssvm::ext::one_vs_all<double> trainer{ plssvm::backend_type::openmp, params };
    const auto ensemble = trainer.fit(data, plssvm::solver_control{ .epsilon = 1e-8 });

    auto inject = std::make_shared<fault::injector>();
    inject->add_rule({ .site = fault::fault_site::batch_kernel, .kind = fault::fault_kind::kernel_throw, .poison_index = 0 });
    engine_config config = fault_test_config(inject);
    multiclass_engine<double> engine{ ensemble, config };

    const aos_matrix<double> queries = test::random_matrix(8, 2, 99);
    const std::vector<double> expected = engine.predict(queries);
    std::vector<std::future<double>> futures;
    for (std::size_t i = 0; i < queries.num_rows(); ++i) {
        futures.push_back(engine.submit(std::vector<double>{ queries(i, 0), queries(i, 1) }));
    }
    std::size_t quarantined = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            EXPECT_EQ(futures[i].get(), expected[i]) << "surviving request " << i;
        } catch (const request_failed_exception &e) {
            ++quarantined;
            EXPECT_EQ(e.kind(), failure_kind::kernel_error);
        }
    }
    EXPECT_GE(quarantined, 1u);
    EXPECT_LT(quarantined, futures.size());
    EXPECT_EQ(engine.stats().fault.quarantined_requests, quarantined);
    EXPECT_TRUE(eventually([&] { return engine.health() == health_state::degraded; }));
}

}  // namespace
