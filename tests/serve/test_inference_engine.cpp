/**
 * @file
 * @brief Tests for `serve::inference_engine`: bit-exact parity with
 *        `decision_values`, the async submit path, a multi-threaded
 *        submit/drain stress test, and the statistics aggregates.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/core/predict.hpp"
#include "plssvm/detail/tracker.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/serve/inference_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <thread>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::engine_config;
using plssvm::serve::inference_engine;
namespace test = plssvm::test;
using namespace std::chrono_literals;

TEST(InferenceEngine, BitExactParityWithDecisionValuesForAllKernels) {
    const aos_matrix<double> points = test::random_matrix(41, 11, 3);
    for (const kernel_type kernel : test::all_kernel_types()) {
        const model<double> m = test::random_model(kernel);
        inference_engine<double> engine{ m, engine_config{ .num_threads = 4 } };
        const std::vector<double> expected = plssvm::decision_values(m, points);
        const std::vector<double> actual = engine.decision_values(points);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t p = 0; p < actual.size(); ++p) {
            EXPECT_DOUBLE_EQ(actual[p], expected[p]) << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
        }
    }
}

TEST(InferenceEngine, PredictMapsToLabelDomain) {
    const model<double> m = test::random_model(kernel_type::rbf);
    inference_engine<double> engine{ m, engine_config{ .num_threads = 2 } };
    const aos_matrix<double> points = test::random_matrix(31, 11, 4);
    const std::vector<double> values = engine.decision_values(points);
    const std::vector<double> labels = engine.predict(points);
    for (std::size_t p = 0; p < labels.size(); ++p) {
        EXPECT_EQ(labels[p], m.label_from_decision(values[p]));
    }
}

TEST(InferenceEngine, SubmitMatchesSyncPredict) {
    for (const kernel_type kernel : test::all_kernel_types()) {
        const model<double> m = test::random_model(kernel);
        inference_engine<double> engine{ m, engine_config{ .num_threads = 2, .max_batch_size = 8, .batch_delay = 200us } };
        const aos_matrix<double> points = test::random_matrix(20, 11, 5);
        const std::vector<double> expected = engine.predict(points);

        std::vector<std::future<double>> futures;
        for (std::size_t p = 0; p < points.num_rows(); ++p) {
            futures.push_back(engine.submit(std::vector<double>(points.row_data(p), points.row_data(p) + points.num_cols())));
        }
        for (std::size_t p = 0; p < futures.size(); ++p) {
            EXPECT_EQ(futures[p].get(), expected[p]) << "kernel=" << plssvm::kernel_type_to_string(kernel);
        }
    }
}

TEST(InferenceEngine, SparseDecisionValuesMatchDense) {
    // sparse CSR batches share the execution paths of the dense batches
    aos_matrix<double> dense = test::random_matrix(40, 11, 21);
    std::size_t i = 0;
    for (double &v : dense.data()) {
        if (i++ % 3 != 0) {
            v = 0.0;
        }
    }
    const plssvm::csr_matrix<double> sparse{ dense };
    for (const kernel_type kernel : { kernel_type::linear, kernel_type::rbf }) {
        inference_engine<double> engine{ test::random_model(kernel), engine_config{ .num_threads = 2 } };
        const std::vector<double> expected = engine.decision_values(dense);
        const std::vector<double> actual = engine.decision_values(sparse);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t p = 0; p < actual.size(); ++p) {
            EXPECT_NEAR(actual[p], expected[p], 1e-10 * (1.0 + std::abs(expected[p])))
                << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
        }
    }
}

TEST(InferenceEngine, SparseSubmitMatchesDenseSubmit) {
    inference_engine<double> engine{ test::random_model(kernel_type::rbf), engine_config{ .num_threads = 2, .max_batch_size = 4, .batch_delay = 100us } };
    // dense point {0, 1.5, 0, ..., -2.25 at index 7}
    std::vector<double> dense(11, 0.0);
    dense[1] = 1.5;
    dense[7] = -2.25;
    const std::vector<plssvm::csr_matrix<double>::entry> sparse{ { 1, 1.5 }, { 7, -2.25 } };
    const double expected = engine.submit(std::move(dense)).get();
    EXPECT_EQ(engine.submit(sparse).get(), expected);
}

TEST(InferenceEngine, SparseSubmitWithOutOfRangeIndexThrowsEagerly) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear) };
    const std::vector<plssvm::csr_matrix<double>::entry> bad{ { 11, 1.0 } };  // valid indices: 0..10
    EXPECT_THROW((void) engine.submit(bad), plssvm::invalid_data_exception);
}

TEST(InferenceEngine, SubmitWithWrongFeatureCountThrowsEagerly) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear) };
    EXPECT_THROW((void) engine.submit({ 1.0, 2.0 }), plssvm::invalid_data_exception);
}

TEST(InferenceEngine, EmptyBatchIsFine) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear) };
    const aos_matrix<double> empty{ 0, 11 };
    EXPECT_TRUE(engine.decision_values(empty).empty());
}

// The stress test of the issue: many producers hammering submit() while the
// drain thread coalesces; every request must be answered exactly once with
// the right value (futures make duplicates structurally impossible, losses
// show up as a hang/broken promise, wrong routing as a value mismatch).
TEST(InferenceEngine, MultiThreadedSubmitStressLosesNothing) {
    const model<double> m = test::random_model(kernel_type::rbf, 16, 8);
    inference_engine<double> engine{ m, engine_config{ .num_threads = 4, .max_batch_size = 32, .batch_delay = 100us } };

    constexpr std::size_t num_producers = 8;
    constexpr std::size_t requests_per_producer = 250;
    const aos_matrix<double> queries = test::random_matrix(num_producers * requests_per_producer, 8, 6);
    const std::vector<double> expected = engine.predict(queries);  // sync reference

    std::atomic<std::size_t> mismatches{ 0 };
    std::atomic<std::size_t> answered{ 0 };
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < num_producers; ++t) {
        producers.emplace_back([&, t]() {
            std::vector<std::future<double>> futures;
            futures.reserve(requests_per_producer);
            for (std::size_t r = 0; r < requests_per_producer; ++r) {
                const std::size_t row = t * requests_per_producer + r;
                futures.push_back(engine.submit(std::vector<double>(queries.row_data(row), queries.row_data(row) + queries.num_cols())));
            }
            for (std::size_t r = 0; r < requests_per_producer; ++r) {
                const double label = futures[r].get();
                ++answered;
                if (label != expected[t * requests_per_producer + r]) {
                    ++mismatches;
                }
            }
        });
    }
    for (std::thread &producer : producers) {
        producer.join();
    }

    EXPECT_EQ(answered.load(), num_producers * requests_per_producer) << "no request may be lost";
    EXPECT_EQ(mismatches.load(), 0u) << "every response must be routed to its own request";

    const plssvm::serve::serve_stats stats = engine.stats();
    // sync reference batch + all async requests
    EXPECT_EQ(stats.total_requests, num_producers * requests_per_producer + queries.num_rows());
    EXPECT_GE(stats.mean_batch_size, 1.0);
    EXPECT_GT(stats.requests_per_second, 0.0);
}

TEST(InferenceEngine, DestructorDrainsInFlightRequests) {
    const model<double> m = test::random_model(kernel_type::linear);
    const aos_matrix<double> points = test::random_matrix(12, 11, 9);
    std::vector<std::future<double>> futures;
    {
        // long deadline, large batch, static batching (the adaptive tuner
        // would release small idle batches early): requests are pending when
        // the engine is destroyed and must still be answered, not dropped
        inference_engine<double> engine{ m, engine_config{ .num_threads = 2, .max_batch_size = 64, .batch_delay = std::chrono::microseconds{ 5'000'000 }, .qos = { .adaptive_batching = false } } };
        for (std::size_t p = 0; p < points.num_rows(); ++p) {
            futures.push_back(engine.submit(std::vector<double>(points.row_data(p), points.row_data(p) + points.num_cols())));
        }
    }
    const plssvm::serve::compiled_model<double> compiled{ m };
    for (std::size_t p = 0; p < futures.size(); ++p) {
        EXPECT_EQ(futures[p].get(), compiled.label_from_decision(compiled.decision_value(points.row_data(p))));
    }
}

TEST(InferenceEngine, StatsAndTrackerReporting) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear), engine_config{ .num_threads = 2 } };
    const aos_matrix<double> points = test::random_matrix(64, 11, 10);
    (void) engine.predict(points);
    (void) engine.predict(points);

    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.total_requests, 128u);
    EXPECT_EQ(stats.total_batches, 2u);
    EXPECT_DOUBLE_EQ(stats.mean_batch_size, 64.0);
    EXPECT_LE(stats.p50_latency_seconds, stats.p99_latency_seconds);
    EXPECT_LE(stats.p99_latency_seconds, stats.max_latency_seconds);
    EXPECT_GT(stats.requests_per_second, 0.0);

    plssvm::detail::tracker tracker;
    engine.report_to(tracker, "serve");
    EXPECT_DOUBLE_EQ(tracker.get_metric("serve/total_requests"), 128.0);
    EXPECT_DOUBLE_EQ(tracker.get_metric("serve/total_batches"), 2.0);
    EXPECT_DOUBLE_EQ(tracker.get_metric("serve/mean_batch_size"), 64.0);
    EXPECT_GT(tracker.get_metric("serve/requests_per_s"), 0.0);
    EXPECT_EQ(tracker.get("serve/batch_kernel").invocations, 1u);
    EXPECT_GE(tracker.get("serve/batch_kernel").wall_seconds, 0.0);
}

}  // namespace
