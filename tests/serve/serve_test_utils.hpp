/**
 * @file
 * @brief Shared helpers for the serving-subsystem tests: deterministic
 *        synthetic models and query points for every kernel type.
 */

#ifndef PLSSVM_TESTS_SERVE_SERVE_TEST_UTILS_HPP_
#define PLSSVM_TESTS_SERVE_SERVE_TEST_UTILS_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/detail/rng.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plssvm::test {

/// Deterministic random matrix with entries ~ N(0, 1).
[[nodiscard]] inline aos_matrix<double> random_matrix(const std::size_t rows, const std::size_t cols, const std::uint64_t seed) {
    auto engine = detail::make_engine(seed);
    aos_matrix<double> m{ rows, cols };
    for (double &v : m.data()) {
        v = detail::standard_normal<double>(engine);
    }
    return m;
}

/// Synthetic trained model: random support vectors and weights, fixed rho.
/// `num_sv` deliberately defaults to a non-multiple of the SoA padding so the
/// padded tail is exercised.
[[nodiscard]] inline model<double> random_model(const kernel_type kernel,
                                                const std::size_t num_sv = 37,
                                                const std::size_t dim = 11,
                                                const std::uint64_t seed = 42) {
    parameter params;
    params.kernel = kernel;
    params.degree = 3;
    params.gamma = 0.35;
    params.coef0 = 0.75;

    auto engine = detail::make_engine(seed + 1);
    std::vector<double> alpha(num_sv);
    for (double &a : alpha) {
        a = detail::standard_normal<double>(engine);
    }
    return model<double>{ params, random_matrix(num_sv, dim, seed), std::move(alpha), /*rho=*/0.125, /*positive=*/1.0, /*negative=*/-1.0 };
}

/// All kernel types the library ships.
[[nodiscard]] inline std::vector<kernel_type> all_kernel_types() {
    return { kernel_type::linear, kernel_type::polynomial, kernel_type::rbf, kernel_type::sigmoid };
}

}  // namespace plssvm::test

#endif  // PLSSVM_TESTS_SERVE_SERVE_TEST_UTILS_HPP_
