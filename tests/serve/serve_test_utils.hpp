/**
 * @file
 * @brief Shared helpers for the serving-subsystem tests: deterministic
 *        synthetic models and query points for every kernel type, and the
 *        randomized sparse-parity harness (seeded (density, n_sv,
 *        n_features, batch) grids asserted against the scalar reference
 *        sweep).
 */

#ifndef PLSSVM_TESTS_SERVE_SERVE_TEST_UTILS_HPP_
#define PLSSVM_TESTS_SERVE_SERVE_TEST_UTILS_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/detail/rng.hpp"
#include "plssvm/serve/compiled_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace plssvm::test {

/// Deterministic random matrix with entries ~ N(0, 1).
[[nodiscard]] inline aos_matrix<double> random_matrix(const std::size_t rows, const std::size_t cols, const std::uint64_t seed) {
    auto engine = detail::make_engine(seed);
    aos_matrix<double> m{ rows, cols };
    for (double &v : m.data()) {
        v = detail::standard_normal<double>(engine);
    }
    return m;
}

/// Synthetic trained model: random support vectors and weights, fixed rho.
/// `num_sv` deliberately defaults to a non-multiple of the SoA padding so the
/// padded tail is exercised.
[[nodiscard]] inline model<double> random_model(const kernel_type kernel,
                                                const std::size_t num_sv = 37,
                                                const std::size_t dim = 11,
                                                const std::uint64_t seed = 42) {
    parameter params;
    params.kernel = kernel;
    params.degree = 3;
    params.gamma = 0.35;
    params.coef0 = 0.75;

    auto engine = detail::make_engine(seed + 1);
    std::vector<double> alpha(num_sv);
    for (double &a : alpha) {
        a = detail::standard_normal<double>(engine);
    }
    return model<double>{ params, random_matrix(num_sv, dim, seed), std::move(alpha), /*rho=*/0.125, /*positive=*/1.0, /*negative=*/-1.0 };
}

/// All kernel types the library ships.
[[nodiscard]] inline std::vector<kernel_type> all_kernel_types() {
    return { kernel_type::linear, kernel_type::polynomial, kernel_type::rbf, kernel_type::sigmoid };
}

// --- randomized sparse-parity harness ---------------------------------------

/// Deterministic random matrix with an *exact* number of non-zeros:
/// `round(density * rows * cols)` entries at seeded-shuffled positions,
/// values ~ N(0, 1). Exact counts make the density threshold boundary
/// testable (a coin-flip generator only hits it in expectation).
[[nodiscard]] inline aos_matrix<double> sparse_random_matrix(const std::size_t rows, const std::size_t cols,
                                                             const double density, const std::uint64_t seed) {
    auto engine = detail::make_engine(seed);
    aos_matrix<double> m{ rows, cols };
    const std::size_t cells = rows * cols;
    const auto nnz = std::min(cells, static_cast<std::size_t>(std::llround(density * static_cast<double>(cells))));
    std::vector<std::size_t> positions(cells);
    std::iota(positions.begin(), positions.end(), std::size_t{ 0 });
    std::shuffle(positions.begin(), positions.end(), engine);
    for (std::size_t i = 0; i < nnz; ++i) {
        double v = detail::standard_normal<double>(engine);
        while (v == 0.0) {
            v = detail::standard_normal<double>(engine);  // keep the count exact
        }
        m.data()[positions[i]] = v;
    }
    return m;
}

/// Inject the awkward sparse structures every sparse sweep must survive:
/// an entirely empty row (0), a single-nnz row (1), and an all-zero last
/// column. Only shrinks the non-zero count, so a matrix below the density
/// threshold stays below it.
inline void inject_sparse_edge_cases(aos_matrix<double> &m) {
    if (m.num_rows() > 0) {
        std::fill(m.row_data(0), m.row_data(0) + m.num_cols(), 0.0);
    }
    if (m.num_rows() > 1 && m.num_cols() > 0) {
        std::fill(m.row_data(1), m.row_data(1) + m.num_cols(), 0.0);
        m(1, 0) = 1.5;
    }
    if (m.num_cols() > 1) {
        for (std::size_t r = 0; r < m.num_rows(); ++r) {
            m(r, m.num_cols() - 1) = 0.0;
        }
    }
}

/// Synthetic trained model whose support-vector panel has (at most) the given
/// exact density, with the edge-case structures injected.
[[nodiscard]] inline model<double> random_sparse_model(const kernel_type kernel,
                                                       const std::size_t num_sv,
                                                       const std::size_t dim,
                                                       const double density,
                                                       const std::uint64_t seed = 42) {
    parameter params;
    params.kernel = kernel;
    params.degree = 3;
    params.gamma = 0.35;
    params.coef0 = 0.75;

    auto engine = detail::make_engine(seed + 1);
    std::vector<double> alpha(num_sv);
    for (double &a : alpha) {
        a = detail::standard_normal<double>(engine);
    }
    aos_matrix<double> sv = sparse_random_matrix(num_sv, dim, density, seed);
    inject_sparse_edge_cases(sv);
    return model<double>{ params, std::move(sv), std::move(alpha), /*rho=*/0.125, /*positive=*/1.0, /*negative=*/-1.0 };
}

/// One cell of the randomized parity grid.
struct sparse_parity_case {
    double density;
    std::size_t num_sv;
    std::size_t dim;
    std::size_t batch;
};

/// The (density x shape) grid the randomized parity harness sweeps: densities
/// from empty through the default threshold up to half-dense, shapes chosen
/// to straddle every tile boundary (single SV/point, sub-tile, exact-tile,
/// non-multiple, multi-block).
[[nodiscard]] inline std::vector<sparse_parity_case> sparse_parity_grid() {
    const std::vector<double> densities{ 0.0, 0.02, 0.1, 0.5 };
    const std::vector<std::array<std::size_t, 3>> shapes{
        { 1, 7, 5 },      // a single support vector
        { 8, 16, 16 },    // exact sparse point tile
        { 37, 11, 33 },   // nothing a tile multiple
        { 64, 64, 64 },   // tile multiples everywhere
        { 130, 9, 100 },  // SVs beyond one padding block
        { 33, 7, 129 },   // batch > 8 sparse point tiles
    };
    std::vector<sparse_parity_case> grid;
    for (const double density : densities) {
        for (const auto &[num_sv, dim, batch] : shapes) {
            grid.push_back(sparse_parity_case{ density, num_sv, dim, batch });
        }
    }
    return grid;
}

/**
 * @brief Assert that every sparse execution path of @p compiled matches the
 *        per-point scalar reference sweep over @p queries within tolerance.
 *
 * Covers: the blocked dense path, the dense-query sparse sweep (when the
 * sparse compiled form is active), the CSR-query path (sparse merge-join /
 * row-pair sweeps or the densify fallback, whichever the compiled form
 * selects) — each over the full batch AND over a sub-range with
 * `row_begin != 0` so offset bugs at tile boundaries cannot hide.
 */
inline void expect_sparse_paths_match_reference(const serve::compiled_model<double> &compiled,
                                                const aos_matrix<double> &queries,
                                                const std::string &context) {
    const std::size_t batch = queries.num_rows();
    std::vector<double> reference(batch);
    compiled.decision_values_reference_into(queries, 0, batch, reference.data());

    const auto expect_matches = [&](const std::vector<double> &actual, const std::size_t offset, const char *path) {
        for (std::size_t p = 0; p < actual.size(); ++p) {
            const double expected = reference[offset + p];
            EXPECT_NEAR(actual[p], expected, 1e-10 * (1.0 + std::abs(expected)))
                << context << " path=" << path << " point=" << offset + p;
        }
    };

    // blocked dense path (the dense parity net, kept honest on sparse data)
    std::vector<double> blocked(batch);
    compiled.decision_values_into(queries, 0, batch, blocked.data());
    expect_matches(blocked, 0, "dense_blocked");

    // dense-query x sparse-SV sweep
    if (compiled.sparse_sv()) {
        std::vector<double> sparse_dense(batch);
        compiled.decision_values_sparse_into(queries, 0, batch, sparse_dense.data());
        expect_matches(sparse_dense, 0, "dense_query_sparse_sv");
    }

    // CSR-query path, full batch
    const csr_matrix<double> csr{ queries };
    std::vector<double> sparse_csr(batch);
    compiled.decision_values_into(csr, 0, batch, sparse_csr.data());
    expect_matches(sparse_csr, 0, "csr_query");

    // CSR-query and dense paths over a sub-range with row_begin != 0 (offset
    // deliberately not a tile multiple)
    if (batch >= 3) {
        const std::size_t row_begin = batch / 3 + 1;
        const std::size_t row_end = batch - batch / 7;
        std::vector<double> range(row_end - row_begin);
        compiled.decision_values_into(csr, row_begin, row_end, range.data());
        expect_matches(range, row_begin, "csr_query_row_slice");
        if (compiled.sparse_sv()) {
            compiled.decision_values_sparse_into(queries, row_begin, row_end, range.data());
            expect_matches(range, row_begin, "dense_query_sparse_sv_row_slice");
        }
    }
}

/**
 * @brief Run the full randomized parity grid for @p kernel: for every
 *        (density, shape) cell compile a sparse model (forced-sparse AND
 *        auto-threshold forms) and check all sparse paths against the
 *        reference sweep on equally sparse queries with injected edge cases.
 */
inline void run_sparse_parity_grid(const kernel_type kernel, const std::uint64_t seed = 4242) {
    std::uint64_t case_seed = seed;
    for (const sparse_parity_case &c : sparse_parity_grid()) {
        case_seed += 17;
        const std::string context = "kernel=" + std::string{ kernel_type_to_string(kernel) }
                                    + " density=" + std::to_string(c.density) + " num_sv=" + std::to_string(c.num_sv)
                                    + " dim=" + std::to_string(c.dim) + " batch=" + std::to_string(c.batch);
        const model<double> trained = random_sparse_model(kernel, c.num_sv, c.dim, c.density, case_seed);
        aos_matrix<double> queries = sparse_random_matrix(c.batch, c.dim, c.density, case_seed + 1);
        inject_sparse_edge_cases(queries);

        // forced sparse compiled form: the sparse sweeps must be exercised
        // even at density 0.5 and for the empty (density 0) panel
        const serve::compiled_model<double> forced{ trained, serve::compile_options{ .sparse_density_threshold = 1.5 } };
        EXPECT_TRUE(forced.sparse_sv()) << context;
        expect_sparse_paths_match_reference(forced, queries, context + " form=forced_sparse");

        // auto form under the default threshold: exercises the dense-form
        // fallbacks at high density and the sparse form below the threshold
        const serve::compiled_model<double> auto_form{ trained };
        expect_sparse_paths_match_reference(auto_form, queries, context + " form=auto");
    }
}

}  // namespace plssvm::test

#endif  // PLSSVM_TESTS_SERVE_SERVE_TEST_UTILS_HPP_
