/**
 * @file
 * @brief Tests for the zero-downtime model lifecycle: immutable snapshots,
 *        atomic reload swaps, in-engine input scaling (raw-feature client
 *        contract), and the concurrent reload stress scenario of the issue
 *        (every response consistent with exactly one snapshot, nothing lost).
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/io/scaling.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::compiled_model;
using plssvm::serve::engine_config;
using plssvm::serve::inference_engine;
using plssvm::serve::model_registry;
namespace test = plssvm::test;
using namespace std::chrono_literals;

TEST(SnapshotLifecycle, ReloadSwapsModelAndBumpsVersion) {
    const model<double> v1 = test::random_model(kernel_type::rbf, 37, 11, 42);
    const model<double> v2 = test::random_model(kernel_type::linear, 21, 11, 43);
    inference_engine<double> engine{ v1, engine_config{ .num_threads = 2 } };
    EXPECT_EQ(engine.snapshot_version(), 1u);

    const aos_matrix<double> points = test::random_matrix(16, 11, 7);
    const std::vector<double> before = engine.decision_values(points);
    const std::vector<double> expected_before = compiled_model<double>{ v1 }.decision_values(points);
    for (std::size_t p = 0; p < before.size(); ++p) {
        EXPECT_DOUBLE_EQ(before[p], expected_before[p]);
    }

    engine.reload(v2);
    EXPECT_EQ(engine.snapshot_version(), 2u);
    EXPECT_EQ(engine.stats().reloads, 1u);

    const std::vector<double> after = engine.decision_values(points);
    const std::vector<double> expected_after = compiled_model<double>{ v2 }.decision_values(points);
    for (std::size_t p = 0; p < after.size(); ++p) {
        EXPECT_DOUBLE_EQ(after[p], expected_after[p]);
    }
}

TEST(SnapshotLifecycle, ReloadWithWrongFeatureCountThrowsAndKeepsServing) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear, 37, 11) };
    EXPECT_THROW(engine.reload(test::random_model(kernel_type::linear, 37, 7)), plssvm::invalid_data_exception);
    EXPECT_EQ(engine.snapshot_version(), 1u) << "a failed reload must not publish anything";
    EXPECT_EQ(engine.decision_values(test::random_matrix(4, 11, 3)).size(), 4u);
}

TEST(SnapshotLifecycle, OldSnapshotStaysAliveForHolders) {
    const model<double> v1 = test::random_model(kernel_type::rbf, 37, 11, 42);
    inference_engine<double> engine{ v1, engine_config{ .num_threads = 2 } };
    const auto held = engine.snapshot();  // a "long-running batch"
    engine.reload(test::random_model(kernel_type::rbf, 19, 11, 99));

    // the held snapshot still evaluates as v1 even though v2 is live
    const aos_matrix<double> points = test::random_matrix(8, 11, 5);
    const std::vector<double> via_held = held->compiled.decision_values(points);
    const std::vector<double> expected = compiled_model<double>{ v1 }.decision_values(points);
    for (std::size_t p = 0; p < expected.size(); ++p) {
        EXPECT_DOUBLE_EQ(via_held[p], expected[p]);
    }
    EXPECT_EQ(held->version, 1u);
    EXPECT_EQ(engine.snapshot()->version, 2u);
}

/// Scaling fitted to map the training range onto [-1, 1].
std::shared_ptr<const plssvm::io::scaling<double>> fitted_scaling(const aos_matrix<double> &train) {
    auto scaling = std::make_shared<plssvm::io::scaling<double>>(-1.0, 1.0);
    scaling->fit(train);
    return scaling;
}

TEST(SnapshotLifecycle, InEngineScalingMatchesClientSideScaling) {
    const model<double> m = test::random_model(kernel_type::rbf, 37, 11);
    aos_matrix<double> raw = test::random_matrix(40, 11, 23);
    for (double &v : raw.data()) {
        v = 5.0 + 3.0 * v;  // clients send unscaled features
    }
    const auto scaling = fitted_scaling(raw);

    // reference: client scales, engine without transform
    inference_engine<double> plain{ m, engine_config{ .num_threads = 2 } };
    aos_matrix<double> scaled = raw;
    scaling->transform(scaled);
    const std::vector<double> expected = plain.predict(scaled);

    // in-engine: raw features in, snapshot applies the transform
    inference_engine<double> serving{ m, engine_config{ .num_threads = 2 }, scaling };
    const std::vector<double> actual = serving.predict(raw);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t p = 0; p < actual.size(); ++p) {
        EXPECT_DOUBLE_EQ(actual[p], expected[p]) << "point=" << p;
    }

    // the async submit path applies the same snapshot transform
    for (std::size_t p = 0; p < 8; ++p) {
        const std::vector<double> point(raw.row_data(p), raw.row_data(p) + raw.num_cols());
        EXPECT_EQ(serving.submit(point).get(), expected[p]) << "point=" << p;
    }
}

TEST(SnapshotLifecycle, InEngineScalingAppliesToSparseBatches) {
    const model<double> m = test::random_model(kernel_type::linear, 21, 11);
    aos_matrix<double> raw = test::random_matrix(24, 11, 29);
    std::size_t i = 0;
    for (double &v : raw.data()) {
        if (i++ % 3 != 0) {
            v = 0.0;  // sparse-ish client data (explicit zeros still scale!)
        }
    }
    const auto scaling = fitted_scaling(raw);
    inference_engine<double> serving{ m, engine_config{ .num_threads = 2 }, scaling };
    const std::vector<double> dense_values = serving.decision_values(raw);
    const std::vector<double> sparse_values = serving.decision_values(plssvm::csr_matrix<double>{ raw });
    ASSERT_EQ(sparse_values.size(), dense_values.size());
    for (std::size_t p = 0; p < sparse_values.size(); ++p) {
        EXPECT_DOUBLE_EQ(sparse_values[p], dense_values[p]) << "point=" << p;
    }
}

TEST(SnapshotLifecycle, ReloadCanAttachAndDetachScaling) {
    const model<double> m = test::random_model(kernel_type::linear, 21, 11);
    const aos_matrix<double> points = test::random_matrix(8, 11, 31);
    inference_engine<double> engine{ m, engine_config{ .num_threads = 2 } };
    const std::vector<double> unscaled = engine.decision_values(points);

    engine.reload(m, fitted_scaling(points));
    EXPECT_EQ(engine.snapshot_version(), 2u);
    const std::vector<double> with_scaling = engine.decision_values(points);
    // same model, but inputs now pass the transform -> values change
    bool any_difference = false;
    for (std::size_t p = 0; p < unscaled.size(); ++p) {
        any_difference |= with_scaling[p] != unscaled[p];
    }
    EXPECT_TRUE(any_difference);

    engine.reload(m);  // detach the transform again
    const std::vector<double> back = engine.decision_values(points);
    for (std::size_t p = 0; p < unscaled.size(); ++p) {
        EXPECT_DOUBLE_EQ(back[p], unscaled[p]);
    }
}

// The stress scenario of the issue: N producer threads submitting (async
// single points AND sync batches) while M reload threads swap snapshots. No
// response may be lost (futures all resolve), none duplicated (structurally
// impossible with futures), and every response must be consistent with
// exactly ONE of the model versions — a sync batch in particular must be
// evaluated entirely on a single snapshot, never a mix, never a half-built
// model. Linear kernels keep the blocked batch path bit-compatible with the
// per-point reference, so version fingerprints compare near-exactly.
TEST(SnapshotLifecycle, ConcurrentReloadStressEveryResponseMatchesOneSnapshot) {
    constexpr std::size_t num_versions = 4;
    constexpr std::size_t num_producers = 4;
    constexpr std::size_t iterations_per_producer = 60;
    constexpr std::size_t batch_rows = 16;  // >= min_blocked_batch -> lane path
    constexpr std::size_t num_reloaders = 2;
    constexpr std::size_t reloads_per_reloader = 8;
    constexpr std::size_t dim = 8;
    constexpr std::size_t num_queries = 64;

    // all versions share dim but have different support vectors/weights, so
    // their decision values for the same point differ (distinct fingerprints);
    // odd versions have very sparse SV panels and compile into the SPARSE
    // form under the engine's default threshold, so the reload storm also
    // flips the compiled form back and forth while batches are in flight
    std::vector<model<double>> versions;
    std::vector<compiled_model<double>> compiled;
    for (std::size_t v = 0; v < num_versions; ++v) {
        if (v % 2 == 0) {
            versions.push_back(test::random_model(kernel_type::linear, 16, dim, 1000 + v));
        } else {
            versions.push_back(test::random_sparse_model(kernel_type::linear, 16, dim, 0.15, 1000 + v));
        }
        compiled.emplace_back(versions[v]);
    }
    EXPECT_TRUE(compiled[1].sparse_sv()) << "odd versions must exercise the sparse compiled form";
    const aos_matrix<double> queries = test::random_matrix(num_queries, dim, 77);
    const plssvm::csr_matrix<double> csr_queries{ queries };
    // per-point fingerprint: the decision value of the point under version v
    std::vector<std::vector<double>> value_of(num_queries, std::vector<double>(num_versions));
    for (std::size_t p = 0; p < num_queries; ++p) {
        for (std::size_t v = 0; v < num_versions; ++v) {
            value_of[p][v] = compiled[v].decision_value(queries.row_data(p));
        }
    }
    const auto matches = [](const double a, const double b) {
        return std::abs(a - b) <= 1e-12 * (1.0 + std::abs(b));
    };

    inference_engine<double> engine{ versions[0], engine_config{ .num_threads = 2, .max_batch_size = 16, .batch_delay = 100us } };

    std::atomic<std::size_t> answered{ 0 };
    std::atomic<std::size_t> inconsistent{ 0 };
    std::atomic<std::size_t> mixed_batches{ 0 };
    std::atomic<bool> start{ false };
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < num_producers; ++t) {
        threads.emplace_back([&, t]() {
            while (!start.load()) {
                std::this_thread::yield();
            }
            for (std::size_t it = 0; it < iterations_per_producer; ++it) {
                // --- async single point through the micro-batcher ----------
                const std::size_t row = (t * iterations_per_producer + it) % num_queries;
                std::future<double> label = engine.submit(std::vector<double>(queries.row_data(row), queries.row_data(row) + dim));

                // --- sync batch through the dispatched lane path -----------
                const std::size_t offset = (t * 13 + it * 7) % (num_queries - batch_rows);
                aos_matrix<double> batch{ batch_rows, dim };
                for (std::size_t r = 0; r < batch_rows; ++r) {
                    std::copy(queries.row_data(offset + r), queries.row_data(offset + r) + dim, batch.row_data(r));
                }
                const std::vector<double> values = engine.decision_values(batch);
                // identify the snapshot by row 0, then the WHOLE batch must
                // be consistent with that one version
                std::size_t batch_version = num_versions;
                for (std::size_t v = 0; v < num_versions; ++v) {
                    if (matches(values[0], value_of[offset][v])) {
                        batch_version = v;
                        break;
                    }
                }
                if (batch_version == num_versions) {
                    ++inconsistent;
                } else {
                    for (std::size_t r = 1; r < batch_rows; ++r) {
                        if (!matches(values[r], value_of[offset + r][batch_version])) {
                            ++mixed_batches;
                            break;
                        }
                    }
                }

                // --- sync CSR batch through the sparse-query path ----------
                // (the linear sparse sweeps are bit-compatible with the dense
                // w-dot, so the same fingerprints identify the snapshot even
                // while reloads flip the compiled form dense <-> sparse)
                const std::vector<double> csr_values = engine.decision_values(csr_queries);
                std::size_t csr_version = num_versions;
                for (std::size_t v = 0; v < num_versions; ++v) {
                    if (matches(csr_values[0], value_of[0][v])) {
                        csr_version = v;
                        break;
                    }
                }
                if (csr_version == num_versions) {
                    ++inconsistent;
                } else {
                    for (std::size_t r = 1; r < num_queries; ++r) {
                        if (!matches(csr_values[r], value_of[r][csr_version])) {
                            ++mixed_batches;
                            break;
                        }
                    }
                }

                // the async label must match one version's label for the point
                const double answer = label.get();
                ++answered;
                bool label_ok = false;
                for (std::size_t v = 0; v < num_versions; ++v) {
                    label_ok |= answer == compiled[v].label_from_decision(value_of[row][v]);
                }
                if (!label_ok) {
                    ++inconsistent;
                }
            }
        });
    }
    for (std::size_t m = 0; m < num_reloaders; ++m) {
        threads.emplace_back([&, m]() {
            while (!start.load()) {
                std::this_thread::yield();
            }
            for (std::size_t r = 0; r < reloads_per_reloader; ++r) {
                engine.reload(versions[(m * reloads_per_reloader + r) % num_versions]);
            }
        });
    }
    start.store(true);
    for (std::thread &thread : threads) {
        thread.join();
    }

    EXPECT_EQ(answered.load(), num_producers * iterations_per_producer) << "no request may be lost";
    EXPECT_EQ(inconsistent.load(), 0u) << "every response must match exactly one model version";
    EXPECT_EQ(mixed_batches.load(), 0u) << "a batch must never span two snapshots";
    EXPECT_EQ(engine.stats().reloads, num_reloaders * reloads_per_reloader);
    // concurrent installs may publish in any order; versions are unique, and
    // the final one is whichever store won
    EXPECT_GE(engine.snapshot_version(), 2u);
    EXPECT_LE(engine.snapshot_version(), 1u + num_reloaders * reloads_per_reloader);
}

// Registry-level zero-downtime reload: the engine pointer handed to clients
// keeps serving across the swap, and the background-lane future reports
// completion/failure.
TEST(RegistryReload, SwapsSnapshotBehindAStableEnginePointer) {
    model_registry<double> registry{ 4 };
    const model<double> v1 = test::random_model(kernel_type::rbf, 37, 11, 1);
    const model<double> v2 = test::random_model(kernel_type::rbf, 19, 11, 2);
    auto engine = registry.load("tenant", v1);
    EXPECT_EQ(engine->snapshot_version(), 1u);

    registry.reload("tenant", v2).get();
    EXPECT_EQ(registry.find("tenant"), engine) << "reload must keep the resident engine";
    EXPECT_EQ(engine->snapshot_version(), 2u);

    const aos_matrix<double> points = test::random_matrix(8, 11, 3);
    const std::vector<double> expected = compiled_model<double>{ v2 }.decision_values(points);
    const std::vector<double> actual = engine->decision_values(points);
    for (std::size_t p = 0; p < expected.size(); ++p) {
        EXPECT_DOUBLE_EQ(actual[p], expected[p]);
    }
}

TEST(RegistryReload, MissingNameDegeneratesToLoad) {
    model_registry<double> registry{ 4 };
    registry.reload("fresh", test::random_model(kernel_type::linear)).get();
    EXPECT_TRUE(registry.contains("fresh"));
    EXPECT_NE(registry.find("fresh"), nullptr);
}

TEST(RegistryReload, TypeMismatchThrows) {
    model_registry<double> registry{ 4 };
    (void) registry.load("binary", test::random_model(kernel_type::linear));
    EXPECT_THROW((void) registry.reload("binary", plssvm::ext::multiclass_model<double>{}), plssvm::exception);
}

TEST(RegistryReload, FeatureMismatchSurfacesThroughTheFuture) {
    model_registry<double> registry{ 4 };
    (void) registry.load("tenant", test::random_model(kernel_type::linear, 37, 11));
    std::future<void> swap = registry.reload("tenant", test::random_model(kernel_type::linear, 37, 7));
    EXPECT_THROW(swap.get(), plssvm::invalid_data_exception);
    EXPECT_EQ(registry.find("tenant")->snapshot_version(), 1u);
}

TEST(RegistryReload, RefreshesLruAgeSoReloadedModelsAreNotEvictedFirst) {
    // regression: reload age bookkeeping must go through the same lock/clock
    // as find/load, otherwise a freshly reloaded model can be the LRU victim
    model_registry<double> registry{ 2 };
    (void) registry.load("a", test::random_model(kernel_type::linear));
    (void) registry.load("b", test::random_model(kernel_type::linear));
    registry.reload("a", test::random_model(kernel_type::linear)).get();  // "a" is now most recent
    (void) registry.load("c", test::random_model(kernel_type::linear));

    EXPECT_TRUE(registry.contains("a"));
    EXPECT_FALSE(registry.contains("b")) << "b is the LRU victim, not the reloaded a";
    EXPECT_TRUE(registry.contains("c"));
}

// Regression for the find()-age-refresh vs. concurrent load/reload race:
// hammer all registry paths that touch the LRU clock from many threads.
// Failures show up as TSan reports, crashes, or broken entries.
TEST(RegistryReload, ConcurrentFindLoadReloadStress) {
    model_registry<double> registry{ 4 };
    const model<double> base = test::random_model(kernel_type::linear, 16, 8);
    (void) registry.load("hot", base);

    std::atomic<bool> stop{ false };
    std::atomic<std::size_t> find_hits{ 0 };
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&]() {
            const aos_matrix<double> probe = test::random_matrix(2, 8, 5);
            while (!stop.load()) {
                if (auto engine = registry.find("hot")) {
                    ++find_hits;
                    (void) engine->decision_values(probe);
                }
            }
        });
    }
    threads.emplace_back([&]() {
        for (int i = 0; i < 20; ++i) {
            registry.reload("hot", test::random_model(kernel_type::linear, 16, 8, 500 + i)).get();
        }
        stop.store(true);
    });
    threads.emplace_back([&]() {
        int round = 0;
        while (!stop.load()) {
            (void) registry.load("churn-" + std::to_string(round++ % 3), test::random_model(kernel_type::linear, 8, 8));
        }
    });
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_GT(find_hits.load(), 0u);
    ASSERT_NE(registry.find("hot"), nullptr);
    EXPECT_EQ(registry.find("hot")->snapshot_version(), 21u);
}

}  // namespace
