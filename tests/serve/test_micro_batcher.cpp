/**
 * @file
 * @brief Unit tests for the request-coalescing `serve::micro_batcher`:
 *        size trigger, latency deadline, shutdown draining, and the
 *        flush-timer wakeup discipline (class-level QoS behaviour —
 *        priority ordering, deadline clamping, adaptive policy swaps — is
 *        covered in `test_qos.cpp`).
 */

#include "plssvm/exceptions.hpp"
#include "plssvm/serve/micro_batcher.hpp"
#include "plssvm/serve/qos.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <future>
#include <thread>
#include <vector>

namespace {

using plssvm::serve::batch_policy;
using plssvm::serve::micro_batcher;
using namespace std::chrono_literals;

TEST(MicroBatcher, RejectsZeroBatchSize) {
    EXPECT_THROW((micro_batcher<double>{ batch_policy{ 0, 1ms } }), plssvm::invalid_parameter_exception);
}

TEST(MicroBatcher, SizeTriggerReleasesFullBatchImmediately) {
    // deadline far away: only the size trigger can release the batch quickly
    micro_batcher<double> batcher{ batch_policy{ 4, std::chrono::microseconds{ 10'000'000 } } };
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(batcher.enqueue({ 1.0, 2.0 }));
    }
    const auto start = std::chrono::steady_clock::now();
    const auto batch = batcher.next_batch();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(batch.size(), 4u);
    EXPECT_EQ(batch.cls, plssvm::serve::request_class::interactive) << "enqueue without a class defaults to interactive";
    EXPECT_LT(elapsed, 5s) << "size-complete batch must not wait for the deadline";
    EXPECT_EQ(batcher.pending(), 0u);
}

TEST(MicroBatcher, DeadlineReleasesPartialBatch) {
    micro_batcher<double> batcher{ batch_policy{ 100, 50ms } };
    (void) batcher.enqueue({ 1.0 });
    (void) batcher.enqueue({ 2.0 });
    const auto start = std::chrono::steady_clock::now();
    const auto batch = batcher.next_batch();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(batch.size(), 2u);
    // the oldest request's deadline had mostly elapsed before next_batch was
    // called, so only a loose lower bound is meaningful
    EXPECT_GE(elapsed, 1ms);
}

TEST(MicroBatcher, BatchesNeverExceedMaxSize) {
    micro_batcher<double> batcher{ batch_policy{ 3, 1ms } };
    for (int i = 0; i < 8; ++i) {
        (void) batcher.enqueue({ static_cast<double>(i) });
    }
    batcher.shutdown();
    std::vector<std::size_t> sizes;
    while (true) {
        const auto batch = batcher.next_batch();
        if (batch.empty()) {
            break;
        }
        sizes.push_back(batch.size());
    }
    ASSERT_EQ(sizes.size(), 3u);
    EXPECT_EQ(sizes[0], 3u);
    EXPECT_EQ(sizes[1], 3u);
    EXPECT_EQ(sizes[2], 2u);
}

TEST(MicroBatcher, PreservesFifoOrderAndPayload) {
    micro_batcher<double> batcher{ batch_policy{ 8, 1ms } };
    for (int i = 0; i < 5; ++i) {
        (void) batcher.enqueue({ static_cast<double>(i), static_cast<double>(10 * i) });
    }
    batcher.shutdown();
    const auto batch = batcher.next_batch();
    ASSERT_EQ(batch.size(), 5u);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(batch.requests[i].point.size(), 2u);
        EXPECT_EQ(batch.requests[i].point[0], static_cast<double>(i));
        EXPECT_EQ(batch.requests[i].point[1], static_cast<double>(10 * i));
    }
}

TEST(MicroBatcher, ShutdownWakesBlockedConsumer) {
    micro_batcher<double> batcher{ batch_policy{ 4, std::chrono::microseconds{ 10'000'000 } } };
    std::thread consumer{ [&batcher]() {
        const auto batch = batcher.next_batch();
        EXPECT_TRUE(batch.empty());
    } };
    std::this_thread::sleep_for(20ms);  // let the consumer block on the empty queue
    batcher.shutdown();
    consumer.join();
}

TEST(MicroBatcher, EnqueueAfterShutdownThrows) {
    micro_batcher<double> batcher;
    batcher.shutdown();
    EXPECT_TRUE(batcher.is_shutdown());
    EXPECT_THROW((void) batcher.enqueue({ 1.0 }), plssvm::exception);
}

TEST(MicroBatcher, ShutdownStillDrainsPendingRequests) {
    micro_batcher<double> batcher{ batch_policy{ 10, std::chrono::microseconds{ 10'000'000 } } };
    auto future = batcher.enqueue({ 3.5 });
    batcher.shutdown();
    // pending requests survive shutdown and are handed out without waiting
    auto batch = batcher.next_batch();
    ASSERT_EQ(batch.size(), 1u);
    batch.requests[0].result.set_value(7.0);
    EXPECT_EQ(future.get(), 7.0);
    EXPECT_TRUE(batcher.next_batch().empty());
}

// Satellite regression: a consumer blocked on an EMPTY batcher must wait
// untimed on the condition variable — no flush-timer polling, no periodic
// wakeups on an idle engine.
TEST(MicroBatcher, IdleConsumerPerformsNoTimerWakeups) {
    micro_batcher<double> batcher{ batch_policy{ 8, 100us } };
    std::thread consumer{ [&batcher]() {
        const auto batch = batcher.next_batch();
        EXPECT_TRUE(batch.empty());
    } };
    // with a 100us flush delay, a polling implementation would rack up
    // hundreds of timer wakeups over this window
    std::this_thread::sleep_for(100ms);
    EXPECT_EQ(batcher.timer_wakeups(), 0u) << "idle consumer must block untimed";
    batcher.shutdown();
    consumer.join();
}

// The flush release of a partial batch is ONE timed wait on the oldest
// request's deadline, counted once — not a poll loop.
TEST(MicroBatcher, PartialBatchFlushIsASingleTimedWakeup) {
    micro_batcher<double> batcher{ batch_policy{ 100, 20ms } };
    std::thread consumer{ [&batcher]() {
        const auto batch = batcher.next_batch();
        EXPECT_EQ(batch.size(), 1u);
    } };
    std::this_thread::sleep_for(5ms);  // consumer is idle-blocked (untimed)
    (void) batcher.enqueue({ 1.0 });
    consumer.join();  // released by the 20ms flush deadline
    EXPECT_LE(batcher.timer_wakeups(), 1u);
    batcher.shutdown();
}

}  // namespace
