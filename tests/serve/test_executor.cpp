/**
 * @file
 * @brief Tests for `serve::executor`: the shared work-stealing worker pool,
 *        lane quota enforcement and fairness, steal/queue-depth accounting,
 *        and the thread-ownership acceptance scenario (8 resident engines,
 *        one executor's worth of worker threads).
 *
 * Concurrency assertions are gate-based (tasks block on futures/latches the
 * test controls), never timing-based, so they hold on single-core runners.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/exceptions.hpp"
#include "plssvm/serve/executor.hpp"
#include "plssvm/serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

using plssvm::serve::executor;
using plssvm::serve::lane_options;
using plssvm::serve::lane_stats;
namespace test = plssvm::test;
using namespace std::chrono_literals;

TEST(Executor, CreatesRequestedWorkerCount) {
    const executor ex{ 3 };
    EXPECT_EQ(ex.size(), 3u);
    // 0 = hardware concurrency, at least one worker
    const executor auto_sized{ 0 };
    EXPECT_GE(auto_sized.size(), 1u);
}

TEST(Executor, ProcessWideIsASingleton) {
    EXPECT_EQ(&executor::process_wide(), &executor::process_wide());
    EXPECT_GE(executor::process_wide().size(), 1u);
}

TEST(Executor, LaneRunsTasksAndReturnsFutures) {
    executor ex{ 2 };
    executor::lane lane = ex.create_lane();
    std::future<int> result = lane.enqueue([]() { return 41 + 1; });
    EXPECT_EQ(result.get(), 42);

    std::atomic<int> fired{ 0 };
    for (int i = 0; i < 16; ++i) {
        lane.enqueue_detached([&fired]() { ++fired; });
    }
    // lane destruction drains everything that was enqueued
    executor::lane moved = std::move(lane);
    moved = executor::lane{};
    EXPECT_EQ(fired.load(), 16);
}

TEST(Executor, DetachedLaneThrowsOnEnqueue) {
    executor::lane detached;
    EXPECT_FALSE(detached.attached());
    EXPECT_THROW(detached.enqueue_detached([]() {}), plssvm::exception);
}

TEST(Executor, LaneMaxConcurrencyClampsQuotaToPool) {
    executor ex{ 2 };
    const executor::lane unbounded = ex.create_lane();
    EXPECT_EQ(unbounded.max_concurrency(), 2u);
    const executor::lane capped = ex.create_lane(lane_options{ .quota = 1 });
    EXPECT_EQ(capped.max_concurrency(), 1u);
    const executor::lane oversized = ex.create_lane(lane_options{ .quota = 64 });
    EXPECT_EQ(oversized.max_concurrency(), 2u);
}

TEST(Executor, StatsCountSubmittedCompletedAndQueueDepth) {
    executor ex{ 1 };
    executor::lane lane = ex.create_lane();

    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::future<void> running = lane.enqueue([gate]() { gate.wait(); });
    // the single worker is busy -> these stay queued
    std::future<void> queued_a = lane.enqueue([]() {});
    std::future<void> queued_b = lane.enqueue([]() {});

    // wait until the first task actually occupies the worker
    while (lane.stats().in_flight == 0) {
        std::this_thread::yield();
    }
    lane_stats stats = lane.stats();
    EXPECT_EQ(stats.submitted, 3u);
    EXPECT_EQ(stats.in_flight, 1u);
    EXPECT_EQ(stats.queue_depth, 2u);
    EXPECT_GE(stats.max_queue_depth, 2u);

    release.set_value();
    running.get();
    queued_a.get();
    queued_b.get();
    // completion counters are bumped after the future resolves; wait for them
    while (lane.stats().completed < 3 || lane.stats().in_flight > 0) {
        std::this_thread::yield();
    }
    stats = lane.stats();
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.in_flight, 0u);
}

// Quota semantics: a lane never occupies more workers than its quota, so the
// remaining workers stay available no matter how much work the lane queues.
TEST(Executor, QuotaCapsConcurrentWorkersOfALane) {
    executor ex{ 2 };
    executor::lane greedy = ex.create_lane(lane_options{ .name = "greedy", .quota = 1 });
    executor::lane quiet = ex.create_lane(lane_options{ .name = "quiet" });

    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::atomic<std::size_t> greedy_running{ 0 };
    std::atomic<std::size_t> greedy_peak{ 0 };
    std::vector<std::future<void>> pending;
    for (std::size_t i = 0; i < 8; ++i) {
        pending.push_back(greedy.enqueue([gate, &greedy_running, &greedy_peak]() {
            const std::size_t now = ++greedy_running;
            std::size_t peak = greedy_peak.load();
            while (now > peak && !greedy_peak.compare_exchange_weak(peak, now)) {
            }
            gate.wait();
            --greedy_running;
        }));
    }

    // even with 8 blocking greedy tasks queued, the quota of 1 leaves a free
    // worker: the quiet lane's task completes while greedy work is pending
    std::future<int> answer = quiet.enqueue([]() { return 7; });
    EXPECT_EQ(answer.get(), 7);
    EXPECT_GT(greedy.stats().queue_depth, 0u) << "greedy backlog must still be pending";

    release.set_value();
    for (std::future<void> &f : pending) {
        f.get();
    }
    EXPECT_EQ(greedy_peak.load(), 1u) << "quota 1 must never run two greedy tasks at once";
}

// Fairness: lanes are drained in rotation order, so a lane that floods the
// executor cannot starve another lane's queued work even without quotas.
TEST(Executor, SaturatingLaneCannotStarveAnother) {
    executor ex{ 1 };  // worst case: every task fights for one worker
    executor::lane flood = ex.create_lane(lane_options{ .name = "flood" });
    executor::lane victim = ex.create_lane(lane_options{ .name = "victim" });

    // hold the worker so both lanes queue up behind it
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::future<void> holder = flood.enqueue([gate]() { gate.wait(); });

    std::atomic<std::size_t> flood_done{ 0 };
    std::size_t victim_seen_flood_done = 0;
    for (std::size_t i = 0; i < 64; ++i) {
        flood.enqueue_detached([&flood_done]() { ++flood_done; });
    }
    std::future<void> victim_task = victim.enqueue([&flood_done, &victim_seen_flood_done]() {
        victim_seen_flood_done = flood_done.load();
    });

    release.set_value();
    holder.get();
    victim_task.get();
    // rotation order guarantees the victim ran after at most one sweep of
    // the flood lane, not behind its entire 64-task backlog
    EXPECT_LT(victim_seen_flood_done, 64u) << "victim must not wait for the whole flood backlog";
}

TEST(Executor, StealAndCompletionAccountingIsConsistent) {
    executor ex{ 2 };
    executor::lane lane = ex.create_lane();
    std::vector<std::future<void>> pending;
    for (std::size_t i = 0; i < 32; ++i) {
        pending.push_back(lane.enqueue([]() {}));
    }
    for (std::future<void> &f : pending) {
        f.get();
    }
    // completion counters are bumped after the future resolves; wait for them
    while (lane.stats().completed < 32) {
        std::this_thread::yield();
    }
    const lane_stats stats = lane.stats();
    EXPECT_EQ(stats.submitted, 32u);
    EXPECT_EQ(stats.completed, 32u);
    EXPECT_LE(stats.stolen, stats.completed) << "steals are a subset of completions";
    EXPECT_EQ(ex.total_steals() >= stats.stolen, true);
}

TEST(Executor, ManyLanesShareTheWorkersToCompletion) {
    executor ex{ 2 };
    constexpr std::size_t num_lanes = 8;
    constexpr std::size_t tasks_per_lane = 50;
    std::vector<executor::lane> lanes;
    lanes.reserve(num_lanes);
    std::atomic<std::size_t> done{ 0 };
    for (std::size_t l = 0; l < num_lanes; ++l) {
        lanes.push_back(ex.create_lane(lane_options{ .name = "lane-" + std::to_string(l) }));
    }
    EXPECT_EQ(ex.num_lanes(), num_lanes);
    for (executor::lane &lane : lanes) {
        for (std::size_t i = 0; i < tasks_per_lane; ++i) {
            lane.enqueue_detached([&done]() { ++done; });
        }
    }
    lanes.clear();  // drains every lane
    EXPECT_EQ(done.load(), num_lanes * tasks_per_lane);
    EXPECT_EQ(ex.num_lanes(), 0u);
}

// Regression: a task's closure can hold the LAST reference to an engine
// (the registry's reload task does exactly that when the engine is evicted
// mid-compile and clients dropped theirs). The engine teardown then runs on
// a worker thread: its closure must not be destroyed under the scheduler
// mutex, and the final drain of pending requests must run inline instead of
// fanning out over (and blocking on) the worker's own pool — on this
// single-worker executor, either bug is a deadlock, not a flake.
TEST(Executor, WorkerCanTearDownAnEngineItOwnsTheLastReferenceTo) {
    executor ex{ 1 };
    plssvm::serve::engine_config config;
    config.exec = &ex;
    // long deadline + large batch: the submits below are still pending when
    // the engine dies, so teardown must drain them (>= min_blocked_batch of
    // them, so the drain would take the pooled path if it fanned out)
    config.max_batch_size = 64;
    config.batch_delay = std::chrono::microseconds{ 5'000'000 };
    // static batching: the adaptive tuner would otherwise release small idle
    // batches early and the submits would no longer be pending at teardown
    config.qos.adaptive_batching = false;
    auto engine = std::make_shared<plssvm::serve::inference_engine<double>>(
        test::random_model(plssvm::kernel_type::rbf), config);

    const plssvm::aos_matrix<double> points = test::random_matrix(16, 11, 13);
    std::vector<std::future<double>> pending;
    for (std::size_t p = 0; p < points.num_rows(); ++p) {
        pending.push_back(engine->submit(std::vector<double>(points.row_data(p), points.row_data(p) + points.num_cols())));
    }

    executor::lane lane = ex.create_lane();
    lane.enqueue([last_owner = std::move(engine)]() mutable {
        last_owner.reset();  // ~inference_engine on the worker thread
    }).get();

    for (std::future<double> &f : pending) {
        (void) f.get();  // drained during teardown, never dropped
    }
}

#ifdef __linux__
/// Current thread count of this process (/proc/self/status "Threads:" line).
[[nodiscard]] std::size_t process_thread_count() {
    std::ifstream status{ "/proc/self/status" };
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            return static_cast<std::size_t>(std::stoul(line.substr(8)));
        }
    }
    return 0;
}
#endif

// The acceptance scenario of the issue: a registry with 8 resident engines
// on a 4-core-sized executor creates at most one shared executor's worth of
// worker threads — every engine runs on the same 4 workers.
TEST(Executor, RegistryWithEightEnginesSharesOneFourWorkerExecutor) {
    executor ex{ 4 };
    plssvm::serve::engine_config config;
    config.exec = &ex;
    config.num_threads = 2;  // per-engine quota, not per-engine threads
    plssvm::serve::model_registry<double> registry{ 8, config };

#ifdef __linux__
    const std::size_t threads_before = process_thread_count();
#endif
    std::vector<std::shared_ptr<plssvm::serve::inference_engine<double>>> engines;
    for (int i = 0; i < 8; ++i) {
        engines.push_back(registry.load("tenant-" + std::to_string(i), test::random_model(plssvm::kernel_type::rbf)));
    }
#ifdef __linux__
    // loading 8 engines spawns NO pool threads (the executor pre-exists) —
    // only the 8 micro-batcher drain threads, one per engine
    const std::size_t threads_after = process_thread_count();
    ASSERT_GT(threads_before, 0u);
    EXPECT_EQ(threads_after - threads_before, 8u)
        << "engines must not create pool threads beyond the shared executor";
#endif
    EXPECT_EQ(registry.size(), 8u);
    for (const auto &engine : engines) {
        EXPECT_EQ(&engine->shared_executor(), &ex) << "every engine must share the registry executor";
        EXPECT_EQ(engine->stats().executor_threads, 4u);
        EXPECT_EQ(engine->num_threads(), 2u);  // quota, clamped to the pool
    }
    // 8 engine lanes + the registry's background reload lane, all on 4 workers
    EXPECT_EQ(ex.num_lanes(), 9u);
    EXPECT_EQ(ex.size(), 4u);

    // all engines actually serve on the shared workers
    const plssvm::aos_matrix<double> points = test::random_matrix(32, 11, 17);
    for (const auto &engine : engines) {
        EXPECT_EQ(engine->predict(points).size(), 32u);
    }
}

}  // namespace
