/**
 * @file
 * @brief Unit tests for `serve::compiled_model`: numerical parity with the
 *        naive decision function and with the `decision_values` free function
 *        for every kernel type.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/serve/compiled_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_params;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::compiled_model;
namespace test = plssvm::test;

/// Naive reference: direct sum over kernel evaluations, no precomputation.
std::vector<double> naive_decision_values(const model<double> &m, const aos_matrix<double> &points) {
    const kernel_params<double> kp{ m.params().kernel, m.params().degree, m.effective_gamma(), m.params().coef0 };
    std::vector<double> values(points.num_rows());
    for (std::size_t p = 0; p < points.num_rows(); ++p) {
        double sum = 0.0;
        for (std::size_t i = 0; i < m.num_support_vectors(); ++i) {
            sum += m.alpha()[i] * plssvm::kernels::apply(kp, m.support_vectors().row_data(i), points.row_data(p), m.num_features());
        }
        values[p] = sum + m.bias();
    }
    return values;
}

TEST(CompiledModel, MatchesNaiveReferenceForAllKernels) {
    const aos_matrix<double> points = test::random_matrix(23, 11, 7);
    for (const kernel_type kernel : test::all_kernel_types()) {
        const model<double> m = test::random_model(kernel);
        const compiled_model<double> compiled{ m };
        const std::vector<double> expected = naive_decision_values(m, points);
        const std::vector<double> actual = compiled.decision_values(points);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t p = 0; p < actual.size(); ++p) {
            EXPECT_NEAR(actual[p], expected[p], 1e-10 * (1.0 + std::abs(expected[p])))
                << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
        }
    }
}

TEST(CompiledModel, BitExactWithDecisionValuesFreeFunction) {
    const aos_matrix<double> points = test::random_matrix(17, 11, 8);
    for (const kernel_type kernel : test::all_kernel_types()) {
        const model<double> m = test::random_model(kernel);
        const compiled_model<double> compiled{ m };
        const std::vector<double> via_free = plssvm::decision_values(m, points);
        const std::vector<double> via_compiled = compiled.decision_values(points);
        ASSERT_EQ(via_free.size(), via_compiled.size());
        for (std::size_t p = 0; p < via_free.size(); ++p) {
            EXPECT_DOUBLE_EQ(via_free[p], via_compiled[p]) << "kernel=" << plssvm::kernel_type_to_string(kernel);
        }
    }
}

TEST(CompiledModel, SerialRangeMatchesParallelBatch) {
    const aos_matrix<double> points = test::random_matrix(19, 11, 9);
    for (const kernel_type kernel : test::all_kernel_types()) {
        const compiled_model<double> compiled{ test::random_model(kernel) };
        const std::vector<double> parallel = compiled.decision_values(points);
        // evaluate in two uneven serial chunks
        std::vector<double> serial(points.num_rows());
        compiled.decision_values_into(points, 0, 5, serial.data());
        compiled.decision_values_into(points, 5, points.num_rows(), serial.data() + 5);
        for (std::size_t p = 0; p < serial.size(); ++p) {
            EXPECT_DOUBLE_EQ(serial[p], parallel[p]);
        }
    }
}

TEST(CompiledModel, SinglePointMatchesBatch) {
    const aos_matrix<double> points = test::random_matrix(5, 11, 10);
    for (const kernel_type kernel : test::all_kernel_types()) {
        const compiled_model<double> compiled{ test::random_model(kernel) };
        const std::vector<double> batch = compiled.decision_values(points);
        for (std::size_t p = 0; p < points.num_rows(); ++p) {
            // single-point goes through the scalar reference sweep, the batch
            // through the ISA-multi-versioned blocked kernels; on AVX2+ hosts
            // FMA contraction makes them tolerance-equal, not bit-equal
            const double single = compiled.decision_value(points.row_data(p));
            EXPECT_NEAR(single, batch[p], 1e-10 * (1.0 + std::abs(batch[p])))
                << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
        }
    }
}

TEST(CompiledModel, PredictLabelsMapsToLabelDomain) {
    const model<double> m = test::random_model(kernel_type::linear);
    const compiled_model<double> compiled{ m };
    const aos_matrix<double> points = test::random_matrix(29, 11, 11);
    const std::vector<double> values = compiled.decision_values(points);
    const std::vector<double> labels = compiled.predict_labels(points);
    for (std::size_t p = 0; p < labels.size(); ++p) {
        EXPECT_EQ(labels[p], values[p] > 0.0 ? m.positive_label() : m.negative_label());
    }
}

TEST(CompiledModel, FeatureCountMismatchThrows) {
    const compiled_model<double> compiled{ test::random_model(kernel_type::rbf) };
    const aos_matrix<double> wrong = test::random_matrix(3, 5, 12);
    EXPECT_THROW((void) compiled.decision_values(wrong), plssvm::invalid_data_exception);
}

TEST(CompiledModel, ExposesModelMetadata) {
    const model<double> m = test::random_model(kernel_type::polynomial, 37, 11);
    const compiled_model<double> compiled{ m };
    EXPECT_EQ(compiled.num_support_vectors(), 37u);
    EXPECT_EQ(compiled.num_features(), 11u);
    EXPECT_EQ(compiled.bias(), m.bias());
    EXPECT_EQ(compiled.positive_label(), m.positive_label());
    EXPECT_EQ(compiled.negative_label(), m.negative_label());
    EXPECT_EQ(compiled.params().kernel, kernel_type::polynomial);
    EXPECT_FALSE(compiled.empty());
    EXPECT_TRUE(compiled_model<double>{}.empty());
}

/// Random matrix with ~60% exact zeros (sparse query workload).
[[nodiscard]] aos_matrix<double> sparse_random_matrix(const std::size_t rows, const std::size_t cols, const std::uint64_t seed) {
    aos_matrix<double> dense = test::random_matrix(rows, cols, seed);
    std::size_t i = 0;
    for (double &v : dense.data()) {
        if (i++ % 5 < 3) {
            v = 0.0;
        }
    }
    return dense;
}

TEST(CompiledModel, SparseDecisionValuesMatchDenseForAllKernels) {
    const aos_matrix<double> dense = sparse_random_matrix(23, 11, 14);
    const plssvm::csr_matrix<double> sparse{ dense };
    for (const kernel_type kernel : test::all_kernel_types()) {
        const compiled_model<double> compiled{ test::random_model(kernel) };
        const std::vector<double> expected = compiled.decision_values(dense);
        const std::vector<double> actual = compiled.decision_values(sparse);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t p = 0; p < actual.size(); ++p) {
            // the linear fast path sums only the nonzeros -> different
            // summation order than the dense dot, hence tolerance-equal
            EXPECT_NEAR(actual[p], expected[p], 1e-10 * (1.0 + std::abs(expected[p])))
                << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
        }
    }
}

TEST(CompiledModel, SparseRangeEvaluationMatchesFullBatch) {
    const aos_matrix<double> dense = sparse_random_matrix(90, 11, 15);
    const plssvm::csr_matrix<double> sparse{ dense };
    for (const kernel_type kernel : { kernel_type::linear, kernel_type::rbf }) {
        const compiled_model<double> compiled{ test::random_model(kernel) };
        const std::vector<double> full = compiled.decision_values(sparse);
        std::vector<double> range(90);
        compiled.decision_values_into(sparse, 0, 70, range.data());
        compiled.decision_values_into(sparse, 70, 90, range.data() + 70);
        for (std::size_t p = 0; p < 90; ++p) {
            EXPECT_DOUBLE_EQ(range[p], full[p]) << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
        }
    }
}

TEST(CompiledModel, SparseFeatureCountMismatchThrows) {
    const compiled_model<double> compiled{ test::random_model(kernel_type::linear) };
    const plssvm::csr_matrix<double> wrong{ test::random_matrix(3, 5, 16) };
    EXPECT_THROW((void) compiled.decision_values(wrong), plssvm::invalid_data_exception);
}

TEST(CompiledModel, RbfOfSupportVectorItselfStaysSane) {
    // the cached-norm distance form can go slightly negative on identical
    // points; the clamp must keep k(x, x) = 1 exactly representable
    const model<double> m = test::random_model(kernel_type::rbf, 8, 6, 21);
    const compiled_model<double> compiled{ m };
    aos_matrix<double> sv_points{ m.num_support_vectors(), m.num_features() };
    for (std::size_t i = 0; i < m.num_support_vectors(); ++i) {
        for (std::size_t k = 0; k < m.num_features(); ++k) {
            sv_points(i, k) = m.support_vectors()(i, k);
        }
    }
    const std::vector<double> actual = compiled.decision_values(sv_points);
    const std::vector<double> expected = naive_decision_values(m, sv_points);
    for (std::size_t p = 0; p < actual.size(); ++p) {
        EXPECT_NEAR(actual[p], expected[p], 1e-10 * (1.0 + std::abs(expected[p])));
    }
}

}  // namespace
