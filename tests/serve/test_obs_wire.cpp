/**
 * @file
 * @brief Tests of the wire-to-wire observability plane (gtest prefix `Obs`,
 *        ctest label `obs`): rolling time-series store semantics under a
 *        fake clock (rollover, ring wraparound, idle gaps), multi-window
 *        SLO burn-rate determinism, SLO alerts feeding the health monitor
 *        and flight recorder, wire trace propagation parity (binary + JSON,
 *        sampled vs client-forced), merged exposition validity, and drain
 *        readiness semantics.
 */

#include "plssvm/serve/net/framing.hpp"
#include "plssvm/serve/net/protocol.hpp"
#include "plssvm/serve/net/server.hpp"

#include "plssvm/core/parameter.hpp"
#include "plssvm/serve/fault.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/model_registry.hpp"
#include "plssvm/serve/obs.hpp"
#include "plssvm/serve/qos.hpp"
#include "plssvm/serve/slo.hpp"
#include "serve/serve_test_utils.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace {

using plssvm::kernel_type;
using plssvm::serve::engine_config;
using plssvm::serve::health_state;
using plssvm::serve::inference_engine;
using plssvm::serve::model_registry;
using plssvm::serve::request_class;
using plssvm::serve::request_options;
using plssvm::serve::slo_alert_state;
using plssvm::serve::slo_config;
using plssvm::serve::slo_engine;
using plssvm::serve::slo_report;
using plssvm::serve::class_index;
namespace fault = plssvm::serve::fault;
namespace obs = plssvm::serve::obs;
namespace net = plssvm::serve::net;
namespace test = plssvm::test;
using namespace std::chrono_literals;

/// A fully deterministic fake steady-clock instant: @p seconds past an
/// arbitrary epoch offset (non-zero so bucket index arithmetic is exercised
/// away from zero).
[[nodiscard]] std::chrono::steady_clock::time_point fake_time(const std::int64_t seconds) {
    return std::chrono::steady_clock::time_point{} + std::chrono::seconds{ 10'000 + seconds };
}

/// Poll until @p predicate holds or ~5 s elapses.
template <typename Predicate>
[[nodiscard]] bool eventually(Predicate &&predicate) {
    for (int i = 0; i < 5000; ++i) {
        if (predicate()) {
            return true;
        }
        std::this_thread::sleep_for(1ms);
    }
    return predicate();
}

// ---------------------------------------------------------------------------
// rolling time-series store (fake clock: fully deterministic)
// ---------------------------------------------------------------------------

TEST(ObsTimeSeries, FakeClockWindowAggregation) {
    obs::time_series_store store;
    // one completion per second for 10 s, plus one shed and one failure in
    // the last second
    for (std::int64_t s = 0; s < 10; ++s) {
        store.record_complete(request_class::interactive, fake_time(s), 0.002, false);
    }
    store.record_shed(request_class::interactive, fake_time(9));
    store.record_failure(request_class::batch, fake_time(9));

    const auto views = store.windows(fake_time(9), { 10s, 60s });
    ASSERT_EQ(views.size(), 2U);
    const std::size_t i = class_index(request_class::interactive);
    // the 10 s window ends at the query instant and covers all 10 buckets
    EXPECT_EQ(views[0].completed[i], 10U);
    EXPECT_EQ(views[0].shed[i], 1U);
    EXPECT_EQ(views[0].failed[class_index(request_class::batch)], 1U);
    EXPECT_DOUBLE_EQ(views[0].rate(request_class::interactive), 1.0);
    EXPECT_DOUBLE_EQ(views[0].availability(request_class::interactive), 10.0 / 11.0);
    // the latency histogram rides along per bucket and merges across them
    EXPECT_EQ(views[0].latency[i].count(), 10U);
    EXPECT_EQ(views[0].latency[i].count_le(0.005), 10U);
    // the wider window sees the same traffic (nothing older exists)
    EXPECT_EQ(views[1].completed[i], 10U);
    EXPECT_EQ(views[1].total_completed(), 10U);
}

TEST(ObsTimeSeries, WindowExcludesBucketsOlderThanItsSpan) {
    obs::time_series_store store;
    for (std::int64_t s = 0; s < 30; ++s) {
        store.record_complete(request_class::interactive, fake_time(s), 0.001, false);
    }
    const auto views = store.windows(fake_time(29), { 10s, 60s });
    const std::size_t i = class_index(request_class::interactive);
    EXPECT_EQ(views[0].completed[i], 10U) << "10 s window must only count seconds 20..29";
    EXPECT_EQ(views[1].completed[i], 30U);
}

TEST(ObsTimeSeries, RingWraparoundLapsOldBuckets) {
    obs::time_series_store store{ 8 };  // tiny ring: every 8 s the bucket recycles
    ASSERT_EQ(store.capacity_seconds(), 8U);
    for (std::int64_t s = 0; s <= 20; ++s) {
        store.record_complete(request_class::interactive, fake_time(s), 0.001, false);
    }
    // a 10 s window wants seconds 11..20, but the 8-slot ring only still
    // holds seconds 13..20 — the lapped buckets must be gone, not double
    // counted
    const auto views = store.windows(fake_time(20), { 10s });
    EXPECT_EQ(views[0].completed[class_index(request_class::interactive)], 8U);
}

TEST(ObsTimeSeries, LappedObservationIsDropped) {
    obs::time_series_store store{ 8 };
    store.record_complete(request_class::interactive, fake_time(0), 0.001, false);
    // rotate the same physical bucket to a newer second...
    store.record_complete(request_class::interactive, fake_time(8), 0.001, false);
    // ...then deliver a straggler stamped with the lapped second: dropped
    store.record_complete(request_class::interactive, fake_time(0), 0.001, false);
    const auto views = store.windows(fake_time(8), { 60s });
    EXPECT_EQ(views[0].completed[class_index(request_class::interactive)], 1U);
}

TEST(ObsTimeSeries, IdleGapYieldsZeroRatesAndFullAvailability) {
    obs::time_series_store store;
    store.record_complete(request_class::interactive, fake_time(0), 0.001, false);
    store.record_failure(request_class::interactive, fake_time(0));
    // query far past the recorded traffic: every window is empty
    const auto views = store.windows(fake_time(1'000), { 10s, 60s, 300s });
    for (const auto &view : views) {
        EXPECT_EQ(view.total_completed(), 0U);
        EXPECT_DOUBLE_EQ(view.rate(request_class::interactive), 0.0);
        EXPECT_DOUBLE_EQ(view.availability(request_class::interactive), 1.0) << "idle must read as available";
    }
}

// ---------------------------------------------------------------------------
// SLO burn-rate engine (pure function of (store, now): deterministic)
// ---------------------------------------------------------------------------

/// SLO config with an enabled interactive objective used by the burn tests.
[[nodiscard]] slo_config burn_test_config() {
    slo_config config;
    auto &objective = config.objectives[class_index(request_class::interactive)];
    objective.enabled = true;
    objective.latency_threshold_s = 0.010;
    objective.latency_target = 0.99;       // 1% latency error budget
    objective.availability_target = 0.999;  // 0.1% availability error budget
    return config;
}

TEST(ObsSloBurn, BurnRateArithmetic) {
    // 2% errors against a 1% budget burn at rate 2
    EXPECT_NEAR(slo_engine::burn_rate(0.02, 0.99), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(slo_engine::burn_rate(0.0, 0.99), 0.0);
    EXPECT_DOUBLE_EQ(slo_engine::burn_rate(-0.5, 0.99), 0.0) << "negative error fractions clamp to zero";
    // zero budget (target 1.0): any error burns infinitely fast, none burns at all
    EXPECT_TRUE(std::isinf(slo_engine::burn_rate(0.25, 1.0)));
    EXPECT_DOUBLE_EQ(slo_engine::burn_rate(0.0, 1.0), 0.0);
}

TEST(ObsSloBurn, SustainedLatencyBurnGoesCritical) {
    obs::time_series_store store;
    // every request blows the 10 ms threshold, sustained across the full
    // slow window: error fraction 1.0 against a 1% budget = burn rate 100
    for (std::int64_t s = 0; s <= 300; ++s) {
        store.record_complete(request_class::interactive, fake_time(s), 0.050, false);
    }
    const slo_engine engine{ burn_test_config() };
    const slo_report report = engine.evaluate(store, fake_time(300));
    const auto &cls = report.classes[class_index(request_class::interactive)];
    EXPECT_GE(cls.latency_fast_burn, 14.4);
    EXPECT_GE(cls.latency_slow_burn, 14.4);
    EXPECT_EQ(cls.state, slo_alert_state::critical);
    EXPECT_EQ(report.worst, slo_alert_state::critical);
}

TEST(ObsSloBurn, SustainedAvailabilityBurnGoesCritical) {
    obs::time_series_store store;
    // half the offered traffic fails for the full slow window: 50% errors
    // against a 0.1% budget = burn rate 500
    for (std::int64_t s = 0; s <= 300; ++s) {
        store.record_complete(request_class::interactive, fake_time(s), 0.001, false);
        store.record_failure(request_class::interactive, fake_time(s));
    }
    const slo_engine engine{ burn_test_config() };
    const slo_report report = engine.evaluate(store, fake_time(300));
    const auto &cls = report.classes[class_index(request_class::interactive)];
    EXPECT_GE(cls.availability_fast_burn, 14.4);
    EXPECT_GE(cls.availability_slow_burn, 14.4);
    EXPECT_EQ(report.worst, slo_alert_state::critical);
}

TEST(ObsSloBurn, FastWindowSpikeAloneDoesNotAlert) {
    obs::time_series_store store;
    // long healthy history...
    for (std::int64_t s = 0; s <= 290; ++s) {
        store.record_complete(request_class::interactive, fake_time(s), 0.001, false);
    }
    // ...then a short burst of slow requests in the last seconds: the fast
    // window burns hot, but the slow window proves it is not yet sustained
    for (std::int64_t s = 296; s <= 300; ++s) {
        for (int k = 0; k < 3; ++k) {
            store.record_complete(request_class::interactive, fake_time(s), 0.050, false);
        }
    }
    const slo_engine engine{ burn_test_config() };
    const slo_report report = engine.evaluate(store, fake_time(300));
    const auto &cls = report.classes[class_index(request_class::interactive)];
    EXPECT_GE(cls.latency_fast_burn, 14.4) << "the spike must register in the fast window";
    EXPECT_LT(cls.latency_slow_burn, 6.0) << "diluted over the slow window";
    EXPECT_EQ(cls.state, slo_alert_state::ok) << "multi-window gate: no alert on a blip";
}

TEST(ObsSloBurn, MinRequestsGateSuppressesNoise) {
    obs::time_series_store store;
    // 5 catastrophic requests — burn rate 100, but far below min_requests
    for (int k = 0; k < 5; ++k) {
        store.record_complete(request_class::interactive, fake_time(300), 0.050, false);
    }
    slo_config config = burn_test_config();
    config.min_requests = 10;
    const slo_report report = slo_engine{ config }.evaluate(store, fake_time(300));
    const auto &cls = report.classes[class_index(request_class::interactive)];
    EXPECT_EQ(cls.fast_offered, 5U);
    EXPECT_GE(cls.latency_fast_burn, 14.4) << "burn rates are still reported";
    EXPECT_EQ(cls.state, slo_alert_state::ok) << "too little traffic to page on";
}

TEST(ObsSloBurn, DisabledObjectivesNeverAlert) {
    obs::time_series_store store;
    for (std::int64_t s = 0; s <= 300; ++s) {
        store.record_failure(request_class::interactive, fake_time(s));
    }
    const slo_engine engine{};  // all objectives disabled by default
    EXPECT_FALSE(engine.any_enabled());
    const slo_report report = engine.evaluate(store, fake_time(300));
    EXPECT_EQ(report.worst, slo_alert_state::ok);
}

TEST(ObsSloBurn, ReportRendersAsJson) {
    obs::time_series_store store;
    for (std::int64_t s = 0; s <= 300; ++s) {
        store.record_complete(request_class::interactive, fake_time(s), 0.050, false);
    }
    const slo_engine engine{ burn_test_config() };
    const std::string json = plssvm::serve::to_json(engine.evaluate(store, fake_time(300)));
    EXPECT_NE(json.find("\"worst\": \"critical\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"latency_fast_burn\""), std::string::npos);
    EXPECT_NE(json.find("\"availability_slow_burn\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO alerts -> health monitor -> flight recorder
// ---------------------------------------------------------------------------

TEST(ObsSloHealth, SloFlagsDriveHealthMonitor) {
    fault::health_monitor monitor;
    fault::health_inputs in{};
    EXPECT_EQ(monitor.observe(in).to, health_state::healthy);

    in.slo_degraded = true;
    const auto degraded = monitor.observe(in);
    EXPECT_TRUE(degraded.changed);
    EXPECT_EQ(degraded.to, health_state::degraded);

    in.slo_critical = true;
    const auto critical = monitor.observe(in);
    EXPECT_TRUE(critical.changed);
    EXPECT_EQ(critical.to, health_state::critical);

    in.slo_degraded = false;
    in.slo_critical = false;
    const auto recovered = monitor.observe(in);
    EXPECT_TRUE(recovered.changed);
    EXPECT_EQ(recovered.to, health_state::healthy);
    EXPECT_EQ(monitor.transitions(), 3U);
}

TEST(ObsSloHealth, HealthTransitionForcesRecorderDump) {
    obs::flight_recorder recorder;
    EXPECT_EQ(recorder.health_dumps(), 0U);
    recorder.record_health_transition("healthy", "critical");
    EXPECT_EQ(recorder.health_dumps(), 1U);
    const std::string dump = recorder.last_health_dump();
    EXPECT_NE(dump.find("health:healthy->critical"), std::string::npos) << dump;
}

TEST(ObsSloHealth, InjectedSloBurnEscalatesEngineHealthAndDumps) {
    // fault-injector-driven SLO burn: every batch is stalled past the
    // latency threshold, so the latency error fraction is 1.0 and both burn
    // windows (which cover the whole test run) read burn rate 100 >= 14.4
    engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 8;
    config.batch_delay = 200us;
    config.qos.adaptive_batching = false;
    config.fault.inject = std::make_shared<fault::injector>();
    config.fault.inject->add_rule({ .site = fault::fault_site::batch_kernel,
                                    .kind = fault::fault_kind::slow_batch,
                                    .stall = 2ms });
    auto &objective = config.slo.objectives[class_index(request_class::interactive)];
    objective.enabled = true;
    objective.latency_threshold_s = 0.0001;  // the 2 ms stall guarantees a miss
    objective.latency_target = 0.99;
    config.slo.min_requests = 4;

    inference_engine<double> engine{ test::random_model(kernel_type::linear), config };
    const std::vector<double> point(11, 0.5);

    // keep offering bursts until the burn escalates the engine (bounded by
    // wall clock, not rounds: a loaded CI host may drain slowly, but every
    // drained batch renews the burn, so escalation is only a matter of time)
    bool escalated = false;
    const auto deadline = std::chrono::steady_clock::now() + 4s;
    while (!escalated && std::chrono::steady_clock::now() < deadline) {
        std::vector<std::future<double>> futures;
        futures.reserve(8);
        for (int i = 0; i < 8; ++i) {
            futures.push_back(engine.submit(point, request_options{}));
        }
        for (auto &future : futures) {
            (void) future.get();
        }
        escalated = engine.health() == health_state::critical;
    }
    EXPECT_TRUE(escalated) << "sustained SLO burn must drive the engine critical";
    const slo_report report = engine.slo();
    EXPECT_EQ(report.worst, slo_alert_state::critical);
    EXPECT_GT(engine.recorder().health_dumps(), 0U) << "the escalation must force a flight-recorder dump";
    EXPECT_NE(engine.stats_json().find("\"slo\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// wire-to-wire trace propagation over real TCP
// ---------------------------------------------------------------------------

/// Blocking loopback client (same shape as the `Net` suite's helper).
class client {
  public:
    explicit client(const std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        const timeval timeout{ 10, 0 };
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
        const int nodelay = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr *>(&addr), sizeof(addr)), 0);
    }

    client(const client &) = delete;
    client &operator=(const client &) = delete;

    ~client() {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }

    void send(const std::string &bytes) const {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
            ASSERT_GT(n, 0) << "client write failed";
            sent += static_cast<std::size_t>(n);
        }
    }

    [[nodiscard]] bool read_messages(std::vector<std::string> &out, const std::size_t want) {
        std::string msg;
        while (out.size() < want) {
            const net::frame_decoder::status st = decoder_.next(msg);
            if (st == net::frame_decoder::status::frame || st == net::frame_decoder::status::line) {
                out.push_back(msg);
                continue;
            }
            if (st != net::frame_decoder::status::need_more) {
                return false;
            }
            char buf[4096];
            const ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n <= 0) {
                return false;
            }
            decoder_.append(buf, static_cast<std::size_t>(n));
        }
        return true;
    }

    /// True once the server closed the connection (blocking read hits EOF).
    [[nodiscard]] bool at_eof() const {
        char buf[256];
        while (true) {
            const ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n == 0) {
                return true;
            }
            if (n < 0) {
                return false;
            }
        }
    }

  private:
    int fd_{ -1 };
    net::frame_decoder decoder_;
};

/// Engine config for fast, deterministic loopback tests.
[[nodiscard]] engine_config obs_net_config() {
    engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 16;
    config.batch_delay = 500us;
    config.qos.adaptive_batching = false;
    return config;
}

/// Loopback server over a fresh registry, with a configurable net plane.
struct obs_server_fixture {
    explicit obs_server_fixture(const engine_config &config = obs_net_config(),
                                net::net_server_config server_config = {}) :
        registry{ 4, config } {
        engine = registry.load("demo", test::random_model(kernel_type::linear));
        server_config.event_threads = 1;
        server_config.completion_threads = 2;
        server = std::make_unique<net::net_server>(server_config, std::make_shared<net::registry_dispatcher<double>>(registry));
    }

    model_registry<double> registry;
    std::shared_ptr<inference_engine<double>> engine;
    std::unique_ptr<net::net_server> server;
};

[[nodiscard]] std::string binary_predict_traced(const std::uint64_t id, const std::uint64_t trace_id,
                                                const std::vector<double> &features,
                                                const std::string &model = "demo") {
    net::net_request req;
    req.id = id;
    req.model = model;
    req.dense = features;
    req.trace_id = trace_id;
    return net::encode_frame(net::frame_type::request, net::encode_request_binary(req));
}

/// Fetch the server's trace dump over a JSON client and test for @p needle.
[[nodiscard]] bool trace_dump_contains(client &tracer, const std::string &needle, std::string *last = nullptr) {
    tracer.send("{\"op\": \"trace\"}\n");
    std::vector<std::string> out;
    if (!tracer.read_messages(out, 1)) {
        return false;
    }
    if (last != nullptr) {
        *last = out.back();
    }
    return out.back().find(needle) != std::string::npos;
}

TEST(ObsWireTrace, BinaryTraceIdRoundTripsWithNineStamps) {
    obs_server_fixture fx;
    client predictor{ fx.server->port() };
    predictor.send(binary_predict_traced(7, 424'242, std::vector<double>(11, 0.25)));
    std::vector<std::string> responses;
    ASSERT_TRUE(predictor.read_messages(responses, 1));

    client tracer{ fx.server->port() };
    std::string dump;
    ASSERT_TRUE(eventually([&] { return trace_dump_contains(tracer, "\"id\": 424242", &dump); })) << dump;
    // the client-supplied id owns a full wire-to-wire record: 5 engine
    // lifecycle stamps + 6 net stamps, all in the engine's recorder epoch
    EXPECT_NE(dump.find("\"t_admit_ns\""), std::string::npos);
    EXPECT_NE(dump.find("\"t_complete_ns\""), std::string::npos);
    EXPECT_NE(dump.find("\"net\": {\"t_accepted_ns\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"t_flushed_ns\""), std::string::npos);
    EXPECT_NE(dump.find("\"wire_complete\": true"), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"demo\""), std::string::npos) << "trace dump is grouped per model";
}

TEST(ObsWireTrace, JsonTraceIdParity) {
    obs_server_fixture fx;
    client c{ fx.server->port() };
    c.send(R"({"model": "demo", "id": 9, "trace_id": 777421, "features": [1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]})"
           "\n");
    std::vector<std::string> responses;
    ASSERT_TRUE(c.read_messages(responses, 1));
    EXPECT_NE(responses.front().find("\"status\": \"ok\""), std::string::npos) << responses.front();

    // the same (JSON) connection can pull the trace dump
    std::string dump;
    ASSERT_TRUE(eventually([&] { return trace_dump_contains(c, "\"id\": 777421", &dump); })) << dump;
    EXPECT_NE(dump.find("\"wire_complete\": true"), std::string::npos) << dump;
}

TEST(ObsWireTrace, ClientTraceIdForcesTracingWhenSamplingIsOff) {
    engine_config config = obs_net_config();
    config.obs.sampling = { 0.0, 0.0, 0.0 };  // nothing sampled by the engine itself
    obs_server_fixture fx{ config };
    client predictor{ fx.server->port() };
    predictor.send(binary_predict_traced(1, 515'151, std::vector<double>(11, 0.5)));
    std::vector<std::string> responses;
    ASSERT_TRUE(predictor.read_messages(responses, 1));

    client tracer{ fx.server->port() };
    std::string dump;
    ASSERT_TRUE(eventually([&] { return trace_dump_contains(tracer, "\"id\": 515151", &dump); }))
        << "a client-supplied trace id must override sampling: " << dump;
}

TEST(ObsWireTrace, DisabledWireTracingLeavesNoNetStamps) {
    net::net_server_config server_config;
    server_config.wire_tracing = false;
    obs_server_fixture fx{ obs_net_config(), server_config };
    client predictor{ fx.server->port() };
    predictor.send(binary_predict_traced(2, 616'161, std::vector<double>(11, 0.75)));
    std::vector<std::string> responses;
    ASSERT_TRUE(predictor.read_messages(responses, 1));

    // the engine still samples its own (in-process) traces, but no net
    // stamps and no client-correlated id can exist
    ASSERT_TRUE(eventually([&] { return fx.engine->recorder().traces(request_class::interactive).size() > 0; }));
    client tracer{ fx.server->port() };
    std::string dump;
    (void) trace_dump_contains(tracer, "unmatchable", &dump);
    ASSERT_FALSE(dump.empty());
    EXPECT_EQ(dump.find("\"net\": {"), std::string::npos) << dump;
    EXPECT_EQ(dump.find("616161"), std::string::npos) << dump;
}

// ---------------------------------------------------------------------------
// exposition merge, windowed families, per-peer accounting, drain readiness
// ---------------------------------------------------------------------------

TEST(ObsExposition, MergedNetExpositionIsValidAndCarriesNewFamilies) {
    obs_server_fixture fx;
    client predictor{ fx.server->port() };
    predictor.send(binary_predict_traced(1, 0, std::vector<double>(11, 0.5)));
    std::vector<std::string> responses;
    ASSERT_TRUE(predictor.read_messages(responses, 1));

    const std::string text = fx.server->metrics_text();
    EXPECT_TRUE(obs::exposition_valid(text)) << text;
    for (const std::string_view family : { "plssvm_serve_build_info", "plssvm_serve_uptime_seconds",
                                           "plssvm_serve_window_rps", "plssvm_serve_window_p99_latency_seconds",
                                           "plssvm_serve_net_peer_requests_total", "plssvm_serve_net_inflight_requests" }) {
        EXPECT_NE(text.find(family), std::string::npos) << "missing family " << family;
    }
    // HELP/TYPE headers must be deduplicated by the merge, not repeated per
    // engine exposition
    const std::string header = "# HELP plssvm_serve_build_info";
    const std::size_t first = text.find(header);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find(header, first + header.size()), std::string::npos) << "duplicated HELP header";
}

TEST(ObsExposition, StatsJsonCarriesWindowsSloPeersAndDrainState) {
    obs_server_fixture fx;
    client predictor{ fx.server->port() };
    predictor.send(binary_predict_traced(1, 0, std::vector<double>(11, 0.5)));
    std::vector<std::string> responses;
    ASSERT_TRUE(predictor.read_messages(responses, 1));

    const std::string net_stats = fx.server->stats_json();
    EXPECT_NE(net_stats.find("\"draining\": false"), std::string::npos) << net_stats;
    EXPECT_NE(net_stats.find("\"inflight\""), std::string::npos);
    EXPECT_NE(net_stats.find("\"per_peer\""), std::string::npos);
    EXPECT_NE(net_stats.find("\"127.0.0.1\""), std::string::npos) << "loopback peer must be accounted";

    const std::string engine_stats = fx.engine->stats_json();
    EXPECT_NE(engine_stats.find("\"windows\""), std::string::npos) << engine_stats;
    EXPECT_NE(engine_stats.find("\"slo\""), std::string::npos);
}

TEST(ObsDrain, BeginDrainFlipsReadinessAndRejectsNewConnections) {
    obs_server_fixture fx;
    client c{ fx.server->port() };
    c.send("{\"op\": \"ready\"}\n");
    std::vector<std::string> responses;
    ASSERT_TRUE(c.read_messages(responses, 1));
    EXPECT_NE(responses.front().find("\"ready\": true"), std::string::npos) << responses.front();

    fx.server->begin_drain();
    EXPECT_TRUE(fx.server->draining());
    EXPECT_FALSE(fx.server->ready());
    // established connections keep answering, but readiness flips...
    c.send("{\"op\": \"ready\"}\n");
    ASSERT_TRUE(c.read_messages(responses, 2));
    EXPECT_NE(responses.back().find("\"ready\": false"), std::string::npos) << responses.back();
    // ...and new connections are turned away at accept
    client late{ fx.server->port() };
    EXPECT_TRUE(eventually([&] { return late.at_eof(); }));
    EXPECT_EQ(fx.server->inflight(), 0U);
}

}  // namespace
