/**
 * @file
 * @brief Observability-plane tests (ctest label `obs`, all suites prefixed
 *        `Obs`): log-bucketed histogram accuracy / merge / epoch-stable
 *        deltas, Prometheus exposition format validation, lock-free trace
 *        ring ordering under concurrent publishers, sampling-period
 *        honoring, flight-recorder dumps on injected shed and deadline
 *        miss, cost-model calibration regression, per-lane executor
 *        gauges, and the wait/service saturation input of the batch tuner.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/exceptions.hpp"
#include "plssvm/serve/executor.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/model_registry.hpp"
#include "plssvm/serve/obs.hpp"
#include "plssvm/serve/qos.hpp"
#include "plssvm/serve/serve_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using plssvm::kernel_type;
using plssvm::serve::class_index;
using plssvm::serve::engine_config;
using plssvm::serve::executor;
using plssvm::serve::inference_engine;
using plssvm::serve::lane_options;
using plssvm::serve::lane_report;
using plssvm::serve::model_registry;
using plssvm::serve::request_class;
using plssvm::serve::request_options;
using plssvm::serve::request_shed_exception;
using plssvm::serve::serve_stats;
namespace obs = plssvm::serve::obs;
namespace test = plssvm::test;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// log-bucketed latency histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketIndexRoundTripAndResolution) {
    // every value must land in a bucket whose upper bound is >= the value
    // and whose relative width is bounded by one sub-bucket (1/16)
    for (const std::uint64_t ns : { std::uint64_t{ 0 }, std::uint64_t{ 1 }, std::uint64_t{ 15 }, std::uint64_t{ 16 },
                                    std::uint64_t{ 17 }, std::uint64_t{ 1000 }, std::uint64_t{ 123456 },
                                    std::uint64_t{ 1'000'000'000 }, std::uint64_t{ 999'999'999'999 } }) {
        const std::size_t index = obs::latency_histogram::bucket_index(ns);
        ASSERT_LT(index, obs::latency_histogram::num_buckets) << "ns = " << ns;
        const std::uint64_t upper = obs::latency_histogram::bucket_upper_ns(index);
        EXPECT_GE(upper, ns) << "bucket upper bound below the recorded value";
        if (ns >= obs::latency_histogram::sub_count) {
            // relative one-sided error: (upper - ns) / ns <= 1/16
            EXPECT_LE(static_cast<double>(upper - ns) / static_cast<double>(ns), 1.0 / 16.0) << "ns = " << ns;
        } else {
            EXPECT_EQ(upper, ns) << "unit buckets are exact";
        }
    }
    // bucket upper bounds are strictly increasing (quantile walk correctness)
    for (std::size_t i = 1; i < obs::latency_histogram::num_buckets; ++i) {
        ASSERT_GT(obs::latency_histogram::bucket_upper_ns(i), obs::latency_histogram::bucket_upper_ns(i - 1)) << "bucket " << i;
    }
}

TEST(ObsHistogram, QuantilesAreOneSidedWithinBucketError) {
    obs::latency_histogram hist;
    // 1..1000 microseconds, uniformly: true p50 = 500us, p99 = 990us
    for (int us = 1; us <= 1000; ++us) {
        hist.record(static_cast<double>(us) * 1e-6);
    }
    EXPECT_EQ(hist.count(), 1000u);
    const double p50 = hist.quantile(0.50);
    const double p99 = hist.quantile(0.99);
    // one-sided: never optimistic, at most one sub-bucket (~6.25%) pessimistic
    EXPECT_GE(p50, 500e-6 * (1.0 - 1e-9));
    EXPECT_LE(p50, 500e-6 * 1.07);
    EXPECT_GE(p99, 990e-6 * (1.0 - 1e-9));
    EXPECT_LE(p99, 990e-6 * 1.07);
    EXPECT_NEAR(hist.sum_seconds(), 1000.0 * 1001.0 / 2.0 * 1e-6, 1e-9);
    EXPECT_NEAR(hist.max_seconds(), 1000e-6, 1000e-6 / 16.0);
    // the quantile is capped at the recorded max: q=1 must not report the
    // bucket upper bound beyond it
    EXPECT_LE(hist.quantile(1.0), hist.max_seconds() + 1e-12);
}

TEST(ObsHistogram, MergeAddsObservations) {
    obs::latency_histogram a;
    obs::latency_histogram b;
    for (int i = 0; i < 100; ++i) {
        a.record(1e-3);
        b.record(4e-3);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_NEAR(a.sum_seconds(), 0.5, 1e-9);
    // median of the merged population sits between the two modes
    EXPECT_GE(a.quantile(0.50), 1e-3);
    EXPECT_LE(a.quantile(0.25), 1.1e-3);
    EXPECT_GE(a.quantile(0.75), 4e-3 * 0.99);
}

TEST(ObsHistogram, DeltaSinceIsolatesTheWindow) {
    // the epoch-mixing regression the histograms fix: a load change between
    // two scrapes must not blend into the window percentiles
    obs::latency_histogram cumulative;
    for (int i = 0; i < 1000; ++i) {
        cumulative.record(10e-3);  // slow epoch: 10ms requests
    }
    const obs::latency_histogram scrape = cumulative;
    for (int i = 0; i < 1000; ++i) {
        cumulative.record(100e-6);  // fast epoch: 100us requests
    }
    const obs::latency_histogram window = cumulative.delta_since(scrape);
    EXPECT_EQ(window.count(), 1000u);
    // the window median reflects ONLY the fast epoch
    EXPECT_LE(window.quantile(0.50), 110e-6);
    EXPECT_LE(window.quantile(0.99), 110e-6);
    // while the cumulative median still straddles both
    EXPECT_GE(cumulative.quantile(0.75), 9e-3);
}

TEST(ObsHistogram, CountLeIsMonotoneAndExhaustive) {
    obs::latency_histogram hist;
    for (int us = 1; us <= 100; ++us) {
        hist.record(static_cast<double>(us) * 1e-6);
    }
    std::uint64_t previous = 0;
    for (const double edge : { 1e-6, 1e-5, 5e-5, 1e-4, 1e-3, 1.0 }) {
        const std::uint64_t le = hist.count_le(edge);
        EXPECT_GE(le, previous) << "le ladder must be monotone";
        previous = le;
    }
    EXPECT_EQ(hist.count_le(1.0), hist.count()) << "everything lies below 1s";
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Minimal exposition-format validator: every non-comment line is
/// `name{labels} value` (or `name value`), every family has exactly one
/// HELP and one TYPE line, histograms carry a monotone `le` ladder that
/// terminates in `+Inf` and matches `_count`.
void validate_prometheus(const std::string &text) {
    ASSERT_FALSE(text.empty());
    ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";
    std::istringstream stream{ text };
    std::string line;
    std::size_t help_lines = 0;
    std::size_t type_lines = 0;
    std::size_t samples = 0;
    while (std::getline(stream, line)) {
        ASSERT_FALSE(line.empty()) << "no blank lines inside the exposition";
        if (line.rfind("# HELP ", 0) == 0) {
            ++help_lines;
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            ++type_lines;
            const std::string rest = line.substr(7);
            const std::size_t space = rest.find(' ');
            ASSERT_NE(space, std::string::npos) << line;
            const std::string type = rest.substr(space + 1);
            EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram") << line;
            continue;
        }
        ASSERT_NE(line.front(), '#') << "unknown comment line: " << line;
        // sample line: metric name, optional {labels}, one space, the value
        const std::size_t brace = line.find('{');
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string name = line.substr(0, brace == std::string::npos ? line.find(' ') : brace);
        ASSERT_FALSE(name.empty()) << line;
        for (const char c : name) {
            ASSERT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' || c == ':')
                << "invalid metric name character in: " << line;
        }
        if (brace != std::string::npos) {
            const std::size_t close = line.find('}', brace);
            ASSERT_NE(close, std::string::npos) << line;
            ASSERT_LT(close, space) << line;
        }
        const std::string value = line.substr(space + 1);
        ASSERT_FALSE(value.empty()) << line;
        if (value != "+Inf" && value != "-Inf" && value != "NaN") {
            std::size_t consumed = 0;
            EXPECT_NO_THROW({
                (void) std::stod(value, &consumed);
            }) << line;
            EXPECT_EQ(consumed, value.size()) << "trailing junk in sample value: " << line;
        }
        ++samples;
    }
    EXPECT_EQ(help_lines, type_lines) << "every family has exactly one HELP and one TYPE";
    EXPECT_GT(samples, 0u);
}

TEST(ObsPrometheus, FamiliesGroupAcrossLabelSetsAndValuesEscape) {
    obs::prometheus_builder builder;
    builder.add_counter("plssvm_test_total", "A counter", { { "model", "alpha" } }, 1.0);
    builder.add_counter("plssvm_test_total", "A counter", { { "model", "beta\"quoted\\slash\nline" } }, 2.0);
    builder.add_gauge("plssvm_test_gauge", "A gauge", {}, 0.5);
    const std::string text = builder.text();
    validate_prometheus(text);
    // one family header even though two label sets were added
    EXPECT_EQ(text.find("# TYPE plssvm_test_total counter"), text.rfind("# TYPE plssvm_test_total counter"));
    // label escaping per the exposition spec
    EXPECT_NE(text.find("model=\"beta\\\"quoted\\\\slash\\nline\""), std::string::npos) << text;
    EXPECT_NE(text.find("plssvm_test_total{model=\"alpha\"} 1"), std::string::npos) << text;
}

TEST(ObsPrometheus, HistogramLadderIsCumulativeAndTerminatesAtInf) {
    obs::latency_histogram hist;
    for (int i = 0; i < 64; ++i) {
        hist.record(2e-4);  // all observations in one spot of the ladder
    }
    obs::prometheus_builder builder;
    builder.add_histogram("plssvm_test_latency_seconds", "latencies", {}, hist);
    const std::string text = builder.text();
    validate_prometheus(text);
    EXPECT_NE(text.find("# TYPE plssvm_test_latency_seconds histogram"), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"} 64"), std::string::npos) << text;
    EXPECT_NE(text.find("plssvm_test_latency_seconds_count 64"), std::string::npos) << text;
    // the bucket counts along the ladder are monotonically non-decreasing
    std::istringstream stream{ text };
    std::string line;
    double previous = -1.0;
    std::size_t ladder_lines = 0;
    while (std::getline(stream, line)) {
        if (line.rfind("plssvm_test_latency_seconds_bucket", 0) != 0) {
            continue;
        }
        const double value = std::stod(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(value, previous) << line;
        previous = value;
        ++ladder_lines;
    }
    EXPECT_GT(ladder_lines, 10u) << "expected a full default edge ladder";
}

// ---------------------------------------------------------------------------
// lock-free trace ring
// ---------------------------------------------------------------------------

TEST(ObsTraceRing, CollectsPublishedRecordsOldestFirst) {
    obs::trace_ring ring;
    ring.reset(8);
    for (std::uint64_t i = 1; i <= 5; ++i) {
        obs::request_trace trace{};
        trace.id = i;
        trace.t_admit_ns = i * 100;
        trace.t_enqueue_ns = i * 100 + 1;
        trace.t_seal_ns = i * 100 + 2;
        trace.t_dispatch_ns = i * 100 + 3;
        trace.t_complete_ns = i * 100 + 4;
        ring.publish(trace);
    }
    std::vector<obs::request_trace> out;
    ring.collect(out);
    ASSERT_EQ(out.size(), 5u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].id, i + 1) << "oldest first";
        EXPECT_TRUE(out[i].spans_complete());
    }
}

TEST(ObsTraceRing, OverwritesOldestBeyondCapacity) {
    obs::trace_ring ring;
    ring.reset(4);
    for (std::uint64_t i = 1; i <= 10; ++i) {
        obs::request_trace trace{};
        trace.id = i;
        ring.publish(trace);
    }
    EXPECT_EQ(ring.published(), 10u);
    std::vector<obs::request_trace> out;
    ring.collect(out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.front().id, 7u);
    EXPECT_EQ(out.back().id, 10u);
}

TEST(ObsTraceRing, ConcurrentPublishersNeverYieldTornRecords) {
    // each publisher stamps every field from its id; a torn record would
    // show inconsistent fields. Ring capacity exceeds the live write window,
    // so every collected record must be internally consistent.
    obs::trace_ring ring;
    ring.reset(1024);
    constexpr std::size_t num_threads = 8;
    constexpr std::uint64_t per_thread = 500;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
        threads.emplace_back([&ring, t]() {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                const std::uint64_t id = t * per_thread + i + 1;
                obs::request_trace trace{};
                trace.id = id;
                trace.batch_size = id % 64;
                trace.t_admit_ns = id;
                trace.t_enqueue_ns = id + 1;
                trace.t_seal_ns = id + 2;
                trace.t_dispatch_ns = id + 3;
                trace.t_complete_ns = id + 4;
                ring.publish(trace);
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_EQ(ring.published(), num_threads * per_thread);
    std::vector<obs::request_trace> out;
    ring.collect(out);
    // The ring overwrites oldest-first without writer-side exclusion: when two
    // publishers from different laps race on one slot and the *older* lap's
    // writer finishes last, the slot's final seq belongs to the evicted ticket
    // and collect() rightly skips it. At most one such slot per publisher can
    // be in flight at join time, so tolerate up to num_threads - 1 skips.
    EXPECT_GE(out.size(), ring.capacity() - (num_threads - 1));
    EXPECT_LE(out.size(), ring.capacity());
    for (const obs::request_trace &trace : out) {
        ASSERT_GE(trace.id, 1u);
        ASSERT_LE(trace.id, num_threads * per_thread);
        // internal consistency: every field derives from the id
        EXPECT_EQ(trace.batch_size, trace.id % 64);
        EXPECT_EQ(trace.t_admit_ns, trace.id);
        EXPECT_EQ(trace.t_complete_ns, trace.id + 4);
        EXPECT_TRUE(trace.spans_complete());
    }
}

// ---------------------------------------------------------------------------
// flight recorder: sampling, dumps, rate limiting
// ---------------------------------------------------------------------------

TEST(ObsFlightRecorder, SamplingHonorsTheQuantizedPeriod) {
    obs::obs_config config;
    config.sampling[class_index(request_class::interactive)] = 0.25;  // period 4
    obs::flight_recorder recorder{ config };
    std::size_t traced = 0;
    for (int i = 0; i < 100; ++i) {
        traced += recorder.should_trace(request_class::interactive, /*has_deadline=*/false) ? 1 : 0;
    }
    EXPECT_EQ(traced, 25u) << "rate 0.25 quantizes to exactly every 4th request";
    EXPECT_EQ(recorder.sampled_out(), 75u);
}

TEST(ObsFlightRecorder, DeadlineCarryingRequestsAlwaysTrace) {
    obs::obs_config config;
    config.sampling = { 0.0, 0.0, 0.0 };  // never sample
    obs::flight_recorder recorder{ config };
    EXPECT_FALSE(recorder.should_trace(request_class::interactive, /*has_deadline=*/false));
    // the acceptance guarantee: every deadline miss ships with its trace,
    // so deadline-carrying requests bypass sampling entirely
    EXPECT_TRUE(recorder.should_trace(request_class::interactive, /*has_deadline=*/true));
}

TEST(ObsFlightRecorder, DisabledPlaneRecordsNothing) {
    obs::obs_config config;
    config.enabled = false;
    obs::flight_recorder recorder{ config };
    EXPECT_FALSE(recorder.should_trace(request_class::interactive, /*has_deadline=*/true));
    recorder.record_shed(request_class::interactive, plssvm::serve::admission_decision::shed_queue_full);
    EXPECT_EQ(recorder.sheds_recorded(), 0u);
    EXPECT_TRUE(recorder.last_violation_dump().empty());
}

TEST(ObsFlightRecorder, ShedTriggersViolationDumpWithReason) {
    obs::flight_recorder recorder{};
    recorder.record_shed(request_class::batch, plssvm::serve::admission_decision::shed_queue_full);
    EXPECT_EQ(recorder.sheds_recorded(), 1u);
    EXPECT_EQ(recorder.violation_dumps(), 1u) << "the FIRST shed must dump (no warm-up suppression)";
    const std::string dump = recorder.last_violation_dump();
    EXPECT_NE(dump.find("\"reason\": \"shed\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("queue_full"), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"batch\""), std::string::npos) << dump;
    const std::vector<obs::request_trace> sheds = recorder.shed_events();
    ASSERT_EQ(sheds.size(), 1u);
    EXPECT_TRUE(sheds.front().shed);
    EXPECT_GT(sheds.front().t_admit_ns, 0u) << "a shed trace still carries its admission stamp";
}

TEST(ObsFlightRecorder, ViolationDumpsAreRateLimited) {
    obs::obs_config config;
    config.min_dump_interval = std::chrono::microseconds{ 3'600'000'000LL };  // one hour
    obs::flight_recorder recorder{ config };
    for (int i = 0; i < 50; ++i) {
        recorder.record_shed(request_class::interactive, plssvm::serve::admission_decision::shed_rate_limited);
    }
    EXPECT_EQ(recorder.sheds_recorded(), 50u) << "every shed event is retained";
    EXPECT_EQ(recorder.violation_dumps(), 1u) << "but only the first renders a dump inside the interval";
}

TEST(ObsFlightRecorder, DeadlineMissDumpRetainsTheCompleteTrace) {
    obs::flight_recorder recorder{};
    obs::request_trace trace{};
    trace.id = recorder.next_trace_id();
    trace.cls = request_class::interactive;
    trace.deadline_missed = true;
    trace.batch_size = 3;
    trace.t_admit_ns = 100;
    trace.t_enqueue_ns = 200;
    trace.t_seal_ns = 300;
    trace.t_dispatch_ns = 400;
    trace.t_complete_ns = 900;
    recorder.record_complete(trace);
    EXPECT_EQ(recorder.traces_recorded(), 1u);
    EXPECT_EQ(recorder.violation_dumps(), 1u);
    const std::string dump = recorder.last_violation_dump();
    EXPECT_NE(dump.find("\"reason\": \"deadline_miss\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"deadline_missed\": true"), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"spans_ns\""), std::string::npos) << dump;
    const std::vector<obs::request_trace> traces = recorder.traces(request_class::interactive);
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_TRUE(traces.front().spans_complete());
    const obs::stage_seconds spans = traces.front().spans_seconds();
    EXPECT_NEAR(spans[obs::stage_index(obs::trace_stage::admission)], 100e-9, 1e-12);
    EXPECT_NEAR(spans[obs::stage_index(obs::trace_stage::service)], 500e-9, 1e-12);
}

// ---------------------------------------------------------------------------
// engine end-to-end: lifecycle traces, violation dumps, exposition
// ---------------------------------------------------------------------------

TEST(ObsEngine, CompletedAsyncRequestsCarryMonotoneLifecycleSpans) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear), engine_config{ .max_batch_size = 4, .batch_delay = 100us } };
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 32; ++i) {
        futures.push_back(engine.submit(std::vector<double>(engine.num_features(), 0.25)));
    }
    for (std::future<double> &f : futures) {
        (void) f.get();
    }
    const std::vector<obs::request_trace> traces = engine.recorder().traces(request_class::interactive);
    ASSERT_FALSE(traces.empty()) << "default sampling traces every request";
    for (const obs::request_trace &trace : traces) {
        EXPECT_TRUE(trace.spans_complete()) << "trace " << trace.id << " must carry all five monotone stamps";
        EXPECT_GT(trace.batch_size, 0u);
        EXPECT_GT(trace.estimated_batch_seconds, 0.0) << "the cost-model estimate is attributed to the trace";
    }
    // stage histograms fed the per-class stats
    const serve_stats stats = engine.stats();
    const auto &interactive = stats.classes[class_index(request_class::interactive)];
    EXPECT_EQ(interactive.completed, 32u);
    EXPECT_EQ(interactive.stages[obs::stage_index(obs::trace_stage::service)].count, 32u);
    EXPECT_GT(interactive.stages[obs::stage_index(obs::trace_stage::queue_wait)].total_seconds, 0.0);
}

TEST(ObsEngine, ShedRequestProducesRetrievableFlightRecord) {
    engine_config config;
    // one-token bucket with a negligible refill: the second submit sheds
    config.qos.classes[class_index(request_class::interactive)].rate_limit = 1e-6;
    config.qos.classes[class_index(request_class::interactive)].burst = 1.0;
    inference_engine<double> engine{ test::random_model(kernel_type::rbf), config };
    (void) engine.submit(std::vector<double>(engine.num_features(), 0.5)).get();
    EXPECT_THROW((void) engine.submit(std::vector<double>(engine.num_features(), 0.5)), request_shed_exception);
    EXPECT_GE(engine.recorder().sheds_recorded(), 1u);
    const std::string dump = engine.last_violation_dump();
    ASSERT_FALSE(dump.empty()) << "a shed must leave an automatic violation dump behind";
    EXPECT_NE(dump.find("\"reason\": \"shed\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("rate_limited"), std::string::npos) << dump;
}

TEST(ObsEngine, DeadlineMissShipsWithItsCompleteTrace) {
    engine_config config;
    config.obs.sampling = { 0.0, 0.0, 0.0 };  // deadline requests must trace anyway
    inference_engine<double> engine{ test::random_model(kernel_type::linear), config };
    // a 1us budget is over before the drain thread can possibly complete it
    request_options options;
    options.deadline = 1us;
    (void) engine.submit(std::vector<double>(engine.num_features(), 0.1), options).get();
    const std::vector<obs::request_trace> traces = engine.recorder().traces(request_class::interactive);
    ASSERT_FALSE(traces.empty());
    EXPECT_TRUE(traces.back().deadline_missed);
    EXPECT_TRUE(traces.back().spans_complete()) << "the acceptance criterion: a missed deadline is fully attributable";
    const std::string dump = engine.last_violation_dump();
    ASSERT_FALSE(dump.empty());
    EXPECT_NE(dump.find("\"reason\": \"deadline_miss\""), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"spans_ns\""), std::string::npos) << dump;
    // and the explicit dump channel sees the same retained trace
    const std::string explicit_dump = engine.dump_traces();
    EXPECT_NE(explicit_dump.find("\"reason\": \"explicit\""), std::string::npos);
    EXPECT_NE(explicit_dump.find("\"deadline_missed\": true"), std::string::npos) << explicit_dump;
}

TEST(ObsEngine, MetricsTextIsValidPrometheusExposition) {
    inference_engine<double> engine{ test::random_model(kernel_type::polynomial) };
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 16; ++i) {
        futures.push_back(engine.submit(std::vector<double>(engine.num_features(), 0.3)));
    }
    for (std::future<double> &f : futures) {
        (void) f.get();
    }
    (void) engine.predict(test::random_matrix(24, engine.num_features(), 7));
    const std::string text = engine.metrics_text();
    validate_prometheus(text);
    for (const char *family : { "plssvm_serve_requests_total", "plssvm_serve_batches_total",
                                "plssvm_serve_latency_seconds_bucket", "plssvm_serve_stage_latency_seconds_bucket",
                                "plssvm_serve_admitted_total", "plssvm_serve_path_batches_total",
                                "plssvm_serve_cost_estimate_rel_error_count", "plssvm_serve_obs_traces_recorded_total" }) {
        EXPECT_NE(text.find(family), std::string::npos) << "missing family " << family;
    }
    EXPECT_NE(text.find("stage=\"queue_wait\""), std::string::npos);
    EXPECT_NE(text.find("class=\"interactive\""), std::string::npos);
}

TEST(ObsEngine, StatsJsonExposesStageAndCostModelSections) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear) };
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(engine.submit(std::vector<double>(engine.num_features(), 0.2)));
    }
    for (std::future<double> &f : futures) {
        (void) f.get();
    }
    const std::string json = engine.stats_json();
    // backward-compatible additions only: the legacy fields stay (asserted
    // exhaustively in the Qos suite), the new sections appear
    for (const char *field : { "\"p999_latency_s\"", "\"cost_model\"", "\"estimate_batches\"", "\"median_rel_error\"",
                               "\"stages\"", "\"queue_wait\"", "\"dispatch\"", "\"service\"", "\"admission\"" }) {
        EXPECT_NE(json.find(field), std::string::npos) << "missing " << field << " in " << json;
    }
    std::ptrdiff_t depth = 0;
    for (const char c : json) {
        depth += c == '{' ? 1 : (c == '}' ? -1 : 0);
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << "unbalanced braces";
}

// ---------------------------------------------------------------------------
// cost-model calibration regression
// ---------------------------------------------------------------------------

TEST(ObsCalibration, ReferencePathEstimateErrorStaysBounded) {
    // single-point submits ride the reference path (batch < min_blocked_batch)
    // whose estimate approximates the scalar sweep with the host roofline.
    // The guard is intentionally loose — it catches unit mix-ups (1e3x) and
    // broken calibration, not model noise.
    inference_engine<double> engine{ test::random_model(kernel_type::linear, /*num_sv=*/256, /*dim=*/64) };
    for (int i = 0; i < 24; ++i) {
        (void) engine.submit(std::vector<double>(engine.num_features(), 0.4)).get();
    }
    const serve_stats stats = engine.stats();
    EXPECT_GE(stats.estimate_batches, 24u) << "every drained batch records its estimate";
    EXPECT_GT(stats.estimate_median_rel_error, 0.0) << "estimates are never exact";
    EXPECT_LE(stats.estimate_median_rel_error, 9.0) << "median relative error an order of magnitude off: calibration regressed";
}

// ---------------------------------------------------------------------------
// executor per-lane gauges
// ---------------------------------------------------------------------------

TEST(ObsExecutor, LaneReportsExposePerLaneCounters) {
    executor exec{ 2 };
    executor::lane alpha = exec.create_lane(lane_options{ .name = "alpha" });
    executor::lane beta = exec.create_lane(lane_options{ .name = "beta" });
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 8; ++i) {
        pending.push_back(alpha.enqueue([]() {}));
    }
    for (std::future<void> &f : pending) {
        f.get();
    }
    const std::vector<lane_report> reports = exec.lane_reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].name, "alpha");
    EXPECT_EQ(reports[1].name, "beta");
    EXPECT_EQ(reports[0].stats.submitted, 8u);
    EXPECT_EQ(reports[0].stats.completed, 8u);
    EXPECT_EQ(reports[1].stats.submitted, 0u);
    EXPECT_EQ(reports[0].stats.queue_depth, 0u);
}

TEST(ObsExecutor, StatsJsonRendersLaneGauges) {
    executor exec{ 2 };
    executor::lane lane = exec.create_lane(lane_options{ .name = "obs-lane" });
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 4; ++i) {
        pending.push_back(lane.enqueue([]() {}));
    }
    for (std::future<void> &f : pending) {
        f.get();
    }
    const std::string json = exec.stats_json();
    for (const char *field : { "\"workers\": 2", "\"num_lanes\": 1", "\"lanes\": [", "\"name\": \"obs-lane\"",
                               "\"submitted\": 4", "\"completed\": 4", "\"queue_depth\": 0", "\"max_queue_depth\"" }) {
        EXPECT_NE(json.find(field), std::string::npos) << "missing " << field << " in " << json;
    }
    std::ptrdiff_t depth = 0;
    for (const char c : json) {
        depth += (c == '{' || c == '[') ? 1 : ((c == '}' || c == ']') ? -1 : 0);
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << "unbalanced JSON nesting";
}

// ---------------------------------------------------------------------------
// registry exposition
// ---------------------------------------------------------------------------

TEST(ObsRegistry, MetricsTextLabelsEveryModelAndExportsLaneGauges) {
    executor exec{ 2 };
    engine_config config;
    config.exec = &exec;
    model_registry<double> registry{ 4, config };
    (void) registry.load("alpha-model", test::random_model(kernel_type::linear));
    (void) registry.load("beta-model", test::random_model(kernel_type::rbf));
    const std::string text = registry.metrics_text();
    validate_prometheus(text);
    EXPECT_NE(text.find("model=\"alpha-model\""), std::string::npos);
    EXPECT_NE(text.find("model=\"beta-model\""), std::string::npos);
    EXPECT_NE(text.find("plssvm_serve_lane_queue_depth"), std::string::npos);
    EXPECT_NE(text.find("lane=\"engine\""), std::string::npos) << text.substr(0, 2000);
}

// ---------------------------------------------------------------------------
// batch tuner: measured wait/service split as the saturation signal
// ---------------------------------------------------------------------------

TEST(ObsTuner, WaitServiceRatioDrivesSaturationDeterministically) {
    plssvm::serve::qos_config config;
    config.adaptive_batching = true;
    config.adaptive.min_batch_size = 4;
    config.adaptive.max_batch_size = 64;
    config.adaptive.alpha = 1.0;  // no smoothing: one observation decides
    plssvm::serve::batch_tuner tuner{ config, plssvm::serve::batch_policy{ 16, 250us }, nullptr };
    // no backlog at all, but the measured queue wait is 16x the service
    // time: the wait term (ratio / wait_ratio_at_max = 16/8) saturates the
    // tuner even though every depth gauge reads zero
    tuner.observe(0, 0, 0, 0, /*queue_wait_seconds=*/16e-3, /*service_seconds=*/1e-3);
    EXPECT_DOUBLE_EQ(tuner.saturation(), 1.0);
    EXPECT_EQ(tuner.policies()[class_index(request_class::interactive)].target_batch_size, 64u);
    // a healthy wait/service split relaxes it: ratio 0.1 / wait_ratio_at_max
    // 8 = saturation 0.0125 exactly (alpha = 1 makes this deterministic)
    tuner.observe(0, 0, 0, 0, /*queue_wait_seconds=*/1e-4, /*service_seconds=*/1e-3);
    EXPECT_DOUBLE_EQ(tuner.saturation(), 0.0125);
    EXPECT_LE(tuner.policies()[class_index(request_class::interactive)].target_batch_size, 5u);
    // the defaulted overload (no split measured) must not disturb the state:
    // the pre-obs depth-only behaviour the Qos suite pins down
    tuner.observe(0, 0, 0, 0);
    EXPECT_DOUBLE_EQ(tuner.saturation(), 0.0125);
}

}  // namespace
