/**
 * @file
 * @brief QoS subsystem tests (ctest label `qos`, all suites prefixed `Qos`):
 *        token-bucket accuracy with a fake clock, queue-depth load shedding,
 *        per-class priority ordering and deadline clamping in the
 *        micro-batcher, deterministic adaptive batch growth/shrink,
 *        stats-JSON snapshot format, idle-wakeup regression, and
 *        reload-under-QoS consistency.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/core/predict.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/serve/admission.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/micro_batcher.hpp"
#include "plssvm/serve/model_registry.hpp"
#include "plssvm/serve/qos.hpp"
#include "plssvm/serve/serve_stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::admission_controller;
using plssvm::serve::admission_decision;
using plssvm::serve::all_request_classes;
using plssvm::serve::batch_policy;
using plssvm::serve::batch_tuner;
using plssvm::serve::class_batch_policy;
using plssvm::serve::class_index;
using plssvm::serve::engine_config;
using plssvm::serve::inference_engine;
using plssvm::serve::micro_batcher;
using plssvm::serve::per_class;
using plssvm::serve::qos_config;
using plssvm::serve::request_class;
using plssvm::serve::request_options;
using plssvm::serve::request_shed_exception;
using plssvm::serve::token_bucket;
namespace test = plssvm::test;
using namespace std::chrono_literals;

using time_point = std::chrono::steady_clock::time_point;

/// Fake-clock origin: the bucket only ever sees the time points we hand it.
[[nodiscard]] time_point fake_now(const std::chrono::microseconds offset = 0us) {
    return time_point{} + 1h + offset;
}

// ---------------------------------------------------------------------------
// token bucket (fake clock, deterministic)
// ---------------------------------------------------------------------------

TEST(QosTokenBucket, BurstThenRefillAtConfiguredRate) {
    token_bucket bucket{ /*rate=*/100.0, /*burst=*/10.0 };
    // a fresh bucket holds one full burst
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(bucket.try_acquire(fake_now())) << "burst token " << i;
    }
    EXPECT_FALSE(bucket.try_acquire(fake_now())) << "burst exhausted at the same instant";
    // 50 ms at 100 tokens/s accrues exactly 5 tokens
    const time_point later = fake_now(50ms);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(bucket.try_acquire(later)) << "refilled token " << i;
    }
    EXPECT_FALSE(bucket.try_acquire(later));
}

TEST(QosTokenBucket, RefillIsCappedAtBurst) {
    token_bucket bucket{ /*rate=*/1000.0, /*burst=*/4.0 };
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(bucket.try_acquire(fake_now()));
    }
    // an hour of refill must still cap at the burst size
    const time_point much_later = fake_now(std::chrono::microseconds{ 3'600'000'000LL });
    EXPECT_DOUBLE_EQ(bucket.available(much_later), 4.0);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(bucket.try_acquire(much_later));
    }
    EXPECT_FALSE(bucket.try_acquire(much_later));
}

TEST(QosTokenBucket, SubUnitRateStillAdmitsEventually) {
    // regression: rate < 1 with the default burst ("one second of rate")
    // must not produce a bucket whose cap can never hold a whole token
    token_bucket bucket{ /*rate=*/0.5, /*burst=*/0.0 };
    EXPECT_TRUE(bucket.try_acquire(fake_now())) << "a fresh bucket holds at least one token";
    EXPECT_FALSE(bucket.try_acquire(fake_now(1s)));  // only 0.5 accrued
    EXPECT_TRUE(bucket.try_acquire(fake_now(2100ms))) << "one request per 2 s must keep flowing";
}

TEST(QosTokenBucket, ZeroRateMeansUnlimited) {
    token_bucket bucket;  // default: unlimited
    EXPECT_TRUE(bucket.unlimited());
    for (int i = 0; i < 10'000; ++i) {
        ASSERT_TRUE(bucket.try_acquire(fake_now()));
    }
}

TEST(QosTokenBucket, NonMonotonicTimeDoesNotAccrueTokens) {
    token_bucket bucket{ /*rate=*/10.0, /*burst=*/1.0 };
    EXPECT_TRUE(bucket.try_acquire(fake_now(100ms)));
    // going backwards in time must not mint tokens
    EXPECT_FALSE(bucket.try_acquire(fake_now(0ms)));
}

// ---------------------------------------------------------------------------
// admission controller
// ---------------------------------------------------------------------------

TEST(QosAdmission, ShedsOnClassQueueDepth) {
    qos_config config;
    config.classes[class_index(request_class::interactive)].max_pending = 4;
    admission_controller admission{ config };
    EXPECT_EQ(admission.try_admit(request_class::interactive, 3, fake_now()), admission_decision::admitted);
    EXPECT_EQ(admission.try_admit(request_class::interactive, 4, fake_now()), admission_decision::shed_queue_full);
    // the threshold is per class: background is not limited here
    EXPECT_EQ(admission.try_admit(request_class::background, 4, fake_now()), admission_decision::admitted);
}

TEST(QosAdmission, RateLimitIsPerClassAndQueueCheckBurnsNoToken) {
    qos_config config;
    config.classes[class_index(request_class::batch)].rate_limit = 100.0;
    config.classes[class_index(request_class::batch)].burst = 1.0;
    config.classes[class_index(request_class::batch)].max_pending = 8;
    admission_controller admission{ config };
    // queue-full requests must not consume the single token ...
    EXPECT_EQ(admission.try_admit(request_class::batch, 8, fake_now()), admission_decision::shed_queue_full);
    // ... so it is still available here
    EXPECT_EQ(admission.try_admit(request_class::batch, 0, fake_now()), admission_decision::admitted);
    EXPECT_EQ(admission.try_admit(request_class::batch, 0, fake_now()), admission_decision::shed_rate_limited);
    // other classes are unlimited
    EXPECT_EQ(admission.try_admit(request_class::interactive, 0, fake_now()), admission_decision::admitted);
}

// ---------------------------------------------------------------------------
// per-class priority ordering + deadline clamping in the micro-batcher
// ---------------------------------------------------------------------------

TEST(QosBatcher, HighestPriorityReadyClassIsReleasedFirst) {
    micro_batcher<double> batcher{ batch_policy{ 64, std::chrono::microseconds{ 10'000'000 } } };
    (void) batcher.enqueue({ 3.0 }, request_class::background);
    (void) batcher.enqueue({ 2.0 }, request_class::batch);
    (void) batcher.enqueue({ 1.0 }, request_class::interactive);
    (void) batcher.enqueue({ 1.5 }, request_class::interactive);
    batcher.shutdown();  // everything ready: drain order = priority order
    auto first = batcher.next_batch();
    EXPECT_EQ(first.cls, request_class::interactive);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first.requests[0].point[0], 1.0);
    EXPECT_EQ(first.requests[1].point[0], 1.5);
    EXPECT_EQ(batcher.next_batch().cls, request_class::batch);
    EXPECT_EQ(batcher.next_batch().cls, request_class::background);
    EXPECT_TRUE(batcher.next_batch().empty());
}

TEST(QosBatcher, PerClassPendingCounters) {
    micro_batcher<double> batcher;
    (void) batcher.enqueue({ 1.0 }, request_class::interactive);
    (void) batcher.enqueue({ 2.0 }, request_class::background);
    (void) batcher.enqueue({ 3.0 }, request_class::background);
    EXPECT_EQ(batcher.pending(), 3u);
    EXPECT_EQ(batcher.pending(request_class::interactive), 1u);
    EXPECT_EQ(batcher.pending(request_class::batch), 0u);
    EXPECT_EQ(batcher.pending(request_class::background), 2u);
    batcher.shutdown();
    while (!batcher.next_batch().empty()) {
    }
}

TEST(QosBatcher, DeadlineBudgetOverridesFlushDelay) {
    // flush delay is 10 s, but the request's 20 ms deadline (minus the
    // estimated batch latency) must flush it long before that
    micro_batcher<double> batcher{ batch_policy{ 64, std::chrono::microseconds{ 10'000'000 } } };
    per_class<class_batch_policy> policies{};
    for (class_batch_policy &p : policies) {
        p = class_batch_policy{ 64, std::chrono::microseconds{ 10'000'000 }, 5ms };
    }
    batcher.set_class_policies(policies);
    auto future = batcher.enqueue({ 1.0 }, request_class::interactive, 20ms);
    const auto start = std::chrono::steady_clock::now();
    auto batch = batcher.next_batch();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_LT(elapsed, 1s) << "a deadline-carrying request must not wait out the full flush delay";
    EXPECT_NE(batch.requests[0].deadline, plssvm::serve::no_deadline);
    batch.requests[0].result.set_value(0.0);
    (void) future.get();
    batcher.shutdown();
}

TEST(QosBatcher, TighterDeadlineOfNewerRequestOverridesOldestFlush) {
    // regression: the flush deadline must honor the TIGHTEST queued
    // deadline of the class, not just the oldest request's — a
    // deadline-free request at the queue head must not hold a later
    // deadline-carrying request for the full flush delay
    micro_batcher<double> batcher{ batch_policy{ 64, std::chrono::microseconds{ 10'000'000 } } };
    (void) batcher.enqueue({ 1.0 }, request_class::interactive);         // no deadline
    auto urgent = batcher.enqueue({ 2.0 }, request_class::interactive, 20ms);
    const auto start = std::chrono::steady_clock::now();
    auto batch = batcher.next_batch();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_EQ(batch.size(), 2u) << "both requests flush together";
    EXPECT_LT(elapsed, 1s) << "the newer request's deadline must trigger the flush";
    batch.requests[0].result.set_value(0.0);
    batch.requests[1].result.set_value(0.0);
    (void) urgent.get();
    batcher.shutdown();
}

TEST(QosBatcher, ShrinkingTargetViaPolicySwapReleasesWaitingBatch) {
    micro_batcher<double> batcher{ batch_policy{ 64, std::chrono::microseconds{ 10'000'000 } } };
    (void) batcher.enqueue({ 1.0 });
    (void) batcher.enqueue({ 2.0 });
    std::thread consumer{ [&batcher]() {
        const auto batch = batcher.next_batch();
        EXPECT_EQ(batch.size(), 2u);
    } };
    std::this_thread::sleep_for(20ms);  // consumer waits: 2 < target 64
    per_class<class_batch_policy> policies{};
    for (class_batch_policy &p : policies) {
        p = class_batch_policy{ 2, std::chrono::microseconds{ 10'000'000 }, 0us };
    }
    batcher.set_class_policies(policies);  // 2 >= new target: ready now
    consumer.join();
    batcher.shutdown();
}

// ---------------------------------------------------------------------------
// adaptive tuner (deterministic: pure function of the observed counters)
// ---------------------------------------------------------------------------

TEST(QosAdaptive, ResolvesAutoKnobsAgainstBasePolicy) {
    const batch_tuner tuner{ qos_config{}, batch_policy{ 64, 250us }, nullptr };
    const qos_config &resolved = tuner.config();
    EXPECT_EQ(resolved.adaptive.min_batch_size, 8u);    // 64 / 8
    EXPECT_EQ(resolved.adaptive.max_batch_size, 256u);  // 64 * 4
    EXPECT_DOUBLE_EQ(resolved.adaptive.backlog_at_max, 512.0);
    EXPECT_EQ(resolved.classes[class_index(request_class::interactive)].base_flush_delay, 250us);
    EXPECT_EQ(resolved.classes[class_index(request_class::batch)].base_flush_delay, 1000us);
    EXPECT_EQ(resolved.classes[class_index(request_class::background)].base_flush_delay, 4000us);
    EXPECT_EQ(resolved.classes[class_index(request_class::interactive)].max_flush_delay, 2000us);
}

TEST(QosAdaptive, TargetsGrowUnderLoadAndShrinkWhenIdle) {
    batch_tuner tuner{ qos_config{}, batch_policy{ 64, 250us }, nullptr };
    const std::size_t idle_target = tuner.policies()[class_index(request_class::interactive)].target_batch_size;
    EXPECT_EQ(idle_target, 8u) << "no observations yet: the idle minimum";

    // sustained overload: backlog beyond the saturation point (512) drives
    // the target to the maximum, monotonically
    std::size_t previous = idle_target;
    for (int i = 0; i < 64; ++i) {
        tuner.observe(/*backlog=*/1024, /*lane_queue_depth=*/0, /*lane_steals_total=*/0, /*cross_lane_queued=*/0);
        const std::size_t target = tuner.policies()[class_index(request_class::interactive)].target_batch_size;
        EXPECT_GE(target, previous) << "growth must be monotone under constant overload";
        previous = target;
    }
    EXPECT_EQ(previous, 256u) << "fully saturated: the adaptive maximum";
    EXPECT_GE(previous, 2 * idle_target);
    EXPECT_DOUBLE_EQ(tuner.saturation(), 1.0);
    // flush deadlines stretch with the load
    EXPECT_EQ(tuner.policies()[class_index(request_class::interactive)].flush_delay, 2000us);

    // back to idle: the EWMA decays the target to the minimum again
    for (int i = 0; i < 512; ++i) {
        tuner.observe(0, 0, 0, 0);
    }
    EXPECT_EQ(tuner.policies()[class_index(request_class::interactive)].target_batch_size, idle_target);
    EXPECT_LT(tuner.saturation(), 0.01);
}

TEST(QosAdaptive, StealPressureCountsTowardSaturation) {
    batch_tuner tuner_no_steals{ qos_config{}, batch_policy{ 64, 250us }, nullptr };
    batch_tuner tuner_steals{ qos_config{}, batch_policy{ 64, 250us }, nullptr };
    std::size_t steals_total = 0;
    for (int i = 0; i < 16; ++i) {
        tuner_no_steals.observe(64, 0, 0, 0);
        steals_total += 32;  // heavy cross-lane stealing each interval
        tuner_steals.observe(64, 0, steals_total, 0);
    }
    EXPECT_GT(tuner_steals.saturation(), tuner_no_steals.saturation());
    EXPECT_GT(tuner_steals.policies()[class_index(request_class::batch)].target_batch_size,
              tuner_no_steals.policies()[class_index(request_class::batch)].target_batch_size);
}

TEST(QosAdaptive, DeadlineBudgetCapsTargetThroughCostModel) {
    qos_config config;
    config.classes[class_index(request_class::interactive)].deadline_budget = 4ms;
    // fake cost model: 1 ms per point — a 4 ms budget at exec fraction 0.5
    // affords a 2-point batch
    batch_tuner tuner{ config, batch_policy{ 64, 250us },
                       [](const std::size_t batch) { return 1e-3 * static_cast<double>(batch); } };
    for (int i = 0; i < 64; ++i) {
        tuner.observe(4096, 0, 0, 0);  // overload: unconstrained classes max out
    }
    const auto policies = tuner.policies();
    EXPECT_EQ(policies[class_index(request_class::batch)].target_batch_size, 256u)
        << "no deadline: full adaptive growth";
    EXPECT_LE(policies[class_index(request_class::interactive)].target_batch_size, 8u)
        << "the deadline budget must cap growth through the cost model";
    EXPECT_LE(policies[class_index(request_class::interactive)].estimated_batch_latency, 8ms);
}

TEST(QosAdaptive, StaticModeIgnoresLoad) {
    qos_config config;
    config.adaptive_batching = false;
    batch_tuner tuner{ config, batch_policy{ 32, 150us }, nullptr };
    for (int i = 0; i < 32; ++i) {
        tuner.observe(100'000, 100, 100, 100);
    }
    for (const request_class cls : all_request_classes) {
        EXPECT_EQ(tuner.policies()[class_index(cls)].target_batch_size, 32u);
        EXPECT_EQ(tuner.policies()[class_index(cls)].flush_delay, 150us);
    }
    EXPECT_DOUBLE_EQ(tuner.saturation(), 0.0);
}

// ---------------------------------------------------------------------------
// engine integration: shedding, per-class accounting, idle wakeups, JSON
// ---------------------------------------------------------------------------

TEST(QosEngine, ShedExceptionCarriesClassAndReason) {
    engine_config config;
    config.num_threads = 2;
    config.qos.classes[class_index(request_class::background)].rate_limit = 0.001;
    config.qos.classes[class_index(request_class::background)].burst = 1.0;
    inference_engine<double> engine{ test::random_model(kernel_type::linear), config };
    const std::vector<double> point(11, 0.5);

    // the single burst token admits one background request ...
    auto admitted = engine.submit(point, request_options{ .cls = request_class::background });
    // ... the next is rate-shed with the typed error
    try {
        (void) engine.submit(point, request_options{ .cls = request_class::background });
        FAIL() << "expected request_shed_exception";
    } catch (const request_shed_exception &e) {
        EXPECT_EQ(e.shed_class(), request_class::background);
        EXPECT_EQ(e.reason(), admission_decision::shed_rate_limited);
    }
    // other classes are unaffected
    auto interactive = engine.submit(point, request_options{ .cls = request_class::interactive });
    (void) admitted.get();
    (void) interactive.get();

    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.classes[class_index(request_class::background)].admitted, 1u);
    EXPECT_EQ(stats.classes[class_index(request_class::background)].shed_rate_limited, 1u);
    EXPECT_EQ(stats.classes[class_index(request_class::interactive)].admitted, 1u);
    EXPECT_EQ(stats.classes[class_index(request_class::interactive)].shed_rate_limited, 0u);
}

TEST(QosEngine, OverloadShedsOnQueueDepthButServesEveryAdmittedRequest) {
    engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 16;
    config.batch_delay = 100us;
    config.qos.classes[class_index(request_class::interactive)].max_pending = 8;
    inference_engine<double> engine{ test::random_model(kernel_type::rbf), config };
    const aos_matrix<double> points = test::random_matrix(64, 11, 21);

    constexpr std::size_t num_producers = 4;
    constexpr std::size_t per_producer = 200;
    std::atomic<std::size_t> shed{ 0 };
    std::atomic<std::size_t> answered{ 0 };
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < num_producers; ++t) {
        producers.emplace_back([&, t]() {
            // open loop: fire everything without waiting, so the class
            // backlog genuinely overruns its shed threshold
            std::vector<std::future<double>> futures;
            for (std::size_t i = 0; i < per_producer; ++i) {
                const std::size_t row = (t * per_producer + i) % points.num_rows();
                std::vector<double> point(points.row_data(row), points.row_data(row) + points.num_cols());
                try {
                    futures.push_back(engine.submit(std::move(point), request_options{ .cls = request_class::interactive }));
                } catch (const request_shed_exception &) {
                    ++shed;
                }
            }
            for (std::future<double> &f : futures) {
                (void) f.get();  // every admitted request must be answered
                ++answered;
            }
        });
    }
    for (std::thread &producer : producers) {
        producer.join();
    }
    EXPECT_EQ(answered.load() + shed.load(), num_producers * per_producer) << "every request is answered or shed, never lost";
    EXPECT_GT(shed.load(), 0u) << "an 800-request burst against an 8-deep class queue must shed";
    EXPECT_GT(answered.load(), 0u);
    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.classes[class_index(request_class::interactive)].completed, answered.load());
    EXPECT_EQ(stats.classes[class_index(request_class::interactive)].shed_queue_full, shed.load());
    // the engine stays healthy after the overload burst
    auto after = engine.submit(std::vector<double>(points.row_data(0), points.row_data(0) + points.num_cols()));
    EXPECT_NO_THROW((void) after.get());
}

TEST(QosEngine, DeadlineMissesAreCountedPerClass) {
    engine_config config;
    config.num_threads = 2;
    inference_engine<double> engine{ test::random_model(kernel_type::rbf), config };
    const std::vector<double> point(11, 0.25);
    // a 1 us budget is over before the drain thread can possibly fulfil it:
    // the request is still served, and the miss is counted
    auto future = engine.submit(point, request_options{ .cls = request_class::interactive, .deadline = 1us });
    EXPECT_NO_THROW((void) future.get());
    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.classes[class_index(request_class::interactive)].deadline_misses, 1u);
    EXPECT_EQ(stats.classes[class_index(request_class::interactive)].completed, 1u);
}

// Satellite regression: an engine with NO traffic must not wake its drain
// thread periodically (the flush wait is deadline-driven, not polled).
TEST(QosEngine, IdleEngineNoSpuriousWakeups) {
    engine_config config;
    config.num_threads = 2;
    config.batch_delay = 50us;  // a poller would wake ~2000 times in 100 ms
    inference_engine<double> engine{ test::random_model(kernel_type::linear), config };
    std::this_thread::sleep_for(100ms);
    EXPECT_EQ(engine.stats().flush_timer_wakeups, 0u);
}

TEST(QosEngine, ClassTaggedSubmitsMatchSyncPredictions) {
    const model<double> m = test::random_model(kernel_type::polynomial);
    inference_engine<double> engine{ m, engine_config{ .num_threads = 2, .max_batch_size = 8, .batch_delay = 100us } };
    const aos_matrix<double> points = test::random_matrix(24, 11, 33);
    const std::vector<double> expected = engine.predict(points);
    std::vector<std::future<double>> futures;
    for (std::size_t p = 0; p < points.num_rows(); ++p) {
        const request_class cls = all_request_classes[p % all_request_classes.size()];
        futures.push_back(engine.submit(std::vector<double>(points.row_data(p), points.row_data(p) + points.num_cols()),
                                        request_options{ .cls = cls }));
    }
    for (std::size_t p = 0; p < futures.size(); ++p) {
        EXPECT_EQ(futures[p].get(), expected[p]) << "point=" << p;
    }
    const plssvm::serve::serve_stats stats = engine.stats();
    std::size_t completed = 0;
    for (const request_class cls : all_request_classes) {
        EXPECT_EQ(stats.classes[class_index(cls)].admitted, 8u);
        completed += stats.classes[class_index(cls)].completed;
    }
    EXPECT_EQ(completed, points.num_rows());
}

// ---------------------------------------------------------------------------
// stats JSON snapshot (satellite: scrape format)
// ---------------------------------------------------------------------------

TEST(QosStats, JsonRendersAllSectionsWithExactCounters) {
    plssvm::serve::serve_stats stats;
    stats.total_requests = 128;
    stats.total_batches = 4;
    stats.snapshot_version = 7;
    stats.classes[class_index(request_class::interactive)].admitted = 100;
    stats.classes[class_index(request_class::interactive)].shed_queue_full = 2;
    stats.classes[class_index(request_class::background)].deadline_misses = 3;
    stats.classes[class_index(request_class::batch)].target_batch_size = 42;
    const std::string json = plssvm::serve::to_json(stats);

    EXPECT_NE(json.find("\"total_requests\": 128"), std::string::npos) << json;
    EXPECT_NE(json.find("\"snapshot_version\": 7"), std::string::npos) << json;
    EXPECT_NE(json.find("\"paths\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"classes\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"interactive\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"batch\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"background\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"admitted\": 100"), std::string::npos) << json;
    EXPECT_NE(json.find("\"shed_queue_full\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"deadline_misses\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"target_batch_size\": 42"), std::string::npos) << json;
    // structurally sound: balanced braces, no trailing comma before a closer
    std::ptrdiff_t depth = 0;
    for (const char c : json) {
        depth += c == '{' ? 1 : c == '}' ? -1 : 0;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << json;
    EXPECT_EQ(json.find(", }"), std::string::npos) << json;
    EXPECT_EQ(json.find(",}"), std::string::npos) << json;
}

TEST(QosStats, EngineStatsJsonReflectsLiveTraffic) {
    inference_engine<double> engine{ test::random_model(kernel_type::linear), engine_config{ .num_threads = 2 } };
    const aos_matrix<double> points = test::random_matrix(32, 11, 5);
    (void) engine.predict(points);
    const std::string json = engine.stats_json();
    EXPECT_NE(json.find("\"total_requests\": 32"), std::string::npos) << json;
    EXPECT_NE(json.find("\"snapshot_version\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"target_batch_size\": "), std::string::npos) << json;
}

TEST(QosStats, RegistryStatsJsonAggregatesAllResidentModels) {
    plssvm::serve::model_registry<double> registry{ 4, engine_config{ .num_threads = 2 } };
    (void) registry.load("alpha", test::random_model(kernel_type::linear));
    (void) registry.load("beta", test::random_model(kernel_type::rbf));
    const std::string json = registry.stats_json();
    EXPECT_EQ(json.rfind("{\"health\": \"", 0), 0u) << json;
    EXPECT_NE(json.find("\"models\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"alpha\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"beta\": {"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// reload under QoS: admitted requests stay consistent across snapshot swaps
// ---------------------------------------------------------------------------

TEST(QosEngine, ReloadUnderQosServesEveryAdmittedRequestConsistently) {
    constexpr std::size_t dim = 11;
    constexpr std::size_t num_versions = 3;
    std::vector<model<double>> versions;
    for (std::size_t v = 0; v < num_versions; ++v) {
        versions.push_back(test::random_model(kernel_type::rbf, /*num_sv=*/24, dim, /*seed=*/100 + v));
    }
    const aos_matrix<double> queries = test::random_matrix(32, dim, 77);
    // every label any version could produce, for the consistency check
    std::vector<std::vector<double>> valid_labels(queries.num_rows());
    for (const model<double> &m : versions) {
        const plssvm::serve::compiled_model<double> compiled{ m };
        for (std::size_t p = 0; p < queries.num_rows(); ++p) {
            valid_labels[p].push_back(compiled.label_from_decision(compiled.decision_value(queries.row_data(p))));
        }
    }

    engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 16;
    config.batch_delay = 100us;
    config.qos.classes[class_index(request_class::interactive)].max_pending = 64;
    config.qos.classes[class_index(request_class::interactive)].deadline_budget = 50ms;
    inference_engine<double> engine{ versions[0], config };

    std::atomic<bool> stop{ false };
    std::atomic<std::size_t> answered{ 0 };
    std::atomic<std::size_t> shed{ 0 };
    std::atomic<std::size_t> inconsistent{ 0 };
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < 3; ++t) {
        producers.emplace_back([&, t]() {
            std::size_t row = 17 * t;
            while (!stop.load(std::memory_order_relaxed)) {
                const std::size_t p = row++ % queries.num_rows();
                const request_class cls = all_request_classes[row % all_request_classes.size()];
                try {
                    const double label = engine.submit(std::vector<double>(queries.row_data(p), queries.row_data(p) + dim),
                                                       request_options{ .cls = cls })
                                             .get();
                    ++answered;
                    bool valid = false;
                    for (const double candidate : valid_labels[p]) {
                        valid = valid || candidate == label;
                    }
                    if (!valid) {
                        ++inconsistent;
                    }
                } catch (const request_shed_exception &) {
                    ++shed;
                }
            }
        });
    }
    // reload storm while the producers hammer the class-tagged submit path
    for (std::size_t round = 0; round < 12; ++round) {
        engine.reload(versions[round % num_versions]);
        std::this_thread::sleep_for(5ms);
    }
    stop.store(true);
    for (std::thread &producer : producers) {
        producer.join();
    }

    EXPECT_GT(answered.load(), 0u);
    EXPECT_EQ(inconsistent.load(), 0u) << "every answer must come from exactly one snapshot";
    const plssvm::serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.reloads, 12u);
    EXPECT_EQ(stats.snapshot_version, 13u);
    std::size_t completed = 0;
    for (const request_class cls : all_request_classes) {
        completed += stats.classes[class_index(cls)].completed;
    }
    EXPECT_EQ(completed, answered.load());
}

}  // namespace
