/**
 * @file
 * @brief Tests for NUMA topology discovery and topology-aware placement:
 *        cpulist parsing, sysfs probing against fake trees, the graceful
 *        degradation ladder (missing sysfs / single node / oversubscribed
 *        pool all collapse to the no-pinning executor), lane home-domain
 *        resolution, and the NUMA-sharded engine + registry integration.
 *
 * The probe's sysfs root is injectable, so multi-node behavior is tested on
 * any host — including the single-core CI runner — by writing a fake
 * `node<N>/cpulist` tree under /tmp. Actual `pthread_setaffinity_np` calls
 * may fail against fabricated CPU ids; the executor is required to shrug
 * that off, which these tests implicitly exercise.
 */

#include "plssvm/serve/executor.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/model_registry.hpp"
#include "plssvm/serve/sharded_engine.hpp"
#include "plssvm/serve/topology.hpp"

#include "serve/serve_test_utils.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

namespace {

using plssvm::serve::any_numa_domain;
using plssvm::serve::executor;
using plssvm::serve::executor_options;
using plssvm::serve::lane_options;
using plssvm::serve::numa_domain;
using plssvm::serve::parse_cpu_list;
using plssvm::serve::probe_topology;
using plssvm::serve::single_node_topology;
using plssvm::serve::topology_info;
namespace test = plssvm::test;

// --- cpulist parsing ---------------------------------------------------------

TEST(ExecutorTopology, ParsesRangesAndSingletons) {
    EXPECT_EQ(parse_cpu_list("0-3,8,10-11"), (std::vector<int>{ 0, 1, 2, 3, 8, 10, 11 }));
    EXPECT_EQ(parse_cpu_list("5"), (std::vector<int>{ 5 }));
    EXPECT_EQ(parse_cpu_list("0-0"), (std::vector<int>{ 0 }));
    EXPECT_EQ(parse_cpu_list("0-1\n"), (std::vector<int>{ 0, 1 }));  // sysfs trailing newline
}

TEST(ExecutorTopology, SkipsMalformedTokensInsteadOfThrowing) {
    EXPECT_EQ(parse_cpu_list(""), (std::vector<int>{}));
    EXPECT_EQ(parse_cpu_list("abc"), (std::vector<int>{}));
    EXPECT_EQ(parse_cpu_list("3-1"), (std::vector<int>{}));          // inverted range
    EXPECT_EQ(parse_cpu_list("x,2,7-,4"), (std::vector<int>{ 2, 4 }));
    EXPECT_EQ(parse_cpu_list("-1,1"), (std::vector<int>{ 1 }));
}

// --- probing a fake sysfs tree ----------------------------------------------

/// Write a fake `/sys/devices/system/node`-style tree and hand back its root.
class fake_sysfs {
  public:
    explicit fake_sysfs(const std::string &name) :
        root_{ std::filesystem::temp_directory_path() / ("plssvm_topo_" + name) } {
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(root_);
    }

    ~fake_sysfs() {
        std::error_code ec;  // best-effort cleanup, never throw from a dtor
        std::filesystem::remove_all(root_, ec);
    }

    void add_node(const std::size_t id, const std::string &cpulist) {
        const std::filesystem::path dir = root_ / ("node" + std::to_string(id));
        std::filesystem::create_directories(dir);
        std::ofstream{ dir / "cpulist" } << cpulist << '\n';
    }

    [[nodiscard]] std::string path() const { return root_.string(); }

  private:
    std::filesystem::path root_;
};

TEST(ExecutorTopology, ProbesMultiNodeTreeFromSysfs) {
    fake_sysfs tree{ "two_nodes" };
    tree.add_node(0, "0-1");
    tree.add_node(1, "2-3");
    const topology_info topo = probe_topology(tree.path());
    EXPECT_EQ(topo.source, "sysfs");
    ASSERT_EQ(topo.num_domains(), 2u);
    EXPECT_TRUE(topo.multi_node());
    EXPECT_EQ(topo.num_cpus(), 4u);
    EXPECT_EQ(topo.domains[0].cpus, (std::vector<int>{ 0, 1 }));
    EXPECT_EQ(topo.domains[1].cpus, (std::vector<int>{ 2, 3 }));
}

TEST(ExecutorTopology, SkipsCpuLessNodes) {
    fake_sysfs tree{ "memory_only_node" };
    tree.add_node(0, "0-3");
    tree.add_node(1, "");  // CXL-style memory-only node: no local CPUs
    tree.add_node(2, "4-7");
    const topology_info topo = probe_topology(tree.path());
    EXPECT_EQ(topo.source, "sysfs");
    ASSERT_EQ(topo.num_domains(), 2u);
    EXPECT_EQ(topo.domains[1].cpus, (std::vector<int>{ 4, 5, 6, 7 }));
}

TEST(ExecutorTopology, MissingRootFallsBackToSingleNode) {
    const topology_info topo = probe_topology("/nonexistent/plssvm/sysfs/root");
    EXPECT_EQ(topo.source, "fallback");
    ASSERT_EQ(topo.num_domains(), 1u);
    EXPECT_FALSE(topo.multi_node());
    EXPECT_GE(topo.num_cpus(), 1u);
}

TEST(ExecutorTopology, AllNodesUnreadableFallsBackToSingleNode) {
    fake_sysfs tree{ "empty" };  // root exists, zero node<N> entries
    const topology_info topo = probe_topology(tree.path());
    EXPECT_EQ(topo.source, "fallback");
    EXPECT_EQ(topo.num_domains(), 1u);
}

TEST(ExecutorTopology, SingleNodeFallbackCoversRequestedCpus) {
    const topology_info topo = single_node_topology(6);
    ASSERT_EQ(topo.num_domains(), 1u);
    EXPECT_EQ(topo.num_cpus(), 6u);
    EXPECT_EQ(topo.source, "fallback");
}

// --- executor placement on injected topologies -------------------------------

/// Fake topology: @p domains NUMA nodes with @p cpus_each fabricated CPUs.
[[nodiscard]] topology_info fake_topology(const std::size_t domains, const std::size_t cpus_each) {
    topology_info topo{};
    topo.source = "sysfs";
    int next_cpu = 0;
    for (std::size_t d = 0; d < domains; ++d) {
        numa_domain node{};
        node.id = d;
        for (std::size_t c = 0; c < cpus_each; ++c) {
            node.cpus.push_back(next_cpu++);
        }
        topo.domains.push_back(std::move(node));
    }
    return topo;
}

TEST(ExecutorTopology, MultiNodeExecutorSpreadsWorkersAcrossDomains) {
    executor exec{ 4, executor_options{ .topology = fake_topology(2, 2) } };
    EXPECT_EQ(exec.num_domains(), 2u);
    EXPECT_TRUE(exec.pinning_active());
    EXPECT_EQ(exec.workers_in_domain(0), 2u);
    EXPECT_EQ(exec.workers_in_domain(1), 2u);
    EXPECT_EQ(exec.worker_domain(0), 0u);
    EXPECT_EQ(exec.worker_domain(1), 1u);
    EXPECT_EQ(exec.worker_domain(2), 0u);
    EXPECT_EQ(exec.worker_domain(3), 1u);

    // the executor still executes work even though pinning to fabricated
    // CPU ids fails on the real machine
    executor::lane lane = exec.create_lane(lane_options{ .name = "topo" });
    EXPECT_EQ(lane.enqueue([] { return 17; }).get(), 17);
}

TEST(ExecutorTopology, SingleNodeTopologyDisablesPinning) {
    executor exec{ 2, executor_options{ .topology = fake_topology(1, 4) } };
    EXPECT_EQ(exec.num_domains(), 1u);
    EXPECT_FALSE(exec.pinning_active());
}

TEST(ExecutorTopology, OversubscribedPoolDegradesToNoPinning) {
    // 8 workers on 4 fabricated CPUs: pinning would stack workers, so the
    // executor must fall back to the free-floating pre-NUMA behavior.
    executor exec{ 8, executor_options{ .topology = fake_topology(2, 2) } };
    EXPECT_EQ(exec.num_domains(), 2u);
    EXPECT_FALSE(exec.pinning_active());
    executor::lane lane = exec.create_lane(lane_options{ .name = "over" });
    EXPECT_EQ(lane.enqueue([] { return 5; }).get(), 5);
}

TEST(ExecutorTopology, PinningCanBeDisabledByOption) {
    executor exec{ 4, executor_options{ .topology = fake_topology(2, 2), .pin_workers = false } };
    EXPECT_FALSE(exec.pinning_active());
}

TEST(ExecutorTopology, StatsJsonCarriesTopologySection) {
    executor exec{ 4, executor_options{ .topology = fake_topology(2, 2) } };
    executor::lane lane = exec.create_lane(lane_options{ .name = "alpha", .home_domain = 1 });
    const std::string json = exec.stats_json();
    EXPECT_NE(json.find("\"topology\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"domains\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"source\": \"sysfs\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"pinned\": true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"home_domain\": 1"), std::string::npos) << json;
}

TEST(ExecutorTopology, FallbackExecutorStatsJsonReportsUnpinned) {
    executor exec{ 1, executor_options{ .topology = single_node_topology(1) } };
    const std::string json = exec.stats_json();
    EXPECT_NE(json.find("\"topology\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"domains\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"pinned\": false"), std::string::npos) << json;
}

TEST(ExecutorTopology, LaneResolvesToRequestedHomeDomain) {
    executor exec{ 4, executor_options{ .topology = fake_topology(2, 2) } };
    executor::lane on_one = exec.create_lane(lane_options{ .name = "d1", .home_domain = 1 });
    EXPECT_EQ(on_one.home_domain(), 1u);
    // no preference: the lane lands wherever round-robin says, but always on
    // a real domain
    executor::lane anywhere = exec.create_lane(lane_options{ .name = "any" });
    EXPECT_LT(anywhere.home_domain(), exec.num_domains());
    // a domain without workers cannot be honored; the lane must still work
    executor::lane bogus = exec.create_lane(lane_options{ .name = "bogus", .home_domain = 99 });
    EXPECT_LT(bogus.home_domain(), exec.num_domains());
    EXPECT_EQ(bogus.enqueue([] { return 3; }).get(), 3);
}

// --- sharded engine ----------------------------------------------------------

TEST(ExecutorTopology, ShardedEngineCreatesOneReplicaPerDomain) {
    executor exec{ 4, executor_options{ .topology = fake_topology(2, 2) } };
    const plssvm::model<double> trained = test::random_model(plssvm::kernel_type::rbf);
    plssvm::serve::engine_config config{};
    config.exec = &exec;
    plssvm::serve::sharded_engine<double> sharded{ trained, config };
    EXPECT_EQ(sharded.num_shards(), 2u);
    EXPECT_EQ(sharded.replica(0).home_domain(), 0u);
    EXPECT_EQ(sharded.replica(1).home_domain(), 1u);
}

TEST(ExecutorTopology, ShardedEngineMatchesPlainEngineResults) {
    executor exec{ 4, executor_options{ .topology = fake_topology(2, 2) } };
    const plssvm::model<double> trained = test::random_model(plssvm::kernel_type::rbf);
    const plssvm::aos_matrix<double> queries = test::random_matrix(16, 11, 7);

    plssvm::serve::engine_config config{};
    config.exec = &exec;
    plssvm::serve::sharded_engine<double> sharded{ trained, config };
    plssvm::serve::inference_engine<double> plain{ trained, config };

    const std::vector<double> expected = plain.decision_values(queries);
    // every rotation target must serve identical values
    for (std::size_t round = 0; round < sharded.num_shards(); ++round) {
        const std::vector<double> actual = sharded.decision_values(queries);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t i = 0; i < actual.size(); ++i) {
            EXPECT_DOUBLE_EQ(actual[i], expected[i]) << "round " << round << " point " << i;
        }
    }

    // async submits route across replicas and settle with the same values
    std::vector<std::future<double>> futures;
    for (std::size_t i = 0; i < queries.num_rows(); ++i) {
        std::vector<double> point(queries.num_cols());
        for (std::size_t c = 0; c < point.size(); ++c) {
            point[c] = queries(i, c);
        }
        futures.push_back(sharded.submit(std::move(point)));
    }
    const std::vector<double> labels = plain.predict(queries);
    for (std::size_t i = 0; i < futures.size(); ++i) {
        EXPECT_DOUBLE_EQ(futures[i].get(), labels[i]) << "point " << i;
    }
}

TEST(ExecutorTopology, ShardedEngineReloadSwapsEveryReplica) {
    executor exec{ 4, executor_options{ .topology = fake_topology(2, 2) } };
    plssvm::serve::engine_config config{};
    config.exec = &exec;
    plssvm::serve::sharded_engine<double> sharded{ test::random_model(plssvm::kernel_type::linear), config };
    const std::uint64_t before = sharded.snapshot_version();
    sharded.reload(test::random_model(plssvm::kernel_type::linear, 37, 11, /*seed=*/99));
    for (std::size_t shard = 0; shard < sharded.num_shards(); ++shard) {
        EXPECT_GT(sharded.replica(shard).snapshot_version(), before) << "shard " << shard;
    }
    EXPECT_EQ(sharded.health(), plssvm::serve::health_state::healthy);
}

TEST(ExecutorTopology, ShardedStatsAggregateAcrossReplicas) {
    executor exec{ 2, executor_options{ .topology = fake_topology(2, 1) } };
    const plssvm::model<double> trained = test::random_model(plssvm::kernel_type::rbf);
    plssvm::serve::engine_config config{};
    config.exec = &exec;
    plssvm::serve::sharded_engine<double> sharded{ trained, config };
    for (int i = 0; i < 6; ++i) {
        (void) sharded.predict(test::random_matrix(4, 11, 100 + static_cast<std::uint64_t>(i)));
    }
    const plssvm::serve::serve_stats stats = sharded.stats();
    EXPECT_EQ(stats.total_requests, 24u);  // 6 batches x 4 points, summed over shards
    const std::string json = sharded.stats_json();
    EXPECT_NE(json.find("\"shards\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"replicas\": ["), std::string::npos) << json;
}

// --- registry integration ----------------------------------------------------

TEST(ExecutorTopology, RegistryServesShardedModels) {
    plssvm::serve::model_registry<double> registry;
    const plssvm::model<double> trained = test::random_model(plssvm::kernel_type::rbf);
    auto sharded = registry.load_sharded("numa-model", trained);
    ASSERT_NE(sharded, nullptr);
    EXPECT_GE(sharded->num_shards(), 1u);  // exactly 1 on single-node hosts
    EXPECT_EQ(registry.find_sharded("numa-model"), sharded);
    EXPECT_EQ(registry.find("numa-model"), nullptr);          // not a binary entry
    EXPECT_EQ(registry.find_sharded("absent"), nullptr);

    const plssvm::aos_matrix<double> queries = test::random_matrix(8, 11, 3);
    const std::vector<double> direct = sharded->predict(queries);
    EXPECT_EQ(direct.size(), queries.num_rows());

    // zero-downtime reload through the registry's reload lane
    const std::uint64_t before = sharded->snapshot_version();
    registry.reload("numa-model", test::random_model(plssvm::kernel_type::rbf, 37, 11, /*seed=*/77)).get();
    EXPECT_GT(sharded->snapshot_version(), before);

    // the sharded entry participates in health/stats/metrics exposition
    EXPECT_EQ(registry.health(), plssvm::serve::health_state::healthy);
    const std::string json = registry.stats_json();
    EXPECT_NE(json.find("numa-model"), std::string::npos) << json;
    const std::string metrics = registry.metrics_text();
    EXPECT_NE(metrics.find("plssvm_serve_lane_home_domain"), std::string::npos) << metrics;
}

TEST(ExecutorTopology, EngineStatsReportHomeDomain) {
    executor exec{ 2, executor_options{ .topology = fake_topology(2, 1) } };
    plssvm::serve::engine_config config{};
    config.exec = &exec;
    config.home_domain = 1;
    plssvm::serve::inference_engine<double> engine{ test::random_model(plssvm::kernel_type::linear), config };
    EXPECT_EQ(engine.home_domain(), 1u);
    EXPECT_EQ(engine.stats().home_domain, 1u);
    EXPECT_NE(engine.stats_json().find("\"home_domain\": 1"), std::string::npos);
}

}  // namespace
