/**
 * @file
 * @brief Tests of the network serving plane (gtest prefix `Net`, ctest
 *        label `net`): incremental framing (torn frames, oversized
 *        rejection, mode detection), binary/JSON protocol codecs, and
 *        loopback integration against a real epoll server — cross-connection
 *        batching, malformed input, connection churn mid-batch, shed →
 *        RETRY_AFTER round-trips, and fault-driven readiness flips.
 */

#include "plssvm/serve/net/framing.hpp"
#include "plssvm/serve/net/protocol.hpp"
#include "plssvm/serve/net/server.hpp"

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/serve/fault.hpp"
#include "plssvm/serve/model_registry.hpp"
#include "plssvm/serve/qos.hpp"
#include "serve/serve_test_utils.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::serve::engine_config;
using plssvm::serve::health_state;
using plssvm::serve::model_registry;
using plssvm::serve::request_class;
namespace fault = plssvm::serve::fault;
namespace net = plssvm::serve::net;
namespace test = plssvm::test;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// loopback client helpers (plain blocking sockets; the server under test is
// the only nonblocking side)
// ---------------------------------------------------------------------------

class client {
  public:
    explicit client(const std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        const timeval timeout{ 10, 0 };  // generous: CI boxes stall
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
        const int nodelay = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr *>(&addr), sizeof(addr)), 0);
    }

    client(const client &) = delete;
    client &operator=(const client &) = delete;

    ~client() { close(); }

    void close() {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    void send(const std::string &bytes) const {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
            ASSERT_GT(n, 0) << "client write failed";
            sent += static_cast<std::size_t>(n);
        }
    }

    /// Read complete messages until @p want have been collected (frames in
    /// binary mode, lines in JSON mode). Returns false on EOF/timeout.
    [[nodiscard]] bool read_messages(std::vector<std::string> &out, const std::size_t want) {
        std::string msg;
        while (out.size() < want) {
            const net::frame_decoder::status st = decoder_.next(msg);
            if (st == net::frame_decoder::status::frame || st == net::frame_decoder::status::line) {
                out.push_back(msg);
                continue;
            }
            if (st != net::frame_decoder::status::need_more) {
                return false;  // protocol error on the client decoder
            }
            char buf[4096];
            const ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n <= 0) {
                return false;  // EOF or timeout
            }
            decoder_.append(buf, static_cast<std::size_t>(n));
        }
        return true;
    }

    /// True once the server closed the connection (blocking read hits EOF).
    [[nodiscard]] bool at_eof() const {
        char buf[256];
        while (true) {
            const ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n == 0) {
                return true;
            }
            if (n < 0) {
                return false;  // timeout: still open
            }
        }
    }

  private:
    int fd_{ -1 };
    net::frame_decoder decoder_;  // client-side response reassembly
};

/// Poll until @p predicate holds or ~5 s elapses.
template <typename Predicate>
[[nodiscard]] bool eventually(Predicate &&predicate) {
    for (int i = 0; i < 5000; ++i) {
        if (predicate()) {
            return true;
        }
        std::this_thread::sleep_for(1ms);
    }
    return predicate();
}

/// Engine config for fast, deterministic loopback tests.
[[nodiscard]] engine_config net_test_config() {
    engine_config config;
    config.num_threads = 2;
    config.max_batch_size = 16;
    config.batch_delay = 500us;
    config.qos.adaptive_batching = false;
    return config;
}

/// One ready-to-use loopback server over a fresh registry.
struct server_fixture {
    explicit server_fixture(const engine_config &config = net_test_config(), const std::size_t event_threads = 1) :
        registry{ 4, config } {
        engine = registry.load("demo", test::random_model(kernel_type::linear));
        net::net_server_config server_config;
        server_config.event_threads = event_threads;
        server_config.completion_threads = 2;
        server = std::make_unique<net::net_server>(server_config, std::make_shared<net::registry_dispatcher<double>>(registry));
    }

    model_registry<double> registry;
    std::shared_ptr<plssvm::serve::inference_engine<double>> engine;
    std::unique_ptr<net::net_server> server;
};

[[nodiscard]] std::string binary_predict(const std::uint64_t id, const std::vector<double> &features,
                                         const std::string &model = "demo") {
    net::net_request req;
    req.id = id;
    req.model = model;
    req.dense = features;
    return net::encode_frame(net::frame_type::request, net::encode_request_binary(req));
}

// ---------------------------------------------------------------------------
// framing: torn frames, mode detection, bounds
// ---------------------------------------------------------------------------

TEST(NetFraming, TornFrameReassemblesByteByByte) {
    const std::string payload = "hello frame";
    const std::string wire = net::encode_frame(net::frame_type::request, payload);
    net::frame_decoder decoder;
    std::string out;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        decoder.append(wire.data() + i, 1);
        EXPECT_EQ(decoder.next(out), net::frame_decoder::status::need_more) << "byte " << i;
    }
    decoder.append(wire.data() + wire.size() - 1, 1);
    ASSERT_EQ(decoder.next(out), net::frame_decoder::status::frame);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(decoder.next(out), net::frame_decoder::status::need_more);
    EXPECT_EQ(decoder.mode(), net::frame_decoder::wire_mode::binary);
}

TEST(NetFraming, MultipleFramesInOneAppend) {
    const std::string wire = net::encode_frame(net::frame_type::request, "first")
                             + net::encode_frame(net::frame_type::request, "second")
                             + net::encode_frame(net::frame_type::request, "third").substr(0, 4);  // torn tail
    net::frame_decoder decoder;
    decoder.append(wire.data(), wire.size());
    std::string out;
    ASSERT_EQ(decoder.next(out), net::frame_decoder::status::frame);
    EXPECT_EQ(out, "first");
    ASSERT_EQ(decoder.next(out), net::frame_decoder::status::frame);
    EXPECT_EQ(out, "second");
    EXPECT_EQ(decoder.next(out), net::frame_decoder::status::need_more);
    const std::string rest = net::encode_frame(net::frame_type::request, "third").substr(4);
    decoder.append(rest.data(), rest.size());
    ASSERT_EQ(decoder.next(out), net::frame_decoder::status::frame);
    EXPECT_EQ(out, "third");
}

TEST(NetFraming, OversizedFrameIsRejectedBeforeBuffering) {
    net::frame_decoder decoder{ 64 };
    // header announcing a 1 MiB payload — only the header arrives
    net::wire_writer header;
    header.u8(net::frame_magic);
    header.u8(1);
    header.u32(1u << 20);
    decoder.append(header.data().data(), header.data().size());
    std::string out;
    EXPECT_EQ(decoder.next(out), net::frame_decoder::status::oversized);
    EXPECT_EQ(decoder.next(out), net::frame_decoder::status::bad_magic) << "protocol errors are sticky";
}

TEST(NetFraming, BadMagicIsRejected) {
    net::frame_decoder decoder;
    const char junk[] = "GET / HTTP/1.1\r\n";
    decoder.append(junk, sizeof(junk) - 1);
    std::string out;
    EXPECT_EQ(decoder.next(out), net::frame_decoder::status::bad_magic);
}

TEST(NetFraming, JsonLinesSplitAcrossReadsWithCrLf) {
    net::frame_decoder decoder;
    const std::string part1 = "{\"op\": \"liv";
    const std::string part2 = "e\"}\r\n{\"op\": \"ready\"}\n";
    decoder.append(part1.data(), part1.size());
    std::string out;
    EXPECT_EQ(decoder.next(out), net::frame_decoder::status::need_more);
    decoder.append(part2.data(), part2.size());
    ASSERT_EQ(decoder.next(out), net::frame_decoder::status::line);
    EXPECT_EQ(out, "{\"op\": \"live\"}") << "CR must be stripped";
    ASSERT_EQ(decoder.next(out), net::frame_decoder::status::line);
    EXPECT_EQ(out, "{\"op\": \"ready\"}");
    EXPECT_EQ(decoder.mode(), net::frame_decoder::wire_mode::json_lines);
}

TEST(NetFraming, UnterminatedJsonLineBeyondLimitIsOversized) {
    net::frame_decoder decoder{ 32 };
    const std::string long_line = "{\"model\": \"" + std::string(64, 'x');
    decoder.append(long_line.data(), long_line.size());
    std::string out;
    EXPECT_EQ(decoder.next(out), net::frame_decoder::status::oversized);
}

// ---------------------------------------------------------------------------
// protocol codecs
// ---------------------------------------------------------------------------

TEST(NetProtocol, BinaryRequestRoundTripDense) {
    net::net_request req;
    req.id = 42;
    req.model = "churn-v3";
    req.cls = request_class::batch;
    req.deadline = 1500us;
    req.dense = { 0.25, -1.5, 3.75 };
    net::net_request decoded;
    const auto error = net::decode_request_binary(net::encode_request_binary(req), decoded);
    ASSERT_FALSE(error.has_value()) << *error;
    EXPECT_EQ(decoded.id, 42u);
    EXPECT_EQ(decoded.model, "churn-v3");
    EXPECT_EQ(decoded.cls, request_class::batch);
    EXPECT_EQ(decoded.deadline, 1500us);
    EXPECT_FALSE(decoded.sparse);
    EXPECT_EQ(decoded.dense, req.dense);
}

TEST(NetProtocol, BinaryRequestRoundTripSparse) {
    net::net_request req;
    req.id = 7;
    req.model = "m";
    req.sparse = true;
    req.sparse_entries = { { 3, 1.5 }, { 17, -0.25 } };
    net::net_request decoded;
    const auto error = net::decode_request_binary(net::encode_request_binary(req), decoded);
    ASSERT_FALSE(error.has_value()) << *error;
    EXPECT_TRUE(decoded.sparse);
    EXPECT_EQ(decoded.sparse_entries, req.sparse_entries);
    EXPECT_EQ(decoded.deadline, 0us) << "no deadline flag, class default applies";
}

TEST(NetProtocol, BinaryRequestRejectsTruncationAndTrailingBytes) {
    net::net_request req;
    req.id = 1;
    req.model = "m";
    req.dense = { 1.0, 2.0 };
    const std::string payload = net::encode_request_binary(req);
    net::net_request decoded;
    EXPECT_TRUE(net::decode_request_binary(payload.substr(0, payload.size() - 3), decoded).has_value());
    EXPECT_TRUE(net::decode_request_binary(payload + "x", decoded).has_value());
    EXPECT_TRUE(net::decode_request_binary("", decoded).has_value());
    // a claimed element count far beyond the payload must be rejected
    // without attempting the allocation
    net::wire_writer hostile;
    hostile.u64(1);
    hostile.u8(0);
    hostile.u8(0);
    hostile.str16("m");
    hostile.u32(0xFFFFFFFFu);
    EXPECT_TRUE(net::decode_request_binary(hostile.take(), decoded).has_value());
}

TEST(NetProtocol, BinaryResponseRoundTrip) {
    for (const net::response_status status : { net::response_status::ok, net::response_status::retry_after,
                                               net::response_status::failed, net::response_status::not_found }) {
        net::net_response resp;
        resp.id = 99;
        resp.status = status;
        resp.value = 0.625;
        resp.retry_after_us = 1250;
        resp.error = "boom";
        net::net_response decoded;
        const auto error = net::decode_response_binary(net::encode_response_binary(resp), decoded);
        ASSERT_FALSE(error.has_value()) << *error;
        EXPECT_EQ(decoded.id, 99u);
        EXPECT_EQ(decoded.status, status);
        if (status == net::response_status::ok) {
            EXPECT_DOUBLE_EQ(decoded.value, 0.625);
        } else if (status == net::response_status::retry_after) {
            EXPECT_EQ(decoded.retry_after_us, 1250u);
        } else {
            EXPECT_EQ(decoded.error, "boom");
        }
    }
}

TEST(NetProtocol, JsonRequestParsesAllFields) {
    net::net_request req;
    const auto error = net::parse_request_json(
        R"({"model": "demo", "id": 12, "class": "background", "deadline_us": 2500, "features": [1.5, -2.0, 0.0]})", req);
    ASSERT_FALSE(error.has_value()) << *error;
    EXPECT_EQ(req.op, net::request_op::predict);
    EXPECT_EQ(req.model, "demo");
    EXPECT_EQ(req.id, 12u);
    EXPECT_EQ(req.cls, request_class::background);
    EXPECT_EQ(req.deadline, 2500us);
    EXPECT_EQ(req.dense, (std::vector<double>{ 1.5, -2.0, 0.0 }));

    // numeric class + sparse payload
    const auto error2 = net::parse_request_json(R"({"model": "m", "class": 1, "sparse": [[4, 0.5], [9, -1.0]]})", req);
    ASSERT_FALSE(error2.has_value()) << *error2;
    EXPECT_EQ(req.cls, request_class::batch);
    ASSERT_TRUE(req.sparse);
    EXPECT_EQ(req.sparse_entries, (std::vector<std::pair<std::uint32_t, double>>{ { 4, 0.5 }, { 9, -1.0 } }));

    // ops don't need a model
    for (const auto &[op_name, op] : std::map<std::string, net::request_op>{
             { "ready", net::request_op::ready }, { "live", net::request_op::live },
             { "stats", net::request_op::stats }, { "metrics", net::request_op::metrics } }) {
        const auto op_error = net::parse_request_json("{\"op\": \"" + op_name + "\"}", req);
        ASSERT_FALSE(op_error.has_value()) << op_name;
        EXPECT_EQ(req.op, op);
    }
}

TEST(NetProtocol, JsonRequestRejectsMalformedInput) {
    net::net_request req;
    EXPECT_TRUE(net::parse_request_json("{\"model\": \"m\", \"features\": [1,", req).has_value()) << "truncated JSON";
    EXPECT_TRUE(net::parse_request_json("{\"features\": [1.0]}", req).has_value()) << "missing model";
    EXPECT_TRUE(net::parse_request_json("{\"model\": \"m\"}", req).has_value()) << "missing payload";
    EXPECT_TRUE(net::parse_request_json(R"({"model": "m", "features": [1], "sparse": [[0, 1]]})", req).has_value())
        << "both payload kinds";
    EXPECT_TRUE(net::parse_request_json(R"({"model": "m", "class": "warp", "features": [1]})", req).has_value())
        << "unknown class";
    EXPECT_TRUE(net::parse_request_json(R"({"model": "m", "class": 7, "features": [1]})", req).has_value())
        << "class out of range";
    EXPECT_TRUE(net::parse_request_json(R"({"model": "m", "features": ["a"]})", req).has_value()) << "non-numeric feature";
    EXPECT_TRUE(net::parse_request_json(R"({"op": "reboot"})", req).has_value()) << "unknown op";
    EXPECT_TRUE(net::parse_request_json("{\"model\": \"m\", \"features\": [1]} trailing", req).has_value())
        << "trailing garbage";
}

// ---------------------------------------------------------------------------
// loopback integration
// ---------------------------------------------------------------------------

TEST(NetServer, BinaryLoopbackPredictionsMatchSyncAcrossConnections) {
    server_fixture fx;
    const aos_matrix<double> points = test::random_matrix(32, 11, 77);
    const std::vector<double> expected = fx.engine->predict(points);

    // two concurrent connections interleave into the same micro-batcher
    client a{ fx.server->port() };
    client b{ fx.server->port() };
    for (std::size_t i = 0; i < points.num_rows(); ++i) {
        const std::vector<double> features(points.row_data(i), points.row_data(i) + points.num_cols());
        (i % 2 == 0 ? a : b).send(binary_predict(i, features));
    }
    std::vector<std::string> frames_a;
    std::vector<std::string> frames_b;
    ASSERT_TRUE(a.read_messages(frames_a, 16));
    ASSERT_TRUE(b.read_messages(frames_b, 16));

    std::map<std::uint64_t, double> results;
    for (const std::vector<std::string> *frames : { &frames_a, &frames_b }) {
        for (const std::string &payload : *frames) {
            net::net_response resp;
            const auto error = net::decode_response_binary(payload, resp);
            ASSERT_FALSE(error.has_value()) << *error;
            ASSERT_EQ(resp.status, net::response_status::ok) << resp.error;
            results[resp.id] = resp.value;
        }
    }
    ASSERT_EQ(results.size(), points.num_rows());
    for (std::size_t i = 0; i < points.num_rows(); ++i) {
        EXPECT_NEAR(results[i], expected[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "request " << i;
    }
    const net::net_counters counters = fx.server->counters();
    EXPECT_EQ(counters.requests_total, points.num_rows());
    EXPECT_EQ(counters.responses_ok, points.num_rows());
    EXPECT_EQ(counters.connections_accepted, 2u);
}

TEST(NetServer, SparseBinaryRequestMatchesDense) {
    server_fixture fx;
    std::vector<double> dense(11, 0.0);
    dense[2] = 1.25;
    dense[7] = -0.5;
    client c{ fx.server->port() };
    c.send(binary_predict(0, dense));
    net::net_request sparse_req;
    sparse_req.id = 1;
    sparse_req.model = "demo";
    sparse_req.sparse = true;
    sparse_req.sparse_entries = { { 2, 1.25 }, { 7, -0.5 } };
    c.send(net::encode_frame(net::frame_type::request, net::encode_request_binary(sparse_req)));

    std::vector<std::string> frames;
    ASSERT_TRUE(c.read_messages(frames, 2));
    std::map<std::uint64_t, double> results;
    for (const std::string &payload : frames) {
        net::net_response resp;
        ASSERT_FALSE(net::decode_response_binary(payload, resp).has_value());
        ASSERT_EQ(resp.status, net::response_status::ok) << resp.error;
        results[resp.id] = resp.value;
    }
    ASSERT_EQ(results.size(), 2u);
    EXPECT_NEAR(results[0], results[1], 1e-12);
}

TEST(NetServer, JsonLoopbackPredictAndProbes) {
    server_fixture fx;
    client c{ fx.server->port() };
    c.send("{\"op\": \"live\"}\n{\"op\": \"ready\"}\n");
    std::vector<std::string> lines;
    ASSERT_TRUE(c.read_messages(lines, 2));
    EXPECT_NE(lines[0].find("\"live\": true"), std::string::npos) << lines[0];
    EXPECT_NE(lines[1].find("\"ready\": true"), std::string::npos) << lines[1];
    EXPECT_NE(lines[1].find("\"health\": \"healthy\""), std::string::npos) << lines[1];

    c.send("{\"model\": \"demo\", \"id\": 5, \"features\": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1]}\n");
    lines.clear();
    ASSERT_TRUE(c.read_messages(lines, 1));
    EXPECT_NE(lines[0].find("\"id\": 5"), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("\"status\": \"ok\""), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("\"value\": "), std::string::npos) << lines[0];

    c.send("{\"op\": \"stats\"}\n{\"op\": \"metrics\"}\n");
    lines.clear();
    ASSERT_TRUE(c.read_messages(lines, 2));
    EXPECT_NE(lines[0].find("\"net\": {\"listen_port\": "), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("\"registry\": {\"health\": "), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("\"per_connection\": ["), std::string::npos) << lines[0];
    EXPECT_NE(lines[1].find("plssvm_serve_net_requests_total"), std::string::npos) << lines[1];
}

TEST(NetServer, MalformedJsonGetsBadRequestAndConnectionSurvives) {
    server_fixture fx;
    client c{ fx.server->port() };
    c.send("{\"model\": \"demo\", \"features\": [1, oops]}\n");
    std::vector<std::string> lines;
    ASSERT_TRUE(c.read_messages(lines, 1));
    EXPECT_NE(lines[0].find("\"status\": \"bad_request\""), std::string::npos) << lines[0];
    // the connection is still usable afterwards
    c.send("{\"op\": \"live\"}\n");
    lines.clear();
    ASSERT_TRUE(c.read_messages(lines, 1));
    EXPECT_NE(lines[0].find("\"live\": true"), std::string::npos) << lines[0];
    EXPECT_GE(fx.server->counters().malformed_total, 1u);
}

TEST(NetServer, UnknownModelAndFeatureMismatchAreTypedErrors) {
    server_fixture fx;
    client c{ fx.server->port() };
    c.send(binary_predict(1, std::vector<double>(11, 0.5), "no-such-model"));
    c.send(binary_predict(2, std::vector<double>(3, 0.5)));  // model has 11 features
    std::vector<std::string> frames;
    ASSERT_TRUE(c.read_messages(frames, 2));
    std::map<std::uint64_t, net::net_response> responses;
    for (const std::string &payload : frames) {
        net::net_response resp;
        ASSERT_FALSE(net::decode_response_binary(payload, resp).has_value());
        responses[resp.id] = resp;
    }
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[1].status, net::response_status::not_found);
    EXPECT_NE(responses[1].error.find("no-such-model"), std::string::npos);
    EXPECT_EQ(responses[2].status, net::response_status::bad_request);
    const net::net_counters counters = fx.server->counters();
    EXPECT_EQ(counters.responses_not_found, 1u);
    EXPECT_EQ(counters.responses_bad_request, 1u);
}

TEST(NetServer, OversizedFrameGetsErrorThenClose) {
    server_fixture fx;
    client c{ fx.server->port() };
    net::wire_writer header;
    header.u8(net::frame_magic);
    header.u8(1);
    header.u32(64u << 20);  // 64 MiB claim > 1 MiB default limit
    c.send(header.take());
    std::vector<std::string> frames;
    ASSERT_TRUE(c.read_messages(frames, 1));
    net::net_response resp;
    ASSERT_FALSE(net::decode_response_binary(frames[0], resp).has_value());
    EXPECT_EQ(resp.status, net::response_status::bad_request);
    EXPECT_NE(resp.error.find("frame limit"), std::string::npos);
    EXPECT_TRUE(c.at_eof()) << "server must close after an oversized frame";
    EXPECT_TRUE(eventually([&] { return fx.server->counters().oversized_total == 1; }));
}

TEST(NetServer, NonProtocolBytesCloseTheConnection) {
    server_fixture fx;
    client c{ fx.server->port() };
    c.send("GET / HTTP/1.1\r\n\r\n");
    EXPECT_TRUE(c.at_eof());
    EXPECT_TRUE(eventually([&] { return fx.server->counters().bad_magic_total == 1; }));
}

TEST(NetServer, ConnectionChurnMidBatchLeavesSurvivorsIntact) {
    // long flush window: requests from both connections are still queued in
    // the micro-batcher when one connection dies
    engine_config config = net_test_config();
    config.max_batch_size = 64;
    config.batch_delay = 50ms;
    server_fixture fx{ config };

    auto victim = std::make_unique<client>(fx.server->port());
    client survivor{ fx.server->port() };
    for (std::uint64_t i = 0; i < 4; ++i) {
        victim->send(binary_predict(100 + i, std::vector<double>(11, 0.25)));
        survivor.send(binary_predict(200 + i, std::vector<double>(11, 0.5)));
    }
    victim.reset();  // close mid-batch: its responses have nowhere to go

    std::vector<std::string> frames;
    ASSERT_TRUE(survivor.read_messages(frames, 4)) << "survivor must still get all responses";
    for (const std::string &payload : frames) {
        net::net_response resp;
        ASSERT_FALSE(net::decode_response_binary(payload, resp).has_value());
        EXPECT_EQ(resp.status, net::response_status::ok) << resp.error;
        EXPECT_GE(resp.id, 200u);
    }
    // a second round proves the event loop survived the churn
    survivor.send(binary_predict(300, std::vector<double>(11, 0.75)));
    frames.clear();
    ASSERT_TRUE(survivor.read_messages(frames, 1));
    EXPECT_TRUE(eventually([&] { return fx.server->counters().connections_closed >= 1; }));
    // all 8 submitted requests were accepted; the victim's 4 settled into
    // dropped responses, not crashes
    EXPECT_EQ(fx.server->counters().requests_total, 9u);
}

TEST(NetServer, ShedMapsToRetryAfterWithNonzeroHint) {
    engine_config config = net_test_config();
    config.batch_delay = 20ms;
    // 10 tokens/s, burst 1: the second immediate request must shed with a
    // ~100 ms retry-after hint
    config.qos.classes[plssvm::serve::class_index(request_class::interactive)].rate_limit = 10.0;
    config.qos.classes[plssvm::serve::class_index(request_class::interactive)].burst = 1.0;
    server_fixture fx{ config };

    client c{ fx.server->port() };
    c.send(binary_predict(1, std::vector<double>(11, 0.1)));
    c.send(binary_predict(2, std::vector<double>(11, 0.2)));
    std::vector<std::string> frames;
    ASSERT_TRUE(c.read_messages(frames, 2));
    std::map<std::uint64_t, net::net_response> responses;
    for (const std::string &payload : frames) {
        net::net_response resp;
        ASSERT_FALSE(net::decode_response_binary(payload, resp).has_value());
        responses[resp.id] = resp;
    }
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[1].status, net::response_status::ok) << responses[1].error;
    ASSERT_EQ(responses[2].status, net::response_status::retry_after);
    EXPECT_GT(responses[2].retry_after_us, 0u) << "rate-limited sheds must carry the token-bucket hint";
    EXPECT_LE(responses[2].retry_after_us, 150000u);
    EXPECT_EQ(fx.server->counters().responses_retry_after, 1u);
}

TEST(NetServer, ReadinessFlipsWhenInjectedFaultsTurnCritical) {
    // the blocked host path persistently fails while reference stays
    // healthy: a 64-point batch (deterministically routed to host_blocked by
    // the cost model) trips its breaker, the open breaker drives the engine
    // critical, and the JSON-mode readiness probe must flip — while every
    // request still completes via the fallback ladder
    auto inject = std::make_shared<fault::injector>();
    inject->add_rule({ .site = fault::fault_site::batch_kernel,
                       .kind = fault::fault_kind::kernel_throw,
                       .path = plssvm::serve::predict_path::host_blocked });
    engine_config config = net_test_config();
    config.max_batch_size = 64;
    config.batch_delay = 50ms;  // coalesce all 64 wire requests into one batch
    config.fault.inject = inject;
    config.fault.breaker.min_samples = 2;
    config.fault.breaker.window = 8;
    config.fault.breaker.open_duration = std::chrono::microseconds{ 10s };
    server_fixture fx{ config };

    client c{ fx.server->port() };
    c.send("{\"op\": \"ready\"}\n");
    std::vector<std::string> lines;
    ASSERT_TRUE(c.read_messages(lines, 1));
    EXPECT_NE(lines[0].find("\"ready\": true"), std::string::npos) << lines[0];
    EXPECT_TRUE(fx.server->ready());

    const std::string features = "[0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]";
    std::string burst;
    for (int i = 0; i < 64; ++i) {
        burst += "{\"model\": \"demo\", \"id\": " + std::to_string(i) + ", \"features\": " + features + "}\n";
    }
    c.send(burst);
    lines.clear();
    ASSERT_TRUE(c.read_messages(lines, 64));
    for (const std::string &line : lines) {
        EXPECT_NE(line.find("\"status\": \"ok\""), std::string::npos) << "fallback ladder must complete the request: " << line;
    }
    // post-batch health bookkeeping runs after the futures settle
    EXPECT_TRUE(eventually([&] { return fx.registry.health() == health_state::critical; }));
    EXPECT_FALSE(fx.server->ready());
    c.send("{\"op\": \"ready\"}\n");
    lines.clear();
    ASSERT_TRUE(c.read_messages(lines, 1));
    EXPECT_NE(lines[0].find("\"ready\": false"), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("\"health\": \"critical\""), std::string::npos) << lines[0];
}

TEST(NetServer, StopWithInflightRequestsDrainsCleanly) {
    engine_config config = net_test_config();
    config.max_batch_size = 64;
    config.batch_delay = 50ms;
    server_fixture fx{ config };
    client c{ fx.server->port() };
    for (std::uint64_t i = 0; i < 8; ++i) {
        c.send(binary_predict(i, std::vector<double>(11, 0.3)));
    }
    // give the event loop a moment to decode + submit, then stop mid-batch
    std::this_thread::sleep_for(10ms);
    fx.server->stop();  // must drain the inflight futures without hanging
    EXPECT_TRUE(c.at_eof());
}

TEST(NetServer, MetricsExpositionIncludesNetSamples) {
    server_fixture fx;
    client c{ fx.server->port() };
    c.send(binary_predict(1, std::vector<double>(11, 0.4)));
    std::vector<std::string> frames;
    ASSERT_TRUE(c.read_messages(frames, 1));
    const std::string text = fx.server->metrics_text();
    EXPECT_NE(text.find("plssvm_serve_net_connections_open 1"), std::string::npos) << text;
    EXPECT_NE(text.find("plssvm_serve_net_responses_total{status=\"ok\"} 1"), std::string::npos) << text;
    EXPECT_NE(text.find("plssvm_serve_net_request_seconds_count"), std::string::npos) << text;
    EXPECT_NE(text.find("plssvm_serve_net_ready 1"), std::string::npos) << text;
    EXPECT_NE(text.find("plssvm_serve_requests_total"), std::string::npos) << "registry exposition must be included";
}

}  // namespace
