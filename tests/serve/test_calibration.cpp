/**
 * @file
 * @brief Tests for the dispatcher host-profile calibration: the in-process
 *        micro-measurement, the `BENCH_serve.json` parse path, and the
 *        "never override an injected profile" contract of
 *        `serve::resolved_dispatch`.
 */

#include "plssvm/serve/calibration.hpp"
#include "plssvm/serve/inference_engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace {

using plssvm::serve::calibrated_host_profile;
using plssvm::serve::dispatch_params;
using plssvm::serve::host_profile_from_bench_json;
using plssvm::serve::is_default_host_profile;
using plssvm::serve::measure_host_profile;
using plssvm::serve::resolved_dispatch;

TEST(Calibration, MicroMeasurementProducesPlausibleNumbers) {
    const plssvm::sim::host_profile measured = measure_host_profile(sizeof(double));
    // sanity bounds only: any machine that builds this runs the blocked
    // kernels somewhere between 0.01 and 10000 GFLOP/s / GB/s
    EXPECT_GT(measured.effective_gflops, 0.01);
    EXPECT_LT(measured.effective_gflops, 1e4);
    EXPECT_GT(measured.effective_bandwidth_gbs, 0.01);
    EXPECT_LT(measured.effective_bandwidth_gbs, 1e4);
    EXPECT_EQ(measured.num_threads, 0u) << "thread count resolution is the engine's job";
}

TEST(Calibration, DefaultProfileDetection) {
    EXPECT_TRUE(is_default_host_profile(plssvm::sim::host_profile{}));
    plssvm::sim::host_profile injected{};
    injected.effective_gflops = 7.5;
    EXPECT_FALSE(is_default_host_profile(injected));
}

TEST(Calibration, ParsesHostProfileFromBenchJson) {
    const std::string path = "test_calibration_bench.json";
    {
        std::ofstream file{ path };
        file << "{\n  \"bench\": \"serve_throughput\",\n"
             << "  \"host_profile\": { \"effective_gflops\": 12.5, \"effective_bandwidth_gbs\": 21.75 },\n"
             << "  \"gates\": { \"pass\": true }\n}\n";
    }
    plssvm::sim::host_profile parsed{};
    ASSERT_TRUE(host_profile_from_bench_json(path, parsed));
    EXPECT_DOUBLE_EQ(parsed.effective_gflops, 12.5);
    EXPECT_DOUBLE_EQ(parsed.effective_bandwidth_gbs, 21.75);
    std::remove(path.c_str());
}

TEST(Calibration, MissingFileOrSectionIsRejected) {
    plssvm::sim::host_profile out{};
    EXPECT_FALSE(host_profile_from_bench_json("does_not_exist.json", out));

    const std::string path = "test_calibration_no_section.json";
    {
        std::ofstream file{ path };
        file << "{ \"bench\": \"serve_throughput\" }\n";
    }
    EXPECT_FALSE(host_profile_from_bench_json(path, out));
    std::remove(path.c_str());
}

TEST(Calibration, ResolvedDispatchCalibratesOnlyDefaultProfiles) {
    // a default profile with calibration on is replaced by measured numbers
    dispatch_params defaults{};
    const dispatch_params calibrated = resolved_dispatch(defaults, 2, sizeof(double));
    EXPECT_FALSE(is_default_host_profile(calibrated.host));
    EXPECT_EQ(calibrated.host.num_threads, 2u);

    // an explicitly injected profile is never overridden
    dispatch_params injected{};
    injected.host.effective_gflops = 0.5;
    const dispatch_params kept = resolved_dispatch(injected, 2, sizeof(double));
    EXPECT_DOUBLE_EQ(kept.host.effective_gflops, 0.5);

    // calibration can be switched off entirely
    dispatch_params off{};
    off.calibrate_host = false;
    const dispatch_params untouched = resolved_dispatch(off, 2, sizeof(double));
    EXPECT_DOUBLE_EQ(untouched.host.effective_gflops, plssvm::sim::host_profile{}.effective_gflops);
}

TEST(Calibration, CalibratedProfileIsCachedPerProcess) {
    const plssvm::sim::host_profile first = calibrated_host_profile(sizeof(double));
    const plssvm::sim::host_profile second = calibrated_host_profile(sizeof(double));
    EXPECT_DOUBLE_EQ(first.effective_gflops, second.effective_gflops);
    EXPECT_DOUBLE_EQ(first.effective_bandwidth_gbs, second.effective_bandwidth_gbs);
    EXPECT_GT(first.effective_gflops, 0.0);
}

}  // namespace
