/**
 * @file
 * @brief Parity tests of the blocked batch-prediction kernels: the tiled
 *        host path and the device batch path against the per-point scalar
 *        reference sweep, across all kernel types and deliberately awkward
 *        shapes (batch/SV counts that are not tile multiples, single-point
 *        batches, dim = 1, fewer SVs than one tile).
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/core/kernel_types.hpp"
#include "plssvm/serve/batch_kernels.hpp"
#include "plssvm/serve/compiled_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::serve::compiled_model;
namespace test = plssvm::test;

/// Deliberately awkward (num_points, num_sv, dim) shapes.
struct batch_shape {
    std::size_t num_points;
    std::size_t num_sv;
    std::size_t dim;
};

[[nodiscard]] std::vector<batch_shape> awkward_shapes() {
    return {
        { 1, 37, 11 },    // single-point batch
        { 3, 37, 11 },    // batch smaller than the point tile
        { 5, 1, 11 },     // a single support vector
        { 7, 5, 1 },      // dim = 1, fewer SVs than one SV tile
        { 4, 8, 3 },      // exact point tile, exact SV tile
        { 64, 64, 16 },   // tile multiples everywhere
        { 100, 130, 11 }, // nothing is a tile (or padding) multiple
        { 129, 33, 7 },   // odd everything, batch > 2 blocks of the point tile
    };
}

class BatchKernelsAllKernels : public ::testing::TestWithParam<kernel_type> {};

TEST_P(BatchKernelsAllKernels, BlockedMatchesReferenceAcrossAwkwardShapes) {
    const kernel_type kernel = GetParam();
    for (const batch_shape &shape : awkward_shapes()) {
        const compiled_model<double> compiled{ test::random_model(kernel, shape.num_sv, shape.dim) };
        const aos_matrix<double> points = test::random_matrix(shape.num_points, shape.dim, 13);

        std::vector<double> reference(shape.num_points);
        std::vector<double> blocked(shape.num_points);
        compiled.decision_values_reference_into(points, 0, shape.num_points, reference.data());
        compiled.decision_values_into(points, 0, shape.num_points, blocked.data());

        for (std::size_t p = 0; p < shape.num_points; ++p) {
            EXPECT_NEAR(blocked[p], reference[p], 1e-10 * (1.0 + std::abs(reference[p])))
                << "shape=(" << shape.num_points << ", " << shape.num_sv << ", " << shape.dim << ") point=" << p;
        }
    }
}

TEST_P(BatchKernelsAllKernels, DevicePathMatchesReferenceAcrossAwkwardShapes) {
    const kernel_type kernel = GetParam();
    for (const batch_shape &shape : awkward_shapes()) {
        const compiled_model<double> compiled{ test::random_model(kernel, shape.num_sv, shape.dim) };
        const aos_matrix<double> points = test::random_matrix(shape.num_points, shape.dim, 17);

        std::vector<double> reference(shape.num_points);
        std::vector<double> device(shape.num_points);
        compiled.decision_values_reference_into(points, 0, shape.num_points, reference.data());
        compiled.decision_values_device_into(points, 0, shape.num_points, device.data());

        // the device RBF core accumulates squared differences instead of the
        // cached-norm form -> tolerance-equal only
        for (std::size_t p = 0; p < shape.num_points; ++p) {
            EXPECT_NEAR(device[p], reference[p], 1e-9 * (1.0 + std::abs(reference[p])))
                << "shape=(" << shape.num_points << ", " << shape.num_sv << ", " << shape.dim << ") point=" << p;
        }
    }
}

TEST_P(BatchKernelsAllKernels, SubRangeEvaluationIsConsistentWithFullBatch) {
    // evaluating [7, 23) of a larger batch must equal the same rows of the
    // full-batch evaluation, for every path (tile boundaries shift)
    const kernel_type kernel = GetParam();
    const compiled_model<double> compiled{ test::random_model(kernel, 37, 11) };
    const aos_matrix<double> points = test::random_matrix(29, 11, 19);

    std::vector<double> full(29);
    compiled.decision_values_into(points, 0, 29, full.data());
    std::vector<double> range(23 - 7);
    compiled.decision_values_into(points, 7, 23, range.data());
    for (std::size_t p = 7; p < 23; ++p) {
        EXPECT_DOUBLE_EQ(range[p - 7], full[p]) << "point=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, BatchKernelsAllKernels,
                         ::testing::ValuesIn(test::all_kernel_types()),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(BatchKernels, LinearPathIsBitExactWithReference) {
    // the linear blocked path shares kernels::dot with the reference sweep
    const compiled_model<double> compiled{ test::random_model(kernel_type::linear, 37, 11) };
    const aos_matrix<double> points = test::random_matrix(23, 11, 23);
    std::vector<double> reference(23);
    std::vector<double> blocked(23);
    compiled.decision_values_reference_into(points, 0, 23, reference.data());
    compiled.decision_values_into(points, 0, 23, blocked.data());
    for (std::size_t p = 0; p < 23; ++p) {
        EXPECT_DOUBLE_EQ(blocked[p], reference[p]) << "point=" << p;
    }
}

TEST(BatchKernels, EmptyRangeIsANoOp) {
    const compiled_model<double> compiled{ test::random_model(kernel_type::rbf) };
    const aos_matrix<double> points = test::random_matrix(5, 11, 29);
    double sentinel = 42.0;
    compiled.decision_values_into(points, 2, 2, &sentinel);
    compiled.decision_values_device_into(points, 2, 2, &sentinel);
    EXPECT_DOUBLE_EQ(sentinel, 42.0);
}

}  // namespace
