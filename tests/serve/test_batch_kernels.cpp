/**
 * @file
 * @brief Parity tests of the batch-prediction kernels against the per-point
 *        scalar reference sweep: the tiled host path and the device batch
 *        path across deliberately awkward shapes (batch/SV counts that are
 *        not tile multiples, single-point batches, dim = 1, fewer SVs than
 *        one tile), and the randomized sparse-parity harness sweeping
 *        (density x shape x kernel) grids over every sparse execution path
 *        (see `serve_test_utils.hpp`).
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/core/kernel_types.hpp"
#include "plssvm/serve/batch_kernels.hpp"
#include "plssvm/serve/compiled_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::compiled_model;
namespace test = plssvm::test;

/// Deliberately awkward (num_points, num_sv, dim) shapes.
struct batch_shape {
    std::size_t num_points;
    std::size_t num_sv;
    std::size_t dim;
};

[[nodiscard]] std::vector<batch_shape> awkward_shapes() {
    return {
        { 1, 37, 11 },    // single-point batch
        { 3, 37, 11 },    // batch smaller than the point tile
        { 5, 1, 11 },     // a single support vector
        { 7, 5, 1 },      // dim = 1, fewer SVs than one SV tile
        { 4, 8, 3 },      // exact point tile, exact SV tile
        { 64, 64, 16 },   // tile multiples everywhere
        { 100, 130, 11 }, // nothing is a tile (or padding) multiple
        { 129, 33, 7 },   // odd everything, batch > 2 blocks of the point tile
    };
}

class BatchKernelsAllKernels : public ::testing::TestWithParam<kernel_type> {};

TEST_P(BatchKernelsAllKernels, BlockedMatchesReferenceAcrossAwkwardShapes) {
    const kernel_type kernel = GetParam();
    for (const batch_shape &shape : awkward_shapes()) {
        const compiled_model<double> compiled{ test::random_model(kernel, shape.num_sv, shape.dim) };
        const aos_matrix<double> points = test::random_matrix(shape.num_points, shape.dim, 13);

        std::vector<double> reference(shape.num_points);
        std::vector<double> blocked(shape.num_points);
        compiled.decision_values_reference_into(points, 0, shape.num_points, reference.data());
        compiled.decision_values_into(points, 0, shape.num_points, blocked.data());

        for (std::size_t p = 0; p < shape.num_points; ++p) {
            EXPECT_NEAR(blocked[p], reference[p], 1e-10 * (1.0 + std::abs(reference[p])))
                << "shape=(" << shape.num_points << ", " << shape.num_sv << ", " << shape.dim << ") point=" << p;
        }
    }
}

TEST_P(BatchKernelsAllKernels, DevicePathMatchesReferenceAcrossAwkwardShapes) {
    const kernel_type kernel = GetParam();
    for (const batch_shape &shape : awkward_shapes()) {
        const compiled_model<double> compiled{ test::random_model(kernel, shape.num_sv, shape.dim) };
        const aos_matrix<double> points = test::random_matrix(shape.num_points, shape.dim, 17);

        std::vector<double> reference(shape.num_points);
        std::vector<double> device(shape.num_points);
        compiled.decision_values_reference_into(points, 0, shape.num_points, reference.data());
        compiled.decision_values_device_into(points, 0, shape.num_points, device.data());

        // the device RBF core accumulates squared differences instead of the
        // cached-norm form -> tolerance-equal only
        for (std::size_t p = 0; p < shape.num_points; ++p) {
            EXPECT_NEAR(device[p], reference[p], 1e-9 * (1.0 + std::abs(reference[p])))
                << "shape=(" << shape.num_points << ", " << shape.num_sv << ", " << shape.dim << ") point=" << p;
        }
    }
}

TEST_P(BatchKernelsAllKernels, SubRangeEvaluationIsConsistentWithFullBatch) {
    // evaluating [7, 23) of a larger batch must equal the same rows of the
    // full-batch evaluation, for every path (tile boundaries shift)
    const kernel_type kernel = GetParam();
    const compiled_model<double> compiled{ test::random_model(kernel, 37, 11) };
    const aos_matrix<double> points = test::random_matrix(29, 11, 19);

    std::vector<double> full(29);
    compiled.decision_values_into(points, 0, 29, full.data());
    std::vector<double> range(23 - 7);
    compiled.decision_values_into(points, 7, 23, range.data());
    for (std::size_t p = 7; p < 23; ++p) {
        EXPECT_DOUBLE_EQ(range[p - 7], full[p]) << "point=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, BatchKernelsAllKernels,
                         ::testing::ValuesIn(test::all_kernel_types()),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(BatchKernels, LinearPathIsBitExactWithReference) {
    // the linear blocked path shares kernels::dot with the reference sweep
    const compiled_model<double> compiled{ test::random_model(kernel_type::linear, 37, 11) };
    const aos_matrix<double> points = test::random_matrix(23, 11, 23);
    std::vector<double> reference(23);
    std::vector<double> blocked(23);
    compiled.decision_values_reference_into(points, 0, 23, reference.data());
    compiled.decision_values_into(points, 0, 23, blocked.data());
    for (std::size_t p = 0; p < 23; ++p) {
        EXPECT_DOUBLE_EQ(blocked[p], reference[p]) << "point=" << p;
    }
}

TEST(BatchKernels, EmptyRangeIsANoOp) {
    const compiled_model<double> compiled{ test::random_model(kernel_type::rbf) };
    const aos_matrix<double> points = test::random_matrix(5, 11, 29);
    double sentinel = 42.0;
    compiled.decision_values_into(points, 2, 2, &sentinel);
    compiled.decision_values_device_into(points, 2, 2, &sentinel);
    EXPECT_DOUBLE_EQ(sentinel, 42.0);
}

// --- randomized sparse-parity harness ---------------------------------------

class SparseParityAllKernels : public ::testing::TestWithParam<kernel_type> {};

TEST_P(SparseParityAllKernels, RandomizedGridMatchesReference) {
    // every (density, num_sv, dim, batch) cell of the seeded grid, with empty
    // rows, single-nnz rows, and all-zero columns injected into both the SV
    // panel and the queries; both the forced-sparse and the auto-threshold
    // compiled forms are asserted against decision_values_reference_into
    test::run_sparse_parity_grid(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kernels, SparseParityAllKernels,
                         ::testing::ValuesIn(test::all_kernel_types()),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(SparseParity, EmptyQueryRowsYieldTheBiasPlusConstantTerms) {
    // a fully empty CSR query row must produce f(0) on every sparse path
    for (const kernel_type kernel : test::all_kernel_types()) {
        const compiled_model<double> compiled{ test::random_sparse_model(kernel, 21, 13, 0.1, 7),
                                               plssvm::serve::compile_options{ .sparse_density_threshold = 1.5 } };
        const aos_matrix<double> zeros{ 5, 13 };
        std::vector<double> reference(5);
        compiled.decision_values_reference_into(zeros, 0, 5, reference.data());
        const std::vector<double> via_csr = compiled.decision_values(plssvm::csr_matrix<double>{ zeros });
        for (std::size_t p = 0; p < 5; ++p) {
            EXPECT_NEAR(via_csr[p], reference[p], 1e-12 * (1.0 + std::abs(reference[p])))
                << "kernel=" << plssvm::kernel_type_to_string(kernel) << " point=" << p;
        }
    }
}

TEST(SparseParity, LinearSparsePathsAreBitExactWithReference) {
    // gather and merge-join skip only exact-zero products -> bit parity
    const model<double> m = test::random_sparse_model(kernel_type::linear, 37, 19, 0.15, 11);
    const aos_matrix<double> queries = test::sparse_random_matrix(23, 19, 0.15, 12);
    const plssvm::csr_matrix<double> csr{ queries };
    for (const double threshold : { 0.0, 1.5 }) {  // dense-form gather, sparse-form merge-join
        const compiled_model<double> compiled{ m, plssvm::serve::compile_options{ .sparse_density_threshold = threshold } };
        std::vector<double> reference(23);
        std::vector<double> sparse(23);
        compiled.decision_values_reference_into(queries, 0, 23, reference.data());
        compiled.decision_values_into(csr, 0, 23, sparse.data());
        for (std::size_t p = 0; p < 23; ++p) {
            EXPECT_DOUBLE_EQ(sparse[p], reference[p]) << "threshold=" << threshold << " point=" << p;
        }
    }
}

TEST(SparseParity, SparseRowSliceWithNonZeroBeginMatchesFullBatch) {
    // the row-slice regression net: every CSR row-range evaluation with
    // row_begin != 0 must equal the same rows of the full-batch sweep, for
    // the sparse-form sweeps AND the dense-form densify fallback, across
    // slice bounds that straddle the internal tile boundaries
    const struct {
        std::size_t begin;
        std::size_t end;
    } slices[] = { { 1, 90 }, { 5, 17 }, { 63, 90 }, { 64, 70 }, { 70, 90 }, { 89, 90 } };
    for (const kernel_type kernel : test::all_kernel_types()) {
        const model<double> m = test::random_sparse_model(kernel, 29, 11, 0.2, 31);
        const aos_matrix<double> queries = test::sparse_random_matrix(90, 11, 0.2, 32);
        const plssvm::csr_matrix<double> csr{ queries };
        for (const double threshold : { 0.0, 1.5 }) {
            const compiled_model<double> compiled{ m, plssvm::serve::compile_options{ .sparse_density_threshold = threshold } };
            std::vector<double> full(90);
            compiled.decision_values_into(csr, 0, 90, full.data());
            for (const auto &slice : slices) {
                std::vector<double> range(slice.end - slice.begin);
                compiled.decision_values_into(csr, slice.begin, slice.end, range.data());
                for (std::size_t p = slice.begin; p < slice.end; ++p) {
                    EXPECT_DOUBLE_EQ(range[p - slice.begin], full[p])
                        << "kernel=" << plssvm::kernel_type_to_string(kernel) << " threshold=" << threshold
                        << " slice=[" << slice.begin << ", " << slice.end << ") point=" << p;
                }
            }
        }
    }
}

}  // namespace
