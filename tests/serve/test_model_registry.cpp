/**
 * @file
 * @brief Tests for `serve::model_registry` (multi-tenant load/find/evict with
 *        LRU) and `serve::multiclass_engine` (one-vs-all ensembles), including
 *        parity with `ext::one_vs_all::predict`.
 */

#include "serve/serve_test_utils.hpp"

#include "plssvm/backends/backend_types.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/detail/rng.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/ext/multiclass.hpp"
#include "plssvm/serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <future>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_type;
using plssvm::model;
using plssvm::serve::engine_config;
using plssvm::serve::model_registry;
using plssvm::serve::multiclass_engine;
namespace test = plssvm::test;

TEST(ModelRegistry, RejectsZeroCapacity) {
    EXPECT_THROW(model_registry<double>{ 0 }, plssvm::invalid_parameter_exception);
}

TEST(ModelRegistry, LoadFindEvict) {
    model_registry<double> registry{ 4 };
    auto engine = registry.load("tenant-a", test::random_model(kernel_type::linear));
    ASSERT_NE(engine, nullptr);
    EXPECT_TRUE(registry.contains("tenant-a"));
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.find("tenant-a"), engine);
    EXPECT_EQ(registry.find("no-such-tenant"), nullptr);

    EXPECT_TRUE(registry.evict("tenant-a"));
    EXPECT_FALSE(registry.evict("tenant-a"));
    EXPECT_FALSE(registry.contains("tenant-a"));
    // the handed-out shared pointer keeps the evicted engine usable
    const aos_matrix<double> points = test::random_matrix(3, 11, 1);
    EXPECT_EQ(engine->predict(points).size(), 3u);
}

TEST(ModelRegistry, EvictsLeastRecentlyUsedAtCapacity) {
    model_registry<double> registry{ 2 };
    (void) registry.load("a", test::random_model(kernel_type::linear));
    (void) registry.load("b", test::random_model(kernel_type::linear));
    // touch "a" so "b" becomes the LRU victim
    ASSERT_NE(registry.find("a"), nullptr);
    (void) registry.load("c", test::random_model(kernel_type::linear));

    EXPECT_EQ(registry.size(), 2u);
    EXPECT_TRUE(registry.contains("a"));
    EXPECT_FALSE(registry.contains("b"));
    EXPECT_TRUE(registry.contains("c"));
    // most recently used first
    EXPECT_EQ(registry.names(), (std::vector<std::string>{ "c", "a" }));
}

TEST(ModelRegistry, ReplacingANameKeepsSize) {
    model_registry<double> registry{ 2 };
    auto first = registry.load("m", test::random_model(kernel_type::linear));
    auto second = registry.load("m", test::random_model(kernel_type::rbf));
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_NE(first, second);
    EXPECT_EQ(registry.find("m"), second);
}

/// Three Gaussian blobs with labels 0 / 1 / 2.
plssvm::data_set<double> make_blobs(const std::size_t per_class, const std::uint64_t seed = 13) {
    auto engine = plssvm::detail::make_engine(seed);
    const double centers[3][2] = { { 4.0, 0.0 }, { -4.0, 4.0 }, { 0.0, -4.0 } };
    aos_matrix<double> points{ 3 * per_class, 2 };
    std::vector<double> labels(3 * per_class);
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < per_class; ++i) {
            const std::size_t row = c * per_class + i;
            points(row, 0) = centers[c][0] + plssvm::detail::standard_normal<double>(engine);
            points(row, 1) = centers[c][1] + plssvm::detail::standard_normal<double>(engine);
            labels[row] = static_cast<double>(c);
        }
    }
    return plssvm::data_set<double>{ std::move(points), std::move(labels) };
}

/// Train a small 3-class one-vs-all ensemble on synthetic blobs.
plssvm::ext::multiclass_model<double> trained_ensemble(plssvm::data_set<double> &data_out) {
    data_out = make_blobs(30);
    plssvm::parameter params;
    params.kernel = kernel_type::linear;
    plssvm::ext::one_vs_all<double> trainer{ plssvm::backend_type::openmp, params };
    return trainer.fit(data_out, plssvm::solver_control{ .epsilon = 1e-8 });
}

TEST(ModelRegistry, TypeMismatchedFindDoesNotRefreshLru) {
    plssvm::data_set<double> data{ aos_matrix<double>{ 1, 1 } };
    const auto ensemble = trained_ensemble(data);

    model_registry<double> registry{ 2 };
    (void) registry.load("multi", ensemble);
    (void) registry.load("binary", test::random_model(kernel_type::linear));
    // wrong-type probe: must miss AND must not protect "multi" from eviction
    EXPECT_EQ(registry.find("multi"), nullptr);
    (void) registry.load("newcomer", test::random_model(kernel_type::linear));

    EXPECT_FALSE(registry.contains("multi"));
    EXPECT_TRUE(registry.contains("binary"));
    EXPECT_TRUE(registry.contains("newcomer"));
}

TEST(MulticlassEngine, MatchesOneVsAllPredict) {
    plssvm::data_set<double> data{ aos_matrix<double>{ 1, 1 } };
    const auto ensemble = trained_ensemble(data);

    multiclass_engine<double> engine{ ensemble, engine_config{ .num_threads = 2 } };
    EXPECT_EQ(engine.num_classes(), 3u);

    plssvm::parameter params;
    params.kernel = kernel_type::linear;
    const plssvm::ext::one_vs_all<double> reference{ plssvm::backend_type::openmp, params };
    const std::vector<double> expected = reference.predict(ensemble, data);
    const std::vector<double> actual = engine.predict(data.points());
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t p = 0; p < actual.size(); ++p) {
        EXPECT_EQ(actual[p], expected[p]) << "point=" << p;
    }
}

TEST(MulticlassEngine, SubmitMatchesSyncPredict) {
    plssvm::data_set<double> data{ aos_matrix<double>{ 1, 1 } };
    const auto ensemble = trained_ensemble(data);
    multiclass_engine<double> engine{ ensemble, engine_config{ .num_threads = 2, .max_batch_size = 16 } };

    const aos_matrix<double> &points = data.points();
    const std::vector<double> expected = engine.predict(points);
    std::vector<std::future<double>> futures;
    for (std::size_t p = 0; p < points.num_rows(); ++p) {
        futures.push_back(engine.submit(std::vector<double>(points.row_data(p), points.row_data(p) + points.num_cols())));
    }
    for (std::size_t p = 0; p < futures.size(); ++p) {
        EXPECT_EQ(futures[p].get(), expected[p]);
    }
    EXPECT_GT(engine.stats().total_requests, 0u);
}

TEST(MulticlassEngine, DecisionMatrixShapeAndArgmaxConsistency) {
    plssvm::data_set<double> data{ aos_matrix<double>{ 1, 1 } };
    const auto ensemble = trained_ensemble(data);
    multiclass_engine<double> engine{ ensemble, engine_config{ .num_threads = 2 } };

    const aos_matrix<double> scores = engine.decision_matrix(data.points());
    EXPECT_EQ(scores.num_rows(), data.points().num_rows());
    EXPECT_EQ(scores.num_cols(), 3u);

    const std::vector<double> labels = engine.predict(data.points());
    for (std::size_t p = 0; p < labels.size(); ++p) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < 3; ++c) {
            if (scores(p, c) > scores(p, best)) {
                best = c;
            }
        }
        EXPECT_EQ(labels[p], engine.class_labels()[best]);
    }
}

TEST(ModelRegistry, MulticlassReloadSwapsSnapshotBehindAStableEnginePointer) {
    plssvm::data_set<double> data{ aos_matrix<double>{ 1, 1 } };
    const auto ensemble = trained_ensemble(data);

    model_registry<double> registry{ 4 };
    auto engine = registry.load("landcover", ensemble);
    EXPECT_EQ(engine->snapshot_version(), 1u);
    const std::vector<double> before = engine->predict(data.points());

    // retrain (same shape) and hot-swap; the engine pointer must survive
    plssvm::data_set<double> data2{ aos_matrix<double>{ 1, 1 } };
    const auto retrained = trained_ensemble(data2);
    registry.reload("landcover", retrained).get();
    EXPECT_EQ(registry.find_multiclass("landcover"), engine);
    EXPECT_EQ(engine->snapshot_version(), 2u);
    EXPECT_EQ(engine->stats().reloads, 1u);
    EXPECT_EQ(engine->predict(data.points()).size(), before.size());

    // class-count mismatches surface through the future, nothing is swapped
    std::future<void> bad = registry.reload("landcover", plssvm::ext::multiclass_model<double>{ { 0.0 }, {} });
    EXPECT_THROW(bad.get(), plssvm::exception);
    EXPECT_EQ(engine->snapshot_version(), 2u);
}

TEST(ModelRegistry, EnginesShareTheRegistryExecutor) {
    plssvm::data_set<double> data{ aos_matrix<double>{ 1, 1 } };
    const auto ensemble = trained_ensemble(data);

    plssvm::serve::executor ex{ 2 };
    engine_config config;
    config.exec = &ex;
    model_registry<double> registry{ 4, config };
    EXPECT_EQ(&registry.shared_executor(), &ex);
    auto binary = registry.load("bin", test::random_model(kernel_type::linear));
    auto multi = registry.load("multi", ensemble);
    EXPECT_EQ(&binary->shared_executor(), &ex);
    EXPECT_EQ(&multi->shared_executor(), &ex);
    EXPECT_EQ(binary->stats().executor_threads, 2u);
    EXPECT_EQ(multi->stats().executor_threads, 2u);
}

TEST(ModelRegistry, HostsMulticlassEnsembles) {
    plssvm::data_set<double> data{ aos_matrix<double>{ 1, 1 } };
    const auto ensemble = trained_ensemble(data);

    model_registry<double> registry{ 4 };
    auto engine = registry.load("landcover", ensemble);
    ASSERT_NE(engine, nullptr);
    EXPECT_TRUE(registry.contains("landcover"));
    EXPECT_EQ(registry.find_multiclass("landcover"), engine);
    // the same name is not a binary engine
    EXPECT_EQ(registry.find("landcover"), nullptr);

    const std::vector<double> labels = engine->predict(data.points());
    EXPECT_EQ(labels.size(), data.points().num_rows());
}

}  // namespace
