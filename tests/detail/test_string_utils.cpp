/**
 * @file
 * @brief Unit tests for the string helpers backing the file parsers.
 */

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"

#include <gtest/gtest.h>

namespace {

using namespace plssvm::detail;

TEST(StringUtils, TrimLeft) {
    EXPECT_EQ(trim_left("  abc"), "abc");
    EXPECT_EQ(trim_left("\t abc "), "abc ");
    EXPECT_EQ(trim_left("abc"), "abc");
    EXPECT_EQ(trim_left("   "), "");
    EXPECT_EQ(trim_left(""), "");
}

TEST(StringUtils, TrimRight) {
    EXPECT_EQ(trim_right("abc  "), "abc");
    EXPECT_EQ(trim_right(" abc\r\n"), " abc");
    EXPECT_EQ(trim_right(""), "");
}

TEST(StringUtils, Trim) {
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("\r\n"), "");
    EXPECT_EQ(trim("a"), "a");
}

TEST(StringUtils, StartsEndsWith) {
    EXPECT_TRUE(starts_with("@attribute x", "@attribute"));
    EXPECT_FALSE(starts_with("attribute", "@attribute"));
    EXPECT_TRUE(ends_with("data.arff", ".arff"));
    EXPECT_FALSE(ends_with("arff", ".arff"));
    EXPECT_TRUE(starts_with("abc", ""));
    EXPECT_TRUE(ends_with("abc", ""));
}

TEST(StringUtils, CaseConversion) {
    EXPECT_EQ(to_lower_case("LiNeAr"), "linear");
    EXPECT_EQ(to_upper_case("rbf"), "RBF");
    EXPECT_EQ(to_lower_case("123-_x"), "123-_x");
}

TEST(StringUtils, SplitOnSpaceDropsEmptyTokens) {
    const auto tokens = split("1:0.5   2:1.0  3:2", ' ');
    ASSERT_EQ(tokens.size(), 3U);
    EXPECT_EQ(tokens[0], "1:0.5");
    EXPECT_EQ(tokens[2], "3:2");
}

TEST(StringUtils, SplitOnCommaKeepsEmptyTokens) {
    const auto tokens = split("a,,b", ',');
    ASSERT_EQ(tokens.size(), 3U);
    EXPECT_EQ(tokens[1], "");
}

TEST(StringUtils, SplitEmptyString) {
    EXPECT_TRUE(split("", ' ').empty());
    EXPECT_EQ(split("", ',').size(), 1U);  // CSV: one empty field
}

TEST(StringUtils, ConvertToDouble) {
    EXPECT_DOUBLE_EQ(convert_to<double>("3.25"), 3.25);
    EXPECT_DOUBLE_EQ(convert_to<double>("-1e-3"), -1e-3);
    EXPECT_DOUBLE_EQ(convert_to<double>("  42 "), 42.0);
}

TEST(StringUtils, ConvertToInt) {
    EXPECT_EQ(convert_to<int>("-17"), -17);
    EXPECT_EQ(convert_to<unsigned long>("123456789"), 123456789UL);
}

TEST(StringUtils, ConvertToThrowsOnGarbage) {
    EXPECT_THROW((void) convert_to<double>("abc"), plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) convert_to<double>("1.5x"), plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) convert_to<double>(""), plssvm::invalid_file_format_exception);
    EXPECT_THROW((void) convert_to<int>("1.5"), plssvm::invalid_file_format_exception);
}

TEST(StringUtils, ConvertToSafeReportsFailure) {
    double value = 0.0;
    EXPECT_TRUE(convert_to_safe("2.5", value));
    EXPECT_DOUBLE_EQ(value, 2.5);
    EXPECT_FALSE(convert_to_safe("nope", value));
    int i = 0;
    EXPECT_FALSE(convert_to_safe("", i));
}

}  // namespace
