/**
 * @file
 * @brief Tests of the device prediction path (`device_kernel_w` /
 *        `device_kernel_predict`): agreement with the host reference and
 *        device accounting.
 */

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/datagen/make_classification.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using plssvm::data_set;
using plssvm::kernel_type;
using plssvm::parameter;

[[nodiscard]] data_set<double> make_data(const std::uint64_t seed = 31) {
    plssvm::datagen::classification_params gen;
    gen.num_points = 130;  // not a tile multiple
    gen.num_features = 9;
    gen.class_sep = 2.0;
    gen.seed = seed;
    return plssvm::datagen::make_classification<double>(gen);
}

class DevicePredictAllKernels : public ::testing::TestWithParam<kernel_type> {};

TEST_P(DevicePredictAllKernels, MatchesHostReference) {
    const auto train = make_data(31);
    const auto test = make_data(32);
    parameter params{ GetParam() };
    params.gamma = 0.3;
    params.coef0 = 0.5;

    plssvm::backend::cuda::csvm<double> svm{ params };
    const auto model = svm.fit(train, plssvm::solver_control{ .epsilon = 1e-10 });

    const auto device_values = svm.predict_values(model, test);
    const auto host_values = plssvm::decision_values(model, test.points());
    ASSERT_EQ(device_values.size(), host_values.size());
    for (std::size_t i = 0; i < device_values.size(); ++i) {
        EXPECT_NEAR(device_values[i], host_values[i], 1e-9 * (1.0 + std::abs(host_values[i])));
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, DevicePredictAllKernels,
                         ::testing::Values(kernel_type::linear, kernel_type::polynomial,
                                           kernel_type::rbf, kernel_type::sigmoid),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(DevicePredict, TrackerRecordsPredictComponent) {
    const auto data = make_data();
    plssvm::backend::cuda::csvm<double> svm{ parameter{ kernel_type::rbf } };
    const auto model = svm.fit(data);
    (void) svm.predict(model, data);
    EXPECT_GT(svm.performance_tracker().get("predict").sim_seconds, 0.0);
}

TEST(DevicePredict, ProfilerSeesPredictKernels) {
    const auto data = make_data();
    plssvm::backend::cuda::csvm<double> linear_svm{ parameter{ kernel_type::linear } };
    const auto linear_model = linear_svm.fit(data);
    (void) linear_svm.predict(linear_model, data);
    EXPECT_TRUE(linear_svm.devices()[0].prof().kernels().contains("device_kernel_w"));

    plssvm::backend::cuda::csvm<double> rbf_svm{ parameter{ kernel_type::rbf } };
    const auto rbf_model = rbf_svm.fit(data);
    (void) rbf_svm.predict(rbf_model, data);
    EXPECT_TRUE(rbf_svm.devices()[0].prof().kernels().contains("device_kernel_predict"));
}

TEST(DevicePredict, ScoreMatchesHostBackend) {
    const auto data = make_data();
    const parameter params{ kernel_type::linear };
    const plssvm::solver_control ctrl{ .epsilon = 1e-10 };
    plssvm::backend::openmp::csvm<double> host{ params };
    plssvm::backend::cuda::csvm<double> device{ params };
    const auto host_model = host.fit(data, ctrl);
    const auto device_model = device.fit(data, ctrl);
    EXPECT_DOUBLE_EQ(host.score(host_model, data), device.score(device_model, data));
}

}  // namespace
