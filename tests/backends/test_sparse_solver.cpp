/**
 * @file
 * @brief Tests of the sparse-CG extension (paper §V future work): the CSR
 *        implicit operator must agree exactly with the dense one.
 */

#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/backends/openmp/q_operator.hpp"
#include "plssvm/backends/openmp/sparse_q_operator.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/detail/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::csr_matrix;
using plssvm::data_set;
using plssvm::kernel_params;
using plssvm::kernel_type;
using plssvm::parameter;

/// Data with ~70 % exact zeros (the scenario sparse evaluation targets).
[[nodiscard]] aos_matrix<double> sparse_points(const std::size_t m, const std::size_t d, const std::uint64_t seed = 13) {
    auto engine = plssvm::detail::make_engine(seed);
    aos_matrix<double> points{ m, d };
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t f = 0; f < d; ++f) {
            if (plssvm::detail::uniform_real<double>(engine, 0.0, 1.0) > 0.7) {
                points(i, f) = plssvm::detail::standard_normal<double>(engine);
            }
        }
    }
    return points;
}

class SparseOperatorKernels : public ::testing::TestWithParam<kernel_type> {};

TEST_P(SparseOperatorKernels, MatchesDenseOperator) {
    const aos_matrix<double> points = sparse_points(70, 12);
    const csr_matrix<double> csr{ points };
    const kernel_params<double> kp{ GetParam(), 2, 0.4, 0.6 };
    const double cost = 1.3;

    plssvm::backend::openmp::q_operator<double> dense_op{ points, kp, cost };
    plssvm::backend::openmp::sparse_q_operator<double> sparse_op{ csr, kp, cost };
    ASSERT_EQ(dense_op.size(), sparse_op.size());
    EXPECT_NEAR(dense_op.q_mm(), sparse_op.q_mm(), 1e-12);
    for (std::size_t i = 0; i < dense_op.size(); ++i) {
        EXPECT_NEAR(dense_op.q()[i], sparse_op.q()[i], 1e-12);
    }

    std::vector<double> x(dense_op.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = std::sin(static_cast<double>(i) * 0.7);
    }
    std::vector<double> dense_out(x.size());
    std::vector<double> sparse_out(x.size());
    dense_op.apply(x, dense_out);
    sparse_op.apply(x, sparse_out);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(dense_out[i], sparse_out[i], 1e-9 * (1.0 + std::abs(dense_out[i])));
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, SparseOperatorKernels,
                         ::testing::Values(kernel_type::linear, kernel_type::polynomial,
                                           kernel_type::rbf, kernel_type::sigmoid),
                         [](const auto &info) { return std::string{ plssvm::kernel_type_to_string(info.param) }; });

TEST(SparseSolver, ProducesSameModelAsDenseSolver) {
    plssvm::datagen::classification_params gen;
    gen.num_points = 120;
    gen.num_features = 10;
    gen.seed = 17;
    const auto data = plssvm::datagen::make_classification<double>(gen);

    const parameter params{ kernel_type::linear };
    const plssvm::solver_control ctrl{ .epsilon = 1e-12 };
    plssvm::backend::openmp::csvm<double> dense{ params, /*use_sparse_solver=*/false };
    plssvm::backend::openmp::csvm<double> sparse{ params, /*use_sparse_solver=*/true };
    EXPECT_EQ(dense.backend_name(), "openmp");
    EXPECT_EQ(sparse.backend_name(), "openmp-sparse");

    const auto dense_model = dense.fit(data, ctrl);
    const auto sparse_model = sparse.fit(data, ctrl);
    for (std::size_t i = 0; i < dense_model.alpha().size(); ++i) {
        EXPECT_NEAR(dense_model.alpha()[i], sparse_model.alpha()[i], 1e-7);
    }
    EXPECT_NEAR(dense_model.rho(), sparse_model.rho(), 1e-7);
}

}  // namespace
