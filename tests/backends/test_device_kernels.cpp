/**
 * @file
 * @brief Property tests of the blocked device kernels (§III-C): equivalence
 *        with a dense reference construction of Q~, invariance under padding
 *        and every blocking configuration, and agreement between kernel_q and
 *        the host reference.
 */

#include "plssvm/backends/device/kernels.hpp"
#include "plssvm/backends/openmp/q_operator.hpp"
#include "plssvm/core/lssvm_math.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/detail/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::kernel_params;
using plssvm::kernel_type;
using plssvm::soa_matrix;

[[nodiscard]] aos_matrix<double> random_points(const std::size_t m, const std::size_t d, const std::uint64_t seed = 5) {
    plssvm::datagen::classification_params gen;
    gen.num_points = m;
    gen.num_features = d;
    gen.seed = seed;
    return plssvm::datagen::make_classification<double>(gen).points();
}

/// Dense reference: build Q~ entry by entry via Eq. 16 and multiply.
[[nodiscard]] std::vector<double> dense_reference_matvec(const aos_matrix<double> &points,
                                                         const kernel_params<double> &kp,
                                                         const double cost,
                                                         const std::vector<double> &x) {
    const std::size_t n = points.num_rows() - 1;
    const std::size_t dim = points.num_cols();
    const std::size_t last = n;
    std::vector<double> out(n, 0.0);
    const double q_mm = plssvm::kernels::apply(kp, points.row_data(last), points.row_data(last), dim) + 1.0 / cost;
    for (std::size_t i = 0; i < n; ++i) {
        const double q_i = plssvm::kernels::apply(kp, points.row_data(i), points.row_data(last), dim);
        for (std::size_t j = 0; j < n; ++j) {
            const double q_j = plssvm::kernels::apply(kp, points.row_data(j), points.row_data(last), dim);
            double entry = plssvm::kernels::apply(kp, points.row_data(i), points.row_data(j), dim) - q_i - q_j + q_mm;
            if (i == j) {
                entry += 1.0 / cost;
            }
            out[i] += entry * x[j];
        }
    }
    return out;
}

class DeviceKernelConfigs
    : public ::testing::TestWithParam<std::tuple<kernel_type, std::size_t, std::size_t, bool>> {};

TEST_P(DeviceKernelConfigs, BlockedMatvecMatchesDenseReference) {
    const auto [kt, block_size, internal_size, triangular] = GetParam();
    const std::size_t m = 97;  // deliberately not a multiple of any tile size
    const std::size_t dim = 9;
    const aos_matrix<double> points = random_points(m, dim);

    kernel_params<double> kp{ kt, 2, 0.35, 0.75 };
    const double cost = 1.5;

    const plssvm::sim::block_config cfg{ block_size, internal_size, triangular, true };
    const soa_matrix<double> soa = plssvm::transform_to_soa(points, cfg.tile());
    const std::size_t padded = soa.padded_rows();
    const std::size_t n = m - 1;

    // device q vector
    std::vector<double> q(padded, 0.0);
    plssvm::backend::device::kernel_q(soa.data().data(), n, padded, m - 1, dim, kp, q.data());

    // input vector (padded with zeros)
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = 0.1 * static_cast<double>(i % 7) - 0.3;
    }
    std::vector<double> x_padded(padded, 0.0);
    std::copy(x.begin(), x.end(), x_padded.begin());

    const double q_mm = plssvm::compute_q_mm(points, kp, cost);
    std::vector<double> out(padded, 0.0);
    plssvm::backend::device::kernel_svm(soa.data().data(), q.data(), x_padded.data(), out.data(),
                                        n, padded, dim, kp, q_mm, 1.0 / cost, cfg);

    const std::vector<double> reference = dense_reference_matvec(points, kp, cost, x);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(out[i], reference[i], 1e-9 * (1.0 + std::abs(reference[i]))) << "row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DeviceKernelConfigs,
    ::testing::Combine(::testing::Values(kernel_type::linear, kernel_type::polynomial, kernel_type::rbf, kernel_type::sigmoid),
                       ::testing::Values(std::size_t{ 4 }, std::size_t{ 16 }),
                       ::testing::Values(std::size_t{ 1 }, std::size_t{ 4 }),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string{ plssvm::kernel_type_to_string(std::get<0>(info.param)) }
               + "_b" + std::to_string(std::get<1>(info.param))
               + "_i" + std::to_string(std::get<2>(info.param))
               + (std::get<3>(info.param) ? "_tri" : "_full");
    });

TEST(DeviceKernels, QKernelMatchesHostReference) {
    const aos_matrix<double> points = random_points(61, 5);
    for (const kernel_type kt : { kernel_type::linear, kernel_type::polynomial, kernel_type::rbf }) {
        const kernel_params<double> kp{ kt, 3, 0.5, 1.0 };
        const std::vector<double> host_q = plssvm::compute_q_vector(points, kp);

        const soa_matrix<double> soa = plssvm::transform_to_soa(points, 64);
        std::vector<double> device_q(soa.padded_rows(), -1.0);
        plssvm::backend::device::kernel_q(soa.data().data(), 60, soa.padded_rows(), 60, 5, kp, device_q.data());

        for (std::size_t i = 0; i < 60; ++i) {
            EXPECT_NEAR(device_q[i], host_q[i], 1e-12);
        }
        // padding region must be zeroed
        for (std::size_t i = 60; i < soa.padded_rows(); ++i) {
            EXPECT_DOUBLE_EQ(device_q[i], 0.0);
        }
    }
}

TEST(DeviceKernels, PaddingAmountDoesNotChangeResults) {
    const aos_matrix<double> points = random_points(33, 4);
    const kernel_params<double> kp{ kernel_type::linear, 3, 1.0, 0.0 };
    const std::size_t n = 32;
    std::vector<double> x(n, 0.5);

    std::vector<std::vector<double>> results;
    for (const std::size_t tile : { 4UL, 16UL, 64UL }) {
        const plssvm::sim::block_config cfg{ tile, 1, true, true };
        const soa_matrix<double> soa = plssvm::transform_to_soa(points, tile);
        std::vector<double> q(soa.padded_rows(), 0.0);
        plssvm::backend::device::kernel_q(soa.data().data(), n, soa.padded_rows(), 32, 4, kp, q.data());
        std::vector<double> x_padded(soa.padded_rows(), 0.0);
        std::copy(x.begin(), x.end(), x_padded.begin());
        std::vector<double> out(soa.padded_rows(), 0.0);
        plssvm::backend::device::kernel_svm(soa.data().data(), q.data(), x_padded.data(), out.data(),
                                            n, soa.padded_rows(), 4, kp, 2.0, 1.0, cfg);
        results.emplace_back(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n));
    }
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(results[0][i], results[1][i], 1e-10);
        EXPECT_NEAR(results[0][i], results[2][i], 1e-10);
    }
}

TEST(OpenMpQOperator, MatchesDenseReference) {
    const aos_matrix<double> points = random_points(50, 6);
    const kernel_params<double> kp{ kernel_type::rbf, 3, 0.4, 0.0 };
    const double cost = 2.0;
    plssvm::backend::openmp::q_operator<double> op{ points, kp, cost };
    ASSERT_EQ(op.size(), 49U);

    std::vector<double> x(49);
    for (std::size_t i = 0; i < 49; ++i) {
        x[i] = std::sin(static_cast<double>(i));
    }
    std::vector<double> out(49);
    op.apply(x, out);
    const std::vector<double> reference = dense_reference_matvec(points, kp, cost, x);
    for (std::size_t i = 0; i < 49; ++i) {
        EXPECT_NEAR(out[i], reference[i], 1e-9 * (1.0 + std::abs(reference[i])));
    }
}

TEST(OpenMpQOperator, OperatorIsSymmetric) {
    // <Ax, y> == <x, Ay> for arbitrary vectors (Q~ is symmetric, §II-G)
    const aos_matrix<double> points = random_points(40, 5);
    const kernel_params<double> kp{ kernel_type::linear, 3, 1.0, 0.0 };
    plssvm::backend::openmp::q_operator<double> op{ points, kp, 1.0 };
    const std::size_t n = op.size();

    std::vector<double> x(n);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = std::cos(static_cast<double>(i));
        y[i] = static_cast<double>(i % 5) - 2.0;
    }
    std::vector<double> ax(n);
    std::vector<double> ay(n);
    op.apply(x, ax);
    op.apply(y, ay);
    double axy = 0.0;
    double xay = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        axy += ax[i] * y[i];
        xay += x[i] * ay[i];
    }
    EXPECT_NEAR(axy, xay, 1e-8 * (1.0 + std::abs(axy)));
}

TEST(OpenMpQOperator, OperatorIsPositiveDefinite) {
    // x^T Q~ x > 0 for non-zero x (required for CG, §II-G / §III-B)
    const aos_matrix<double> points = random_points(35, 4);
    for (const kernel_type kt : { kernel_type::linear, kernel_type::rbf }) {
        const kernel_params<double> kp{ kt, 3, 0.5, 0.0 };
        plssvm::backend::openmp::q_operator<double> op{ points, kp, 1.0 };
        const std::size_t n = op.size();
        std::vector<double> ax(n);
        for (std::uint64_t trial = 0; trial < 10; ++trial) {
            auto engine = plssvm::detail::make_engine(trial);
            std::vector<double> x(n);
            for (double &v : x) {
                v = plssvm::detail::standard_normal<double>(engine);
            }
            op.apply(x, ax);
            double quadratic_form = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                quadratic_form += x[i] * ax[i];
            }
            EXPECT_GT(quadratic_form, 0.0);
        }
    }
}

}  // namespace
