/**
 * @file
 * @brief Tests of the virtual device layer: memory accounting, transfers,
 *        the simulated clock, the profiler, and the runtime profiles.
 */

#include "plssvm/exceptions.hpp"
#include "plssvm/sim/device.hpp"
#include "plssvm/sim/device_spec.hpp"
#include "plssvm/sim/runtime_profile.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace plssvm::sim;

[[nodiscard]] device make_device(const device_spec &spec = devices::nvidia_a100(),
                                 const backend_runtime runtime = backend_runtime::cuda) {
    return device{ spec, runtime_profile::for_device(runtime, spec) };
}

TEST(DeviceSpecs, RegistryContainsAllPaperGpus) {
    const auto &all = devices::all();
    EXPECT_EQ(all.size(), 7U);  // 6 Table I GPUs + the A100 scaling GPU
    EXPECT_NO_THROW((void) devices::by_name("NVIDIA V100"));
    EXPECT_NO_THROW((void) devices::by_name("a100"));
    EXPECT_NO_THROW((void) devices::by_name("RadeonVII"));
    EXPECT_THROW((void) devices::by_name("nonexistent gpu"), plssvm::invalid_parameter_exception);
}

TEST(DeviceSpecs, A100MatchesPaperNumbers) {
    const device_spec a100 = devices::nvidia_a100();
    EXPECT_DOUBLE_EQ(a100.fp64_peak_tflops, 9.7);      // paper §IV-A
    EXPECT_DOUBLE_EQ(a100.mem_bandwidth_gbs, 1555.0);  // paper §IV-A
    EXPECT_DOUBLE_EQ(a100.mem_capacity_gib, 40.0);     // paper §IV-A
}

TEST(Device, InitialClockIsInitOverhead) {
    const device dev = make_device();
    EXPECT_DOUBLE_EQ(dev.clock_seconds(), dev.profile().init_overhead_s);
}

TEST(Device, LaunchAdvancesClockAndRunsBody) {
    device dev = make_device();
    const double before = dev.clock_seconds();
    bool executed = false;
    kernel_cost cost;
    cost.flops = 1e9;
    dev.launch("test_kernel", cost, [&] { executed = true; });
    EXPECT_TRUE(executed);
    EXPECT_GT(dev.clock_seconds(), before);
}

TEST(Device, LaunchTimeFollowsRoofline) {
    device dev = make_device();
    kernel_cost compute_bound;
    compute_bound.flops = 1e12;
    compute_bound.global_bytes = 8.0;
    const double t0 = dev.clock_seconds();
    dev.launch("big", compute_bound, {});
    const double compute_time = dev.clock_seconds() - t0;
    // 1e12 flops at 9.7 TF * 0.32 efficiency ~ 0.32 s
    EXPECT_NEAR(compute_time, 1e12 / (9.7e12 * 0.32), 1e-3);
}

TEST(Device, TransfersAdvanceClock) {
    device dev = make_device();
    const double t0 = dev.clock_seconds();
    dev.transfer_h2d(20e9);  // 20 GB at 20 GB/s PCIe ~ 1 s
    EXPECT_NEAR(dev.clock_seconds() - t0, 1.0, 0.01);
}

TEST(DeviceBuffer, AccountsAllocationAndFree) {
    device dev = make_device();
    EXPECT_EQ(dev.allocated_bytes(), 0U);
    {
        const device_buffer<double> buffer{ dev, 1000 };
        EXPECT_EQ(dev.allocated_bytes(), 8000U);
        EXPECT_EQ(dev.peak_allocated_bytes(), 8000U);
    }
    EXPECT_EQ(dev.allocated_bytes(), 0U);
    EXPECT_EQ(dev.peak_allocated_bytes(), 8000U);  // peak persists
}

TEST(DeviceBuffer, OutOfMemoryThrows) {
    device_spec tiny = devices::nvidia_a100();
    tiny.mem_capacity_gib = 1.0 / 1024.0;  // 1 MiB
    device dev{ tiny, runtime_profile::for_device(backend_runtime::cuda, tiny) };
    EXPECT_THROW((device_buffer<double>{ dev, 1024 * 1024 }), plssvm::device_exception);
}

TEST(DeviceBuffer, CopyRoundTrip) {
    device dev = make_device();
    device_buffer<double> buffer{ dev, 4 };
    const std::vector<double> host{ 1.0, 2.0, 3.0, 4.0 };
    buffer.copy_from_host(host.data(), 4);
    std::vector<double> back(4);
    buffer.copy_to_host(back.data(), 4);
    EXPECT_EQ(back, host);
}

TEST(DeviceBuffer, OutOfBoundsCopyThrows) {
    device dev = make_device();
    device_buffer<double> buffer{ dev, 4 };
    const std::vector<double> host(8, 0.0);
    EXPECT_THROW(buffer.copy_from_host(host.data(), 8), plssvm::device_exception);
    std::vector<double> back(8);
    EXPECT_THROW(buffer.copy_to_host(back.data(), 8), plssvm::device_exception);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
    device dev = make_device();
    device_buffer<double> a{ dev, 100 };
    const device_buffer<double> b{ std::move(a) };
    EXPECT_EQ(dev.allocated_bytes(), 800U);
    // destruction of both must free exactly once (no double free / underflow)
}

TEST(Profiler, AggregatesPerKernelStats) {
    device dev = make_device();
    kernel_cost cost;
    cost.flops = 1e9;
    dev.launch("k1", cost, {});
    dev.launch("k1", cost, {});
    dev.launch("k2", cost, {});
    EXPECT_EQ(dev.prof().num_distinct_kernels(), 2U);
    EXPECT_EQ(dev.prof().total_launches(), 3U);
    EXPECT_EQ(dev.prof().kernels().at("k1").launches, 2U);
    EXPECT_DOUBLE_EQ(dev.prof().kernels().at("k1").flops, 2e9);
    EXPECT_GT(dev.prof().kernels().at("k1").achieved_tflops(), 0.0);
}

// ---- runtime profiles (Table I behaviours) ---------------------------------

TEST(RuntimeProfile, CudaRequiresNvidia) {
    EXPECT_THROW((void) runtime_profile::for_device(backend_runtime::cuda, devices::amd_radeon_vii()),
                 plssvm::unsupported_backend_exception);
    EXPECT_THROW((void) runtime_profile::for_device(backend_runtime::cuda, devices::intel_uhd_p630()),
                 plssvm::unsupported_backend_exception);
    EXPECT_NO_THROW((void) runtime_profile::for_device(backend_runtime::cuda, devices::nvidia_v100()));
}

TEST(RuntimeProfile, BackendOrderingOnNvidia) {
    const device_spec v100 = devices::nvidia_v100();
    const auto cuda = runtime_profile::for_device(backend_runtime::cuda, v100);
    const auto opencl = runtime_profile::for_device(backend_runtime::opencl, v100);
    const auto sycl = runtime_profile::for_device(backend_runtime::sycl, v100);
    // Table I: CUDA fastest, OpenCL close, SYCL slower
    EXPECT_GT(cuda.efficiency_factor, opencl.efficiency_factor);
    EXPECT_GT(opencl.efficiency_factor, sycl.efficiency_factor);
}

TEST(RuntimeProfile, SyclPenaltyOnOldComputeCapability) {
    const auto sycl_new = runtime_profile::for_device(backend_runtime::sycl, devices::nvidia_v100());   // cc 7.0
    const auto sycl_old = runtime_profile::for_device(backend_runtime::sycl, devices::nvidia_p100());   // cc 6.0
    // paper: hipSYCL is >3x slower than CUDA/OpenCL on cc < 7.0
    EXPECT_LT(sycl_old.efficiency_factor, sycl_new.efficiency_factor / 2.0);
}

TEST(RuntimeProfile, DpcppOnIntelIsHalfOfOpenCl) {
    const device_spec intel = devices::intel_uhd_p630();
    const auto opencl = runtime_profile::for_device(backend_runtime::opencl, intel);
    const auto sycl = runtime_profile::for_device(backend_runtime::sycl, intel);
    EXPECT_NEAR(sycl.efficiency_factor / opencl.efficiency_factor, 0.5, 0.05);
}

// ---- cost model ------------------------------------------------------------

TEST(CostModel, TriangularHalvesFlops) {
    const block_config full{ 16, 4, false, true };
    const block_config triangular{ 16, 4, true, true };
    const auto cost_full = svm_kernel_cost(1024, 64, plssvm::kernel_type::linear, full, 8);
    const auto cost_tri = svm_kernel_cost(1024, 64, plssvm::kernel_type::linear, triangular, 8);
    EXPECT_NEAR(cost_tri.flops / cost_full.flops, 0.5, 0.01);
}

TEST(CostModel, QCachingSavesTwoThirds) {
    const block_config cached{ 16, 4, true, true };
    const block_config uncached{ 16, 4, true, false };
    const auto cost_cached = svm_kernel_cost(1024, 64, plssvm::kernel_type::linear, cached, 8);
    const auto cost_uncached = svm_kernel_cost(1024, 64, plssvm::kernel_type::linear, uncached, 8);
    EXPECT_NEAR(cost_uncached.flops / cost_cached.flops, 3.0, 0.01);
}

TEST(CostModel, LargerTilesReduceGlobalTraffic) {
    const block_config small{ 4, 1, true, true };
    const block_config large{ 16, 4, true, true };
    const auto cost_small = svm_kernel_cost(1024, 64, plssvm::kernel_type::linear, small, 8);
    const auto cost_large = svm_kernel_cost(1024, 64, plssvm::kernel_type::linear, large, 8);
    EXPECT_GT(cost_small.global_bytes, cost_large.global_bytes * 4);
}

TEST(CostModel, NonLinearKernelsCostMoreFlops) {
    const block_config cfg{};
    const auto linear = svm_kernel_cost(512, 32, plssvm::kernel_type::linear, cfg, 8);
    const auto rbf = svm_kernel_cost(512, 32, plssvm::kernel_type::rbf, cfg, 8);
    EXPECT_GT(rbf.flops, linear.flops);
}

TEST(CostModel, RooflineTakesTheMaximum) {
    const device_spec a100 = devices::nvidia_a100();
    const auto profile = runtime_profile::for_device(backend_runtime::cuda, a100);
    kernel_cost memory_bound;
    memory_bound.flops = 1.0;
    memory_bound.global_bytes = 1e12;  // 1 TB
    const double t = roofline_seconds(a100, profile, memory_bound);
    // 1e12 B at 1555 GB/s * 0.75 ~ 0.86 s
    EXPECT_NEAR(t, 1e12 / (1555e9 * 0.75), 1e-2);
}

}  // namespace
