/**
 * @file
 * @brief Tests of the paper-scale projection facility — in particular the key
 *        consistency property: for a problem small enough to run
 *        functionally, the projection must agree with the simulated clock of
 *        a real device-backend training run (both walk the same launch
 *        sequence with the same cost formulas).
 */

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/sim/cpu_model.hpp"
#include "plssvm/sim/projection.hpp"

#include <gtest/gtest.h>

namespace {

using namespace plssvm::sim;

TEST(Projection, MatchesFunctionalDeviceAccounting) {
    plssvm::datagen::classification_params gen;
    gen.num_points = 512;
    gen.num_features = 64;
    gen.seed = 3;
    const auto data = plssvm::datagen::make_classification<double>(gen);

    plssvm::backend::cuda::csvm<double> svm{ plssvm::parameter{ plssvm::kernel_type::linear } };
    const auto model = svm.fit(data, plssvm::solver_control{ .epsilon = 1e-6 });
    const double functional_total = svm.performance_tracker().total_sim_seconds();

    projection_params proj;
    proj.num_points = 512;
    proj.num_features = 64;
    proj.cg_iterations = model.num_iterations();
    const auto projected = project_plssvm_training(devices::nvidia_a100(), backend_runtime::cuda, proj);

    // identical cost formulas + identical launch sequence => tight agreement
    EXPECT_NEAR(projected.total_seconds, functional_total, 0.02 * functional_total);
}

TEST(Projection, MultiDeviceMatchesFunctionalAccounting) {
    plssvm::datagen::classification_params gen;
    gen.num_points = 256;
    gen.num_features = 64;
    gen.seed = 4;
    const auto data = plssvm::datagen::make_classification<double>(gen);

    const std::vector<device_spec> specs(4, devices::nvidia_a100());
    plssvm::backend::cuda::csvm<double> svm{ plssvm::parameter{ plssvm::kernel_type::linear }, specs };
    const auto model = svm.fit(data, plssvm::solver_control{ .epsilon = 1e-6 });
    const double functional_total = svm.performance_tracker().total_sim_seconds();

    projection_params proj;
    proj.num_points = 256;
    proj.num_features = 64;
    proj.cg_iterations = model.num_iterations();
    proj.num_devices = 4;
    const auto projected = project_plssvm_training(devices::nvidia_a100(), backend_runtime::cuda, proj);
    EXPECT_NEAR(projected.total_seconds, functional_total, 0.05 * functional_total);
}

TEST(Projection, CgScalesLinearlyWithIterations) {
    projection_params proj;
    proj.num_points = 32768;
    proj.num_features = 4096;
    proj.cg_iterations = 10;
    const auto ten = project_plssvm_training(devices::nvidia_v100(), backend_runtime::cuda, proj);
    proj.cg_iterations = 20;
    const auto twenty = project_plssvm_training(devices::nvidia_v100(), backend_runtime::cuda, proj);
    EXPECT_NEAR(twenty.cg_seconds / ten.cg_seconds, 2.0, 0.01);
}

TEST(Projection, MultiDeviceSplitsMemoryAndTime) {
    projection_params proj;
    proj.num_points = 65536;
    proj.num_features = 16384;
    proj.cg_iterations = 35;
    proj.num_devices = 1;
    const auto one = project_plssvm_training(devices::nvidia_a100(), backend_runtime::cuda, proj);
    proj.num_devices = 4;
    const auto four = project_plssvm_training(devices::nvidia_a100(), backend_runtime::cuda, proj);
    // paper §IV-G: 4 GPUs give ~3.7x speedup and ~1/3.8 memory per device
    EXPECT_GT(one.total_seconds / four.total_seconds, 3.5);
    EXPECT_LT(one.total_seconds / four.total_seconds, 4.1);
    EXPECT_NEAR(one.per_device_memory_bytes / four.per_device_memory_bytes, 4.0, 0.2);
}

TEST(Projection, PaperScaleMemoryMatchesPaper) {
    // paper §IV-G: 2^16 x 2^14 doubles occupy 8.15 GiB on one A100
    projection_params proj;
    proj.num_points = 65536;
    proj.num_features = 16384;
    const auto result = project_plssvm_training(devices::nvidia_a100(), backend_runtime::cuda, proj);
    const double gib = result.per_device_memory_bytes / (1024.0 * 1024.0 * 1024.0);
    EXPECT_NEAR(gib, 8.15, 0.3);
}

TEST(Projection, Table1OrderingHolds) {
    projection_params proj;
    proj.num_points = 32768;
    proj.num_features = 4096;
    proj.cg_iterations = 26;
    const auto v100_cuda = project_plssvm_training(devices::nvidia_v100(), backend_runtime::cuda, proj);
    const auto v100_opencl = project_plssvm_training(devices::nvidia_v100(), backend_runtime::opencl, proj);
    const auto v100_sycl = project_plssvm_training(devices::nvidia_v100(), backend_runtime::sycl, proj);
    const auto p100_cuda = project_plssvm_training(devices::nvidia_p100(), backend_runtime::cuda, proj);
    const auto gtx_cuda = project_plssvm_training(devices::nvidia_gtx_1080_ti(), backend_runtime::cuda, proj);

    // per-device backend ordering: CUDA < OpenCL < SYCL (Table I)
    EXPECT_LT(v100_cuda.total_seconds, v100_opencl.total_seconds);
    EXPECT_LT(v100_opencl.total_seconds, v100_sycl.total_seconds);
    // cross-device ordering: V100 < P100 < GTX 1080 Ti
    EXPECT_LT(v100_cuda.total_seconds, p100_cuda.total_seconds);
    EXPECT_LT(p100_cuda.total_seconds, gtx_cuda.total_seconds);
}

TEST(Projection, ThunderSlowerThanPlssvmAtPaperScale) {
    // Fig. 1c setting: 2^14 points x 2^12 features; paper measures 7.2x
    projection_params plssvm_proj;
    plssvm_proj.num_points = 16384;
    plssvm_proj.num_features = 4096;
    plssvm_proj.cg_iterations = 26;
    const auto plssvm_time = project_plssvm_training(devices::nvidia_a100(), backend_runtime::cuda, plssvm_proj);

    thunder_projection_params thunder_proj;
    thunder_proj.num_points = 16384;
    thunder_proj.num_features = 4096;
    thunder_proj.total_steps = 2'000'000;  // SMO steps grow ~quadratically in m
    thunder_proj.distinct_rows = 3000;
    const auto thunder_time = project_thunder_training(devices::nvidia_a100(), thunder_proj);

    EXPECT_GT(thunder_time.total_seconds, 2.0 * plssvm_time.total_seconds);
}

// ---- CPU scaling model (Fig. 4a) -------------------------------------------

TEST(CpuModel, ComputeSpeedupMatchesPaperAnchors) {
    const cpu_model epyc{};
    // paper: 25.3 min -> 3.1 min on 16 cores (~8.2x) and 74.7x at 256 threads
    EXPECT_NEAR(epyc.compute_speedup(16), 8.2, 1.0);
    EXPECT_NEAR(epyc.compute_speedup(256), 74.7, 8.0);
}

TEST(CpuModel, IoDegradesBeyondOneSocket) {
    const cpu_model epyc{};
    const double at_socket = epyc.io_speedup(64);
    EXPECT_GT(at_socket, epyc.io_speedup(8));     // scales within the socket
    EXPECT_GT(at_socket, epyc.io_speedup(128));   // degrades across sockets
    EXPECT_GT(epyc.io_speedup(128), epyc.io_speedup(256));
}

TEST(CpuModel, ProjectDividesBySpeedup) {
    const cpu_model epyc{};
    const double projected = epyc.project(100.0, 16, /*compute_bound=*/true);
    EXPECT_NEAR(projected, 100.0 / epyc.compute_speedup(16), 1e-9);
}

TEST(CpuModel, MaxThreads) {
    const cpu_model epyc{};
    EXPECT_EQ(epyc.max_threads(), 256U);  // 2 sockets x 64 cores x 2 SMT
}

}  // namespace
