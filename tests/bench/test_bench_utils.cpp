/**
 * @file
 * @brief Unit tests for the bench harness statistics (CoV etc. back the
 *        paper-comparison claims, so they deserve their own coverage).
 */

#include "common/bench_utils.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using plssvm::bench::compute_stats;

TEST(BenchStats, EmptyInputIsAllZero) {
    const auto stats = compute_stats({});
    EXPECT_EQ(stats.samples, 0U);
    EXPECT_DOUBLE_EQ(stats.mean, 0.0);
    EXPECT_DOUBLE_EQ(stats.cov, 0.0);
}

TEST(BenchStats, SingleSample) {
    const auto stats = compute_stats({ 2.5 });
    EXPECT_DOUBLE_EQ(stats.mean, 2.5);
    EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
    EXPECT_DOUBLE_EQ(stats.cov, 0.0);
    EXPECT_DOUBLE_EQ(stats.min, 2.5);
    EXPECT_DOUBLE_EQ(stats.max, 2.5);
}

TEST(BenchStats, KnownValues) {
    const auto stats = compute_stats({ 1.0, 2.0, 3.0, 4.0 });
    EXPECT_DOUBLE_EQ(stats.mean, 2.5);
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 4.0);
    // population stddev of {1,2,3,4} = sqrt(1.25)
    EXPECT_NEAR(stats.stddev, std::sqrt(1.25), 1e-12);
    EXPECT_NEAR(stats.cov, std::sqrt(1.25) / 2.5, 1e-12);
}

TEST(BenchStats, ConstantSamplesHaveZeroCov) {
    const auto stats = compute_stats({ 3.0, 3.0, 3.0 });
    EXPECT_DOUBLE_EQ(stats.cov, 0.0);
}

TEST(BenchStats, MeasureCollectsRepeats) {
    int calls = 0;
    const auto stats = plssvm::bench::measure(5, [&]() {
        ++calls;
        return static_cast<double>(calls);
    });
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(stats.samples, 5U);
    EXPECT_DOUBLE_EQ(stats.mean, 3.0);
}

TEST(BenchFormat, AdaptiveSecondsUnits) {
    EXPECT_EQ(plssvm::bench::format_seconds(0.0000005), "0.5 us");
    EXPECT_EQ(plssvm::bench::format_seconds(0.0123), "12.30 ms");
    EXPECT_EQ(plssvm::bench::format_seconds(4.5), "4.50 s");
    EXPECT_EQ(plssvm::bench::format_seconds(240.0), "4.0 min");
}

TEST(BenchFormat, FixedPrecisionDouble) {
    EXPECT_EQ(plssvm::bench::format_double(1.23456, 2), "1.23");
    EXPECT_EQ(plssvm::bench::format_double(0.5, 3), "0.500");
}

}  // namespace
