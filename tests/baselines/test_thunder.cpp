/**
 * @file
 * @brief Tests of the ThunderSVM-style batched-SMO baseline.
 */

#include "plssvm/baselines/smo/svc.hpp"
#include "plssvm/baselines/thunder/thunder_svc.hpp"
#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/datagen/make_classification.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace {

using plssvm::data_set;
using plssvm::kernel_type;
using plssvm::parameter;
namespace thunder = plssvm::baseline::thunder;

[[nodiscard]] data_set<double> make_planes(const std::size_t points, const std::size_t features,
                                           const double sep = 2.5) {
    plssvm::datagen::classification_params params;
    params.num_points = points;
    params.num_features = features;
    params.class_sep = sep;
    params.flip_y = 0.0;
    return plssvm::datagen::make_classification<double>(params);
}

TEST(ThunderSvc, CpuModeReachesHighAccuracy) {
    const data_set<double> data = make_planes(256, 16, 3.0);
    thunder::thunder_svc<double> svc{ parameter{ kernel_type::linear }, std::nullopt };
    const auto model = svc.fit(data, 1e-4);
    EXPECT_GE(svc.score(model, data), 0.97);
    EXPECT_EQ(svc.last_sim_seconds(), 0.0);
    EXPECT_EQ(svc.name(), "thundersvm-cpu");
}

TEST(ThunderSvc, GpuModeReachesHighAccuracy) {
    const data_set<double> data = make_planes(256, 16, 3.0);
    thunder::thunder_svc<double> svc{ parameter{ kernel_type::linear } };
    const auto model = svc.fit(data, 1e-4);
    EXPECT_GE(svc.score(model, data), 0.97);
    EXPECT_GT(svc.last_sim_seconds(), 0.0);
    EXPECT_EQ(svc.name(), "thundersvm-gpu");
}

TEST(ThunderSvc, AgreesWithSequentialSmo) {
    // batched SMO solves the same dual problem; decision agreement on the
    // training data should be (near) perfect for a strict tolerance
    const data_set<double> data = make_planes(192, 10, 2.0);
    thunder::thunder_svc<double> batched{ parameter{ kernel_type::linear }, std::nullopt };
    plssvm::baseline::smo::svc<double> sequential{ parameter{ kernel_type::linear } };

    const auto batched_model = batched.fit(data, 1e-6);
    const auto sequential_model = sequential.fit(data, 1e-6);

    const auto batched_pred = batched.predict(batched_model, data);
    const auto sequential_pred = sequential.predict(sequential_model, data);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < batched_pred.size(); ++i) {
        agree += batched_pred[i] == sequential_pred[i];
    }
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(batched_pred.size()), 0.99);
}

TEST(ThunderSvc, SpawnsManySmallKernels) {
    // the execution profile the paper measures: plenty of tiny kernels
    // (selection + per-step updates), few large ones (§IV-C)
    const data_set<double> data = make_planes(512, 32, 1.5);
    thunder::thunder_svc<double> svc{ parameter{ kernel_type::linear } };
    (void) svc.fit(data, 1e-5);
    const plssvm::sim::profiler *prof = svc.last_profiler();
    ASSERT_NE(prof, nullptr);
    EXPECT_GT(prof->total_launches(), 100U);
    // tiny kernels dominate the launch count
    const auto &kernels = prof->kernels();
    ASSERT_TRUE(kernels.contains("smo_step"));
    ASSERT_TRUE(kernels.contains("compute_kernel_rows"));
    EXPECT_GT(kernels.at("smo_step").launches, kernels.at("compute_kernel_rows").launches);
}

TEST(ThunderSvc, RbfKernelTrains) {
    const data_set<double> data = make_planes(192, 12, 2.0);
    parameter params{ kernel_type::rbf };
    params.gamma = 0.1;
    thunder::thunder_svc<double> svc{ params, std::nullopt };
    const auto model = svc.fit(data, 1e-4);
    EXPECT_GE(svc.score(model, data), 0.95);
}

TEST(ThunderSvc, UsesMoreDeviceMemoryThanPlssvm) {
    // §IV-G: ThunderSVM keeps kernel rows on the GPU; its footprint exceeds
    // the raw data size, unlike PLSSVM's implicit representation
    const data_set<double> data = make_planes(512, 32);
    thunder::thunder_svc<double> svc{ parameter{ kernel_type::linear } };
    (void) svc.fit(data, 1e-4);
    const std::size_t raw_data_bytes = 512 * 32 * sizeof(double);
    EXPECT_GT(svc.peak_device_memory(), raw_data_bytes);
}

}  // namespace
