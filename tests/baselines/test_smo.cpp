/**
 * @file
 * @brief Tests of the LIBSVM-style SMO baseline (working-set selection,
 *        kernel cache, sparse/dense parity, KKT conditions).
 */

#include "plssvm/baselines/smo/kernel_cache.hpp"
#include "plssvm/baselines/smo/solver.hpp"
#include "plssvm/baselines/smo/svc.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/datagen/make_classification.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using plssvm::aos_matrix;
using plssvm::data_set;
using plssvm::kernel_params;
using plssvm::kernel_type;
using plssvm::parameter;
namespace smo = plssvm::baseline::smo;

[[nodiscard]] data_set<double> make_planes(const std::size_t points, const std::size_t features,
                                           const double sep = 2.5, const double flip = 0.0) {
    plssvm::datagen::classification_params params;
    params.num_points = points;
    params.num_features = features;
    params.class_sep = sep;
    params.flip_y = flip;
    return plssvm::datagen::make_classification<double>(params);
}

TEST(SmoSolver, SolvesTinyProblemExactly) {
    // two points, one per class: alpha_0 = alpha_1 by symmetry, f separates them
    aos_matrix<double> points{ 2, 1 };
    points(0, 0) = 1.0;
    points(1, 0) = -1.0;
    const std::vector<double> y{ 1.0, -1.0 };
    const kernel_params<double> kp{ kernel_type::linear, 3, 1.0, 0.0 };
    const smo::dense_kernel_source<double> source{ points, kp };
    const auto result = smo::solve_c_svc<double>(source, y, smo::smo_options{ .cost = 10.0, .epsilon = 1e-6 });
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.alpha[0], result.alpha[1], 1e-9);
    // analytic optimum: max 2a - a^2 (K11+K22-2K12 = 4) / ... => a = 0.5
    EXPECT_NEAR(result.alpha[0], 0.5, 1e-6);
    EXPECT_NEAR(result.rho, 0.0, 1e-6);
}

TEST(SmoSolver, SatisfiesKktConditions) {
    const data_set<double> data = make_planes(160, 8);
    const kernel_params<double> kp{ kernel_type::linear, 3, 1.0, 0.0 };
    const smo::dense_kernel_source<double> source{ data.points(), kp };
    const double C = 1.0;
    const auto result = smo::solve_c_svc<double>(source, data.binary_labels(), smo::smo_options{ .cost = C, .epsilon = 1e-6 });
    ASSERT_TRUE(result.converged);

    // box constraints
    for (const double a : result.alpha) {
        EXPECT_GE(a, -1e-12);
        EXPECT_LE(a, C + 1e-12);
    }
    // equality constraint sum_i y_i alpha_i = 0
    double sum = 0.0;
    for (std::size_t i = 0; i < result.alpha.size(); ++i) {
        sum += data.binary_labels()[i] * result.alpha[i];
    }
    EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(SmoSolver, SparseAndDenseRepresentationsAgree) {
    const data_set<double> data = make_planes(128, 6);
    const kernel_params<double> kp{ kernel_type::rbf, 3, 0.25, 0.0 };
    const std::vector<double> &y = data.binary_labels();
    const smo::smo_options options{ .cost = 1.0, .epsilon = 1e-8 };

    const smo::dense_kernel_source<double> dense{ data.points(), kp };
    const plssvm::csr_matrix<double> csr{ data.points() };
    const smo::sparse_kernel_source<double> sparse{ csr, kp };

    const auto dense_result = smo::solve_c_svc<double>(dense, y, options);
    const auto sparse_result = smo::solve_c_svc<double>(sparse, y, options);

    ASSERT_EQ(dense_result.alpha.size(), sparse_result.alpha.size());
    for (std::size_t i = 0; i < dense_result.alpha.size(); ++i) {
        EXPECT_NEAR(dense_result.alpha[i], sparse_result.alpha[i], 1e-6);
    }
    EXPECT_NEAR(dense_result.rho, sparse_result.rho, 1e-6);
}

TEST(SmoSolver, TighterEpsilonNeverWorsensObjective) {
    const data_set<double> data = make_planes(96, 6, 1.5, 0.02);
    const kernel_params<double> kp{ kernel_type::linear, 3, 1.0, 0.0 };
    const smo::dense_kernel_source<double> source{ data.points(), kp };
    const auto loose = smo::solve_c_svc<double>(source, data.binary_labels(), smo::smo_options{ .cost = 1.0, .epsilon = 1e-2 });
    const auto tight = smo::solve_c_svc<double>(source, data.binary_labels(), smo::smo_options{ .cost = 1.0, .epsilon = 1e-8 });
    EXPECT_LE(tight.objective, loose.objective + 1e-12);
    EXPECT_GE(tight.iterations, loose.iterations);
}

TEST(SmoSvc, ReachesHighAccuracyOnSeparableData) {
    const data_set<double> data = make_planes(256, 16, 3.0);
    smo::svc<double> svc{ parameter{ kernel_type::linear } };
    const auto model = svc.fit(data, 1e-4);
    EXPECT_GE(svc.score(model, data), 0.97);
}

TEST(SmoSvc, SmoSolutionIsSparseInAlpha) {
    // well separated data: SMO needs only a few support vectors, in contrast
    // to the LS-SVM where every point is one (paper §II-C / §IV-H)
    const data_set<double> data = make_planes(256, 8, 4.0);
    smo::svc<double> svc{ parameter{ kernel_type::linear } };
    const auto model = svc.fit(data, 1e-4);
    EXPECT_LT(model.num_support_vectors(), data.num_data_points() / 2);
}

TEST(SmoSvc, DenseVariantName) {
    smo::svc<double> sparse_svc{ parameter{} };
    smo::svc<double> dense_svc{ parameter{}, smo::representation::dense };
    EXPECT_EQ(sparse_svc.name(), "libsvm");
    EXPECT_EQ(dense_svc.name(), "libsvm-dense");
}

TEST(KernelCache, EvictsLeastRecentlyUsed) {
    aos_matrix<double> points{ 8, 2 };
    for (std::size_t i = 0; i < 8; ++i) {
        points(i, 0) = static_cast<double>(i);
    }
    const kernel_params<double> kp{ kernel_type::linear, 3, 1.0, 0.0 };
    const smo::dense_kernel_source<double> source{ points, kp };
    // capacity: 2 rows (8 doubles * 2 rows = 128 bytes)
    smo::kernel_cache<double> cache{ source, 2 * 8 * sizeof(double) };

    (void) cache.row(0);
    (void) cache.row(1);
    EXPECT_EQ(cache.misses(), 2U);
    (void) cache.row(0);  // hit, refreshes 0
    EXPECT_EQ(cache.hits(), 1U);
    (void) cache.row(2);  // evicts 1 (LRU)
    (void) cache.row(0);  // still cached
    EXPECT_EQ(cache.hits(), 2U);
    (void) cache.row(1);  // miss again
    EXPECT_EQ(cache.misses(), 4U);
}

TEST(KernelCache, RowValuesAreCorrect) {
    const data_set<double> data = make_planes(32, 4);
    const kernel_params<double> kp{ kernel_type::rbf, 3, 0.5, 0.0 };
    const smo::dense_kernel_source<double> source{ data.points(), kp };
    smo::kernel_cache<double> cache{ source, 1024 * 1024 };
    const auto &row = cache.row(5);
    for (std::size_t j = 0; j < data.num_data_points(); ++j) {
        const double expected = plssvm::kernels::apply(kp, data.points().row_data(5), data.points().row_data(j), 4);
        EXPECT_DOUBLE_EQ(row[j], expected);
    }
}

}  // namespace
