/**
 * @file
 * @brief Tests of the synthetic data generators (paper §IV-B substitutes).
 */

#include "plssvm/datagen/make_classification.hpp"
#include "plssvm/datagen/sat6.hpp"
#include "plssvm/exceptions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace {

using plssvm::datagen::classification_params;
using plssvm::datagen::make_classification;
using plssvm::datagen::make_sat6;
using plssvm::datagen::sat6_params;

TEST(MakeClassification, ShapeAndLabels) {
    classification_params params;
    params.num_points = 200;
    params.num_features = 16;
    const auto data = make_classification<double>(params);
    EXPECT_EQ(data.num_data_points(), 200U);
    EXPECT_EQ(data.num_features(), 16U);
    ASSERT_TRUE(data.has_labels());
    EXPECT_TRUE(data.is_binary());
    for (const double label : data.labels()) {
        EXPECT_TRUE(label == 1.0 || label == -1.0);
    }
}

TEST(MakeClassification, Deterministic) {
    classification_params params;
    params.num_points = 64;
    params.num_features = 8;
    params.seed = 123;
    const auto a = make_classification<double>(params);
    const auto b = make_classification<double>(params);
    EXPECT_EQ(a.points(), b.points());
    EXPECT_EQ(a.labels(), b.labels());
}

TEST(MakeClassification, DifferentSeedsDiffer) {
    classification_params params;
    params.num_points = 64;
    params.num_features = 8;
    params.seed = 1;
    const auto a = make_classification<double>(params);
    params.seed = 2;
    const auto b = make_classification<double>(params);
    EXPECT_NE(a.points(), b.points());
}

TEST(MakeClassification, ClassBalanceRespected) {
    classification_params params;
    params.num_points = 1000;
    params.num_features = 8;
    params.class_balance = 0.7;
    params.flip_y = 0.0;
    const auto data = make_classification<double>(params);
    const auto positives = std::count(data.labels().begin(), data.labels().end(), 1.0);
    EXPECT_NEAR(static_cast<double>(positives) / 1000.0, 0.7, 0.02);
}

TEST(MakeClassification, LabelNoiseFlipsRoughlyTheRequestedFraction) {
    classification_params base;
    base.num_points = 4000;
    base.num_features = 8;
    base.class_sep = 50.0;  // so separable that flips are the only "errors"
    base.flip_y = 0.0;
    base.seed = 9;
    const auto clean = make_classification<double>(base);
    base.flip_y = 0.05;
    const auto noisy = make_classification<double>(base);

    std::size_t flipped = 0;
    for (std::size_t i = 0; i < clean.labels().size(); ++i) {
        flipped += clean.labels()[i] != noisy.labels()[i];
    }
    EXPECT_NEAR(static_cast<double>(flipped) / 4000.0, 0.05, 0.015);
}

TEST(MakeClassification, LargerSeparationIsEasier) {
    classification_params params;
    params.num_points = 400;
    params.num_features = 8;
    params.flip_y = 0.0;
    params.hypercube = false;  // antipodal centroids: separation == class_sep * sqrt(k)

    // with tiny separation the class means almost coincide
    params.class_sep = 0.05;
    const auto hard = make_classification<double>(params);
    params.class_sep = 5.0;
    const auto easy = make_classification<double>(params);

    const auto mean_distance = [](const plssvm::data_set<double> &data) {
        std::vector<double> mean_pos(data.num_features(), 0.0);
        std::vector<double> mean_neg(data.num_features(), 0.0);
        std::size_t n_pos = 0;
        std::size_t n_neg = 0;
        for (std::size_t i = 0; i < data.num_data_points(); ++i) {
            const double *row = data.points().row_data(i);
            if (data.labels()[i] > 0) {
                ++n_pos;
                for (std::size_t f = 0; f < data.num_features(); ++f) {
                    mean_pos[f] += row[f];
                }
            } else {
                ++n_neg;
                for (std::size_t f = 0; f < data.num_features(); ++f) {
                    mean_neg[f] += row[f];
                }
            }
        }
        double distance = 0.0;
        for (std::size_t f = 0; f < data.num_features(); ++f) {
            const double diff = mean_pos[f] / static_cast<double>(n_pos) - mean_neg[f] / static_cast<double>(n_neg);
            distance += diff * diff;
        }
        return std::sqrt(distance);
    };
    EXPECT_GT(mean_distance(easy), 5.0 * mean_distance(hard));
}

TEST(MakeClassification, InvalidParamsThrow) {
    classification_params params;
    params.num_points = 1;
    EXPECT_THROW((void) make_classification<double>(params), plssvm::invalid_parameter_exception);
    params.num_points = 10;
    params.flip_y = 1.5;
    EXPECT_THROW((void) make_classification<double>(params), plssvm::invalid_parameter_exception);
    params.flip_y = 0.0;
    params.num_informative = 8;
    params.num_redundant = 8;
    params.num_features = 8;
    EXPECT_THROW((void) make_classification<double>(params), plssvm::invalid_parameter_exception);
}

// ---- SAT-6 ------------------------------------------------------------------

TEST(Sat6, ShapeMatchesPaperFormat) {
    sat6_params params;
    params.num_images = 64;
    const auto data = make_sat6<double>(params);
    EXPECT_EQ(data.num_data_points(), 64U);
    EXPECT_EQ(data.num_features(), 28U * 28U * 4U);  // 3136, paper §IV-B
}

TEST(Sat6, FeaturesInScaledRange) {
    sat6_params params;
    params.num_images = 32;
    const auto data = make_sat6<double>(params);
    for (const double v : data.points().data()) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Sat6, BinaryLabelImbalanceMatchesPaperRatio) {
    sat6_params params;
    params.num_images = 2000;
    const auto data = make_sat6<double>(params);
    const auto man_made = std::count(data.labels().begin(), data.labels().end(), -1.0);
    // paper: 193729 / 324000 ~ 0.598 man-made
    EXPECT_NEAR(static_cast<double>(man_made) / 2000.0, 0.598, 0.02);
}

TEST(Sat6, MulticlassLabelsCoverSixClasses) {
    sat6_params params;
    params.num_images = 600;
    params.binary_labels = false;
    const auto data = make_sat6<double>(params);
    const std::set<double> distinct(data.labels().begin(), data.labels().end());
    EXPECT_EQ(distinct.size(), 6U);
    for (const double label : distinct) {
        EXPECT_GE(label, 0.0);
        EXPECT_LE(label, 5.0);
    }
}

TEST(Sat6, Deterministic) {
    sat6_params params;
    params.num_images = 16;
    params.seed = 77;
    const auto a = make_sat6<double>(params);
    const auto b = make_sat6<double>(params);
    EXPECT_EQ(a.points(), b.points());
    EXPECT_EQ(a.labels(), b.labels());
}

TEST(Sat6, ClassNamesAndBinaryMapping) {
    using plssvm::datagen::sat6_class;
    EXPECT_EQ(plssvm::datagen::sat6_class_name(sat6_class::building), "building");
    EXPECT_EQ(plssvm::datagen::sat6_class_name(sat6_class::water), "water");
    EXPECT_DOUBLE_EQ(plssvm::datagen::sat6_binary_label(sat6_class::building), -1.0);
    EXPECT_DOUBLE_EQ(plssvm::datagen::sat6_binary_label(sat6_class::road), -1.0);
    EXPECT_DOUBLE_EQ(plssvm::datagen::sat6_binary_label(sat6_class::trees), 1.0);
    EXPECT_DOUBLE_EQ(plssvm::datagen::sat6_binary_label(sat6_class::grassland), 1.0);
}

TEST(Sat6, InvalidParamsThrow) {
    sat6_params params;
    params.num_images = 1;
    EXPECT_THROW((void) make_sat6<double>(params), plssvm::invalid_parameter_exception);
    params.num_images = 10;
    params.num_channels = 5;
    EXPECT_THROW((void) make_sat6<double>(params), plssvm::invalid_parameter_exception);
    params.num_channels = 4;
    params.man_made_fraction = 1.0;
    EXPECT_THROW((void) make_sat6<double>(params), plssvm::invalid_parameter_exception);
}

}  // namespace
