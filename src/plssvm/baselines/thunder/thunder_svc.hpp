/**
 * @file
 * @brief ThunderSVM-style baseline: batched SMO on a (simulated) GPU.
 *
 * ThunderSVM runs SMO on the GPU: per iteration it launches reduction
 * kernels for the working-pair selection, a tiny two-variable update kernel,
 * a gradient-update kernel, and batched kernel-row computations on cache
 * misses — the paper's Nsight profile shows ">1600 compute kernels, most
 * running significantly less than one millisecond" with the most intense
 * kernel at ~2.4 % of FP64 peak (§IV-C).
 *
 * This baseline reproduces that execution structure: it solves the same
 * C-SVC dual as the sequential SMO baseline (bit-identical alphas) while
 * issuing the corresponding per-step device launches on a simulated GPU
 * whose kernel efficiency is scaled to the paper's measured 2.4 %, so the
 * cost model reproduces the paper-shaped PLSSVM/ThunderSVM gap.
 *
 * Constructed without devices it runs as the ThunderSVM *CPU* mode used in
 * the paper's Fig. 1a/1b.
 */

#ifndef PLSSVM_BASELINES_THUNDER_THUNDER_SVC_HPP_
#define PLSSVM_BASELINES_THUNDER_THUNDER_SVC_HPP_

#include "plssvm/core/data_set.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/sim/device.hpp"
#include "plssvm/sim/device_spec.hpp"

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace plssvm::baseline::thunder {

struct thunder_options {
    /// Working set size (ThunderSVM default: 1024); only used to report the
    /// equivalent number of "outer" batches.
    std::size_t working_set_size{ 512 };
    /// Kernel row cache budget in bytes (host solver and device cache alike).
    std::size_t cache_bytes{ 512ull * 1024 * 1024 };
    /// Fraction of FP64 peak ThunderSVM's kernels achieve (paper: 2.4 %).
    double kernel_efficiency{ 0.024 };
};

template <typename T>
class thunder_svc {
  public:
    /**
     * @param params SVM hyper-parameters
     * @param spec simulated GPU to run on; `nullopt` selects CPU mode
     * @param options ThunderSVM-style solver tuning
     */
    explicit thunder_svc(parameter params,
                         std::optional<sim::device_spec> spec = sim::devices::nvidia_a100(),
                         thunder_options options = {});

    /// Train; @p epsilon is the KKT tolerance (like LIBSVM's `-e`).
    [[nodiscard]] model<T> fit(const data_set<T> &data, double epsilon = 1e-3);

    [[nodiscard]] std::vector<T> predict(const model<T> &trained, const data_set<T> &data) const;
    [[nodiscard]] T score(const model<T> &trained, const data_set<T> &data) const;

    [[nodiscard]] std::string_view name() const noexcept { return device_ ? "thundersvm-gpu" : "thundersvm-cpu"; }

    /// Simulated device seconds of the last fit (0 in CPU mode).
    [[nodiscard]] double last_sim_seconds() const noexcept { return last_sim_seconds_; }
    /// Outer/total SMO iterations of the last fit.
    [[nodiscard]] std::size_t last_outer_iterations() const noexcept { return last_outer_iterations_; }
    [[nodiscard]] std::size_t last_total_steps() const noexcept { return last_total_steps_; }
    /// Peak simulated device memory of the last fit (0 in CPU mode).
    [[nodiscard]] std::size_t peak_device_memory() const noexcept { return peak_device_memory_; }
    /// Device profiler of the last fit (nullptr in CPU mode).
    [[nodiscard]] const sim::profiler *last_profiler() const noexcept { return device_ ? &device_->prof() : nullptr; }

  private:
    parameter params_;
    std::optional<sim::device_spec> spec_;
    thunder_options options_;
    std::unique_ptr<sim::device> device_;
    double last_sim_seconds_{ 0.0 };
    std::size_t last_outer_iterations_{ 0 };
    std::size_t last_total_steps_{ 0 };
    std::size_t peak_device_memory_{ 0 };
};

}  // namespace plssvm::baseline::thunder

#endif  // PLSSVM_BASELINES_THUNDER_THUNDER_SVC_HPP_
