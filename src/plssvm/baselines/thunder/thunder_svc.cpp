#include "plssvm/baselines/thunder/thunder_svc.hpp"

#include "plssvm/baselines/smo/kernel_source.hpp"
#include "plssvm/baselines/smo/solver.hpp"
#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/predict.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/sim/cost_model.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

namespace plssvm::baseline::thunder {

template <typename T>
thunder_svc<T>::thunder_svc(parameter params, std::optional<sim::device_spec> spec, thunder_options options) :
    params_{ params },
    spec_{ std::move(spec) },
    options_{ options } {
    params_.validate();
}

template <typename T>
model<T> thunder_svc<T>::fit(const data_set<T> &data, const double epsilon) {
    if (!data.has_labels()) {
        throw invalid_data_exception{ "Training requires a labeled data set!" };
    }
    const std::vector<T> &y = data.binary_labels();
    const std::size_t m = data.num_data_points();
    const std::size_t dim = data.num_features();

    const kernel_params<T> kp{ params_.kernel, params_.degree,
                               static_cast<T>(params_.effective_gamma(dim)),
                               static_cast<T>(params_.coef0) };

    // --- device setup (GPU mode) -------------------------------------------
    // A device whose kernel efficiency is ThunderSVM's measured fraction of
    // peak (paper §IV-C: ~2.4 %); it holds the dense data plus a device-
    // resident kernel row cache — which is why ThunderSVM's memory footprint
    // exceeds the raw data size (§IV-G: 13.08 GiB vs PLSSVM's 8.15 GiB).
    std::unique_ptr<sim::device_buffer<T>> data_buffer;
    std::unique_ptr<sim::device_buffer<T>> cache_buffer;
    if (spec_.has_value()) {
        sim::device_spec spec = *spec_;
        spec.fp64_efficiency = options_.kernel_efficiency;
        device_ = std::make_unique<sim::device>(spec, sim::runtime_profile::for_device(sim::backend_runtime::cuda, spec));
        data_buffer = std::make_unique<sim::device_buffer<T>>(*device_, m * dim);
        data_buffer->copy_from_host(data.points().data().data(), m * dim);
        const std::size_t free_bytes = device_->spec().capacity_bytes() - device_->allocated_bytes();
        const std::size_t cache_rows = std::min(options_.cache_bytes / (m * sizeof(T)),
                                                free_bytes * 2 / 3 / (m * sizeof(T)));
        if (cache_rows > 0) {
            cache_buffer = std::make_unique<sim::device_buffer<T>>(*device_, cache_rows * m);
        }
    }

    // --- the solver: SMO with per-step device kernel launches --------------
    // ThunderSVM executes SMO on the GPU: per iteration two reduction kernels
    // (working pair selection), one tiny update kernel, one gradient-update
    // kernel, plus a batched kernel-row computation whenever a row misses the
    // device cache. This is exactly the ">1600 small kernels" profile the
    // paper extracts with Nsight Compute (§IV-C).
    std::unordered_set<std::size_t> device_cached_rows;
    const double epilogue = params_.kernel == kernel_type::linear ? 0.0 : 10.0;
    const auto launch_step_kernels = [&](const std::size_t i, const std::size_t j) {
        if (!device_) {
            return;
        }
        for (const std::size_t row : { i, j }) {
            if (!device_cached_rows.contains(row)) {
                device_cached_rows.insert(row);
                sim::kernel_cost row_cost;
                row_cost.flops = static_cast<double>(m) * (2.0 * static_cast<double>(dim) + epilogue);
                row_cost.global_bytes = (static_cast<double>(m) * static_cast<double>(dim)
                                         + 2.0 * static_cast<double>(m))
                                        * static_cast<double>(sizeof(T));
                device_->launch("compute_kernel_rows", row_cost, {});
            }
        }
        device_->launch("reduce_select_i", sim::vector_kernel_cost(m, sizeof(T)), {});
        device_->launch("reduce_select_j", sim::vector_kernel_cost(m, sizeof(T)), {});
        device_->launch("smo_step", sim::vector_kernel_cost(64, sizeof(T)), {});
        device_->launch("update_gradient", sim::vector_kernel_cost(2 * m, sizeof(T)), {});
    };

    const smo::dense_kernel_source<T> source{ data.points(), kp };
    smo::smo_options smo_opts;
    smo_opts.cost = params_.cost;
    smo_opts.epsilon = epsilon;
    smo_opts.cache_bytes = options_.cache_bytes;
    smo::smo_result<T> solved = smo::solve_c_svc(source, y, smo_opts, launch_step_kernels);

    last_total_steps_ = solved.iterations;
    // "outer" batches in the ThunderSVM sense: steps grouped by working set
    last_outer_iterations_ = (solved.iterations + options_.working_set_size - 1)
                             / std::max<std::size_t>(1, options_.working_set_size);

    if (device_) {
        last_sim_seconds_ = device_->clock_seconds();
        peak_device_memory_ = device_->peak_allocated_bytes();
    } else {
        last_sim_seconds_ = 0.0;
        peak_device_memory_ = 0;
    }

    // --- build the sparse-alpha model (LIBSVM-style sv_coef = y_i alpha_i) --
    std::vector<std::size_t> sv_indices;
    for (std::size_t i = 0; i < m; ++i) {
        if (solved.alpha[i] > T{ 0 }) {
            sv_indices.push_back(i);
        }
    }
    if (sv_indices.empty()) {
        sv_indices.push_back(0);
    }
    aos_matrix<T> support_vectors{ sv_indices.size(), dim };
    std::vector<T> coef(sv_indices.size());
    for (std::size_t s = 0; s < sv_indices.size(); ++s) {
        const std::size_t i = sv_indices[s];
        const T *src = data.points().row_data(i);
        std::copy(src, src + dim, support_vectors.row_data(s));
        coef[s] = y[i] * solved.alpha[i];
    }

    model<T> trained{ params_, std::move(support_vectors), std::move(coef), solved.rho,
                      data.distinct_labels()[0], data.distinct_labels()[1] };
    trained.set_num_iterations(last_total_steps_);
    return trained;
}

template <typename T>
std::vector<T> thunder_svc<T>::predict(const model<T> &trained, const data_set<T> &data) const {
    return predict_labels(trained, data.points());
}

template <typename T>
T thunder_svc<T>::score(const model<T> &trained, const data_set<T> &data) const {
    if (!data.has_labels()) {
        throw invalid_data_exception{ "Scoring requires a labeled data set!" };
    }
    return accuracy(trained, data.points(), data.labels());
}

template class thunder_svc<float>;
template class thunder_svc<double>;

}  // namespace plssvm::baseline::thunder
