/**
 * @file
 * @brief LIBSVM-style C-SVC front-end over the SMO solver.
 *
 * The `fit`/`predict`/`score` surface mirrors `plssvm::csvm` so the benches
 * can swap solvers freely. Two representations are provided because the
 * paper benchmarks both: `representation::sparse` corresponds to stock
 * LIBSVM, `representation::dense` to the dense LIBSVM variant
 * ("LIBSVM-DENSE" in Fig. 1).
 */

#ifndef PLSSVM_BASELINES_SMO_SVC_HPP_
#define PLSSVM_BASELINES_SMO_SVC_HPP_

#include "plssvm/baselines/smo/solver.hpp"
#include "plssvm/core/data_set.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/parameter.hpp"

#include <cstddef>
#include <string_view>
#include <vector>

namespace plssvm::baseline::smo {

/// Internal data representation used for kernel evaluations.
enum class representation {
    sparse,  ///< (index, value) rows, LIBSVM's native storage
    dense,   ///< contiguous rows (the "LIBSVM-DENSE" variant)
};

template <typename T>
class svc {
  public:
    /**
     * @param params SVM hyper-parameters (kernel, C, gamma, ...)
     * @param repr kernel evaluation representation
     * @param cache_bytes kernel cache size (LIBSVM default 100 MB)
     */
    explicit svc(parameter params,
                 representation repr = representation::sparse,
                 std::size_t cache_bytes = 100ull * 1024 * 1024);

    /**
     * @brief Train with SMO; @p epsilon is the KKT tolerance (LIBSVM `-e`).
     *
     * The returned model stores only the support vectors with non-zero dual
     * weight (unlike the LS-SVM, SMO solutions are sparse in alpha); the
     * stored coefficients are y_i * alpha_i, LIBSVM's `sv_coef`.
     */
    [[nodiscard]] model<T> fit(const data_set<T> &data, double epsilon = 1e-3);

    [[nodiscard]] std::vector<T> predict(const model<T> &trained, const data_set<T> &data) const;
    [[nodiscard]] T score(const model<T> &trained, const data_set<T> &data) const;

    [[nodiscard]] std::string_view name() const noexcept {
        return repr_ == representation::sparse ? "libsvm" : "libsvm-dense";
    }

    /// SMO iterations of the last fit.
    [[nodiscard]] std::size_t last_iterations() const noexcept { return last_iterations_; }

  private:
    parameter params_;
    representation repr_;
    std::size_t cache_bytes_;
    std::size_t last_iterations_{ 0 };
};

}  // namespace plssvm::baseline::smo

#endif  // PLSSVM_BASELINES_SMO_SVC_HPP_
