/**
 * @file
 * @brief LRU cache of kernel matrix rows (LIBSVM's `Cache` equivalent).
 *
 * SMO touches two kernel rows per iteration; re-evaluating a row costs
 * O(m * d). LIBSVM bounds the cache by bytes (default 100 MB); rows are
 * evicted least-recently-used.
 */

#ifndef PLSSVM_BASELINES_SMO_KERNEL_CACHE_HPP_
#define PLSSVM_BASELINES_SMO_KERNEL_CACHE_HPP_

#include "plssvm/baselines/smo/kernel_source.hpp"
#include "plssvm/detail/assert.hpp"

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

namespace plssvm::baseline::smo {

template <typename T>
class kernel_cache {
  public:
    /**
     * @param source the kernel row producer
     * @param cache_bytes maximum bytes of cached rows (>= one row is always kept)
     */
    kernel_cache(const kernel_source<T> &source, const std::size_t cache_bytes) :
        source_{ source },
        max_rows_{ std::max<std::size_t>(2, cache_bytes / (source.num_points() * sizeof(T))) } {}

    /// Kernel row i; computed on miss, LRU-refreshed on hit.
    [[nodiscard]] const std::vector<T> &row(const std::size_t i) {
        if (const auto it = index_.find(i); it != index_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);  // move to front
            return it->second->data;
        }
        ++misses_;
        if (lru_.size() >= max_rows_) {
            index_.erase(lru_.back().row_index);
            lru_.pop_back();
        }
        lru_.push_front(cache_entry{ i, std::vector<T>(source_.num_points()) });
        source_.compute_row(i, lru_.front().data.data());
        index_.emplace(i, lru_.begin());
        return lru_.front().data;
    }

    [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
    [[nodiscard]] std::size_t cached_rows() const noexcept { return lru_.size(); }
    [[nodiscard]] std::size_t capacity_rows() const noexcept { return max_rows_; }

  private:
    struct cache_entry {
        std::size_t row_index;
        std::vector<T> data;
    };

    const kernel_source<T> &source_;
    std::size_t max_rows_;
    std::list<cache_entry> lru_;
    std::unordered_map<std::size_t, typename std::list<cache_entry>::iterator> index_;
    std::size_t hits_{ 0 };
    std::size_t misses_{ 0 };
};

}  // namespace plssvm::baseline::smo

#endif  // PLSSVM_BASELINES_SMO_KERNEL_CACHE_HPP_
