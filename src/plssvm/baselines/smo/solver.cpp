#include "plssvm/baselines/smo/solver.hpp"

#include "plssvm/detail/assert.hpp"
#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

namespace plssvm::baseline::smo {

namespace {

/// Numerical floor for the curvature a = K_ii + K_jj - 2 K_ij (LIBSVM's TAU).
constexpr double tau = 1e-12;

}  // namespace

template <typename T>
smo_result<T> solve_c_svc(const kernel_source<T> &source,
                          const std::vector<T> &y,
                          const smo_options &options,
                          const std::function<void(std::size_t, std::size_t)> &step_hook) {
    const std::size_t m = source.num_points();
    PLSSVM_ASSERT(y.size() == m, "Label count does not match the kernel source!");
    if (options.cost <= 0.0) {
        throw invalid_parameter_exception{ "SMO requires a positive C!" };
    }

    const T C = static_cast<T>(options.cost);
    const T eps = static_cast<T>(options.epsilon);
    const std::size_t max_iterations =
        options.max_iterations != 0 ? options.max_iterations : std::max<std::size_t>(10'000'000, 100 * m);

    kernel_cache<T> cache{ source, options.cache_bytes };

    // diagonal K_ii (= QD in LIBSVM, since y_i^2 = 1)
    std::vector<T> diag(m);
    for (std::size_t i = 0; i < m; ++i) {
        diag[i] = source.diagonal(i);
    }

    std::vector<T> alpha(m, T{ 0 });
    // gradient of the dual objective; alpha = 0 => G_i = -1
    std::vector<T> G(m, T{ -1 });

    const auto is_upper_bound = [&](const std::size_t t) { return alpha[t] >= C; };
    const auto is_lower_bound = [&](const std::size_t t) { return alpha[t] <= T{ 0 }; };

    smo_result<T> result;
    std::size_t iteration = 0;

    while (iteration < max_iterations) {
        // --- working set selection (second order, Fan et al. / LIBSVM) ---
        T Gmax = -std::numeric_limits<T>::infinity();   // max over I_up of -y_t G_t
        T Gmax2 = -std::numeric_limits<T>::infinity();  // max over I_low of +y_t G_t
        std::size_t i = m;                               // first index (I_up violator)

        for (std::size_t t = 0; t < m; ++t) {
            if (y[t] > T{ 0 } ? !is_upper_bound(t) : !is_lower_bound(t)) {  // t in I_up
                if (-y[t] * G[t] >= Gmax) {
                    Gmax = -y[t] * G[t];
                    i = t;
                }
            }
        }

        std::size_t j = m;  // second index (maximal second-order gain)
        T obj_min = std::numeric_limits<T>::infinity();
        const std::vector<T> *row_i = nullptr;
        if (i < m) {
            row_i = &cache.row(i);
        }

        for (std::size_t t = 0; t < m; ++t) {
            if (y[t] > T{ 0 } ? !is_lower_bound(t) : !is_upper_bound(t)) {  // t in I_low
                Gmax2 = std::max(Gmax2, y[t] * G[t]);
                const T grad_diff = Gmax + y[t] * G[t];
                if (grad_diff > T{ 0 } && row_i != nullptr) {
                    // curvature along the (i, t) direction
                    T a = diag[i] + diag[t] - T{ 2 } * y[i] * y[t] * (*row_i)[t];
                    if (a <= T{ 0 }) {
                        a = static_cast<T>(tau);
                    }
                    const T obj = -(grad_diff * grad_diff) / a;
                    if (obj <= obj_min) {
                        obj_min = obj;
                        j = t;
                    }
                }
            }
        }

        if (Gmax + Gmax2 < eps || j == m) {
            result.converged = Gmax + Gmax2 < eps;
            break;
        }

        // --- two-variable analytic update (LIBSVM Solver::Solve inner step) ---
        const std::vector<T> &Ki = *row_i;
        const std::vector<T> &Kj = cache.row(j);

        const T old_alpha_i = alpha[i];
        const T old_alpha_j = alpha[j];

        if (y[i] != y[j]) {
            // LIBSVM's QD[i]+QD[j]+2*Q_i[j] with Q_ij = y_i y_j K_ij = -K_ij here
            T quad_coef = diag[i] + diag[j] - T{ 2 } * Ki[j];
            if (quad_coef <= T{ 0 }) {
                quad_coef = static_cast<T>(tau);
            }
            const T delta = (-G[i] - G[j]) / quad_coef;
            const T diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if (diff > T{ 0 }) {
                if (alpha[j] < T{ 0 }) {
                    alpha[j] = T{ 0 };
                    alpha[i] = diff;
                }
                if (alpha[i] > C) {
                    alpha[i] = C;
                    alpha[j] = C - diff;
                }
            } else {
                if (alpha[i] < T{ 0 }) {
                    alpha[i] = T{ 0 };
                    alpha[j] = -diff;
                }
                if (alpha[j] > C) {
                    alpha[j] = C;
                    alpha[i] = C + diff;
                }
            }
        } else {
            T quad_coef = diag[i] + diag[j] - T{ 2 } * Ki[j];
            if (quad_coef <= T{ 0 }) {
                quad_coef = static_cast<T>(tau);
            }
            const T delta = (G[i] - G[j]) / quad_coef;
            const T sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if (sum > C) {
                if (alpha[i] > C) {
                    alpha[i] = C;
                    alpha[j] = sum - C;
                }
                if (alpha[j] > C) {
                    alpha[j] = C;
                    alpha[i] = sum - C;
                }
            } else {
                if (alpha[j] < T{ 0 }) {
                    alpha[j] = T{ 0 };
                    alpha[i] = sum;
                }
                if (alpha[i] < T{ 0 }) {
                    alpha[i] = T{ 0 };
                    alpha[j] = sum;
                }
            }
        }

        // --- gradient update: G_t += Q_ti d_alpha_i + Q_tj d_alpha_j ---
        const T delta_alpha_i = alpha[i] - old_alpha_i;
        const T delta_alpha_j = alpha[j] - old_alpha_j;
        const T yi_dai = y[i] * delta_alpha_i;
        const T yj_daj = y[j] * delta_alpha_j;
        #pragma omp parallel for simd schedule(static)
        for (std::size_t t = 0; t < m; ++t) {
            G[t] += y[t] * (Ki[t] * yi_dai + Kj[t] * yj_daj);
        }

        ++iteration;
        if (step_hook) {
            step_hook(i, j);
        }
    }

    // --- rho (LIBSVM Solver::calculate_rho) ---
    T upper = std::numeric_limits<T>::infinity();
    T lower = -std::numeric_limits<T>::infinity();
    T sum_free{ 0 };
    std::size_t num_free = 0;
    for (std::size_t t = 0; t < m; ++t) {
        const T yG = y[t] * G[t];
        if (is_upper_bound(t)) {
            if (y[t] < T{ 0 }) {
                upper = std::min(upper, yG);
            } else {
                lower = std::max(lower, yG);
            }
        } else if (is_lower_bound(t)) {
            if (y[t] > T{ 0 }) {
                upper = std::min(upper, yG);
            } else {
                lower = std::max(lower, yG);
            }
        } else {
            ++num_free;
            sum_free += yG;
        }
    }
    result.rho = num_free > 0 ? sum_free / static_cast<T>(num_free) : (upper + lower) / T{ 2 };

    // dual objective 0.5 a^T Q a - e^T a = 0.5 sum_i a_i (G_i - 1)
    T objective{ 0 };
    for (std::size_t t = 0; t < m; ++t) {
        objective += alpha[t] * (G[t] - T{ 1 });
    }
    result.objective = objective / T{ 2 };

    result.alpha = std::move(alpha);
    result.iterations = iteration;
    return result;
}

template smo_result<float> solve_c_svc<float>(const kernel_source<float> &, const std::vector<float> &, const smo_options &, const std::function<void(std::size_t, std::size_t)> &);
template smo_result<double> solve_c_svc<double>(const kernel_source<double> &, const std::vector<double> &, const smo_options &, const std::function<void(std::size_t, std::size_t)> &);

}  // namespace plssvm::baseline::smo
