#include "plssvm/baselines/smo/svc.hpp"

#include "plssvm/core/predict.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/exceptions.hpp"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace plssvm::baseline::smo {

template <typename T>
svc<T>::svc(parameter params, const representation repr, const std::size_t cache_bytes) :
    params_{ params },
    repr_{ repr },
    cache_bytes_{ cache_bytes } {
    params_.validate();
}

template <typename T>
model<T> svc<T>::fit(const data_set<T> &data, const double epsilon) {
    if (!data.has_labels()) {
        throw invalid_data_exception{ "Training requires a labeled data set!" };
    }
    const std::vector<T> &y = data.binary_labels();

    const kernel_params<T> kp{ params_.kernel, params_.degree,
                               static_cast<T>(params_.effective_gamma(data.num_features())),
                               static_cast<T>(params_.coef0) };

    smo_options options;
    options.cost = params_.cost;
    options.epsilon = epsilon;
    options.cache_bytes = cache_bytes_;

    smo_result<T> solved;
    csr_matrix<T> csr;  // must outlive the sparse source
    if (repr_ == representation::dense) {
        const dense_kernel_source<T> source{ data.points(), kp };
        solved = solve_c_svc(source, y, options);
    } else {
        csr = csr_matrix<T>{ data.points() };
        const sparse_kernel_source<T> source{ csr, kp };
        solved = solve_c_svc(source, y, options);
    }
    last_iterations_ = solved.iterations;

    // keep only the support vectors (alpha > 0); coefficient = y_i * alpha_i
    std::vector<std::size_t> sv_indices;
    for (std::size_t i = 0; i < solved.alpha.size(); ++i) {
        if (solved.alpha[i] > T{ 0 }) {
            sv_indices.push_back(i);
        }
    }
    if (sv_indices.empty()) {
        // degenerate problem (e.g. all labels equal after flips); keep one
        // vector so the model stays well-formed
        sv_indices.push_back(0);
    }

    aos_matrix<T> support_vectors{ sv_indices.size(), data.num_features() };
    std::vector<T> coef(sv_indices.size());
    for (std::size_t s = 0; s < sv_indices.size(); ++s) {
        const std::size_t i = sv_indices[s];
        const T *src = data.points().row_data(i);
        std::copy(src, src + data.num_features(), support_vectors.row_data(s));
        coef[s] = y[i] * solved.alpha[i];
    }

    model<T> trained{ params_, std::move(support_vectors), std::move(coef), solved.rho,
                      data.distinct_labels()[0], data.distinct_labels()[1] };
    trained.set_num_iterations(solved.iterations);
    return trained;
}

template <typename T>
std::vector<T> svc<T>::predict(const model<T> &trained, const data_set<T> &data) const {
    return predict_labels(trained, data.points());
}

template <typename T>
T svc<T>::score(const model<T> &trained, const data_set<T> &data) const {
    if (!data.has_labels()) {
        throw invalid_data_exception{ "Scoring requires a labeled data set!" };
    }
    return accuracy(trained, data.points(), data.labels());
}

template class svc<float>;
template class svc<double>;

}  // namespace plssvm::baseline::smo
