/**
 * @file
 * @brief Kernel-row evaluation for the SMO baselines: dense and sparse paths.
 *
 * LIBSVM evaluates kernel entries over its sparse (index, value) row storage;
 * the LIBSVM-DENSE variant the paper also benchmarks uses contiguous dense
 * rows. Both are provided behind one interface so the SMO solver and the
 * kernel cache are representation-agnostic.
 */

#ifndef PLSSVM_BASELINES_SMO_KERNEL_SOURCE_HPP_
#define PLSSVM_BASELINES_SMO_KERNEL_SOURCE_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/core/sparse_matrix.hpp"

#include <cstddef>
#include <vector>

namespace plssvm::baseline::smo {

/// Abstract producer of kernel matrix rows K_i = (k(x_i, x_0) ... k(x_i, x_{m-1})).
template <typename T>
class kernel_source {
  public:
    kernel_source() = default;
    kernel_source(const kernel_source &) = delete;
    kernel_source &operator=(const kernel_source &) = delete;
    virtual ~kernel_source() = default;

    [[nodiscard]] virtual std::size_t num_points() const noexcept = 0;

    /// Fill @p row (size num_points()) with k(x_i, x_j) for all j.
    virtual void compute_row(std::size_t i, T *row) const = 0;

    /// k(x_i, x_i) — needed for the second-order working-set selection.
    [[nodiscard]] virtual T diagonal(std::size_t i) const = 0;
};

/// Dense rows (LIBSVM-DENSE).
template <typename T>
class dense_kernel_source final : public kernel_source<T> {
  public:
    dense_kernel_source(const aos_matrix<T> &points, const kernel_params<T> &kp) :
        points_{ points },
        kp_{ kp } {}

    [[nodiscard]] std::size_t num_points() const noexcept override { return points_.num_rows(); }

    void compute_row(const std::size_t i, T *row) const override {
        const std::size_t m = points_.num_rows();
        const std::size_t dim = points_.num_cols();
        const T *xi = points_.row_data(i);
        #pragma omp parallel for schedule(static)
        for (std::size_t j = 0; j < m; ++j) {
            row[j] = kernels::apply(kp_, xi, points_.row_data(j), dim);
        }
    }

    [[nodiscard]] T diagonal(const std::size_t i) const override {
        return kernels::apply(kp_, points_.row_data(i), points_.row_data(i), points_.num_cols());
    }

  private:
    const aos_matrix<T> &points_;
    kernel_params<T> kp_;
};

/// Sparse (index, value) rows (LIBSVM's native representation).
template <typename T>
class sparse_kernel_source final : public kernel_source<T> {
  public:
    sparse_kernel_source(const csr_matrix<T> &points, const kernel_params<T> &kp) :
        points_{ points },
        kp_{ kp } {}

    [[nodiscard]] std::size_t num_points() const noexcept override { return points_.num_rows(); }

    void compute_row(const std::size_t i, T *row) const override {
        const std::size_t m = points_.num_rows();
        const bool inner = kernels::uses_inner_product_core(kp_.kernel);
        #pragma omp parallel for schedule(static)
        for (std::size_t j = 0; j < m; ++j) {
            const T core = inner ? points_.dot(i, j) : points_.squared_distance(i, j);
            row[j] = kernels::finish(kp_, core);
        }
    }

    [[nodiscard]] T diagonal(const std::size_t i) const override {
        const T core = kernels::uses_inner_product_core(kp_.kernel) ? points_.dot(i, i) : T{ 0 };
        return kernels::finish(kp_, core);
    }

  private:
    const csr_matrix<T> &points_;
    kernel_params<T> kp_;
};

}  // namespace plssvm::baseline::smo

#endif  // PLSSVM_BASELINES_SMO_KERNEL_SOURCE_HPP_
