/**
 * @file
 * @brief Sequential Minimal Optimization solver for the C-SVC dual problem —
 *        the LIBSVM-style baseline the paper compares against (§I, §IV).
 *
 * Solves   min_a 0.5 a^T Q a - e^T a   s.t. 0 <= a_i <= C, y^T a = 0,
 * with Q_ij = y_i y_j k(x_i, x_j), using the second-order working-set
 * selection of Fan et al. (the algorithm behind LIBSVM) and an LRU kernel
 * cache. The inherently sequential two-variable update loop is exactly the
 * parallelization bottleneck the paper's §II-G discusses.
 *
 * Deviation from LIBSVM: shrinking is not implemented (the active set is
 * always the full set). This changes constants, not the asymptotic runtime
 * shape the benchmarks compare.
 */

#ifndef PLSSVM_BASELINES_SMO_SOLVER_HPP_
#define PLSSVM_BASELINES_SMO_SOLVER_HPP_

#include "plssvm/baselines/smo/kernel_cache.hpp"
#include "plssvm/baselines/smo/kernel_source.hpp"

#include <cstddef>
#include <functional>
#include <vector>

namespace plssvm::baseline::smo {

struct smo_options {
    double cost{ 1.0 };  ///< the C regularisation parameter
    /// KKT violation tolerance (LIBSVM's `-e`, default 1e-3).
    double epsilon{ 1e-3 };
    /// Iteration budget; 0 means LIBSVM's max(10^7, 100 * m).
    std::size_t max_iterations{ 0 };
    /// Kernel cache size in bytes (LIBSVM default: 100 MB).
    std::size_t cache_bytes{ 100ull * 1024 * 1024 };
};

template <typename T>
struct smo_result {
    std::vector<T> alpha;  ///< dual variables in [0, C]
    T rho{ 0 };            ///< decision offset: f(x) = sum y_i a_i k(x_i, x) - rho
    std::size_t iterations{ 0 };
    bool converged{ false };
    T objective{ 0 };  ///< final dual objective value
};

/**
 * @brief Run SMO until the maximal KKT violation drops below epsilon.
 * @param source kernel row producer (dense or sparse)
 * @param y the +-1 labels
 * @param options solver controls
 * @param step_hook optional callback invoked once per SMO iteration with the
 *        selected pair (used by instrumented baselines/tests)
 */
template <typename T>
[[nodiscard]] smo_result<T> solve_c_svc(const kernel_source<T> &source,
                                        const std::vector<T> &y,
                                        const smo_options &options,
                                        const std::function<void(std::size_t, std::size_t)> &step_hook = {});

}  // namespace plssvm::baseline::smo

#endif  // PLSSVM_BASELINES_SMO_SOLVER_HPP_
