/**
 * @file
 * @brief Exception hierarchy of the PLSSVM library.
 *
 * All exceptions thrown by the library derive from `plssvm::exception`, so a
 * downstream user can catch everything library-related with a single handler
 * while still being able to distinguish error classes.
 */

#ifndef PLSSVM_EXCEPTIONS_HPP_
#define PLSSVM_EXCEPTIONS_HPP_

#include <stdexcept>
#include <string>

namespace plssvm {

/// Base class for all exceptions thrown by the PLSSVM library.
class exception : public std::runtime_error {
  public:
    explicit exception(const std::string &msg) :
        std::runtime_error{ msg } {}
};

/// Thrown when a data or model file cannot be opened, read, or written.
class file_not_found_exception : public exception {
  public:
    using exception::exception;
};

/// Thrown when a data file (LIBSVM/ARFF) or model file is malformed.
class invalid_file_format_exception : public exception {
  public:
    using exception::exception;
};

/// Thrown when an SVM parameter is outside its valid domain (e.g. C <= 0).
class invalid_parameter_exception : public exception {
  public:
    using exception::exception;
};

/// Thrown when a requested backend is unknown or unavailable at runtime.
class unsupported_backend_exception : public exception {
  public:
    using exception::exception;
};

/// Thrown when a kernel function does not support the requested operation
/// (e.g. multi-device execution for the polynomial kernel).
class unsupported_kernel_exception : public exception {
  public:
    using exception::exception;
};

/// Thrown when a data set is structurally unusable (empty, inconsistent
/// dimensions, labels not forming a binary problem, ...).
class invalid_data_exception : public exception {
  public:
    using exception::exception;
};

/// Thrown by the simulated device layer on out-of-bounds accesses,
/// double-frees, or exceeding device memory.
class device_exception : public exception {
  public:
    using exception::exception;
};

/// Thrown when an iterative solver fails to converge within its iteration budget
/// *and* the caller requested strict convergence.
class solver_exception : public exception {
  public:
    using exception::exception;
};

}  // namespace plssvm

#endif  // PLSSVM_EXCEPTIONS_HPP_
