/**
 * @file
 * @brief LIBSVM model file reader/writer (free functions used by `plssvm::model`).
 *
 * Written files follow the LIBSVM `svm_model` layout: a key/value header
 * (`svm_type`, `kernel_type`, `nr_class`, `total_sv`, `rho`, `label`,
 * `nr_sv`), the literal line `SV`, then one `coef index:value ...` line per
 * support vector with the vectors grouped by class like LIBSVM emits them.
 */

#ifndef PLSSVM_IO_MODEL_IO_HPP_
#define PLSSVM_IO_MODEL_IO_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/parameter.hpp"

#include <string>
#include <vector>

namespace plssvm::io {

/// In-memory representation of a LIBSVM model file.
template <typename T>
struct model_file {
    parameter params;
    aos_matrix<T> support_vectors;
    std::vector<T> alpha;
    T rho{ 0 };
    T positive_label{ 1 };
    T negative_label{ -1 };
};

/// @throws plssvm::file_not_found_exception, plssvm::invalid_file_format_exception
template <typename T>
[[nodiscard]] model_file<T> read_model_file(const std::string &filename);

template <typename T>
void write_model_file(const std::string &filename, const model_file<T> &model);

}  // namespace plssvm::io

#endif  // PLSSVM_IO_MODEL_IO_HPP_
