#include "plssvm/io/libsvm.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace plssvm::io {

namespace {

/// One parsed sparse entry.
template <typename T>
struct sparse_entry {
    std::size_t index;  ///< zero-based feature index
    T value;
};

/// Parsed representation of a single line before densification.
template <typename T>
struct sparse_line {
    std::optional<T> label;
    std::vector<sparse_entry<T>> entries;
};

template <typename T>
[[nodiscard]] sparse_line<T> parse_line(const std::string_view line, const std::size_t line_number) {
    sparse_line<T> result;
    const std::vector<std::string_view> tokens = detail::split(line, ' ');
    std::size_t first_feature_token = 0;

    // A token without ':' in front position is the label.
    if (!tokens.empty() && tokens.front().find(':') == std::string_view::npos) {
        T label{};
        if (!detail::convert_to_safe(tokens.front(), label)) {
            throw invalid_file_format_exception{ "Line " + std::to_string(line_number) + ": invalid label '" + std::string{ tokens.front() } + "'!" };
        }
        result.label = label;
        first_feature_token = 1;
    }

    long previous_index = 0;
    for (std::size_t t = first_feature_token; t < tokens.size(); ++t) {
        const std::string_view token = tokens[t];
        const std::size_t colon = token.find(':');
        if (colon == std::string_view::npos) {
            throw invalid_file_format_exception{ "Line " + std::to_string(line_number) + ": expected 'index:value', got '" + std::string{ token } + "'!" };
        }
        long index{};
        if (!detail::convert_to_safe(token.substr(0, colon), index) || index <= 0) {
            throw invalid_file_format_exception{ "Line " + std::to_string(line_number) + ": feature indices must be positive integers, got '" + std::string{ token.substr(0, colon) } + "'!" };
        }
        if (index <= previous_index) {
            throw invalid_file_format_exception{ "Line " + std::to_string(line_number) + ": feature indices must be strictly ascending!" };
        }
        previous_index = index;
        T value{};
        if (!detail::convert_to_safe(token.substr(colon + 1), value)) {
            throw invalid_file_format_exception{ "Line " + std::to_string(line_number) + ": invalid feature value '" + std::string{ token.substr(colon + 1) } + "'!" };
        }
        result.entries.push_back(sparse_entry<T>{ static_cast<std::size_t>(index - 1), value });
    }
    return result;
}

}  // namespace

template <typename T>
libsvm_parse_result<T> parse_libsvm(const file_reader &reader, const std::size_t min_num_features) {
    if (reader.num_lines() == 0) {
        throw invalid_data_exception{ "The LIBSVM file contains no data points!" };
    }

    std::vector<sparse_line<T>> parsed;
    parsed.reserve(reader.num_lines());
    std::size_t max_index = min_num_features;  // number of features = max 1-based index
    std::size_t num_labeled = 0;

    for (std::size_t i = 0; i < reader.num_lines(); ++i) {
        sparse_line<T> line = parse_line<T>(reader.line(i), i + 1);
        if (!line.entries.empty()) {
            max_index = std::max(max_index, line.entries.back().index + 1);
        }
        if (line.label.has_value()) {
            ++num_labeled;
        }
        parsed.push_back(std::move(line));
    }

    if (num_labeled != 0 && num_labeled != parsed.size()) {
        throw invalid_file_format_exception{ "Inconsistent file: some lines have labels, some don't!" };
    }
    if (max_index == 0) {
        throw invalid_data_exception{ "The LIBSVM file contains no features!" };
    }

    libsvm_parse_result<T> result;
    result.has_labels = num_labeled > 0;
    result.points = aos_matrix<T>{ parsed.size(), max_index };
    if (result.has_labels) {
        result.labels.reserve(parsed.size());
    }

    for (std::size_t row = 0; row < parsed.size(); ++row) {
        T *dst = result.points.row_data(row);
        for (const sparse_entry<T> &entry : parsed[row].entries) {
            dst[entry.index] = entry.value;
        }
        if (result.has_labels) {
            result.labels.push_back(*parsed[row].label);
        }
    }
    return result;
}

template <typename T>
libsvm_parse_result<T> parse_libsvm_file(const std::string &filename, const std::size_t min_num_features) {
    const file_reader reader{ filename };
    return parse_libsvm<T>(reader, min_num_features);
}

namespace {

template <typename T>
void write_libsvm_stream(std::ostream &out, const aos_matrix<T> &points, const std::vector<T> *labels, const bool sparse) {
    if (labels != nullptr && !labels->empty() && labels->size() != points.num_rows()) {
        throw invalid_data_exception{ "Number of labels does not match the number of data points!" };
    }
    out.precision(17);  // round-trip safe for double
    for (std::size_t row = 0; row < points.num_rows(); ++row) {
        if (labels != nullptr && !labels->empty()) {
            out << (*labels)[row] << ' ';
        }
        const T *src = points.row_data(row);
        for (std::size_t col = 0; col < points.num_cols(); ++col) {
            if (!sparse || src[col] != T{ 0 }) {
                out << (col + 1) << ':' << src[col] << ' ';
            }
        }
        out << '\n';
    }
}

}  // namespace

template <typename T>
void write_libsvm_file(const std::string &filename, const aos_matrix<T> &points, const std::vector<T> *labels, const bool sparse) {
    std::ofstream out{ filename };
    if (!out) {
        throw file_not_found_exception{ "Can't open file '" + filename + "' for writing!" };
    }
    write_libsvm_stream(out, points, labels, sparse);
}

template <typename T>
std::string write_libsvm_string(const aos_matrix<T> &points, const std::vector<T> *labels, const bool sparse) {
    std::ostringstream out;
    write_libsvm_stream(out, points, labels, sparse);
    return std::move(out).str();
}

template struct libsvm_parse_result<float>;
template struct libsvm_parse_result<double>;

template libsvm_parse_result<float> parse_libsvm<float>(const file_reader &, std::size_t);
template libsvm_parse_result<double> parse_libsvm<double>(const file_reader &, std::size_t);
template libsvm_parse_result<float> parse_libsvm_file<float>(const std::string &, std::size_t);
template libsvm_parse_result<double> parse_libsvm_file<double>(const std::string &, std::size_t);
template void write_libsvm_file<float>(const std::string &, const aos_matrix<float> &, const std::vector<float> *, bool);
template void write_libsvm_file<double>(const std::string &, const aos_matrix<double> &, const std::vector<double> *, bool);
template std::string write_libsvm_string<float>(const aos_matrix<float> &, const std::vector<float> *, bool);
template std::string write_libsvm_string<double>(const aos_matrix<double> &, const std::vector<double> *, bool);

}  // namespace plssvm::io
