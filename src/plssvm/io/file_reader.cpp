#include "plssvm/io/file_reader.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"

#include <fstream>
#include <sstream>
#include <utility>

namespace plssvm::io {

file_reader::file_reader(const std::string &filename, const char comment) {
    std::ifstream file{ filename, std::ios::binary };
    if (!file) {
        throw file_not_found_exception{ "Can't open file '" + filename + "'!" };
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    buffer_ = std::move(contents).str();
    split_into_lines(comment);
}

file_reader file_reader::from_string(std::string contents, const char comment) {
    file_reader reader;
    reader.buffer_ = std::move(contents);
    reader.split_into_lines(comment);
    return reader;
}

void file_reader::split_into_lines(const char comment) {
    const std::string_view view{ buffer_ };
    std::size_t start = 0;
    while (start < view.size()) {
        std::size_t end = view.find('\n', start);
        if (end == std::string_view::npos) {
            end = view.size();
        }
        const std::string_view line = detail::trim(view.substr(start, end - start));
        if (!line.empty() && line.front() != comment) {
            lines_.push_back(line);
        }
        start = end + 1;
    }
}

}  // namespace plssvm::io
