/**
 * @file
 * @brief Per-feature linear scaling, equivalent to LIBSVM's `svm-scale`.
 *
 * The paper scales all SAT-6 features to [-1, 1] with `svm-scale` before
 * training (§IV-B). Scaling factors are learned on the training set and must
 * be re-applied unchanged to test data, so they can be saved to and restored
 * from a file in the `svm-scale -s/-r` format.
 */

#ifndef PLSSVM_IO_SCALING_HPP_
#define PLSSVM_IO_SCALING_HPP_

#include "plssvm/core/matrix.hpp"

#include <string>
#include <vector>

namespace plssvm::io {

/// Scaling interval and learned per-feature extrema.
template <typename T>
class scaling {
  public:
    /// One feature's observed range in the training data.
    struct factor {
        T min{ 0 };
        T max{ 0 };
    };

    /// Create an empty scaling targeting [lo, hi] (defaults to [-1, 1]).
    explicit scaling(T lo = T{ -1 }, T hi = T{ 1 });

    /// Learn per-feature minima/maxima from @p points.
    void fit(const aos_matrix<T> &points);

    /**
     * @brief Scale @p points in place. Constant features (min == max) map to
     *        the interval midpoint, matching svm-scale behaviour.
     * @throws plssvm::invalid_data_exception if the feature count differs from fit()
     */
    void transform(aos_matrix<T> &points) const;

    /// fit() followed by transform().
    void fit_transform(aos_matrix<T> &points);

    /// Save in the `svm-scale -s` file format (`x\n lo hi\n idx min max...`).
    void save(const std::string &filename) const;

    /// Restore factors previously written by save() (`svm-scale -r` semantics).
    [[nodiscard]] static scaling load(const std::string &filename);

    [[nodiscard]] T lower() const noexcept { return lo_; }
    [[nodiscard]] T upper() const noexcept { return hi_; }
    [[nodiscard]] const std::vector<factor> &factors() const noexcept { return factors_; }
    [[nodiscard]] bool fitted() const noexcept { return !factors_.empty(); }

  private:
    T lo_;
    T hi_;
    std::vector<factor> factors_;
};

}  // namespace plssvm::io

#endif  // PLSSVM_IO_SCALING_HPP_
