/**
 * @file
 * @brief ARFF data file parser (the second input format PLSSVM supports).
 *
 * Supported subset: `@relation`, numeric `@attribute` declarations, an
 * optional nominal class attribute (which must be the last attribute), and
 * dense `@data` rows. Sparse ARFF rows (`{index value, ...}`) are also
 * accepted and densified, matching the library's dense-internal policy.
 */

#ifndef PLSSVM_IO_ARFF_HPP_
#define PLSSVM_IO_ARFF_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/io/file_reader.hpp"

#include <string>
#include <vector>

namespace plssvm::io {

template <typename T>
struct arff_parse_result {
    aos_matrix<T> points;
    std::vector<T> labels;  ///< numeric labels; empty if no class attribute
    bool has_labels{ false };
    std::string relation_name;
};

/**
 * @brief Parse ARFF content from @p reader.
 * @throws plssvm::invalid_file_format_exception on header/data inconsistencies
 * @throws plssvm::invalid_data_exception if no data rows are present
 */
template <typename T>
[[nodiscard]] arff_parse_result<T> parse_arff(const file_reader &reader);

/// Convenience overload opening @p filename first.
template <typename T>
[[nodiscard]] arff_parse_result<T> parse_arff_file(const std::string &filename);

/// Write an ARFF file with numeric attributes and a trailing class attribute.
template <typename T>
void write_arff_file(const std::string &filename,
                     const aos_matrix<T> &points,
                     const std::vector<T> *labels,
                     const std::string &relation_name = "plssvm_data");

}  // namespace plssvm::io

#endif  // PLSSVM_IO_ARFF_HPP_
