/**
 * @file
 * @brief Whole-file reader that exposes the contents as trimmed line views.
 *
 * Reading the training file is the "read" component of the paper's pipeline
 * (Fig. 2). The file is slurped in one I/O operation and split into
 * `std::string_view` lines without copying, so parsing cost stays linear in
 * file size.
 */

#ifndef PLSSVM_IO_FILE_READER_HPP_
#define PLSSVM_IO_FILE_READER_HPP_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace plssvm::io {

class file_reader {
  public:
    /**
     * @brief Read the whole file at @p filename into memory and split it into
     *        lines. Lines that are empty (after trimming) or start with
     *        @p comment are skipped.
     * @throws plssvm::file_not_found_exception if the file cannot be opened.
     */
    explicit file_reader(const std::string &filename, char comment = '#');

    /// Construct from an in-memory buffer (used by tests and generators).
    static file_reader from_string(std::string contents, char comment = '#');

    [[nodiscard]] std::size_t num_lines() const noexcept { return lines_.size(); }
    [[nodiscard]] std::string_view line(const std::size_t i) const { return lines_.at(i); }
    [[nodiscard]] const std::vector<std::string_view> &lines() const noexcept { return lines_; }

  private:
    file_reader() = default;
    void split_into_lines(char comment);

    std::string buffer_;
    std::vector<std::string_view> lines_;
};

}  // namespace plssvm::io

#endif  // PLSSVM_IO_FILE_READER_HPP_
