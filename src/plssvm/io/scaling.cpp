#include "plssvm/io/scaling.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/io/file_reader.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <string>
#include <tuple>

namespace plssvm::io {

template <typename T>
scaling<T>::scaling(const T lo, const T hi) :
    lo_{ lo },
    hi_{ hi } {
    if (lo >= hi) {
        throw invalid_parameter_exception{ "Scaling interval requires lower < upper!" };
    }
}

template <typename T>
void scaling<T>::fit(const aos_matrix<T> &points) {
    factors_.assign(points.num_cols(), factor{ std::numeric_limits<T>::max(), std::numeric_limits<T>::lowest() });
    for (std::size_t row = 0; row < points.num_rows(); ++row) {
        const T *src = points.row_data(row);
        for (std::size_t col = 0; col < points.num_cols(); ++col) {
            factors_[col].min = std::min(factors_[col].min, src[col]);
            factors_[col].max = std::max(factors_[col].max, src[col]);
        }
    }
}

template <typename T>
void scaling<T>::transform(aos_matrix<T> &points) const {
    if (points.num_cols() != factors_.size()) {
        throw invalid_data_exception{ "Scaling was fitted on " + std::to_string(factors_.size()) + " features but the data has " + std::to_string(points.num_cols()) + "!" };
    }
    const T mid = (lo_ + hi_) / T{ 2 };
    for (std::size_t row = 0; row < points.num_rows(); ++row) {
        T *dst = points.row_data(row);
        for (std::size_t col = 0; col < points.num_cols(); ++col) {
            const factor &f = factors_[col];
            if (f.min == f.max) {
                dst[col] = mid;
            } else {
                dst[col] = lo_ + (hi_ - lo_) * (dst[col] - f.min) / (f.max - f.min);
            }
        }
    }
}

template <typename T>
void scaling<T>::fit_transform(aos_matrix<T> &points) {
    fit(points);
    transform(points);
}

template <typename T>
void scaling<T>::save(const std::string &filename) const {
    std::ofstream out{ filename };
    if (!out) {
        throw file_not_found_exception{ "Can't open scaling file '" + filename + "' for writing!" };
    }
    out.precision(17);
    out << "x\n"
        << lo_ << ' ' << hi_ << '\n';
    for (std::size_t col = 0; col < factors_.size(); ++col) {
        out << (col + 1) << ' ' << factors_[col].min << ' ' << factors_[col].max << '\n';
    }
}

template <typename T>
scaling<T> scaling<T>::load(const std::string &filename) {
    const file_reader reader{ filename };
    if (reader.num_lines() < 2 || detail::trim(reader.line(0)) != "x") {
        throw invalid_file_format_exception{ "Scaling file '" + filename + "' is missing the 'x' header!" };
    }
    const auto interval = detail::split(reader.line(1), ' ');
    if (interval.size() != 2) {
        throw invalid_file_format_exception{ "Scaling file '" + filename + "': invalid interval line!" };
    }
    scaling result{ detail::convert_to<T>(interval[0]), detail::convert_to<T>(interval[1]) };

    // Feature lines are `index min max` with ascending 1-based indices; gaps
    // denote features that were absent (kept at [0, 0] like svm-scale).
    std::size_t max_index = 0;
    std::vector<std::tuple<std::size_t, T, T>> entries;
    for (std::size_t i = 2; i < reader.num_lines(); ++i) {
        const auto tokens = detail::split(reader.line(i), ' ');
        if (tokens.size() != 3) {
            throw invalid_file_format_exception{ "Scaling file '" + filename + "': invalid factor line '" + std::string{ reader.line(i) } + "'!" };
        }
        const auto index = detail::convert_to<unsigned long>(tokens[0]);
        if (index == 0) {
            throw invalid_file_format_exception{ "Scaling file '" + filename + "': indices are 1-based!" };
        }
        entries.emplace_back(index - 1, detail::convert_to<T>(tokens[1]), detail::convert_to<T>(tokens[2]));
        max_index = std::max(max_index, static_cast<std::size_t>(index));
    }
    result.factors_.assign(max_index, factor{ T{ 0 }, T{ 0 } });
    for (const auto &[idx, mn, mx] : entries) {
        result.factors_[idx] = factor{ mn, mx };
    }
    return result;
}

template class scaling<float>;
template class scaling<double>;

}  // namespace plssvm::io
