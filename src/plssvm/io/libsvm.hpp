/**
 * @file
 * @brief LIBSVM sparse data file parser and writer.
 *
 * The on-disk format is sparse (`label index:value ...`, 1-based indices);
 * PLSSVM converts it to a dense representation on read by materialising the
 * zeros (paper §III: "sparse data sets [...] are at first converted into a
 * dense representation by filling in zeros").
 */

#ifndef PLSSVM_IO_LIBSVM_HPP_
#define PLSSVM_IO_LIBSVM_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/io/file_reader.hpp"

#include <optional>
#include <string>
#include <vector>

namespace plssvm::io {

/// Result of parsing a LIBSVM data file.
template <typename T>
struct libsvm_parse_result {
    /// Dense data points (zeros filled in), one row per point.
    aos_matrix<T> points;
    /// Raw numeric labels in file order; empty if the file has no labels
    /// (test files without ground truth are legal LIBSVM inputs).
    std::vector<T> labels;
    /// True if at least one line carried a label. Mixed files are rejected.
    bool has_labels{ false };
};

/**
 * @brief Parse LIBSVM-formatted @p reader contents into a dense matrix.
 * @param reader the pre-split input lines
 * @param min_num_features lower bound for the feature count (a test file may
 *        not mention trailing features that the model was trained with)
 * @throws plssvm::invalid_file_format_exception on malformed lines,
 *         non-positive or non-ascending indices, or mixed labeled/unlabeled lines
 * @throws plssvm::invalid_data_exception if the file contains no data points
 */
template <typename T>
[[nodiscard]] libsvm_parse_result<T> parse_libsvm(const file_reader &reader, std::size_t min_num_features = 0);

/// Convenience overload opening @p filename first.
template <typename T>
[[nodiscard]] libsvm_parse_result<T> parse_libsvm_file(const std::string &filename, std::size_t min_num_features = 0);

/**
 * @brief Write points (and labels, if given) to @p filename in LIBSVM format.
 * @param sparse when true, zero features are omitted (the usual LIBSVM style);
 *        when false every feature is written (LIBSVM-DENSE style)
 */
template <typename T>
void write_libsvm_file(const std::string &filename,
                       const aos_matrix<T> &points,
                       const std::vector<T> *labels,
                       bool sparse = true);

/// Serialise to a string (used by tests and the round-trip property checks).
template <typename T>
[[nodiscard]] std::string write_libsvm_string(const aos_matrix<T> &points,
                                              const std::vector<T> *labels,
                                              bool sparse = true);

}  // namespace plssvm::io

#endif  // PLSSVM_IO_LIBSVM_HPP_
