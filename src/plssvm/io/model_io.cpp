#include "plssvm/io/model_io.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/io/file_reader.hpp"
#include "plssvm/io/libsvm.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace plssvm::io {

namespace {

[[nodiscard]] invalid_file_format_exception header_error(const std::string &filename, const std::string &what) {
    return invalid_file_format_exception{ "Model file '" + filename + "': " + what };
}

}  // namespace

template <typename T>
model_file<T> read_model_file(const std::string &filename) {
    const file_reader reader{ filename };
    model_file<T> model;

    std::size_t total_sv = 0;
    bool seen_sv_marker = false;
    std::size_t sv_start_line = 0;

    for (std::size_t i = 0; i < reader.num_lines(); ++i) {
        const std::string_view line = reader.line(i);
        if (line == "SV") {
            seen_sv_marker = true;
            sv_start_line = i + 1;
            break;
        }
        const auto tokens = detail::split(line, ' ');
        if (tokens.size() < 2) {
            throw header_error(filename, "invalid header line '" + std::string{ line } + "'");
        }
        const std::string key = detail::to_lower_case(tokens[0]);
        if (key == "svm_type") {
            if (detail::to_lower_case(tokens[1]) != "c_svc") {
                throw header_error(filename, "only svm_type c_svc is supported, got '" + std::string{ tokens[1] } + "'");
            }
        } else if (key == "kernel_type") {
            model.params.kernel = kernel_type_from_string(tokens[1]);
        } else if (key == "degree") {
            model.params.degree = detail::convert_to<int>(tokens[1]);
        } else if (key == "gamma") {
            model.params.gamma = detail::convert_to<double>(tokens[1]);
        } else if (key == "coef0") {
            model.params.coef0 = detail::convert_to<double>(tokens[1]);
        } else if (key == "nr_class") {
            if (detail::convert_to<int>(tokens[1]) != 2) {
                throw header_error(filename, "only binary (nr_class 2) models are supported");
            }
        } else if (key == "total_sv") {
            total_sv = detail::convert_to<unsigned long>(tokens[1]);
        } else if (key == "rho") {
            model.rho = detail::convert_to<T>(tokens[1]);
        } else if (key == "label") {
            if (tokens.size() != 3) {
                throw header_error(filename, "expected exactly two labels");
            }
            model.positive_label = detail::convert_to<T>(tokens[1]);
            model.negative_label = detail::convert_to<T>(tokens[2]);
        } else if (key == "nr_sv") {
            // informational; consistency is checked against total_sv below
        } else {
            throw header_error(filename, "unknown header key '" + key + "'");
        }
    }

    if (!seen_sv_marker) {
        throw header_error(filename, "missing 'SV' marker");
    }
    if (total_sv == 0) {
        throw header_error(filename, "total_sv must be positive");
    }
    const std::size_t num_sv_lines = reader.num_lines() - sv_start_line;
    if (num_sv_lines != total_sv) {
        throw header_error(filename, "expected " + std::to_string(total_sv) + " support vectors, found " + std::to_string(num_sv_lines));
    }

    // SV lines are LIBSVM sparse lines whose "label" token is the coefficient.
    std::string sv_block;
    for (std::size_t i = sv_start_line; i < reader.num_lines(); ++i) {
        sv_block.append(reader.line(i));
        sv_block.push_back('\n');
    }
    libsvm_parse_result<T> sv = parse_libsvm<T>(file_reader::from_string(std::move(sv_block)));
    if (!sv.has_labels) {
        throw header_error(filename, "support vector lines are missing their coefficients");
    }
    model.support_vectors = std::move(sv.points);
    model.alpha = std::move(sv.labels);
    return model;
}

template <typename T>
void write_model_file(const std::string &filename, const model_file<T> &model) {
    if (model.support_vectors.num_rows() != model.alpha.size()) {
        throw invalid_data_exception{ "Model has " + std::to_string(model.support_vectors.num_rows()) + " support vectors but " + std::to_string(model.alpha.size()) + " coefficients!" };
    }
    std::ofstream out{ filename };
    if (!out) {
        throw file_not_found_exception{ "Can't open model file '" + filename + "' for writing!" };
    }
    out.precision(17);

    // LIBSVM groups support vectors by class; for the LS-SVM the "class" of a
    // support vector is the sign of its training label, which we recover from
    // the sign of nothing here -- all points are SVs, so we simply order by
    // coefficient sign for nr_sv bookkeeping while keeping exact positions.
    const std::size_t m = model.alpha.size();
    std::vector<std::size_t> order(m);
    for (std::size_t i = 0; i < m; ++i) {
        order[i] = i;
    }
    std::stable_partition(order.begin(), order.end(), [&](const std::size_t i) { return model.alpha[i] > T{ 0 }; });
    const auto num_positive = static_cast<std::size_t>(std::count_if(model.alpha.begin(), model.alpha.end(), [](const T a) { return a > T{ 0 }; }));

    out << "svm_type c_svc\n";
    out << "kernel_type " << model.params.kernel << '\n';
    if (model.params.kernel == kernel_type::polynomial) {
        out << "degree " << model.params.degree << '\n';
    }
    if (model.params.kernel != kernel_type::linear) {
        out << "gamma " << model.params.effective_gamma(model.support_vectors.num_cols()) << '\n';
    }
    if (model.params.kernel == kernel_type::polynomial || model.params.kernel == kernel_type::sigmoid) {
        out << "coef0 " << model.params.coef0 << '\n';
    }
    out << "nr_class 2\n";
    out << "total_sv " << m << '\n';
    out << "rho " << model.rho << '\n';
    out << "label " << model.positive_label << ' ' << model.negative_label << '\n';
    out << "nr_sv " << num_positive << ' ' << (m - num_positive) << '\n';
    out << "SV\n";
    for (const std::size_t i : order) {
        out << model.alpha[i] << ' ';
        const T *sv = model.support_vectors.row_data(i);
        for (std::size_t col = 0; col < model.support_vectors.num_cols(); ++col) {
            if (sv[col] != T{ 0 }) {
                out << (col + 1) << ':' << sv[col] << ' ';
            }
        }
        out << '\n';
    }
}

template struct model_file<float>;
template struct model_file<double>;

template model_file<float> read_model_file<float>(const std::string &);
template model_file<double> read_model_file<double>(const std::string &);
template void write_model_file<float>(const std::string &, const model_file<float> &);
template void write_model_file<double>(const std::string &, const model_file<double> &);

}  // namespace plssvm::io
