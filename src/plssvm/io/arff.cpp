#include "plssvm/io/arff.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace plssvm::io {

namespace {

struct arff_header {
    std::string relation_name;
    std::size_t num_features{ 0 };
    bool has_class_attribute{ false };
    std::size_t first_data_line{ 0 };
};

[[nodiscard]] arff_header parse_header(const file_reader &reader) {
    arff_header header;
    bool seen_data = false;
    std::size_t i = 0;
    for (; i < reader.num_lines(); ++i) {
        const std::string_view raw = reader.line(i);
        if (raw.front() == '%') {  // ARFF comment
            continue;
        }
        if (raw.front() != '@') {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(i + 1) + ": expected a header directive before @DATA, got '" + std::string{ raw } + "'!" };
        }
        const std::string lower = detail::to_lower_case(raw);
        if (detail::starts_with(lower, "@relation")) {
            header.relation_name = std::string{ detail::trim(raw.substr(9)) };
        } else if (detail::starts_with(lower, "@attribute")) {
            const std::string_view rest = detail::trim(raw.substr(10));
            const std::string rest_lower = detail::to_lower_case(rest);
            if (rest_lower.find('{') != std::string::npos || detail::starts_with(detail::to_lower_case(std::string_view{ rest_lower }), "class")) {
                // nominal attribute => class labels; must be the last attribute
                if (header.has_class_attribute) {
                    throw invalid_file_format_exception{ "ARFF file declares more than one class attribute!" };
                }
                header.has_class_attribute = true;
            } else {
                if (header.has_class_attribute) {
                    throw invalid_file_format_exception{ "The ARFF class attribute must be the last attribute!" };
                }
                if (rest_lower.find("numeric") == std::string::npos && rest_lower.find("real") == std::string::npos) {
                    throw invalid_file_format_exception{ "ARFF line " + std::to_string(i + 1) + ": only NUMERIC/REAL feature attributes are supported!" };
                }
                ++header.num_features;
            }
        } else if (detail::starts_with(lower, "@data")) {
            seen_data = true;
            ++i;
            break;
        } else {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(i + 1) + ": unknown directive '" + std::string{ raw } + "'!" };
        }
    }
    if (!seen_data) {
        throw invalid_file_format_exception{ "ARFF file is missing the @DATA directive!" };
    }
    if (header.num_features == 0) {
        throw invalid_file_format_exception{ "ARFF file declares no numeric feature attributes!" };
    }
    header.first_data_line = i;
    return header;
}

template <typename T>
void parse_dense_row(const std::string_view line, const std::size_t line_number, const arff_header &header,
                     std::vector<T> &features, T &label) {
    const std::vector<std::string_view> tokens = detail::split(line, ',');
    const std::size_t expected = header.num_features + (header.has_class_attribute ? 1 : 0);
    if (tokens.size() != expected) {
        throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": expected " + std::to_string(expected) + " comma-separated values, got " + std::to_string(tokens.size()) + "!" };
    }
    for (std::size_t f = 0; f < header.num_features; ++f) {
        if (!detail::convert_to_safe(detail::trim(tokens[f]), features[f])) {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": invalid numeric value '" + std::string{ tokens[f] } + "'!" };
        }
    }
    if (header.has_class_attribute) {
        if (!detail::convert_to_safe(detail::trim(tokens.back()), label)) {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": invalid class label '" + std::string{ tokens.back() } + "'!" };
        }
    }
}

template <typename T>
void parse_sparse_row(std::string_view line, const std::size_t line_number, const arff_header &header,
                      std::vector<T> &features, T &label) {
    // format: {index value, index value, ...} with 0-based indices
    line = detail::trim(line.substr(1, line.size() - 2));
    std::fill(features.begin(), features.end(), T{ 0 });
    if (line.empty()) {
        return;
    }
    for (const std::string_view entry : detail::split(line, ',')) {
        const std::vector<std::string_view> parts = detail::split(detail::trim(entry), ' ');
        if (parts.size() != 2) {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": invalid sparse entry '" + std::string{ entry } + "'!" };
        }
        std::size_t index{};
        if (!detail::convert_to_safe(parts[0], index)) {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": invalid sparse index '" + std::string{ parts[0] } + "'!" };
        }
        const std::size_t class_index = header.num_features;
        if (header.has_class_attribute && index == class_index) {
            if (!detail::convert_to_safe(parts[1], label)) {
                throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": invalid class label '" + std::string{ parts[1] } + "'!" };
            }
            continue;
        }
        if (index >= header.num_features) {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": sparse index " + std::to_string(index) + " out of range!" };
        }
        if (!detail::convert_to_safe(parts[1], features[index])) {
            throw invalid_file_format_exception{ "ARFF line " + std::to_string(line_number) + ": invalid sparse value '" + std::string{ parts[1] } + "'!" };
        }
    }
}

}  // namespace

template <typename T>
arff_parse_result<T> parse_arff(const file_reader &reader) {
    const arff_header header = parse_header(reader);

    std::vector<T> all_features;
    std::vector<T> labels;
    std::vector<T> row(header.num_features);
    std::size_t num_rows = 0;

    for (std::size_t i = header.first_data_line; i < reader.num_lines(); ++i) {
        const std::string_view line = reader.line(i);
        if (line.front() == '%') {
            continue;
        }
        T label{};
        if (line.front() == '{' && line.back() == '}') {
            parse_sparse_row(line, i + 1, header, row, label);
        } else {
            parse_dense_row(line, i + 1, header, row, label);
        }
        all_features.insert(all_features.end(), row.begin(), row.end());
        if (header.has_class_attribute) {
            labels.push_back(label);
        }
        ++num_rows;
    }

    if (num_rows == 0) {
        throw invalid_data_exception{ "The ARFF file contains no data points!" };
    }

    arff_parse_result<T> result;
    result.relation_name = header.relation_name;
    result.has_labels = header.has_class_attribute;
    result.points = aos_matrix<T>{ num_rows, header.num_features, std::move(all_features) };
    result.labels = std::move(labels);
    return result;
}

template <typename T>
arff_parse_result<T> parse_arff_file(const std::string &filename) {
    // '%' is the ARFF comment character, but full lines are filtered above to
    // keep the reader format agnostic; pass an impossible comment char here.
    const file_reader reader{ filename, '\0' };
    return parse_arff<T>(reader);
}

template <typename T>
void write_arff_file(const std::string &filename, const aos_matrix<T> &points, const std::vector<T> *labels, const std::string &relation_name) {
    std::ofstream out{ filename };
    if (!out) {
        throw file_not_found_exception{ "Can't open file '" + filename + "' for writing!" };
    }
    out.precision(17);
    out << "@RELATION " << relation_name << '\n';
    for (std::size_t f = 0; f < points.num_cols(); ++f) {
        out << "@ATTRIBUTE feature_" << f << " NUMERIC\n";
    }
    const bool has_labels = labels != nullptr && !labels->empty();
    if (has_labels) {
        out << "@ATTRIBUTE class {-1,1}\n";
    }
    out << "@DATA\n";
    for (std::size_t row = 0; row < points.num_rows(); ++row) {
        const T *src = points.row_data(row);
        for (std::size_t col = 0; col < points.num_cols(); ++col) {
            out << src[col] << ',';
        }
        if (has_labels) {
            out << (*labels)[row];
        } else {
            out.seekp(-1, std::ios_base::cur);  // drop trailing comma
        }
        out << '\n';
    }
}

template struct arff_parse_result<float>;
template struct arff_parse_result<double>;

template arff_parse_result<float> parse_arff<float>(const file_reader &);
template arff_parse_result<double> parse_arff<double>(const file_reader &);
template arff_parse_result<float> parse_arff_file<float>(const std::string &);
template arff_parse_result<double> parse_arff_file<double>(const std::string &);
template void write_arff_file<float>(const std::string &, const aos_matrix<float> &, const std::vector<float> *, const std::string &);
template void write_arff_file<double>(const std::string &, const aos_matrix<double> &, const std::vector<double> *, const std::string &);

}  // namespace plssvm::io
