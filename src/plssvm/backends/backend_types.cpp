#include "plssvm/backends/backend_types.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"

#include <ostream>
#include <string>

namespace plssvm {

std::string_view backend_type_to_string(const backend_type backend) {
    switch (backend) {
        case backend_type::openmp:
            return "openmp";
        case backend_type::cuda:
            return "cuda";
        case backend_type::opencl:
            return "opencl";
        case backend_type::sycl:
            return "sycl";
    }
    return "unknown";
}

backend_type backend_type_from_string(const std::string_view name) {
    const std::string lower = detail::to_lower_case(detail::trim(name));
    if (lower == "openmp" || lower == "omp" || lower == "cpu") {
        return backend_type::openmp;
    }
    if (lower == "cuda") {
        return backend_type::cuda;
    }
    if (lower == "opencl" || lower == "ocl") {
        return backend_type::opencl;
    }
    if (lower == "sycl" || lower == "hipsycl" || lower == "dpcpp" || lower == "dpc++") {
        return backend_type::sycl;
    }
    throw unsupported_backend_exception{ "Unknown backend: '" + std::string{ name } + "'!" };
}

std::ostream &operator<<(std::ostream &out, const backend_type backend) {
    return out << backend_type_to_string(backend);
}

}  // namespace plssvm
