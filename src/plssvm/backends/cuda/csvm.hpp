/**
 * @file
 * @brief The CUDA backend (simulated; NVIDIA devices only).
 *
 * Identical kernels to the other device backends; the CUDA runtime profile
 * has the lowest launch overhead and the full kernel efficiency (Table I
 * shows CUDA as the fastest backend on NVIDIA hardware).
 */

#ifndef PLSSVM_BACKENDS_CUDA_CSVM_HPP_
#define PLSSVM_BACKENDS_CUDA_CSVM_HPP_

#include "plssvm/backends/device/csvm.hpp"
#include "plssvm/sim/device_spec.hpp"

#include <vector>

namespace plssvm::backend::cuda {

template <typename T>
class csvm final : public device::device_csvm<T> {
  public:
    /// Train on @p specs (defaults to one NVIDIA A100, the paper's GPU node).
    explicit csvm(parameter params,
                  const std::vector<sim::device_spec> &specs = { sim::devices::nvidia_a100() },
                  const sim::block_config &cfg = {}) :
        device::device_csvm<T>{ params, sim::backend_runtime::cuda, specs, cfg } {}
};

}  // namespace plssvm::backend::cuda

#endif  // PLSSVM_BACKENDS_CUDA_CSVM_HPP_
