/**
 * @file
 * @brief The SYCL backend (simulated; hipSYCL on NVIDIA/AMD, DPC++ on Intel).
 *
 * Same kernels with the SYCL runtime profile, which encodes the paper's
 * Table I observations: near-OpenCL performance on NVIDIA compute capability
 * >= 7.0, a >3x penalty on older NVIDIA architectures, and roughly half the
 * OpenCL throughput on the Intel iGPU with DPC++.
 */

#ifndef PLSSVM_BACKENDS_SYCL_CSVM_HPP_
#define PLSSVM_BACKENDS_SYCL_CSVM_HPP_

#include "plssvm/backends/device/csvm.hpp"
#include "plssvm/sim/device_spec.hpp"

#include <vector>

namespace plssvm::backend::sycl {

template <typename T>
class csvm final : public device::device_csvm<T> {
  public:
    explicit csvm(parameter params,
                  const std::vector<sim::device_spec> &specs = { sim::devices::nvidia_a100() },
                  const sim::block_config &cfg = {}) :
        device::device_csvm<T>{ params, sim::backend_runtime::sycl, specs, cfg } {}
};

}  // namespace plssvm::backend::sycl

#endif  // PLSSVM_BACKENDS_SYCL_CSVM_HPP_
