/**
 * @file
 * @brief Runtime-selectable backend identifiers (paper §III: "The actual used
 *        backend can be selected at runtime").
 */

#ifndef PLSSVM_BACKENDS_BACKEND_TYPES_HPP_
#define PLSSVM_BACKENDS_BACKEND_TYPES_HPP_

#include <iosfwd>
#include <string_view>

namespace plssvm {

/// The four backends of the paper.
enum class backend_type {
    openmp,  ///< CPU threads, host memory
    cuda,    ///< simulated device with the CUDA runtime profile (NVIDIA only)
    opencl,  ///< simulated device with the OpenCL runtime profile
    sycl,    ///< simulated device with the SYCL runtime profile
};

[[nodiscard]] std::string_view backend_type_to_string(backend_type backend);

/// @throws plssvm::unsupported_backend_exception on unknown names
[[nodiscard]] backend_type backend_type_from_string(std::string_view name);

std::ostream &operator<<(std::ostream &out, backend_type backend);

}  // namespace plssvm

#endif  // PLSSVM_BACKENDS_BACKEND_TYPES_HPP_
