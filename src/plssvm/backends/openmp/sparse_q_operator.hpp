/**
 * @file
 * @brief Sparse (CSR) implicit Q~ operator for the OpenMP backend.
 *
 * The paper's §V names "consider[ing] sparse data structures for the CG
 * solver" as a canonical next step: PLSSVM densifies sparse inputs, which
 * wastes kernel-evaluation work when most features are zero. This operator
 * evaluates Eq. 16 entries over CSR rows (index-merge dot products /
 * distances), making the per-entry cost proportional to the row nnz instead
 * of the full dimension.
 *
 * Semantics are identical to the dense `q_operator`; tests enforce agreement.
 */

#ifndef PLSSVM_BACKENDS_OPENMP_SPARSE_Q_OPERATOR_HPP_
#define PLSSVM_BACKENDS_OPENMP_SPARSE_Q_OPERATOR_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/solver/operator.hpp"

#include <cstddef>
#include <vector>

namespace plssvm::backend::openmp {

template <typename T>
class sparse_q_operator final : public solver::linear_operator<T> {
  public:
    /**
     * @param points all m training points in CSR form
     * @param kp kernel parameters with gamma resolved
     * @param cost the C regularisation parameter
     */
    sparse_q_operator(const csr_matrix<T> &points, const kernel_params<T> &kp, T cost);

    [[nodiscard]] std::size_t size() const noexcept override { return n_; }

    void apply(const std::vector<T> &x, std::vector<T> &out) override;

    [[nodiscard]] const std::vector<T> &q() const noexcept { return q_; }
    [[nodiscard]] T q_mm() const noexcept { return q_mm_; }

  private:
    [[nodiscard]] T kernel_entry(std::size_t i, std::size_t j) const;

    const csr_matrix<T> &points_;
    kernel_params<T> kp_;
    T cost_;
    std::size_t n_;
    std::vector<T> q_;
    T q_mm_;
};

}  // namespace plssvm::backend::openmp

#endif  // PLSSVM_BACKENDS_OPENMP_SPARSE_Q_OPERATOR_HPP_
