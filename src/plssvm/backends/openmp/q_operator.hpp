/**
 * @file
 * @brief OpenMP (CPU) implicit Q~ matrix-vector product.
 *
 * Each application re-evaluates the kernel entries per Eq. 16 instead of
 * storing the (m-1)^2 matrix (paper §III-B). The q vector (k(x_i, x_m)) is
 * precomputed once per solve — the "caching" optimisation of §III-C-2 that
 * drops the per-entry kernel evaluations from three to one.
 *
 * Mirroring the paper, this CPU implementation is deliberately the plain
 * OpenMP-parallel variant (no triangular halving; §IV: "the CPU only OpenMP
 * implementation is currently not as well optimized as the GPU
 * implementations").
 */

#ifndef PLSSVM_BACKENDS_OPENMP_Q_OPERATOR_HPP_
#define PLSSVM_BACKENDS_OPENMP_Q_OPERATOR_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/solver/operator.hpp"

#include <cstddef>
#include <vector>

namespace plssvm::backend::openmp {

template <typename T>
class q_operator final : public solver::linear_operator<T> {
  public:
    /**
     * @param points all m training points (the operator acts on m-1 unknowns)
     * @param kp kernel parameters with gamma resolved
     * @param cost the C regularisation parameter (adds 1/C terms, Eq. 16)
     */
    q_operator(const aos_matrix<T> &points, const kernel_params<T> &kp, T cost);

    [[nodiscard]] std::size_t size() const noexcept override { return n_; }

    void apply(const std::vector<T> &x, std::vector<T> &out) override;

    /// Precomputed q vector (q_i = k(x_i, x_m)); reused for bias recovery.
    [[nodiscard]] const std::vector<T> &q() const noexcept { return q_; }

    /// Q_mm = k(x_m, x_m) + 1/C; reused for bias recovery.
    [[nodiscard]] T q_mm() const noexcept { return q_mm_; }

  private:
    const aos_matrix<T> &points_;
    kernel_params<T> kp_;
    T cost_;
    std::size_t n_;     ///< system size m-1
    std::vector<T> q_;  ///< cached k(x_i, x_m)
    T q_mm_;            ///< k(x_m, x_m) + 1/C
};

}  // namespace plssvm::backend::openmp

#endif  // PLSSVM_BACKENDS_OPENMP_Q_OPERATOR_HPP_
