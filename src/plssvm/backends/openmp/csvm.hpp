/**
 * @file
 * @brief The OpenMP (CPU) backend.
 *
 * Runs the CG solve with the OpenMP-parallel implicit Q~ operator directly on
 * host memory — no transform/transfer stages (the paper's Fig. 4a therefore
 * has no "transform" component for the CPU backend).
 */

#ifndef PLSSVM_BACKENDS_OPENMP_CSVM_HPP_
#define PLSSVM_BACKENDS_OPENMP_CSVM_HPP_

#include "plssvm/core/csvm.hpp"

namespace plssvm::backend::openmp {

template <typename T>
class csvm final : public ::plssvm::csvm<T> {
  public:
    /**
     * @param params SVM hyper-parameters
     * @param use_sparse_solver evaluate the implicit matrix over CSR rows
     *        instead of dense rows (the sparse-CG extension of paper §V;
     *        pays off when the data has many zero features)
     */
    explicit csvm(parameter params, const bool use_sparse_solver = false) :
        ::plssvm::csvm<T>{ params },
        use_sparse_solver_{ use_sparse_solver } {}

    [[nodiscard]] std::string_view backend_name() const noexcept override {
        return use_sparse_solver_ ? "openmp-sparse" : "openmp";
    }

  protected:
    using typename ::plssvm::csvm<T>::solve_result;

    [[nodiscard]] solve_result solve_lssvm(const aos_matrix<T> &points,
                                           const std::vector<T> &labels,
                                           const kernel_params<T> &kp,
                                           const solver_control &ctrl) override;

  private:
    bool use_sparse_solver_;
};

}  // namespace plssvm::backend::openmp

#endif  // PLSSVM_BACKENDS_OPENMP_CSVM_HPP_
