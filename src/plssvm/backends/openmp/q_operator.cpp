#include "plssvm/backends/openmp/q_operator.hpp"

#include "plssvm/core/lssvm_math.hpp"
#include "plssvm/detail/assert.hpp"

#include <cstddef>
#include <vector>

namespace plssvm::backend::openmp {

template <typename T>
q_operator<T>::q_operator(const aos_matrix<T> &points, const kernel_params<T> &kp, const T cost) :
    points_{ points },
    kp_{ kp },
    cost_{ cost },
    n_{ points.num_rows() - 1 },
    q_{ compute_q_vector(points, kp) },
    q_mm_{ compute_q_mm(points, kp, cost) } {
    PLSSVM_ASSERT(points.num_rows() >= 2, "The reduced system requires at least two data points!");
}

template <typename T>
void q_operator<T>::apply(const std::vector<T> &x, std::vector<T> &out) {
    PLSSVM_ASSERT(x.size() == n_ && out.size() == n_, "Vector size does not match the operator size!");

    // (Q~ x)_i = sum_j k(x_i, x_j) x_j            (expensive part, recomputed)
    //          - q_i * S - <q, x> + c0 * S        (rank-one corrections)
    //          + x_i / C                          (regularisation diagonal)
    // with S = sum_j x_j and c0 = k(x_m, x_m) + 1/C = q_mm.
    T sum_x{ 0 };
    T q_dot_x{ 0 };
    #pragma omp parallel for simd reduction(+ : sum_x, q_dot_x)
    for (std::size_t j = 0; j < n_; ++j) {
        sum_x += x[j];
        q_dot_x += q_[j] * x[j];
    }

    const std::size_t dim = points_.num_cols();
    const T inv_cost = T{ 1 } / cost_;

    #pragma omp parallel for schedule(dynamic, 16)
    for (std::size_t i = 0; i < n_; ++i) {
        const T *xi = points_.row_data(i);
        T kernel_sum{ 0 };
        for (std::size_t j = 0; j < n_; ++j) {
            kernel_sum += kernels::apply(kp_, xi, points_.row_data(j), dim) * x[j];
        }
        out[i] = kernel_sum - q_[i] * sum_x - q_dot_x + q_mm_ * sum_x + inv_cost * x[i];
    }
}

template class q_operator<float>;
template class q_operator<double>;

}  // namespace plssvm::backend::openmp
