#include "plssvm/backends/openmp/sparse_q_operator.hpp"

#include "plssvm/detail/assert.hpp"

#include <cstddef>
#include <vector>

namespace plssvm::backend::openmp {

template <typename T>
sparse_q_operator<T>::sparse_q_operator(const csr_matrix<T> &points, const kernel_params<T> &kp, const T cost) :
    points_{ points },
    kp_{ kp },
    cost_{ cost },
    n_{ points.num_rows() - 1 } {
    PLSSVM_ASSERT(points.num_rows() >= 2, "The reduced system requires at least two data points!");
    const std::size_t last = n_;
    q_.resize(n_);
    #pragma omp parallel for
    for (std::size_t i = 0; i < n_; ++i) {
        q_[i] = kernel_entry(i, last);
    }
    q_mm_ = kernel_entry(last, last) + T{ 1 } / cost_;
}

template <typename T>
T sparse_q_operator<T>::kernel_entry(const std::size_t i, const std::size_t j) const {
    const T core = kernels::uses_inner_product_core(kp_.kernel)
                       ? points_.dot(i, j)
                       : points_.squared_distance(i, j);
    return kernels::finish(kp_, core);
}

template <typename T>
void sparse_q_operator<T>::apply(const std::vector<T> &x, std::vector<T> &out) {
    PLSSVM_ASSERT(x.size() == n_ && out.size() == n_, "Vector size does not match the operator size!");

    T sum_x{ 0 };
    T q_dot_x{ 0 };
    #pragma omp parallel for simd reduction(+ : sum_x, q_dot_x)
    for (std::size_t j = 0; j < n_; ++j) {
        sum_x += x[j];
        q_dot_x += q_[j] * x[j];
    }

    const T inv_cost = T{ 1 } / cost_;
    #pragma omp parallel for schedule(dynamic, 16)
    for (std::size_t i = 0; i < n_; ++i) {
        T kernel_sum{ 0 };
        for (std::size_t j = 0; j < n_; ++j) {
            kernel_sum += kernel_entry(i, j) * x[j];
        }
        out[i] = kernel_sum - q_[i] * sum_x - q_dot_x + q_mm_ * sum_x + inv_cost * x[i];
    }
}

template class sparse_q_operator<float>;
template class sparse_q_operator<double>;

}  // namespace plssvm::backend::openmp
