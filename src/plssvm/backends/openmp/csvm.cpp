#include "plssvm/backends/openmp/csvm.hpp"

#include "plssvm/backends/openmp/q_operator.hpp"
#include "plssvm/backends/openmp/sparse_q_operator.hpp"
#include "plssvm/core/lssvm_math.hpp"
#include "plssvm/core/sparse_matrix.hpp"
#include "plssvm/detail/tracker.hpp"
#include "plssvm/solver/cg.hpp"

#include <utility>
#include <vector>

namespace plssvm::backend::openmp {

template <typename T>
auto csvm<T>::solve_lssvm(const aos_matrix<T> &points,
                          const std::vector<T> &labels,
                          const kernel_params<T> &kp,
                          const solver_control &ctrl) -> solve_result {
    const detail::scoped_timer timer{ this->tracker_, "cg" };

    const std::vector<T> rhs = reduced_rhs(labels);
    solve_result result;

    const auto run = [&](auto &op) {
        std::vector<T> alpha_tilde(op.size(), T{ 0 });
        const solver::cg_result cg = solver::conjugate_gradients(op, rhs, alpha_tilde, ctrl);
        result.bias = recover_bias(alpha_tilde, op.q(), op.q_mm(), labels.back());
        result.alpha = expand_alpha(std::move(alpha_tilde));
        result.iterations = cg.iterations;
        result.final_relative_residual = cg.final_relative_residual;
    };

    if (use_sparse_solver_) {
        const csr_matrix<T> csr{ points };
        sparse_q_operator<T> op{ csr, kp, static_cast<T>(this->params_.cost) };
        run(op);
    } else {
        q_operator<T> op{ points, kp, static_cast<T>(this->params_.cost) };
        run(op);
    }
    return result;
}

template class csvm<float>;
template class csvm<double>;

}  // namespace plssvm::backend::openmp
