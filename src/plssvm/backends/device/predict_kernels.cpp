#include "plssvm/backends/device/predict_kernels.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace plssvm::backend::device {

template <typename T>
void kernel_w(const T *sv, const T *alpha, const std::size_t num_sv, const std::size_t padded,
              const std::size_t dim, T *w_out) {
    for (std::size_t f = 0; f < dim; ++f) {
        const T *column = sv + f * padded;
        T sum{ 0 };
        #pragma omp simd reduction(+ : sum)
        for (std::size_t i = 0; i < num_sv; ++i) {
            sum += alpha[i] * column[i];
        }
        w_out[f] = sum;
    }
}

template <typename T>
void kernel_predict(const T *sv, const T *alpha, const std::size_t num_sv, const std::size_t padded_sv,
                    const T *points, const std::size_t num_points, const std::size_t padded_points,
                    const std::size_t dim, const kernel_params<T> &kp, T *out) {
    const bool inner_product = kernels::uses_inner_product_core(kp.kernel);
    std::fill(out, out + padded_points, T{ 0 });

    // feature-blocked core accumulation: core[p * num_sv + i] += op(x_p[f], sv_i[f])
    // (tiled over prediction points to bound the scratch size)
    constexpr std::size_t point_tile = 64;
    std::vector<T> core(point_tile * num_sv);
    for (std::size_t p0 = 0; p0 < num_points; p0 += point_tile) {
        const std::size_t tile_points = std::min(point_tile, num_points - p0);
        std::fill(core.begin(), core.end(), T{ 0 });
        for (std::size_t f = 0; f < dim; ++f) {
            const T *sv_column = sv + f * padded_sv;
            const T *pt_column = points + f * padded_points + p0;
            for (std::size_t p = 0; p < tile_points; ++p) {
                const T x = pt_column[p];
                T *row = core.data() + p * num_sv;
                if (inner_product) {
                    #pragma omp simd
                    for (std::size_t i = 0; i < num_sv; ++i) {
                        row[i] += x * sv_column[i];
                    }
                } else {
                    #pragma omp simd
                    for (std::size_t i = 0; i < num_sv; ++i) {
                        const T diff = x - sv_column[i];
                        row[i] += diff * diff;
                    }
                }
            }
        }
        for (std::size_t p = 0; p < tile_points; ++p) {
            const T *row = core.data() + p * num_sv;
            T sum{ 0 };
            for (std::size_t i = 0; i < num_sv; ++i) {
                sum += alpha[i] * kernels::finish(kp, row[i]);
            }
            out[p0 + p] = sum;
        }
    }
}

template <typename T>
void kernel_predict_linear(const T *w, const std::size_t dim,
                           const T *points, const std::size_t num_points, const std::size_t padded_points,
                           T *out) {
    (void) num_points;  // zero padding contributes zero to every dot product
    std::fill(out, out + padded_points, T{ 0 });
    for (std::size_t f = 0; f < dim; ++f) {
        const T wf = w[f];
        const T *column = points + f * padded_points;
        #pragma omp simd
        for (std::size_t p = 0; p < padded_points; ++p) {
            out[p] += wf * column[p];
        }
    }
}

template void kernel_w<float>(const float *, const float *, std::size_t, std::size_t, std::size_t, float *);
template void kernel_w<double>(const double *, const double *, std::size_t, std::size_t, std::size_t, double *);
template void kernel_predict<float>(const float *, const float *, std::size_t, std::size_t, const float *, std::size_t, std::size_t, std::size_t, const kernel_params<float> &, float *);
template void kernel_predict<double>(const double *, const double *, std::size_t, std::size_t, const double *, std::size_t, std::size_t, std::size_t, const kernel_params<double> &, double *);
template void kernel_predict_linear<float>(const float *, std::size_t, const float *, std::size_t, std::size_t, float *);
template void kernel_predict_linear<double>(const double *, std::size_t, const double *, std::size_t, std::size_t, double *);

}  // namespace plssvm::backend::device
