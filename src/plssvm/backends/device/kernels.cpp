#include "plssvm/backends/device/kernels.hpp"

#include "plssvm/detail/assert.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace plssvm::backend::device {

template <typename T>
void kernel_q(const T *data, const std::size_t n, const std::size_t padded, const std::size_t last_row,
              const std::size_t dim, const kernel_params<T> &kp, T *q_out) {
    PLSSVM_ASSERT(last_row < padded, "x_m row index out of the padded range!");
    // accumulate the kernel "core" feature-block-wise: for each feature the
    // inner loop reads a contiguous SoA column segment (coalesced access)
    std::vector<T> core(n, T{ 0 });
    if (kernels::uses_inner_product_core(kp.kernel)) {
        for (std::size_t f = 0; f < dim; ++f) {
            const T *column = data + f * padded;
            const T last_value = column[last_row];
            #pragma omp simd
            for (std::size_t i = 0; i < n; ++i) {
                core[i] += column[i] * last_value;
            }
        }
    } else {
        for (std::size_t f = 0; f < dim; ++f) {
            const T *column = data + f * padded;
            const T last_value = column[last_row];
            #pragma omp simd
            for (std::size_t i = 0; i < n; ++i) {
                const T diff = column[i] - last_value;
                core[i] += diff * diff;
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        q_out[i] = kernels::finish(kp, core[i]);
    }
    std::fill(q_out + n, q_out + padded, T{ 0 });
}

namespace {

/// Compute the tile x tile kernel-core block for point tiles starting at
/// (i0, j0): core[ti * tile + tj] = core(x_{i0+ti}, x_{j0+tj}).
template <typename T>
void compute_core_tile(const T *data, const std::size_t padded, const std::size_t dim,
                       const bool inner_product, const std::size_t i0, const std::size_t j0,
                       const std::size_t tile, T *core) {
    std::fill(core, core + tile * tile, T{ 0 });
    if (inner_product) {
        for (std::size_t f = 0; f < dim; ++f) {
            const T *column = data + f * padded;
            const T *xi = column + i0;
            const T *xj = column + j0;
            for (std::size_t ti = 0; ti < tile; ++ti) {
                const T v = xi[ti];
                T *row = core + ti * tile;
                #pragma omp simd
                for (std::size_t tj = 0; tj < tile; ++tj) {
                    row[tj] += v * xj[tj];
                }
            }
        }
    } else {
        for (std::size_t f = 0; f < dim; ++f) {
            const T *column = data + f * padded;
            const T *xi = column + i0;
            const T *xj = column + j0;
            for (std::size_t ti = 0; ti < tile; ++ti) {
                const T v = xi[ti];
                T *row = core + ti * tile;
                #pragma omp simd
                for (std::size_t tj = 0; tj < tile; ++tj) {
                    const T diff = v - xj[tj];
                    row[tj] += diff * diff;
                }
            }
        }
    }
}

}  // namespace

template <typename T>
void kernel_svm(const T *data, const T *q, const T *in, T *out,
                const std::size_t n, const std::size_t padded, const std::size_t dim,
                const kernel_params<T> &kp, const T q_mm_entry, const T diag,
                const sim::block_config &cfg) {
    const std::size_t tile = cfg.tile();
    PLSSVM_ASSERT(padded % tile == 0, "Padded size must be a multiple of the tile size!");
    const std::size_t num_tiles = padded / tile;
    const bool inner_product = kernels::uses_inner_product_core(kp.kernel);

    std::vector<T> core(tile * tile);

    for (std::size_t bi = 0; bi < num_tiles; ++bi) {
        const std::size_t bj_begin = cfg.triangular ? bi : 0;
        for (std::size_t bj = bj_begin; bj < num_tiles; ++bj) {
            const std::size_t i0 = bi * tile;
            const std::size_t j0 = bj * tile;
            compute_core_tile(data, padded, dim, inner_product, i0, j0, tile, core.data());

            for (std::size_t ti = 0; ti < tile; ++ti) {
                const std::size_t i = i0 + ti;
                if (i >= n) {
                    break;  // rows beyond the system are padding
                }
                const T *core_row = core.data() + ti * tile;
                T acc_i{ 0 };  // accumulates out[i] contributions of this row
                for (std::size_t tj = 0; tj < tile; ++tj) {
                    const std::size_t j = j0 + tj;
                    if (j >= n) {
                        break;
                    }
                    if (cfg.triangular && bi == bj && j < i) {
                        continue;  // lower half of a diagonal block is mirrored
                    }
                    const T temp = kernels::finish(kp, core_row[tj]) - q[i] - q[j] + q_mm_entry;
                    if (i == j) {
                        acc_i += (temp + diag) * in[i];
                    } else {
                        acc_i += temp * in[j];
                        if (cfg.triangular) {
                            out[j] += temp * in[i];  // mirrored entry (i, j) -> (j, i)
                        }
                    }
                }
                out[i] += acc_i;
            }
        }
    }
}

template void kernel_q<float>(const float *, std::size_t, std::size_t, std::size_t, std::size_t, const kernel_params<float> &, float *);
template void kernel_q<double>(const double *, std::size_t, std::size_t, std::size_t, std::size_t, const kernel_params<double> &, double *);
template void kernel_svm<float>(const float *, const float *, const float *, float *, std::size_t, std::size_t, std::size_t, const kernel_params<float> &, float, float, const sim::block_config &);
template void kernel_svm<double>(const double *, const double *, const double *, double *, std::size_t, std::size_t, std::size_t, const kernel_params<double> &, double, double, const sim::block_config &);

}  // namespace plssvm::backend::device
