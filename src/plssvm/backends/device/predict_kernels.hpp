/**
 * @file
 * @brief Device prediction kernels.
 *
 * Native PLSSVM predicts on the device with two kernels: `device_kernel_w`
 * collapses the support vectors into the explicit normal vector w for the
 * linear kernel (one pass over the SVs), and `device_kernel_predict`
 * evaluates the kernel sums for the non-linear kernels. Together with
 * `device_kernel_q` and `device_kernel_svm` these are the "3 compute
 * kernels" the paper's profiling section refers to.
 *
 * Both kernels operate on the padded SoA layout like the training kernels.
 */

#ifndef PLSSVM_BACKENDS_DEVICE_PREDICT_KERNELS_HPP_
#define PLSSVM_BACKENDS_DEVICE_PREDICT_KERNELS_HPP_

#include "plssvm/core/kernel_functions.hpp"

#include <cstddef>

namespace plssvm::backend::device {

/**
 * @brief `device_kernel_w`: w_f = sum_i alpha_i sv[i][f] (linear kernel path).
 *
 * @param sv feature-major support vectors (padded rows)
 * @param alpha weights (padded, zero beyond num_sv)
 * @param num_sv number of support vectors
 * @param padded padded support vector count
 * @param dim number of features
 * @param w_out output vector of length dim
 */
template <typename T>
void kernel_w(const T *sv, const T *alpha, std::size_t num_sv, std::size_t padded,
              std::size_t dim, T *w_out);

/**
 * @brief `device_kernel_predict`: out_p = sum_i alpha_i k(sv_i, x_p) for all
 *        prediction points (non-linear kernels).
 *
 * @param sv feature-major support vectors (padded rows: padded_sv)
 * @param alpha weights (padded, zero beyond num_sv)
 * @param points feature-major prediction points (padded rows: padded_points)
 * @param out output vector (padded_points entries; entries >= num_points untouched semantics: zeroed)
 */
template <typename T>
void kernel_predict(const T *sv, const T *alpha, std::size_t num_sv, std::size_t padded_sv,
                    const T *points, std::size_t num_points, std::size_t padded_points,
                    std::size_t dim, const kernel_params<T> &kp, T *out);

/**
 * @brief Batch entry point of the linear serving path:
 *        `out_p = <w, x_p>` over the padded SoA query batch.
 *
 * The serving layer collapses the support vectors into `w` once at model
 * compile time (host) or via `kernel_w` (device); at request time the linear
 * prediction is a single GEMV over the query batch. Feature-major layout:
 * the inner loop sweeps contiguously over the point dimension (coalesced on
 * a real device, vectorized here).
 *
 * @param w collapsed normal vector (@p dim entries)
 * @param points feature-major prediction points (padded rows: padded_points)
 * @param out output vector (padded_points entries; padding entries zeroed)
 */
template <typename T>
void kernel_predict_linear(const T *w, std::size_t dim,
                           const T *points, std::size_t num_points, std::size_t padded_points,
                           T *out);

}  // namespace plssvm::backend::device

#endif  // PLSSVM_BACKENDS_DEVICE_PREDICT_KERNELS_HPP_
