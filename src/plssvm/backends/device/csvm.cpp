#include "plssvm/backends/device/csvm.hpp"

#include "plssvm/backends/device/predict_kernels.hpp"
#include "plssvm/backends/device/q_operator.hpp"
#include "plssvm/core/lssvm_math.hpp"
#include "plssvm/detail/tracker.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/solver/cg.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

namespace plssvm::backend::device {

template <typename T>
device_csvm<T>::device_csvm(parameter params,
                            const sim::backend_runtime runtime,
                            const std::vector<sim::device_spec> &specs,
                            const sim::block_config &cfg) :
    ::plssvm::csvm<T>{ params },
    runtime_{ runtime },
    cfg_{ cfg } {
    if (specs.empty()) {
        throw invalid_parameter_exception{ "A device backend requires at least one device!" };
    }
    devices_.reserve(specs.size());
    for (const sim::device_spec &spec : specs) {
        devices_.emplace_back(spec, sim::runtime_profile::for_device(runtime, spec));
    }
}

template <typename T>
std::vector<T> device_csvm<T>::predict_values(const model<T> &trained, const data_set<T> &data) const {
    if (data.num_features() != trained.num_features()) {
        throw invalid_data_exception{ "The data has " + std::to_string(data.num_features()) + " features but the model was trained with " + std::to_string(trained.num_features()) + "!" };
    }
    const auto start = std::chrono::steady_clock::now();
    sim::device &dev = devices_.front();  // prediction runs on the first device
    const double sim_before = dev.clock_seconds();

    const std::size_t num_sv = trained.num_support_vectors();
    const std::size_t num_points = data.num_data_points();
    const std::size_t dim = data.num_features();
    const kernel_params<T> kp{ trained.params().kernel, trained.params().degree,
                               trained.effective_gamma(), static_cast<T>(trained.params().coef0) };
    const T bias = trained.bias();

    // upload support vectors (SoA) and weights
    const soa_matrix<T> sv_soa = transform_to_soa(trained.support_vectors(), cfg_.tile());
    sim::device_buffer<T> sv_buffer{ dev, sv_soa.data().size() };
    sv_buffer.copy_from_host(sv_soa.data().data(), sv_soa.data().size());
    sim::device_buffer<T> alpha_buffer{ dev, sv_soa.padded_rows() };
    alpha_buffer.copy_from_host(trained.alpha().data(), num_sv);

    std::vector<T> values(num_points);

    if (kp.kernel == kernel_type::linear) {
        // device_kernel_w: one pass over the SVs, then host dot products
        sim::device_buffer<T> w_buffer{ dev, dim };
        const sim::kernel_cost w_cost = sim::predict_kernel_cost(0, num_sv, dim, kp.kernel, sizeof(T));
        dev.launch("device_kernel_w", w_cost, [&] {
            kernel_w(sv_buffer.data(), alpha_buffer.data(), num_sv, sv_soa.padded_rows(), dim, w_buffer.data());
        });
        std::vector<T> w(dim);
        w_buffer.copy_to_host(w.data(), dim);
        #pragma omp parallel for
        for (std::size_t p = 0; p < num_points; ++p) {
            values[p] = kernels::dot(w.data(), data.points().row_data(p), dim) + bias;
        }
    } else {
        const soa_matrix<T> pt_soa = transform_to_soa(data.points(), cfg_.tile());
        sim::device_buffer<T> pt_buffer{ dev, pt_soa.data().size() };
        pt_buffer.copy_from_host(pt_soa.data().data(), pt_soa.data().size());
        sim::device_buffer<T> out_buffer{ dev, pt_soa.padded_rows() };
        const sim::kernel_cost cost = sim::predict_kernel_cost(num_points, num_sv, dim, kp.kernel, sizeof(T));
        dev.launch("device_kernel_predict", cost, [&] {
            kernel_predict(sv_buffer.data(), alpha_buffer.data(), num_sv, sv_soa.padded_rows(),
                           pt_buffer.data(), num_points, pt_soa.padded_rows(), dim, kp, out_buffer.data());
        });
        out_buffer.copy_to_host(values.data(), num_points);
        for (T &v : values) {
            v += bias;
        }
    }

    const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    this->tracker_.add("predict", wall, dev.clock_seconds() - sim_before);
    return values;
}

template <typename T>
auto device_csvm<T>::solve_lssvm(const aos_matrix<T> &points,
                                 const std::vector<T> &labels,
                                 const kernel_params<T> &kp,
                                 const solver_control &ctrl) -> solve_result {
    if (first_fit_) {
        // one-time backend/runtime initialisation cost (charged at device
        // construction); report it so "total" pipeline sums are complete
        double init_sim = 0.0;
        for (const sim::device &dev : devices_) {
            init_sim = std::max(init_sim, dev.clock_seconds());
        }
        this->tracker_.add("init", 0.0, init_sim);
        first_fit_ = false;
    }

    // operator construction performs & tracks "transform" and "h2d"
    device_q_operator<T> op{ devices_, points, kp, static_cast<T>(this->params_.cost), cfg_, this->tracker_ };

    const std::vector<T> rhs = reduced_rhs(labels);
    std::vector<T> alpha_tilde(op.size(), T{ 0 });

    const auto cg_start = std::chrono::steady_clock::now();
    const double sim_before = op.apply_sim_seconds();
    const solver::cg_result cg = solver::conjugate_gradients(op, rhs, alpha_tilde, ctrl);
    const double cg_wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - cg_start).count();
    this->tracker_.add("cg", cg_wall, op.apply_sim_seconds() - sim_before);

    solve_result result;
    const std::vector<T> q = op.q_host();
    result.bias = recover_bias(alpha_tilde, q, op.q_mm(), labels.back());
    result.alpha = expand_alpha(std::move(alpha_tilde));
    result.iterations = cg.iterations;
    result.final_relative_residual = cg.final_relative_residual;
    return result;
}

template class device_csvm<float>;
template class device_csvm<double>;

}  // namespace plssvm::backend::device
