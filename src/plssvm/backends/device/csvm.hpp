/**
 * @file
 * @brief Common csvm implementation for all simulated device backends
 *        (CUDA, OpenCL, SYCL differ only in their runtime profile).
 *
 * Training pipeline on the device (paper §III): transform the parsed data
 * into the padded SoA layout, upload it, then run CG on the host with the
 * implicit matrix-vector product executed on the device(s). Component
 * timings land in the performance tracker: wall seconds (host reality) and
 * simulated device seconds (what the paper's hardware would take).
 */

#ifndef PLSSVM_BACKENDS_DEVICE_CSVM_HPP_
#define PLSSVM_BACKENDS_DEVICE_CSVM_HPP_

#include "plssvm/core/csvm.hpp"
#include "plssvm/sim/cost_model.hpp"
#include "plssvm/sim/device.hpp"

#include <cstddef>
#include <vector>

namespace plssvm::backend::device {

template <typename T>
class device_csvm : public ::plssvm::csvm<T> {
  public:
    /**
     * @param params SVM hyper-parameters
     * @param runtime which programming-model runtime to simulate
     * @param specs one entry per device; more than one enables the
     *        feature-split multi-device mode (linear kernel only)
     * @param cfg blocking configuration of the device kernels
     * @throws plssvm::unsupported_backend_exception e.g. CUDA on non-NVIDIA
     */
    device_csvm(parameter params,
                sim::backend_runtime runtime,
                const std::vector<sim::device_spec> &specs,
                const sim::block_config &cfg = {});

    [[nodiscard]] std::string_view backend_name() const noexcept override {
        return sim::backend_runtime_to_string(runtime_);
    }

    /// Device-side prediction: `device_kernel_w` for the linear kernel (one
    /// pass over the SVs, then host dot products), `device_kernel_predict`
    /// for the non-linear kernels. Runs on the first device like native
    /// PLSSVM; timings land in the "predict" tracker component.
    [[nodiscard]] std::vector<T> predict_values(const model<T> &trained, const data_set<T> &data) const override;

    [[nodiscard]] std::size_t num_devices() const noexcept { return devices_.size(); }
    [[nodiscard]] const std::vector<sim::device> &devices() const noexcept { return devices_; }
    [[nodiscard]] std::vector<sim::device> &devices() noexcept { return devices_; }

    /// Peak bytes ever allocated on device @p d (paper §IV-G memory numbers).
    [[nodiscard]] std::size_t peak_device_memory(const std::size_t d) const {
        return devices_.at(d).peak_allocated_bytes();
    }

    [[nodiscard]] const sim::block_config &block_config() const noexcept { return cfg_; }

  protected:
    using typename ::plssvm::csvm<T>::solve_result;

    [[nodiscard]] solve_result solve_lssvm(const aos_matrix<T> &points,
                                           const std::vector<T> &labels,
                                           const kernel_params<T> &kp,
                                           const solver_control &ctrl) override;

  private:
    sim::backend_runtime runtime_;
    sim::block_config cfg_;
    // mutable: prediction is logically const but advances the simulated
    // device clocks (launches + transfers), mirroring real device state
    mutable std::vector<sim::device> devices_;
    bool first_fit_{ true };
};

}  // namespace plssvm::backend::device

#endif  // PLSSVM_BACKENDS_DEVICE_CSVM_HPP_
