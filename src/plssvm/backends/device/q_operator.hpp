/**
 * @file
 * @brief Implicit Q~ operator executing on (multiple) simulated devices.
 *
 * Owns the per-device data slices and scratch buffers. Construction performs
 * the paper's "transform" (AoS -> padded SoA) and the host-to-device upload;
 * each `apply` uploads the CG direction, launches `device_kernel_svm` on
 * every device, downloads the per-device partial results, and sums them on
 * the host — exactly the communication scheme of §III-C-5 (no direct
 * device-to-device communication, "only the result vectors of the single
 * devices have to be summed up").
 *
 * Multi-device execution splits the data feature-wise and is therefore only
 * available for the linear kernel (the polynomial/rbf epilogues do not
 * decompose over feature slices); requesting it with another kernel throws,
 * matching the paper's stated limitation.
 */

#ifndef PLSSVM_BACKENDS_DEVICE_Q_OPERATOR_HPP_
#define PLSSVM_BACKENDS_DEVICE_Q_OPERATOR_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/detail/tracker.hpp"
#include "plssvm/sim/cost_model.hpp"
#include "plssvm/sim/device.hpp"
#include "plssvm/solver/operator.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace plssvm::backend::device {

template <typename T>
class device_q_operator final : public solver::linear_operator<T> {
  public:
    /**
     * @param devs the simulated devices (feature split across all of them)
     * @param points all m training points (host, row-major)
     * @param kp kernel parameters with gamma resolved
     * @param cost the C regularisation parameter
     * @param cfg blocking configuration of the device kernels
     * @param tracker receives "transform" and "h2d" component timings
     * @throws plssvm::unsupported_kernel_exception for multi-device non-linear kernels
     * @throws plssvm::device_exception when a device runs out of memory
     */
    device_q_operator(std::vector<sim::device> &devs,
                      const aos_matrix<T> &points,
                      const kernel_params<T> &kp,
                      T cost,
                      const sim::block_config &cfg,
                      detail::tracker &tracker);

    [[nodiscard]] std::size_t size() const noexcept override { return n_; }

    void apply(const std::vector<T> &x, std::vector<T> &out) override;

    /// Full q vector (partial per-device q's summed on the host).
    [[nodiscard]] std::vector<T> q_host() const;

    /// Q_mm = k(x_m, x_m) + 1/C across all feature slices.
    [[nodiscard]] T q_mm() const noexcept { return q_mm_; }

    /// Simulated seconds spent in `apply` calls so far (max over devices per
    /// call — the devices execute concurrently).
    [[nodiscard]] double apply_sim_seconds() const noexcept { return apply_sim_seconds_; }

    /// Bytes currently allocated on device @p d.
    [[nodiscard]] std::size_t device_allocated_bytes(std::size_t d) const;

  private:
    /// Per-device state: feature range, buffers.
    struct device_state {
        std::size_t first_feature;
        std::size_t num_features;
        std::unique_ptr<sim::device_buffer<T>> data;  ///< padded SoA slice
        std::unique_ptr<sim::device_buffer<T>> q;     ///< partial q vector
        std::unique_ptr<sim::device_buffer<T>> in;    ///< CG direction
        std::unique_ptr<sim::device_buffer<T>> out;   ///< partial result
        T q_mm_entry;                                 ///< constant per Eq. 16 (see kernels.hpp)
        T diag;                                       ///< 1/C on device 0, else 0
    };

    std::vector<sim::device> &devices_;
    kernel_params<T> kp_;
    sim::block_config cfg_;
    std::size_t n_;       ///< system size m - 1
    std::size_t padded_;  ///< n + 1 (x_m row) rounded up to full tiles
    T q_mm_{ 0 };
    std::vector<device_state> states_;
    double apply_sim_seconds_{ 0.0 };
    std::vector<T> scratch_;  ///< host staging for padded vectors
};

}  // namespace plssvm::backend::device

#endif  // PLSSVM_BACKENDS_DEVICE_Q_OPERATOR_HPP_
