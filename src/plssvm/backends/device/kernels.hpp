/**
 * @file
 * @brief Functional bodies of the device kernels (§III-C).
 *
 * These are the three compute kernels the paper profiles ("our implementation
 * only spawns 3 compute kernels"): `device_kernel_q`, `device_kernel_svm`
 * (the implicit matrix-vector product inside CG) and the prediction kernel.
 * They operate on the padded feature-major (SoA) layout exactly like the
 * CUDA/OpenCL/SYCL kernels of native PLSSVM:
 *
 *  - padding to full blocks avoids boundary checks (§III-C-1),
 *  - only upper-triangular blocks are computed and mirrored (§III-C-1),
 *  - the q vector is precomputed, reducing kernel evaluations per matrix
 *    entry from three to one (§III-C-2),
 *  - the block/internal tiling mirrors the shared-memory and register
 *    blocking (§III-C-3/4) — functionally identical on the host, and the
 *    cost model charges global-memory traffic according to the tiling.
 *
 * Matrix entries follow Eq. 16:
 *   Q~_ij = k(x_i,x_j) + delta_ij/C - k(x_m,x_j) - k(x_i,x_m) + k(x_m,x_m) + 1/C
 *         = finish(core(i,j)) - q_i - q_j + q_mm_entry   (+ diag on i == j)
 * where for single-device execution q_mm_entry = k(x_m,x_m) + 1/C and
 * diag = 1/C. For the multi-device feature split (§III-C-5) each device uses
 * its *partial* kernel sums; device 0 carries the 1/C terms so that summing
 * the per-device result vectors yields the exact full product.
 */

#ifndef PLSSVM_BACKENDS_DEVICE_KERNELS_HPP_
#define PLSSVM_BACKENDS_DEVICE_KERNELS_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/sim/cost_model.hpp"

#include <cstddef>

namespace plssvm::backend::device {

/**
 * @brief `device_kernel_q`: q_i = k(x_i, x_m) over the feature slice.
 *
 * @param data feature-major data: data[f * padded + i], f in [0, dim)
 * @param n number of reduced rows (m - 1)
 * @param padded padded point count (rows >= n + 1 hold x_m and padding)
 * @param last_row row index of x_m inside the padded layout (= m - 1)
 * @param dim features on this device
 * @param kp kernel parameters (gamma resolved; multi-device passes the slice)
 * @param q_out output vector, padded length; entries >= n are zeroed
 */
template <typename T>
void kernel_q(const T *data, std::size_t n, std::size_t padded, std::size_t last_row,
              std::size_t dim, const kernel_params<T> &kp, T *q_out);

/**
 * @brief `device_kernel_svm`: out += Q~ * in, blocked and triangular.
 *
 * @param data feature-major data slice (padded rows)
 * @param q precomputed q vector (padded, zero beyond n)
 * @param in input vector (padded, zero beyond n)
 * @param out output vector (padded); caller must zero it first
 * @param n system size (m - 1)
 * @param padded padded point count
 * @param dim features on this device
 * @param kp kernel parameters
 * @param q_mm_entry the constant added to every entry (see file comment)
 * @param diag extra diagonal term (1/C, or 0 on secondary devices)
 * @param cfg blocking configuration (tile size, triangular toggle)
 */
template <typename T>
void kernel_svm(const T *data, const T *q, const T *in, T *out,
                std::size_t n, std::size_t padded, std::size_t dim,
                const kernel_params<T> &kp, T q_mm_entry, T diag,
                const sim::block_config &cfg);

}  // namespace plssvm::backend::device

#endif  // PLSSVM_BACKENDS_DEVICE_KERNELS_HPP_
