#include "plssvm/backends/device/q_operator.hpp"

#include "plssvm/backends/device/kernels.hpp"
#include "plssvm/core/lssvm_math.hpp"
#include "plssvm/detail/assert.hpp"
#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace plssvm::backend::device {

namespace {

/// Max simulated-clock advance over all devices between two sample points
/// (concurrently executing devices overlap; the slowest one gates progress).
class clock_mark {
  public:
    explicit clock_mark(const std::vector<sim::device> &devs) {
        marks_.reserve(devs.size());
        for (const sim::device &dev : devs) {
            marks_.push_back(dev.clock_seconds());
        }
    }

    [[nodiscard]] double elapsed_max(const std::vector<sim::device> &devs) const {
        double max_delta = 0.0;
        for (std::size_t d = 0; d < devs.size(); ++d) {
            max_delta = std::max(max_delta, devs[d].clock_seconds() - marks_[d]);
        }
        return max_delta;
    }

  private:
    std::vector<double> marks_;
};

}  // namespace

template <typename T>
device_q_operator<T>::device_q_operator(std::vector<sim::device> &devs,
                                        const aos_matrix<T> &points,
                                        const kernel_params<T> &kp,
                                        const T cost,
                                        const sim::block_config &cfg,
                                        detail::tracker &tracker) :
    devices_{ devs },
    kp_{ kp },
    cfg_{ cfg },
    n_{ points.num_rows() - 1 } {
    PLSSVM_ASSERT(!devs.empty(), "At least one device is required!");
    PLSSVM_ASSERT(points.num_rows() >= 2, "The reduced system requires at least two data points!");
    if (devs.size() > 1 && !kernels::supports_feature_split(kp.kernel)) {
        throw unsupported_kernel_exception{ "Multi-device execution is only supported for the linear kernel (the feature split requires an additively decomposable kernel)!" };
    }

    const std::size_t m = points.num_rows();
    const std::size_t dim = points.num_cols();
    const std::size_t num_devices = devs.size();
    // pad so the padded range contains x_m (row m-1) and fills whole tiles
    padded_ = soa_matrix<T>::round_up(m, cfg_.tile());

    // --- transform: AoS -> per-device padded SoA feature slices (§III-A) ---
    std::vector<soa_matrix<T>> slices;
    {
        const detail::scoped_timer timer{ tracker, "transform" };
        slices.reserve(num_devices);
        const std::size_t features_per_device = dim / num_devices;
        const std::size_t remainder = dim % num_devices;
        std::size_t first = 0;
        for (std::size_t d = 0; d < num_devices; ++d) {
            const std::size_t count = features_per_device + (d < remainder ? 1 : 0);
            soa_matrix<T> slice{ m, count, cfg_.tile() };
            for (std::size_t row = 0; row < m; ++row) {
                const T *src = points.row_data(row);
                for (std::size_t f = 0; f < count; ++f) {
                    slice(row, f) = src[first + f];
                }
            }
            device_state state;
            state.first_feature = first;
            state.num_features = count;
            state.diag = d == 0 ? T{ 1 } / cost : T{ 0 };
            states_.push_back(std::move(state));
            slices.push_back(std::move(slice));
            first += count;
        }
        PLSSVM_ASSERT(first == dim, "Feature split does not cover all features!");
    }

    // --- h2d: allocate device buffers and upload the data slices ---
    {
        const clock_mark mark{ devices_ };
        const detail::scoped_timer timer{ tracker, "h2d" };
        for (std::size_t d = 0; d < num_devices; ++d) {
            device_state &state = states_[d];
            sim::device &dev = devices_[d];
            state.data = std::make_unique<sim::device_buffer<T>>(dev, padded_ * state.num_features);
            state.q = std::make_unique<sim::device_buffer<T>>(dev, padded_);
            state.in = std::make_unique<sim::device_buffer<T>>(dev, padded_);
            state.out = std::make_unique<sim::device_buffer<T>>(dev, padded_);
            state.data->copy_from_host(slices[d].data().data(), slices[d].data().size());
        }
        tracker.add("h2d-sim", 0.0, mark.elapsed_max(devices_));
    }

    // --- q kernel: partial q vectors, one launch per device (§III-C-2) ---
    const std::size_t last_row = m - 1;
    T k_mm_total{ 0 };
    for (std::size_t d = 0; d < num_devices; ++d) {
        device_state &state = states_[d];
        sim::device &dev = devices_[d];
        const sim::kernel_cost cost_q = sim::q_kernel_cost(n_, state.num_features, kp_.kernel, sizeof(T));
        dev.launch("device_kernel_q", cost_q, [&] {
            kernel_q(state.data->data(), n_, padded_, last_row, state.num_features, kp_, state.q->data());
        });
        // partial k(x_m, x_m) over this device's feature slice
        T k_mm{ 0 };
        if (kernels::uses_inner_product_core(kp_.kernel)) {
            const T *base = state.data->data();
            for (std::size_t f = 0; f < state.num_features; ++f) {
                const T v = base[f * padded_ + last_row];
                k_mm += v * v;
            }
        }
        // single device: full epilogue + 1/C; multi device (linear only): raw partials
        if (num_devices == 1) {
            state.q_mm_entry = kernels::finish(kp_, kernels::uses_inner_product_core(kp_.kernel) ? k_mm : T{ 0 }) + T{ 1 } / cost;
        } else {
            state.q_mm_entry = k_mm + (d == 0 ? T{ 1 } / cost : T{ 0 });
        }
        k_mm_total += k_mm;
    }
    q_mm_ = (devices_.size() == 1
                 ? states_[0].q_mm_entry
                 : kernels::finish(kp_, k_mm_total) + T{ 1 } / cost);

    scratch_.assign(padded_, T{ 0 });
}

template <typename T>
void device_q_operator<T>::apply(const std::vector<T> &x, std::vector<T> &out) {
    PLSSVM_ASSERT(x.size() == n_ && out.size() == n_, "Vector size does not match the operator size!");
    const clock_mark mark{ devices_ };

    // stage the padded direction vector once on the host
    std::copy(x.begin(), x.end(), scratch_.begin());
    std::fill(scratch_.begin() + static_cast<std::ptrdiff_t>(n_), scratch_.end(), T{ 0 });

    for (std::size_t d = 0; d < devices_.size(); ++d) {
        device_state &state = states_[d];
        sim::device &dev = devices_[d];
        state.in->copy_from_host(scratch_.data(), padded_);
        // out buffers are accumulated into by the kernel; zero them first
        std::fill(state.out->data(), state.out->data() + padded_, T{ 0 });
        const sim::kernel_cost cost = sim::svm_kernel_cost(n_, state.num_features, kp_.kernel, cfg_, sizeof(T));
        dev.launch("device_kernel_svm", cost, [&] {
            kernel_svm(state.data->data(), state.q->data(), state.in->data(), state.out->data(),
                       n_, padded_, state.num_features, kp_, state.q_mm_entry, state.diag, cfg_);
        });
    }

    // download the partial results and reduce on the host (§III-C-5)
    std::fill(out.begin(), out.end(), T{ 0 });
    std::vector<T> partial(padded_);
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        states_[d].out->copy_to_host(partial.data(), padded_);
        #pragma omp simd
        for (std::size_t i = 0; i < n_; ++i) {
            out[i] += partial[i];
        }
    }

    apply_sim_seconds_ += mark.elapsed_max(devices_);
}

template <typename T>
std::vector<T> device_q_operator<T>::q_host() const {
    std::vector<T> q(n_, T{ 0 });
    std::vector<T> partial(padded_);
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        states_[d].q->copy_to_host(partial.data(), padded_);
        if (devices_.size() == 1) {
            std::copy(partial.begin(), partial.begin() + static_cast<std::ptrdiff_t>(n_), q.begin());
        } else {
            // linear kernel: the full q is the sum of the per-slice partials
            for (std::size_t i = 0; i < n_; ++i) {
                q[i] += partial[i];
            }
        }
    }
    return q;
}

template <typename T>
std::size_t device_q_operator<T>::device_allocated_bytes(const std::size_t d) const {
    PLSSVM_ASSERT(d < devices_.size(), "Device index out of range!");
    return devices_[d].allocated_bytes();
}

template class device_q_operator<float>;
template class device_q_operator<double>;

}  // namespace plssvm::backend::device
