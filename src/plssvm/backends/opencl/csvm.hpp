/**
 * @file
 * @brief The OpenCL backend (simulated; supports NVIDIA, AMD, and Intel).
 *
 * Same kernels as the CUDA backend with the OpenCL runtime profile: slightly
 * higher launch overhead and a small efficiency penalty (Table I shows
 * OpenCL "closely following" CUDA on NVIDIA devices and being the fastest
 * option on AMD/Intel hardware).
 */

#ifndef PLSSVM_BACKENDS_OPENCL_CSVM_HPP_
#define PLSSVM_BACKENDS_OPENCL_CSVM_HPP_

#include "plssvm/backends/device/csvm.hpp"
#include "plssvm/sim/device_spec.hpp"

#include <vector>

namespace plssvm::backend::opencl {

template <typename T>
class csvm final : public device::device_csvm<T> {
  public:
    explicit csvm(parameter params,
                  const std::vector<sim::device_spec> &specs = { sim::devices::nvidia_a100() },
                  const sim::block_config &cfg = {}) :
        device::device_csvm<T>{ params, sim::backend_runtime::opencl, specs, cfg } {}
};

}  // namespace plssvm::backend::opencl

#endif  // PLSSVM_BACKENDS_OPENCL_CSVM_HPP_
