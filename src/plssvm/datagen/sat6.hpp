/**
 * @file
 * @brief Synthetic SAT-6-like airborne image data set (paper §IV-B/D substitute).
 *
 * The real SAT-6 data set (324 000 training images, 28x28 pixels, 4 channels
 * R/G/B/IR => 3136 features) is not redistributable here, so this generator
 * produces images with the same shape and a comparable classification
 * structure: six land-cover classes rendered as textured spectral patches,
 * mapped to the paper's binary problem (buildings + roads => -1 "man-made",
 * barren/trees/grassland/water => +1 "natural"). Features land in [-1, 1]
 * like the paper's svm-scale preprocessing.
 */

#ifndef PLSSVM_DATAGEN_SAT6_HPP_
#define PLSSVM_DATAGEN_SAT6_HPP_

#include "plssvm/core/data_set.hpp"

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace plssvm::datagen {

/// The six SAT-6 land-cover classes.
enum class sat6_class {
    building = 0,
    road = 1,
    barren_land = 2,
    trees = 3,
    grassland = 4,
    water = 5,
};

/// Human-readable class name.
[[nodiscard]] std::string_view sat6_class_name(sat6_class c);

/// Binary label of a class: -1 for man-made (building, road), +1 otherwise.
[[nodiscard]] double sat6_binary_label(sat6_class c);

struct sat6_params {
    /// Total number of images; the paper's training split has 324 000 with a
    /// 193 729 : 130 271 man-made/natural imbalance which we mirror by ratio.
    std::size_t num_images{ 4096 };
    /// Image edge length (paper: 28) and channel count (paper: 4, RGB-IR).
    std::size_t image_size{ 28 };
    std::size_t num_channels{ 4 };
    /// Fraction of man-made images (paper: 193729/324000 ~ 0.598).
    double man_made_fraction{ 0.598 };
    /// Per-pixel texture noise strength.
    double noise_level{ 0.25 };
    /// Per-image global brightness jitter (correlated over all pixels);
    /// the main driver of class confusability: a dark building patch can look
    /// like asphalt, a bright one like barren land.
    double brightness_jitter{ 0.35 };
    /// Per-image, per-channel spectral jitter (atmospheric/sensor variation).
    double channel_jitter{ 0.30 };
    /// Fraction of images that are convex blends of two land-cover classes
    /// (mixed patches: a road through grassland, buildings among trees...).
    /// Blends crossing the man-made/natural boundary are genuinely ambiguous
    /// and bound the reachable accuracy like the real data set does.
    double mixed_fraction{ 0.15 };
    /// true: the paper's binary mapping (man-made -1 / natural +1);
    /// false: the original six class labels 0..5 (multi-class extension).
    bool binary_labels{ true };
    std::uint64_t seed{ 42 };
};

/**
 * @brief Generate a binary SAT-6-like data set with labels -1 (man-made) / +1
 *        (natural); features are flattened channel-major images in [-1, 1].
 */
template <typename T>
[[nodiscard]] data_set<T> make_sat6(const sat6_params &params);

}  // namespace plssvm::datagen

#endif  // PLSSVM_DATAGEN_SAT6_HPP_
