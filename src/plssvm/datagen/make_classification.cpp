#include "plssvm/datagen/make_classification.hpp"

#include "plssvm/core/matrix.hpp"
#include "plssvm/detail/rng.hpp"
#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

namespace plssvm::datagen {

template <typename T>
data_set<T> make_classification(const classification_params &params) {
    if (params.num_points < 2 || params.num_features == 0) {
        throw invalid_parameter_exception{ "make_classification requires at least 2 points and 1 feature!" };
    }
    if (params.flip_y < 0.0 || params.flip_y >= 1.0) {
        throw invalid_parameter_exception{ "flip_y must be in [0, 1)!" };
    }
    if (params.class_balance <= 0.0 || params.class_balance >= 1.0) {
        throw invalid_parameter_exception{ "class_balance must be in (0, 1)!" };
    }

    std::size_t informative = params.num_informative != 0 ? params.num_informative : std::max<std::size_t>(1, params.num_features / 2);
    informative = std::min(informative, params.num_features);
    std::size_t redundant = params.num_redundant != 0 ? params.num_redundant : (params.num_features - informative) / 2;
    if (informative + redundant > params.num_features) {
        throw invalid_parameter_exception{ "num_informative + num_redundant (" + std::to_string(informative + redundant) + ") exceeds num_features (" + std::to_string(params.num_features) + ")!" };
    }
    const std::size_t noise = params.num_features - informative - redundant;

    // two engines: the distribution geometry must not depend on the sample
    // seed, so train/test sets drawn with different `seed`s stay compatible
    detail::random_engine geometry_engine = detail::make_engine(params.centroid_seed);
    detail::random_engine engine = detail::make_engine(params.seed);

    const std::size_t m = params.num_points;
    const std::size_t num_positive = std::max<std::size_t>(1, static_cast<std::size_t>(static_cast<double>(m) * params.class_balance));

    // Redundant features mix the informative ones through a fixed random map
    // B (redundant x informative), shared by both classes like sklearn does.
    std::vector<T> mix(redundant * informative);
    for (T &entry : mix) {
        entry = detail::standard_normal<T>(geometry_engine);
    }

    // Class centroids: two vertices of the {-sep, +sep}^informative hypercube.
    // sklearn picks random distinct vertices (they agree in ~half of the
    // coordinates); the antipodal fallback keeps them fully opposed.
    const T sep = static_cast<T>(params.class_sep);
    std::vector<T> centroid_pos(informative, sep);
    std::vector<T> centroid_neg(informative, -sep);
    if (params.hypercube) {
        bool distinct = false;
        for (std::size_t f = 0; f < informative; ++f) {
            centroid_pos[f] = detail::uniform_index(geometry_engine, 0, 1) == 0 ? -sep : sep;
            centroid_neg[f] = detail::uniform_index(geometry_engine, 0, 1) == 0 ? -sep : sep;
            distinct = distinct || centroid_pos[f] != centroid_neg[f];
        }
        if (!distinct && informative > 0) {
            centroid_neg[0] = -centroid_pos[0];  // force distinct vertices
        }
    }

    aos_matrix<T> points{ m, params.num_features };
    std::vector<T> labels(m);

    for (std::size_t p = 0; p < m; ++p) {
        const bool positive = p < num_positive;
        const std::vector<T> &centroid = positive ? centroid_pos : centroid_neg;
        T *row = points.row_data(p);
        // informative block: Gaussian cluster around the class hypercube vertex
        for (std::size_t f = 0; f < informative; ++f) {
            row[f] = centroid[f] + detail::standard_normal<T>(engine);
        }
        // redundant block: linear images of the informative block
        for (std::size_t r = 0; r < redundant; ++r) {
            T sum{ 0 };
            for (std::size_t f = 0; f < informative; ++f) {
                sum += mix[r * informative + f] * row[f];
            }
            // normalise so redundant features have comparable magnitude
            row[informative + r] = sum / static_cast<T>(informative);
        }
        // noise block: pure N(0, 1) features without class signal
        for (std::size_t f = 0; f < noise; ++f) {
            row[informative + redundant + f] = detail::standard_normal<T>(engine);
        }
        labels[p] = positive ? T{ 1 } : T{ -1 };
    }

    // flip a flip_y fraction of the labels uniformly at random (paper: 1 %).
    // The draws happen even for flip_y = 0 so that the RNG stream — and with
    // it the subsequent shuffle — is identical across flip_y settings.
    for (std::size_t p = 0; p < m; ++p) {
        if (detail::uniform_real<double>(engine, 0.0, 1.0) < params.flip_y) {
            labels[p] = -labels[p];
        }
    }

    // shuffle points and labels together so class blocks don't stay contiguous
    std::vector<std::size_t> perm(m);
    std::iota(perm.begin(), perm.end(), std::size_t{ 0 });
    std::shuffle(perm.begin(), perm.end(), engine);

    aos_matrix<T> shuffled{ m, params.num_features };
    std::vector<T> shuffled_labels(m);
    for (std::size_t p = 0; p < m; ++p) {
        const T *src = points.row_data(perm[p]);
        std::copy(src, src + params.num_features, shuffled.row_data(p));
        shuffled_labels[p] = labels[perm[p]];
    }

    return data_set<T>{ std::move(shuffled), std::move(shuffled_labels) };
}

template data_set<float> make_classification<float>(const classification_params &);
template data_set<double> make_classification<double>(const classification_params &);

}  // namespace plssvm::datagen
