/**
 * @file
 * @brief C++ port of the synthetic classification generator the paper uses.
 *
 * The paper's data sets come from scikit-learn's `make_classification`
 * (problem type "planes" in PLSSVM's `generate_data.py`, §IV-B): two adjacent
 * Gaussian class clusters placed at opposite hypercube vertices, slightly
 * overlapping, with redundant features (linear combinations of informative
 * ones), pure-noise features, and 1 % randomly flipped labels.
 */

#ifndef PLSSVM_DATAGEN_MAKE_CLASSIFICATION_HPP_
#define PLSSVM_DATAGEN_MAKE_CLASSIFICATION_HPP_

#include "plssvm/core/data_set.hpp"

#include <cstddef>
#include <cstdint>

namespace plssvm::datagen {

/// Parameters of the generator; the defaults mirror the paper's setup.
struct classification_params {
    std::size_t num_points{ 1024 };
    std::size_t num_features{ 64 };
    /// Informative dimensions carrying class signal; 0 means num_features / 2.
    std::size_t num_informative{ 0 };
    /// Redundant dimensions (random linear combinations of informative ones);
    /// 0 means half of the remaining dimensions.
    std::size_t num_redundant{ 0 };
    /// Distance of each class centroid from the origin per informative axis.
    /// Larger values separate the classes more; ~1.0 gives the paper's
    /// "adjacent, slightly overlapping" clusters.
    double class_sep{ 1.0 };
    /// Place class centroids on two random (distinct) vertices of the
    /// {-class_sep, +class_sep}^informative hypercube like scikit-learn does.
    /// The vertices agree in roughly half of the coordinates, giving the data
    /// a large common mean component; disabling this places the centroids
    /// antipodally (+-class_sep in every informative dimension).
    bool hypercube{ true };
    /// Fraction of labels flipped uniformly at random (paper: 1 %).
    double flip_y{ 0.01 };
    /// Fraction of points in the +1 class.
    double class_balance{ 0.5 };
    /// Seed for the *sampled points* (noise, flips, shuffle). Different seeds
    /// give independent draws from the same distribution -- safe for
    /// train/test splits.
    std::uint64_t seed{ 42 };
    /// Seed for the *distribution itself* (hypercube vertices, redundant-
    /// feature mixing matrix). Change it to get a different problem geometry;
    /// keep it fixed so data sets with different `seed`s stay compatible.
    std::uint64_t centroid_seed{ 0xC0FFEE };
};

/**
 * @brief Generate a labeled binary data set (labels +1 / -1).
 * @throws plssvm::invalid_parameter_exception on inconsistent sizes
 *         (e.g. informative + redundant > num_features)
 */
template <typename T>
[[nodiscard]] data_set<T> make_classification(const classification_params &params);

}  // namespace plssvm::datagen

#endif  // PLSSVM_DATAGEN_MAKE_CLASSIFICATION_HPP_
