#include "plssvm/datagen/sat6.hpp"

#include "plssvm/core/matrix.hpp"
#include "plssvm/detail/rng.hpp"
#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace plssvm::datagen {

std::string_view sat6_class_name(const sat6_class c) {
    switch (c) {
        case sat6_class::building:
            return "building";
        case sat6_class::road:
            return "road";
        case sat6_class::barren_land:
            return "barren_land";
        case sat6_class::trees:
            return "trees";
        case sat6_class::grassland:
            return "grassland";
        case sat6_class::water:
            return "water";
    }
    return "unknown";
}

double sat6_binary_label(const sat6_class c) {
    return (c == sat6_class::building || c == sat6_class::road) ? -1.0 : 1.0;
}

namespace {

/// Base spectral signature (R, G, B, IR) per class, roughly matching real
/// land-cover reflectance relationships (vegetation: high IR; water: low IR).
constexpr std::array<std::array<double, 4>, 6> class_signatures{ {
    { 0.45, 0.40, 0.42, -0.20 },   // building: bright grey, low IR
    { 0.10, 0.08, 0.12, -0.35 },   // road: dark asphalt, low IR
    { 0.35, 0.15, -0.10, 0.10 },   // barren land: brownish
    { -0.30, 0.20, -0.25, 0.70 },  // trees: green, very high IR
    { -0.10, 0.35, -0.15, 0.45 },  // grassland: light green, high IR
    { -0.55, -0.35, 0.25, -0.75 }, // water: blue, very low IR
} };

/// Class-specific spatial texture in [-1, 1], evaluated per pixel.
[[nodiscard]] double texture_value(const sat6_class c, const std::size_t x, const std::size_t y,
                                   const std::size_t size, detail::random_engine &engine,
                                   const double rot_offset) {
    const double fx = static_cast<double>(x) / static_cast<double>(size);
    const double fy = static_cast<double>(y) / static_cast<double>(size);
    switch (c) {
        case sat6_class::building: {
            // blocky structures: sharp rectangular plateaus
            const int bx = static_cast<int>(fx * 4.0 + rot_offset) % 2;
            const int by = static_cast<int>(fy * 4.0 + rot_offset) % 2;
            return (bx == by ? 0.3 : -0.3) + 0.05 * detail::standard_normal<double>(engine);
        }
        case sat6_class::road: {
            // a linear strip crossing the patch
            const double dist = std::abs(fx - fy + rot_offset * 0.2);
            return (dist < 0.12 ? 0.4 : -0.2) + 0.05 * detail::standard_normal<double>(engine);
        }
        case sat6_class::barren_land:
            // smooth undulation
            return 0.15 * std::sin(6.28 * (fx + rot_offset)) * std::cos(6.28 * fy);
        case sat6_class::trees:
            // high-frequency canopy speckle
            return 0.25 * detail::standard_normal<double>(engine);
        case sat6_class::grassland:
            // mild speckle
            return 0.10 * detail::standard_normal<double>(engine);
        case sat6_class::water:
            // near-uniform with gentle ripples
            return 0.05 * std::sin(12.56 * (fx + fy) + rot_offset);
    }
    return 0.0;
}

}  // namespace

template <typename T>
data_set<T> make_sat6(const sat6_params &params) {
    if (params.num_images < 2 || params.image_size == 0 || params.num_channels == 0 || params.num_channels > 4) {
        throw invalid_parameter_exception{ "make_sat6 requires >= 2 images, a positive image size, and 1-4 channels!" };
    }
    if (params.man_made_fraction <= 0.0 || params.man_made_fraction >= 1.0) {
        throw invalid_parameter_exception{ "man_made_fraction must be in (0, 1)!" };
    }

    detail::random_engine engine = detail::make_engine(params.seed);

    const std::size_t pixels = params.image_size * params.image_size;
    const std::size_t num_features = pixels * params.num_channels;
    const std::size_t m = params.num_images;

    // Distribute images over classes: man-made fraction split evenly between
    // building/road, the rest evenly over the four natural classes.
    std::vector<sat6_class> assignment(m);
    const auto num_man_made = static_cast<std::size_t>(static_cast<double>(m) * params.man_made_fraction);
    for (std::size_t i = 0; i < m; ++i) {
        if (i < num_man_made) {
            assignment[i] = (i % 2 == 0) ? sat6_class::building : sat6_class::road;
        } else {
            constexpr std::array natural{ sat6_class::barren_land, sat6_class::trees, sat6_class::grassland, sat6_class::water };
            assignment[i] = natural[(i - num_man_made) % natural.size()];
        }
    }
    std::shuffle(assignment.begin(), assignment.end(), engine);

    aos_matrix<T> points{ m, num_features };
    std::vector<T> labels(m);

    for (std::size_t img = 0; img < m; ++img) {
        const sat6_class c = assignment[img];
        const auto &signature = class_signatures[static_cast<std::size_t>(c)];
        // mixed patches: blend with a second class; c stays dominant
        sat6_class c2 = c;
        double blend = 0.0;  // weight of the second class, < 0.5
        if (detail::uniform_real<double>(engine, 0.0, 1.0) < params.mixed_fraction) {
            c2 = static_cast<sat6_class>((static_cast<std::size_t>(c) + detail::uniform_index(engine, 1, 5)) % 6);
            blend = detail::uniform_real<double>(engine, 0.2, 0.5);
        }
        const auto &signature2 = class_signatures[static_cast<std::size_t>(c2)];
        // Per-image variation: global brightness, per-channel spectral jitter,
        // and texture orientation jitter. The correlated (image-level) terms
        // are what makes classes genuinely confusable for the classifier.
        const double brightness = params.brightness_jitter * detail::standard_normal<double>(engine);
        std::array<double, 4> channel_offset{};
        for (std::size_t ch = 0; ch < params.num_channels; ++ch) {
            channel_offset[ch] = params.channel_jitter * detail::standard_normal<double>(engine);
        }
        const double rot_offset = detail::uniform_real<double>(engine, 0.0, 1.0);

        T *row = points.row_data(img);
        for (std::size_t y = 0; y < params.image_size; ++y) {
            for (std::size_t x = 0; x < params.image_size; ++x) {
                double tex = texture_value(c, x, y, params.image_size, engine, rot_offset);
                if (blend > 0.0) {
                    tex = (1.0 - blend) * tex
                          + blend * texture_value(c2, x, y, params.image_size, engine, rot_offset);
                }
                for (std::size_t ch = 0; ch < params.num_channels; ++ch) {
                    const double noise = params.noise_level * detail::standard_normal<double>(engine);
                    const double spectral = (1.0 - blend) * signature[ch] + blend * signature2[ch];
                    double value = spectral + brightness + channel_offset[ch] + tex + noise;
                    value = std::clamp(value, -1.0, 1.0);
                    // channel-major flattening: feature = ch * pixels + y * size + x
                    row[ch * pixels + y * params.image_size + x] = static_cast<T>(value);
                }
            }
        }
        labels[img] = params.binary_labels ? static_cast<T>(sat6_binary_label(c))
                                           : static_cast<T>(static_cast<int>(c));
    }

    return data_set<T>{ std::move(points), std::move(labels) };
}

template data_set<float> make_sat6<float>(const sat6_params &);
template data_set<double> make_sat6<double>(const sat6_params &);

}  // namespace plssvm::datagen
