/**
 * @file
 * @brief Abstract linear operator consumed by the CG solver.
 *
 * The LS-SVM system matrix Q~ has (m-1)^2 entries and is never materialised
 * (paper §III-B); every backend provides its own implicit matrix-vector
 * product behind this interface.
 */

#ifndef PLSSVM_SOLVER_OPERATOR_HPP_
#define PLSSVM_SOLVER_OPERATOR_HPP_

#include <cstddef>
#include <vector>

namespace plssvm::solver {

template <typename T>
class linear_operator {
  public:
    linear_operator() = default;
    linear_operator(const linear_operator &) = delete;
    linear_operator &operator=(const linear_operator &) = delete;
    linear_operator(linear_operator &&) = delete;
    linear_operator &operator=(linear_operator &&) = delete;
    virtual ~linear_operator() = default;

    /// Dimension n of the square operator.
    [[nodiscard]] virtual std::size_t size() const noexcept = 0;

    /// Compute out = A * x. Both vectors have size() entries; out is overwritten.
    virtual void apply(const std::vector<T> &x, std::vector<T> &out) = 0;
};

}  // namespace plssvm::solver

#endif  // PLSSVM_SOLVER_OPERATOR_HPP_
