/**
 * @file
 * @brief Conjugate Gradient solver (Shewchuk's formulation, paper §III-B).
 *
 * Solves A x = b for symmetric positive definite A, terminating when the
 * relative residual ||r|| / ||b|| drops below the configured epsilon — the
 * "epsilon" whose runtime/accuracy trade-off the paper studies in Fig. 3.
 * The exact residual r = b - A x is recomputed every
 * `solver_control::residual_refresh_interval` iterations to bound the drift
 * of the recurrence-updated residual.
 */

#ifndef PLSSVM_SOLVER_CG_HPP_
#define PLSSVM_SOLVER_CG_HPP_

#include "plssvm/core/parameter.hpp"
#include "plssvm/solver/operator.hpp"

#include <cstddef>
#include <functional>
#include <vector>

namespace plssvm::solver {

/// Outcome of a CG run.
struct cg_result {
    std::size_t iterations{ 0 };
    double final_relative_residual{ 0.0 };
    bool converged{ false };
};

/// Observer invoked after every CG iteration (used by the epsilon benches to
/// record residual trajectories); receives (iteration, relative_residual).
using cg_observer = std::function<void(std::size_t, double)>;

/**
 * @brief Run CG on @p A with right-hand side @p b, starting from @p x
 *        (commonly the zero vector, which callers must pre-size).
 * @throws plssvm::solver_exception when `ctrl.strict` and the iteration budget
 *         is exhausted before reaching the target residual
 */
template <typename T>
cg_result conjugate_gradients(linear_operator<T> &A,
                              const std::vector<T> &b,
                              std::vector<T> &x,
                              const solver_control &ctrl,
                              const cg_observer &observer = {});

// --- BLAS-1 style helpers shared by host and simulated-device code paths ---

/// <x, y>
template <typename T>
[[nodiscard]] T dot_product(const std::vector<T> &x, const std::vector<T> &y);

/// y += a * x
template <typename T>
void axpy(T a, const std::vector<T> &x, std::vector<T> &y);

/// y = x + a * y   (used for the direction update d = r + beta * d)
template <typename T>
void xpay(const std::vector<T> &x, T a, std::vector<T> &y);

}  // namespace plssvm::solver

#endif  // PLSSVM_SOLVER_CG_HPP_
