#include "plssvm/solver/cg.hpp"

#include "plssvm/detail/assert.hpp"
#include "plssvm/exceptions.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace plssvm::solver {

template <typename T>
T dot_product(const std::vector<T> &x, const std::vector<T> &y) {
    PLSSVM_ASSERT(x.size() == y.size(), "dot_product requires equally sized vectors!");
    T sum{ 0 };
    const std::size_t n = x.size();
    #pragma omp parallel for simd reduction(+ : sum)
    for (std::size_t i = 0; i < n; ++i) {
        sum += x[i] * y[i];
    }
    return sum;
}

template <typename T>
void axpy(const T a, const std::vector<T> &x, std::vector<T> &y) {
    PLSSVM_ASSERT(x.size() == y.size(), "axpy requires equally sized vectors!");
    const std::size_t n = x.size();
    #pragma omp parallel for simd
    for (std::size_t i = 0; i < n; ++i) {
        y[i] += a * x[i];
    }
}

template <typename T>
void xpay(const std::vector<T> &x, const T a, std::vector<T> &y) {
    PLSSVM_ASSERT(x.size() == y.size(), "xpay requires equally sized vectors!");
    const std::size_t n = x.size();
    #pragma omp parallel for simd
    for (std::size_t i = 0; i < n; ++i) {
        y[i] = x[i] + a * y[i];
    }
}

template <typename T>
cg_result conjugate_gradients(linear_operator<T> &A,
                              const std::vector<T> &b,
                              std::vector<T> &x,
                              const solver_control &ctrl,
                              const cg_observer &observer) {
    ctrl.validate();
    const std::size_t n = A.size();
    PLSSVM_ASSERT(b.size() == n, "Right-hand side size does not match the operator!");
    PLSSVM_ASSERT(x.size() == n, "Initial guess size does not match the operator!");

    const std::size_t max_iterations = ctrl.max_iterations.value_or(n);

    const T norm_b_squared = dot_product(b, b);
    cg_result result;
    if (norm_b_squared == T{ 0 }) {
        // b = 0 => x = 0 is the exact solution.
        std::fill(x.begin(), x.end(), T{ 0 });
        result.converged = true;
        return result;
    }

    // r = b - A x
    std::vector<T> r(n);
    std::vector<T> Ax(n);
    A.apply(x, Ax);
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - Ax[i];
    }

    std::vector<T> d = r;  // initial search direction
    std::vector<T> Ad(n);
    T delta = dot_product(r, r);
    const T target = static_cast<T>(ctrl.epsilon) * static_cast<T>(ctrl.epsilon) * norm_b_squared;

    std::size_t iteration = 0;
    while (iteration < max_iterations && delta > target) {
        A.apply(d, Ad);
        const T dAd = dot_product(d, Ad);
        if (dAd <= T{ 0 }) {
            // Loss of positive definiteness (numerically); bail out with the
            // current iterate rather than dividing by a non-positive value.
            break;
        }
        const T alpha = delta / dAd;
        axpy(alpha, d, x);

        ++iteration;
        if (iteration % ctrl.residual_refresh_interval == 0) {
            // recompute the exact residual to remove accumulated drift
            A.apply(x, Ax);
            for (std::size_t i = 0; i < n; ++i) {
                r[i] = b[i] - Ax[i];
            }
        } else {
            axpy(-alpha, Ad, r);
        }

        const T delta_new = dot_product(r, r);
        const T beta = delta_new / delta;
        xpay(r, beta, d);
        delta = delta_new;

        if (observer) {
            observer(iteration, std::sqrt(static_cast<double>(delta / norm_b_squared)));
        }
    }

    result.iterations = iteration;
    result.final_relative_residual = std::sqrt(static_cast<double>(delta / norm_b_squared));
    result.converged = delta <= target;
    if (!result.converged && ctrl.strict) {
        throw solver_exception{ "CG did not converge within " + std::to_string(max_iterations) + " iterations (relative residual " + std::to_string(result.final_relative_residual) + ")!" };
    }
    return result;
}

template float dot_product<float>(const std::vector<float> &, const std::vector<float> &);
template double dot_product<double>(const std::vector<double> &, const std::vector<double> &);
template void axpy<float>(float, const std::vector<float> &, std::vector<float> &);
template void axpy<double>(double, const std::vector<double> &, std::vector<double> &);
template void xpay<float>(const std::vector<float> &, float, std::vector<float> &);
template void xpay<double>(const std::vector<double> &, double, std::vector<double> &);

template cg_result conjugate_gradients<float>(linear_operator<float> &, const std::vector<float> &, std::vector<float> &, const solver_control &, const cg_observer &);
template cg_result conjugate_gradients<double>(linear_operator<double> &, const std::vector<double> &, std::vector<double> &, const solver_control &, const cg_observer &);

}  // namespace plssvm::solver
