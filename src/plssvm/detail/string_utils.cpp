#include "plssvm/detail/string_utils.hpp"

#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <string>

namespace plssvm::detail {

namespace {

[[nodiscard]] constexpr bool is_space(const char c) noexcept {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}

}  // namespace

std::string_view trim_left(std::string_view str) {
    while (!str.empty() && is_space(str.front())) {
        str.remove_prefix(1);
    }
    return str;
}

std::string_view trim_right(std::string_view str) {
    while (!str.empty() && is_space(str.back())) {
        str.remove_suffix(1);
    }
    return str;
}

std::string_view trim(std::string_view str) {
    return trim_left(trim_right(str));
}

bool starts_with(const std::string_view str, const std::string_view prefix) {
    return str.substr(0, prefix.size()) == prefix;
}

bool ends_with(const std::string_view str, const std::string_view suffix) {
    return str.size() >= suffix.size() && str.substr(str.size() - suffix.size()) == suffix;
}

std::string to_lower_case(const std::string_view str) {
    std::string result{ str };
    std::transform(result.begin(), result.end(), result.begin(),
                   [](const unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return result;
}

std::string to_upper_case(const std::string_view str) {
    std::string result{ str };
    std::transform(result.begin(), result.end(), result.begin(),
                   [](const unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return result;
}

std::vector<std::string_view> split(const std::string_view str, const char delim) {
    std::vector<std::string_view> tokens;
    const bool drop_empty = is_space(delim);
    std::size_t start = 0;
    while (start <= str.size()) {
        const std::size_t end = str.find(delim, start);
        const std::string_view token = str.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
        if (!drop_empty || !token.empty()) {
            tokens.push_back(token);
        }
        if (end == std::string_view::npos) {
            break;
        }
        start = end + 1;
    }
    return tokens;
}

namespace {

// GCC 12 libstdc++ supports std::from_chars for floating point; use it for
// integers and floating point alike and fall back to strtod only if needed.
template <typename T>
[[nodiscard]] bool parse_impl(const std::string_view str, T &out) noexcept {
    const std::string_view trimmed = trim(str);
    if (trimmed.empty()) {
        return false;
    }
    const char *first = trimmed.data();
    const char *last = trimmed.data() + trimmed.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc{} && ptr == last;
}

}  // namespace

template <typename T>
T convert_to(const std::string_view str) {
    T value{};
    if (!parse_impl(str, value)) {
        throw invalid_file_format_exception{ "Can't convert '" + std::string{ str } + "' to a number!" };
    }
    return value;
}

template <typename T>
bool convert_to_safe(const std::string_view str, T &out) noexcept {
    return parse_impl(str, out);
}

template float convert_to<float>(std::string_view);
template double convert_to<double>(std::string_view);
template int convert_to<int>(std::string_view);
template long convert_to<long>(std::string_view);
template unsigned long convert_to<unsigned long>(std::string_view);

template bool convert_to_safe<float>(std::string_view, float &) noexcept;
template bool convert_to_safe<double>(std::string_view, double &) noexcept;
template bool convert_to_safe<int>(std::string_view, int &) noexcept;
template bool convert_to_safe<long>(std::string_view, long &) noexcept;
template bool convert_to_safe<unsigned long>(std::string_view, unsigned long &) noexcept;

}  // namespace plssvm::detail
