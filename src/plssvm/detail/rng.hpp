/**
 * @file
 * @brief Deterministic pseudo-random number generation used by the synthetic
 *        data generators and the property-based tests.
 *
 * A fixed, explicitly seedable engine keeps every experiment reproducible:
 * the paper averages over freshly generated data sets per run, which we mirror
 * by varying the seed per repetition while keeping the seed sequence itself
 * deterministic.
 */

#ifndef PLSSVM_DETAIL_RNG_HPP_
#define PLSSVM_DETAIL_RNG_HPP_

#include <cstdint>
#include <random>

namespace plssvm::detail {

/// The random engine used across the library (fast, high quality, fixed layout).
using random_engine = std::mt19937_64;

/// Create an engine seeded with @p seed (identical sequences across platforms).
[[nodiscard]] inline random_engine make_engine(const std::uint64_t seed) {
    return random_engine{ seed };
}

/// Draw from the standard normal distribution N(0, 1).
template <typename T>
[[nodiscard]] T standard_normal(random_engine &engine) {
    std::normal_distribution<T> dist{ T{ 0 }, T{ 1 } };
    return dist(engine);
}

/// Draw uniformly from [lo, hi).
template <typename T>
[[nodiscard]] T uniform_real(random_engine &engine, const T lo, const T hi) {
    std::uniform_real_distribution<T> dist{ lo, hi };
    return dist(engine);
}

/// Draw an integer uniformly from [lo, hi] (inclusive).
[[nodiscard]] inline std::size_t uniform_index(random_engine &engine, const std::size_t lo, const std::size_t hi) {
    std::uniform_int_distribution<std::size_t> dist{ lo, hi };
    return dist(engine);
}

}  // namespace plssvm::detail

#endif  // PLSSVM_DETAIL_RNG_HPP_
