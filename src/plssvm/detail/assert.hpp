/**
 * @file
 * @brief Lightweight runtime assertion macro used throughout the library.
 *
 * Unlike the standard `assert`, `PLSSVM_ASSERT` stays active in Release builds
 * (the checks guard algorithmic invariants whose violation would silently
 * corrupt results) and reports a formatted message with source location.
 */

#ifndef PLSSVM_DETAIL_ASSERT_HPP_
#define PLSSVM_DETAIL_ASSERT_HPP_

#include <cstdio>
#include <cstdlib>

namespace plssvm::detail {

/// Print an assertion failure report and abort. Used by `PLSSVM_ASSERT`.
[[noreturn]] inline void assert_fail(const char *cond, const char *msg, const char *file, int line) {
    std::fprintf(stderr, "PLSSVM assertion failed: (%s) at %s:%d\n  %s\n", cond, file, line, msg);
    std::abort();
}

}  // namespace plssvm::detail

#define PLSSVM_ASSERT(cond, msg)                                                 \
    do {                                                                          \
        if (!(cond)) {                                                            \
            ::plssvm::detail::assert_fail(#cond, msg, __FILE__, __LINE__);        \
        }                                                                         \
    } while (false)

#endif  // PLSSVM_DETAIL_ASSERT_HPP_
