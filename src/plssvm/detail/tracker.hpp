/**
 * @file
 * @brief Per-component performance tracker.
 *
 * The paper's Fig. 2 and Fig. 4 break the training pipeline into the
 * components "read", "transform", "h2d", "cg", "write", and "total".
 * Every `csvm` implementation reports its stage timings through this tracker
 * so the bench harness can regenerate those figures from the library itself
 * instead of instrumenting from the outside.
 *
 * Two clocks are recorded per component:
 *  - wall seconds (real execution on this machine), and
 *  - simulated device seconds (accumulated by the virtual device layer;
 *    zero for purely host-side components).
 */

#ifndef PLSSVM_DETAIL_TRACKER_HPP_
#define PLSSVM_DETAIL_TRACKER_HPP_

#include <chrono>
#include <map>
#include <string>
#include <string_view>

namespace plssvm::detail {

/// Timing record of a single pipeline component.
struct component_timing {
    double wall_seconds{ 0.0 };  ///< measured wall-clock seconds
    double sim_seconds{ 0.0 };   ///< simulated device seconds (virtual backends)
    std::size_t invocations{ 0 };

    /// The seconds a user should report: simulated time when a virtual device
    /// was involved, wall time otherwise.
    [[nodiscard]] double reported_seconds() const noexcept {
        return sim_seconds > 0.0 ? sim_seconds : wall_seconds;
    }
};

/**
 * @brief Accumulates component timings for one training/prediction run.
 *
 * Not thread-safe by design: each `csvm` owns one tracker and stages run
 * sequentially (the pipeline of the paper is strictly read -> transform ->
 * cg -> write).
 */
class tracker {
  public:
    /// Add @p wall_seconds (and optionally @p sim_seconds) to component @p name.
    void add(std::string_view name, double wall_seconds, double sim_seconds = 0.0);

    /// Lookup a component; returns a zero record if the component never ran.
    [[nodiscard]] component_timing get(std::string_view name) const;

    /// All recorded components (sorted by name).
    [[nodiscard]] const std::map<std::string, component_timing> &components() const noexcept { return components_; }

    /// Sum of wall seconds over all components.
    [[nodiscard]] double total_wall_seconds() const noexcept;

    /// Sum of simulated seconds over all components.
    [[nodiscard]] double total_sim_seconds() const noexcept;

    /// Set the named scalar metric (gauge semantics: last write wins). Used by
    /// the serving layer for non-timing aggregates such as latency percentiles
    /// and requests/s.
    void set_metric(std::string_view name, double value);

    /// Lookup a metric; returns 0.0 if it was never set.
    [[nodiscard]] double get_metric(std::string_view name) const;

    /// All recorded metrics (sorted by name).
    [[nodiscard]] const std::map<std::string, double> &metrics() const noexcept { return metrics_; }

    /// Remove all recorded timings and metrics.
    void clear() noexcept {
        components_.clear();
        metrics_.clear();
    }

  private:
    std::map<std::string, component_timing> components_;
    std::map<std::string, double> metrics_;
};

/// RAII stopwatch: adds the elapsed wall time to @p t under @p name on destruction.
class scoped_timer {
  public:
    scoped_timer(tracker &t, std::string name);
    scoped_timer(const scoped_timer &) = delete;
    scoped_timer &operator=(const scoped_timer &) = delete;
    ~scoped_timer();

  private:
    tracker &tracker_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace plssvm::detail

#endif  // PLSSVM_DETAIL_TRACKER_HPP_
