#include "plssvm/detail/tracker.hpp"

#include <chrono>
#include <string>
#include <utility>

namespace plssvm::detail {

void tracker::add(const std::string_view name, const double wall_seconds, const double sim_seconds) {
    component_timing &entry = components_[std::string{ name }];
    entry.wall_seconds += wall_seconds;
    entry.sim_seconds += sim_seconds;
    ++entry.invocations;
}

component_timing tracker::get(const std::string_view name) const {
    const auto it = components_.find(std::string{ name });
    return it == components_.end() ? component_timing{} : it->second;
}

void tracker::set_metric(const std::string_view name, const double value) {
    metrics_[std::string{ name }] = value;
}

double tracker::get_metric(const std::string_view name) const {
    const auto it = metrics_.find(std::string{ name });
    return it == metrics_.end() ? 0.0 : it->second;
}

double tracker::total_wall_seconds() const noexcept {
    double sum = 0.0;
    for (const auto &[name, timing] : components_) {
        sum += timing.wall_seconds;
    }
    return sum;
}

double tracker::total_sim_seconds() const noexcept {
    double sum = 0.0;
    for (const auto &[name, timing] : components_) {
        sum += timing.sim_seconds;
    }
    return sum;
}

scoped_timer::scoped_timer(tracker &t, std::string name) :
    tracker_{ t },
    name_{ std::move(name) },
    start_{ std::chrono::steady_clock::now() } {}

scoped_timer::~scoped_timer() {
    const auto end = std::chrono::steady_clock::now();
    tracker_.add(name_, std::chrono::duration<double>(end - start_).count());
}

}  // namespace plssvm::detail
