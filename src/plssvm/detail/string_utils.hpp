/**
 * @file
 * @brief Small string helpers used by the file parsers and CLI front-ends.
 *
 * The LIBSVM/ARFF parsers are on the hot path of the "read" component the
 * paper measures (Fig. 2), therefore everything here works on
 * `std::string_view` without allocating.
 */

#ifndef PLSSVM_DETAIL_STRING_UTILS_HPP_
#define PLSSVM_DETAIL_STRING_UTILS_HPP_

#include <string>
#include <string_view>
#include <vector>

namespace plssvm::detail {

/// Remove leading whitespace (spaces and tabs) from @p str.
[[nodiscard]] std::string_view trim_left(std::string_view str);

/// Remove trailing whitespace (spaces, tabs, carriage returns) from @p str.
[[nodiscard]] std::string_view trim_right(std::string_view str);

/// Remove leading and trailing whitespace from @p str.
[[nodiscard]] std::string_view trim(std::string_view str);

/// Check whether @p str starts with the prefix @p prefix.
[[nodiscard]] bool starts_with(std::string_view str, std::string_view prefix);

/// Check whether @p str ends with the suffix @p suffix.
[[nodiscard]] bool ends_with(std::string_view str, std::string_view suffix);

/// Convert @p str to lower case (ASCII).
[[nodiscard]] std::string to_lower_case(std::string_view str);

/// Convert @p str to upper case (ASCII).
[[nodiscard]] std::string to_upper_case(std::string_view str);

/// Split @p str at every occurrence of @p delim; empty tokens are dropped when
/// @p delim is whitespace-like (' '), kept otherwise (CSV semantics).
[[nodiscard]] std::vector<std::string_view> split(std::string_view str, char delim = ' ');

/**
 * @brief Parse a floating point value from @p str.
 * @throws plssvm::invalid_file_format_exception if @p str is not a valid number
 *         or contains trailing garbage.
 */
template <typename T>
[[nodiscard]] T convert_to(std::string_view str);

/// Parse, returning `false` on failure instead of throwing (hot parser loop).
template <typename T>
[[nodiscard]] bool convert_to_safe(std::string_view str, T &out) noexcept;

}  // namespace plssvm::detail

#endif  // PLSSVM_DETAIL_STRING_UTILS_HPP_
