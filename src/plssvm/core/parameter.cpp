#include "plssvm/core/parameter.hpp"

#include "plssvm/exceptions.hpp"

#include <ostream>
#include <string>

namespace plssvm {

double parameter::effective_gamma(const std::size_t num_features) const {
    if (gamma.has_value()) {
        return *gamma;
    }
    if (num_features == 0) {
        throw invalid_parameter_exception{ "Default gamma = 1/num_features requires at least one feature!" };
    }
    return 1.0 / static_cast<double>(num_features);
}

void parameter::validate() const {
    if (cost <= 0.0) {
        throw invalid_parameter_exception{ "The cost parameter C must be positive, got " + std::to_string(cost) + "!" };
    }
    if (gamma.has_value() && *gamma <= 0.0 && kernel != kernel_type::linear) {
        throw invalid_parameter_exception{ "gamma must be positive, got " + std::to_string(*gamma) + "!" };
    }
    if (kernel == kernel_type::polynomial && degree < 1) {
        throw invalid_parameter_exception{ "The polynomial degree must be at least 1, got " + std::to_string(degree) + "!" };
    }
}

void solver_control::validate() const {
    if (epsilon <= 0.0 || epsilon >= 1.0) {
        throw invalid_parameter_exception{ "The CG relative residual epsilon must be in (0, 1), got " + std::to_string(epsilon) + "!" };
    }
    if (residual_refresh_interval == 0) {
        throw invalid_parameter_exception{ "The residual refresh interval must be positive!" };
    }
}

std::ostream &operator<<(std::ostream &out, const parameter &params) {
    out << "kernel = " << params.kernel
        << ", degree = " << params.degree
        << ", gamma = ";
    if (params.gamma.has_value()) {
        out << *params.gamma;
    } else {
        out << "1/num_features";
    }
    out << ", coef0 = " << params.coef0
        << ", cost = " << params.cost;
    return out;
}

}  // namespace plssvm
