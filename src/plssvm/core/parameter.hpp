/**
 * @file
 * @brief SVM hyper-parameters and solver controls.
 *
 * Mirrors the LIBSVM parameter set the paper's CLI exposes (`-t`, `-d`, `-g`,
 * `-r`, `-c`, `-e`) plus the PLSSVM-specific backend selection and CG budget.
 */

#ifndef PLSSVM_CORE_PARAMETER_HPP_
#define PLSSVM_CORE_PARAMETER_HPP_

#include "plssvm/core/kernel_types.hpp"

#include <cstddef>
#include <iosfwd>
#include <optional>

namespace plssvm {

/**
 * @brief Hyper-parameters of the (LS-)SVM.
 *
 * `gamma` defaults to `1 / num_features` when unset, exactly like LIBSVM's
 * default; call `effective_gamma(num_features)` once the data is known.
 */
struct parameter {
    /// Kernel function to use (paper §II-E).
    kernel_type kernel{ kernel_type::linear };
    /// Degree of the polynomial kernel.
    int degree{ 3 };
    /// gamma of the polynomial/rbf/sigmoid kernels; unset means 1/num_features.
    std::optional<double> gamma{};
    /// coef0 (r) of the polynomial/sigmoid kernels.
    double coef0{ 0.0 };
    /// Regularisation weight C (> 0); the LS-SVM adds 1/C on the Q diagonal.
    double cost{ 1.0 };

    /// Resolve gamma: the explicit value if set, otherwise 1/num_features.
    [[nodiscard]] double effective_gamma(std::size_t num_features) const;

    /// @throws plssvm::invalid_parameter_exception on invalid combinations.
    void validate() const;

    [[nodiscard]] bool operator==(const parameter &) const = default;
};

/**
 * @brief Controls of the iterative CG solver (paper §III-B, Fig. 3).
 */
struct solver_control {
    /// Relative residual termination threshold ("epsilon" throughout the paper).
    double epsilon{ 1e-6 };
    /// Maximum CG iterations; unset means m-1 (system size).
    std::optional<std::size_t> max_iterations{};
    /// Re-compute the exact residual every this many iterations to fight drift.
    std::size_t residual_refresh_interval{ 50 };
    /// Throw `solver_exception` when the budget is exhausted before convergence.
    bool strict{ false };

    /// @throws plssvm::invalid_parameter_exception on invalid values.
    void validate() const;
};

std::ostream &operator<<(std::ostream &out, const parameter &params);

}  // namespace plssvm

#endif  // PLSSVM_CORE_PARAMETER_HPP_
