/**
 * @file
 * @brief Compressed sparse row (CSR) matrix substrate.
 *
 * Used by the LIBSVM-style SMO baseline in its sparse mode (the paper
 * benchmarks both "LIBSVM" = sparse and "LIBSVM-DENSE"), and listed by the
 * paper (§V) as the planned representation for a future sparse CG solver.
 */

#ifndef PLSSVM_CORE_SPARSE_MATRIX_HPP_
#define PLSSVM_CORE_SPARSE_MATRIX_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/detail/assert.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plssvm {

template <typename T>
class csr_matrix {
  public:
    /// One stored entry: (column index, value).
    struct entry {
        std::uint32_t index;
        T value;
    };

    csr_matrix() = default;

    /// Build from a dense matrix, dropping exact zeros.
    explicit csr_matrix(const aos_matrix<T> &dense) :
        rows_{ dense.num_rows() },
        cols_{ dense.num_cols() } {
        offsets_.reserve(rows_ + 1);
        offsets_.push_back(0);
        for (std::size_t r = 0; r < rows_; ++r) {
            const T *src = dense.row_data(r);
            for (std::size_t c = 0; c < cols_; ++c) {
                if (src[c] != T{ 0 }) {
                    entries_.push_back(entry{ static_cast<std::uint32_t>(c), src[c] });
                }
            }
            offsets_.push_back(entries_.size());
        }
    }

    [[nodiscard]] std::size_t num_rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t num_cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t num_nonzeros() const noexcept { return entries_.size(); }

    [[nodiscard]] const entry *row_begin(const std::size_t row) const noexcept {
        PLSSVM_ASSERT(row < rows_, "Row index out of bounds!");
        return entries_.data() + offsets_[row];
    }

    [[nodiscard]] const entry *row_end(const std::size_t row) const noexcept {
        PLSSVM_ASSERT(row < rows_, "Row index out of bounds!");
        return entries_.data() + offsets_[row + 1];
    }

    [[nodiscard]] std::size_t row_nnz(const std::size_t row) const noexcept {
        return offsets_[row + 1] - offsets_[row];
    }

    /// <row_a, row_b> via index merge (LIBSVM's sparse dot product).
    [[nodiscard]] T dot(const std::size_t row_a, const std::size_t row_b) const noexcept {
        const entry *a = row_begin(row_a);
        const entry *a_end = row_end(row_a);
        const entry *b = row_begin(row_b);
        const entry *b_end = row_end(row_b);
        T sum{ 0 };
        while (a != a_end && b != b_end) {
            if (a->index == b->index) {
                sum += a->value * b->value;
                ++a;
                ++b;
            } else if (a->index < b->index) {
                ++a;
            } else {
                ++b;
            }
        }
        return sum;
    }

    /// ||row_a - row_b||^2 via index merge.
    [[nodiscard]] T squared_distance(const std::size_t row_a, const std::size_t row_b) const noexcept {
        const entry *a = row_begin(row_a);
        const entry *a_end = row_end(row_a);
        const entry *b = row_begin(row_b);
        const entry *b_end = row_end(row_b);
        T sum{ 0 };
        while (a != a_end || b != b_end) {
            if (b == b_end || (a != a_end && a->index < b->index)) {
                sum += a->value * a->value;
                ++a;
            } else if (a == a_end || b->index < a->index) {
                sum += b->value * b->value;
                ++b;
            } else {
                const T diff = a->value - b->value;
                sum += diff * diff;
                ++a;
                ++b;
            }
        }
        return sum;
    }

    /// Densify (used by tests for round-trip checks).
    [[nodiscard]] aos_matrix<T> to_dense() const {
        aos_matrix<T> dense{ rows_, cols_ };
        for (std::size_t r = 0; r < rows_; ++r) {
            for (const entry *e = row_begin(r); e != row_end(r); ++e) {
                dense(r, e->index) = e->value;
            }
        }
        return dense;
    }

  private:
    std::size_t rows_{ 0 };
    std::size_t cols_{ 0 };
    std::vector<std::size_t> offsets_;
    std::vector<entry> entries_;
};

}  // namespace plssvm

#endif  // PLSSVM_CORE_SPARSE_MATRIX_HPP_
