/**
 * @file
 * @brief Compressed sparse row (CSR) matrix substrate.
 *
 * Used by the LIBSVM-style SMO baseline in its sparse mode (the paper
 * benchmarks both "LIBSVM" = sparse and "LIBSVM-DENSE"), and listed by the
 * paper (§V) as the planned representation for a future sparse CG solver.
 */

#ifndef PLSSVM_CORE_SPARSE_MATRIX_HPP_
#define PLSSVM_CORE_SPARSE_MATRIX_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/detail/assert.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plssvm {

template <typename T>
class csr_matrix {
  public:
    /// One stored entry: (column index, value).
    struct entry {
        std::uint32_t index;
        T value;
    };

    csr_matrix() = default;

    /// Build directly from CSR components. @p offsets must hold `rows + 1`
    /// monotonically increasing entry offsets and the entries of each row
    /// must be sorted by column index (the invariant every merge-join sweep
    /// relies on).
    csr_matrix(const std::size_t rows, const std::size_t cols, std::vector<std::size_t> offsets, std::vector<entry> entries) :
        rows_{ rows },
        cols_{ cols },
        offsets_{ std::move(offsets) },
        entries_{ std::move(entries) } {
        PLSSVM_ASSERT(offsets_.size() == rows_ + 1, "CSR offsets must hold rows + 1 entries!");
        PLSSVM_ASSERT(offsets_.back() == entries_.size(), "The last CSR offset must equal the entry count!");
    }

    /// Build from a dense matrix, dropping exact zeros.
    explicit csr_matrix(const aos_matrix<T> &dense) :
        rows_{ dense.num_rows() },
        cols_{ dense.num_cols() } {
        offsets_.reserve(rows_ + 1);
        offsets_.push_back(0);
        for (std::size_t r = 0; r < rows_; ++r) {
            const T *src = dense.row_data(r);
            for (std::size_t c = 0; c < cols_; ++c) {
                if (src[c] != T{ 0 }) {
                    entries_.push_back(entry{ static_cast<std::uint32_t>(c), src[c] });
                }
            }
            offsets_.push_back(entries_.size());
        }
    }

    [[nodiscard]] std::size_t num_rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t num_cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t num_nonzeros() const noexcept { return entries_.size(); }

    /// <a, b> over two column-ascending entry ranges via index merge
    /// (LIBSVM's sparse dot product). Shared by `dot` and the serving
    /// layer's sparse batch kernels so the merge loop exists exactly once.
    [[nodiscard]] static T merge_dot(const entry *a, const entry *a_end, const entry *b, const entry *b_end) noexcept {
        T sum{ 0 };
        while (a != a_end && b != b_end) {
            if (a->index == b->index) {
                sum += a->value * b->value;
                ++a;
                ++b;
            } else if (a->index < b->index) {
                ++a;
            } else {
                ++b;
            }
        }
        return sum;
    }

    [[nodiscard]] const entry *row_begin(const std::size_t row) const noexcept {
        PLSSVM_ASSERT(row < rows_, "Row index out of bounds!");
        return entries_.data() + offsets_[row];
    }

    [[nodiscard]] const entry *row_end(const std::size_t row) const noexcept {
        PLSSVM_ASSERT(row < rows_, "Row index out of bounds!");
        return entries_.data() + offsets_[row + 1];
    }

    [[nodiscard]] std::size_t row_nnz(const std::size_t row) const noexcept {
        return offsets_[row + 1] - offsets_[row];
    }

    /// <row_a, row_b> via index merge (LIBSVM's sparse dot product).
    [[nodiscard]] T dot(const std::size_t row_a, const std::size_t row_b) const noexcept {
        return merge_dot(row_begin(row_a), row_end(row_a), row_begin(row_b), row_end(row_b));
    }

    /// ||row_a - row_b||^2 via index merge.
    [[nodiscard]] T squared_distance(const std::size_t row_a, const std::size_t row_b) const noexcept {
        const entry *a = row_begin(row_a);
        const entry *a_end = row_end(row_a);
        const entry *b = row_begin(row_b);
        const entry *b_end = row_end(row_b);
        T sum{ 0 };
        while (a != a_end || b != b_end) {
            if (b == b_end || (a != a_end && a->index < b->index)) {
                sum += a->value * a->value;
                ++a;
            } else if (a == a_end || b->index < a->index) {
                sum += b->value * b->value;
                ++b;
            } else {
                const T diff = a->value - b->value;
                sum += diff * diff;
                ++a;
                ++b;
            }
        }
        return sum;
    }

    /// The transpose as CSR — i.e. a CSC view of this matrix: row `f` of the
    /// result lists the (row, value) pairs of column `f`, row-ascending.
    /// This is the feature-major layout the dense-query x sparse-SV serving
    /// sweep streams (`serve::batch::dense_sparse_kernel_decision_values`).
    [[nodiscard]] csr_matrix transposed() const {
        // counting sort by column: one pass to histogram, one stable pass to
        // scatter (row-ascending within each output row by construction)
        std::vector<std::size_t> t_offsets(cols_ + 1, 0);
        for (const entry &e : entries_) {
            ++t_offsets[e.index + 1];
        }
        for (std::size_t c = 0; c < cols_; ++c) {
            t_offsets[c + 1] += t_offsets[c];
        }
        std::vector<entry> t_entries(entries_.size());
        std::vector<std::size_t> cursor(t_offsets.begin(), t_offsets.end() - 1);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (const entry *e = row_begin(r); e != row_end(r); ++e) {
                t_entries[cursor[e->index]++] = entry{ static_cast<std::uint32_t>(r), e->value };
            }
        }
        return csr_matrix{ cols_, rows_, std::move(t_offsets), std::move(t_entries) };
    }

    /// Densify (used by tests for round-trip checks).
    [[nodiscard]] aos_matrix<T> to_dense() const {
        aos_matrix<T> dense{ rows_, cols_ };
        for (std::size_t r = 0; r < rows_; ++r) {
            for (const entry *e = row_begin(r); e != row_end(r); ++e) {
                dense(r, e->index) = e->value;
            }
        }
        return dense;
    }

  private:
    std::size_t rows_{ 0 };
    std::size_t cols_{ 0 };
    std::vector<std::size_t> offsets_;
    std::vector<entry> entries_;
};

}  // namespace plssvm

#endif  // PLSSVM_CORE_SPARSE_MATRIX_HPP_
