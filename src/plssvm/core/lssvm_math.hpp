/**
 * @file
 * @brief Backend-independent pieces of the LS-SVM linear system (paper §II-F).
 *
 * The full system  [Q 1; 1^T 0] [alpha; b] = [y; 0]  with
 * Q_ij = k(x_i, x_j) + delta_ij / C  is reduced following Chu et al. to
 *
 *      Q~ alpha~ = y¯ - y_m * 1,        Q~ of size (m-1) x (m-1),
 *      Q~_ij = k(x_i,x_j) + delta_ij/C - k(x_m,x_j) - k(x_i,x_m) + k(x_m,x_m) + 1/C,
 *
 * from which the bias and the eliminated weight are recovered as
 *
 *      b       = y_m + Q_mm * <1, alpha~> - <q, alpha~>,
 *      alpha_m = -<1, alpha~>                       (enforcing sum_i alpha_i = 0).
 *
 * Every backend computes the expensive kernel sums itself; the small shared
 * formulas live here so host and device paths cannot drift apart.
 */

#ifndef PLSSVM_CORE_LSSVM_MATH_HPP_
#define PLSSVM_CORE_LSSVM_MATH_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/detail/assert.hpp"

#include <cstddef>
#include <numeric>
#include <vector>

namespace plssvm {

/**
 * @brief Right-hand side of the reduced system: rhs_i = y_i - y_m, i < m-1.
 * @param labels the +-1 training labels (size m >= 2)
 */
template <typename T>
[[nodiscard]] std::vector<T> reduced_rhs(const std::vector<T> &labels) {
    PLSSVM_ASSERT(labels.size() >= 2, "The reduced system requires at least two data points!");
    const std::size_t n = labels.size() - 1;
    const T y_m = labels.back();
    std::vector<T> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
        rhs[i] = labels[i] - y_m;
    }
    return rhs;
}

/**
 * @brief Reference (host) computation of the q vector: q_i = k(x_i, x_m) for
 *        i < m-1. Device backends compute the same values in
 *        `device_kernel_q`; tests cross-check both.
 */
template <typename T>
[[nodiscard]] std::vector<T> compute_q_vector(const aos_matrix<T> &points, const kernel_params<T> &kp) {
    PLSSVM_ASSERT(points.num_rows() >= 2, "The reduced system requires at least two data points!");
    const std::size_t n = points.num_rows() - 1;
    const T *last = points.row_data(n);
    std::vector<T> q(n);
    #pragma omp parallel for
    for (std::size_t i = 0; i < n; ++i) {
        q[i] = kernels::apply(kp, points.row_data(i), last, points.num_cols());
    }
    return q;
}

/// Q_mm = k(x_m, x_m) + 1/C — the bottom-right entry of the full Q matrix.
template <typename T>
[[nodiscard]] T compute_q_mm(const aos_matrix<T> &points, const kernel_params<T> &kp, const T cost) {
    const std::size_t last = points.num_rows() - 1;
    return kernels::apply(kp, points.row_data(last), points.row_data(last), points.num_cols()) + T{ 1 } / cost;
}

/// b = y_m + Q_mm * <1, alpha~> - <q, alpha~>   (paper Eq. 15).
template <typename T>
[[nodiscard]] T recover_bias(const std::vector<T> &alpha_tilde,
                             const std::vector<T> &q,
                             const T q_mm,
                             const T y_m) {
    PLSSVM_ASSERT(alpha_tilde.size() == q.size(), "alpha~ and q must have the same size!");
    T sum_alpha{ 0 };
    T q_dot_alpha{ 0 };
    for (std::size_t i = 0; i < alpha_tilde.size(); ++i) {
        sum_alpha += alpha_tilde[i];
        q_dot_alpha += q[i] * alpha_tilde[i];
    }
    return y_m + q_mm * sum_alpha - q_dot_alpha;
}

/// Append alpha_m = -sum(alpha~), yielding the full weight vector of size m.
template <typename T>
[[nodiscard]] std::vector<T> expand_alpha(std::vector<T> alpha_tilde) {
    const T sum = std::accumulate(alpha_tilde.begin(), alpha_tilde.end(), T{ 0 });
    alpha_tilde.push_back(-sum);
    return alpha_tilde;
}

}  // namespace plssvm

#endif  // PLSSVM_CORE_LSSVM_MATH_HPP_
