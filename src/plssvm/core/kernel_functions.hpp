/**
 * @file
 * @brief Scalar kernel function evaluations (paper §II-E).
 *
 * These are the host-side reference implementations operating on contiguous
 * feature vectors (AoS rows). The device backends implement the same math in
 * their blocked kernels; tests cross-check both against each other.
 */

#ifndef PLSSVM_CORE_KERNEL_FUNCTIONS_HPP_
#define PLSSVM_CORE_KERNEL_FUNCTIONS_HPP_

#include "plssvm/core/kernel_types.hpp"
#include "plssvm/detail/assert.hpp"

#include <cmath>
#include <cstddef>

namespace plssvm {

/// Runtime kernel parameters with gamma already resolved (see `parameter::effective_gamma`).
template <typename T>
struct kernel_params {
    kernel_type kernel{ kernel_type::linear };
    int degree{ 3 };
    T gamma{ 1 };
    T coef0{ 0 };
};

namespace kernels {

/// <x, y> over @p dim entries.
template <typename T>
[[nodiscard]] T dot(const T *x, const T *y, const std::size_t dim) noexcept {
    T sum{ 0 };
    #pragma omp simd reduction(+ : sum)
    for (std::size_t k = 0; k < dim; ++k) {
        sum += x[k] * y[k];
    }
    return sum;
}

/// ||x - y||^2 over @p dim entries.
template <typename T>
[[nodiscard]] T squared_euclidean_distance(const T *x, const T *y, const std::size_t dim) noexcept {
    T sum{ 0 };
    #pragma omp simd reduction(+ : sum)
    for (std::size_t k = 0; k < dim; ++k) {
        const T diff = x[k] - y[k];
        sum += diff * diff;
    }
    return sum;
}

/// Integer power by squaring (the polynomial degree is a small positive int).
template <typename T>
[[nodiscard]] T int_pow(T base, int exponent) noexcept {
    PLSSVM_ASSERT(exponent >= 0, "int_pow expects a non-negative exponent!");
    T result{ 1 };
    while (exponent > 0) {
        if (exponent & 1) {
            result *= base;
        }
        base *= base;
        exponent >>= 1;
    }
    return result;
}

/// Evaluate k(x, y) for the given kernel parameters.
template <typename T>
[[nodiscard]] T apply(const kernel_params<T> &params, const T *x, const T *y, const std::size_t dim) noexcept {
    switch (params.kernel) {
        case kernel_type::linear:
            return dot(x, y, dim);
        case kernel_type::polynomial:
            return int_pow(params.gamma * dot(x, y, dim) + params.coef0, params.degree);
        case kernel_type::rbf:
            return std::exp(-params.gamma * squared_euclidean_distance(x, y, dim));
        case kernel_type::sigmoid:
            return std::tanh(params.gamma * dot(x, y, dim) + params.coef0);
    }
    return T{ 0 };  // unreachable; all enumerators handled above
}

/// Given a raw inner-product or squared-distance "core" value, finish the
/// kernel evaluation. The blocked device kernels accumulate the core value in
/// registers and call this epilogue once per matrix entry.
template <typename T>
[[nodiscard]] T finish(const kernel_params<T> &params, const T core) noexcept {
    switch (params.kernel) {
        case kernel_type::linear:
            return core;
        case kernel_type::polynomial:
            return int_pow(params.gamma * core + params.coef0, params.degree);
        case kernel_type::rbf:
            return std::exp(-params.gamma * core);
        case kernel_type::sigmoid:
            return std::tanh(params.gamma * core + params.coef0);
    }
    return T{ 0 };  // unreachable
}

/// Whether the kernel's "core" accumulation is the inner product (true) or the
/// squared euclidean distance (false, RBF only).
[[nodiscard]] constexpr bool uses_inner_product_core(const kernel_type kernel) noexcept {
    return kernel != kernel_type::rbf;
}

/// Whether k(x, y) decomposes additively over disjoint feature slices, which
/// is what enables the multi-device feature split of §III-C-5. Only the plain
/// inner product does; the poly/rbf/sigmoid epilogues are non-linear.
[[nodiscard]] constexpr bool supports_feature_split(const kernel_type kernel) noexcept {
    return kernel == kernel_type::linear;
}

}  // namespace kernels

}  // namespace plssvm

#endif  // PLSSVM_CORE_KERNEL_FUNCTIONS_HPP_
