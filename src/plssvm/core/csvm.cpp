#include "plssvm/core/csvm.hpp"

#include "plssvm/core/predict.hpp"
#include "plssvm/detail/assert.hpp"
#include "plssvm/exceptions.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace plssvm {

template <typename T>
csvm<T>::csvm(parameter params) :
    params_{ params } {
    params_.validate();
}

template <typename T>
kernel_params<T> csvm<T>::make_kernel_params(const std::size_t num_features) const {
    return kernel_params<T>{
        params_.kernel,
        params_.degree,
        static_cast<T>(params_.effective_gamma(num_features)),
        static_cast<T>(params_.coef0),
    };
}

template <typename T>
model<T> csvm<T>::fit(const data_set<T> &data, const solver_control &ctrl) {
    ctrl.validate();
    if (!data.has_labels()) {
        throw invalid_data_exception{ "Training requires a labeled data set!" };
    }
    const std::vector<T> &labels = data.binary_labels();  // throws if not binary
    if (data.num_data_points() < 2) {
        throw invalid_data_exception{ "Training requires at least two data points!" };
    }

    const kernel_params<T> kp = make_kernel_params(data.num_features());
    solve_result solved = solve_lssvm(data.points(), labels, kp, ctrl);
    PLSSVM_ASSERT(solved.alpha.size() == data.num_data_points(), "Backend returned a weight vector of wrong size!");

    model<T> trained{ params_,
                      data.points(),
                      std::move(solved.alpha),
                      /*rho=*/-solved.bias,
                      /*positive_label=*/data.distinct_labels()[0],
                      /*negative_label=*/data.distinct_labels()[1] };
    trained.set_num_iterations(solved.iterations);
    return trained;
}

template <typename T>
model<T> csvm<T>::fit_regression(const data_set<T> &data, const solver_control &ctrl) {
    ctrl.validate();
    if (!data.has_labels()) {
        throw invalid_data_exception{ "Regression training requires labeled data (the targets)!" };
    }
    if (data.num_data_points() < 2) {
        throw invalid_data_exception{ "Training requires at least two data points!" };
    }

    const kernel_params<T> kp = make_kernel_params(data.num_features());
    solve_result solved = solve_lssvm(data.points(), data.labels(), kp, ctrl);
    PLSSVM_ASSERT(solved.alpha.size() == data.num_data_points(), "Backend returned a weight vector of wrong size!");

    // label mapping is meaningless for regression; keep the +-1 placeholders
    model<T> trained{ params_, data.points(), std::move(solved.alpha),
                      /*rho=*/-solved.bias, T{ 1 }, T{ -1 } };
    trained.set_num_iterations(solved.iterations);
    return trained;
}

template <typename T>
std::vector<T> csvm<T>::predict_values(const model<T> &trained, const data_set<T> &data) const {
    return decision_values(trained, data.points());
}

template <typename T>
std::vector<T> csvm<T>::predict(const model<T> &trained, const data_set<T> &data) const {
    // route through the (possibly backend-overridden) decision value path
    std::vector<T> values = predict_values(trained, data);
    for (T &v : values) {
        v = trained.label_from_decision(v);
    }
    return values;
}

template <typename T>
T csvm<T>::score(const model<T> &trained, const data_set<T> &data) const {
    if (!data.has_labels()) {
        throw invalid_data_exception{ "Scoring requires a labeled data set!" };
    }
    const std::vector<T> predicted = predict(trained, data);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        correct += predicted[i] == data.labels()[i];
    }
    return static_cast<T>(correct) / static_cast<T>(predicted.size());
}

template class csvm<float>;
template class csvm<double>;

}  // namespace plssvm
