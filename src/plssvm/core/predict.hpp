/**
 * @file
 * @brief Model-based prediction as free functions.
 *
 * Shared by the PLSSVM `csvm` classes and the SMO baselines (which produce
 * the same `model` representation: coefficients + support vectors + rho), so
 * accuracy comparisons between the LS-SVM and SMO solvers use one identical
 * decision-function implementation.
 */

#ifndef PLSSVM_CORE_PREDICT_HPP_
#define PLSSVM_CORE_PREDICT_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/serve/compiled_model.hpp"

#include <cstddef>
#include <vector>

namespace plssvm {

/// Decision values f(x) = sum_i coef_i k(sv_i, x) - rho for all rows of
/// @p points. One-shot convenience: compiles the prediction state (collapsed
/// `w` vector, SoA support vectors, cached norms) and evaluates once — note
/// that for non-linear kernels this materialises a second (padded, SoA) copy
/// of the support vectors for the duration of the call. Callers that predict
/// repeatedly should hold a `serve::compiled_model` (or an engine from
/// `plssvm/serve/serve.hpp`) to pay the compilation exactly once.
template <typename T>
[[nodiscard]] std::vector<T> decision_values(const model<T> &trained, const aos_matrix<T> &points) {
    // reject mismatched queries before paying for the compilation
    serve::compiled_model<T>::validate_feature_count(trained.num_features(), points.num_cols());
    return serve::compiled_model<T>{ trained }.decision_values(points);
}

/// Decision values against an already-compiled model (no per-call setup).
template <typename T>
[[nodiscard]] std::vector<T> decision_values(const serve::compiled_model<T> &compiled, const aos_matrix<T> &points) {
    return compiled.decision_values(points);
}

/// Predicted labels in the model's original label domain.
template <typename T>
[[nodiscard]] std::vector<T> predict_labels(const model<T> &trained, const aos_matrix<T> &points) {
    std::vector<T> values = decision_values(trained, points);
    for (T &v : values) {
        v = trained.label_from_decision(v);
    }
    return values;
}

/// Fraction of rows whose predicted label equals @p truth.
template <typename T>
[[nodiscard]] T accuracy(const model<T> &trained, const aos_matrix<T> &points, const std::vector<T> &truth) {
    if (truth.size() != points.num_rows()) {
        throw invalid_data_exception{ "Number of labels does not match the number of data points!" };
    }
    const std::vector<T> predicted = predict_labels(trained, points);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (predicted[i] == truth[i]) {
            ++correct;
        }
    }
    return static_cast<T>(correct) / static_cast<T>(predicted.size());
}

}  // namespace plssvm

#endif  // PLSSVM_CORE_PREDICT_HPP_
