/**
 * @file
 * @brief Model-based prediction as free functions.
 *
 * Shared by the PLSSVM `csvm` classes and the SMO baselines (which produce
 * the same `model` representation: coefficients + support vectors + rho), so
 * accuracy comparisons between the LS-SVM and SMO solvers use one identical
 * decision-function implementation.
 */

#ifndef PLSSVM_CORE_PREDICT_HPP_
#define PLSSVM_CORE_PREDICT_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/exceptions.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace plssvm {

/// Decision values f(x) = sum_i coef_i k(sv_i, x) - rho for all rows of @p points.
template <typename T>
[[nodiscard]] std::vector<T> decision_values(const model<T> &trained, const aos_matrix<T> &points) {
    if (points.num_cols() != trained.num_features()) {
        throw invalid_data_exception{ "The data has " + std::to_string(points.num_cols()) + " features but the model was trained with " + std::to_string(trained.num_features()) + "!" };
    }
    const aos_matrix<T> &sv = trained.support_vectors();
    const std::vector<T> &alpha = trained.alpha();
    const std::size_t num_points = points.num_rows();
    const std::size_t dim = points.num_cols();
    const T bias = trained.bias();

    std::vector<T> values(num_points);

    if (trained.params().kernel == kernel_type::linear) {
        // linear kernel: collapse the support vectors into the normal vector w
        std::vector<T> w(dim, T{ 0 });
        for (std::size_t i = 0; i < sv.num_rows(); ++i) {
            const T a = alpha[i];
            const T *row = sv.row_data(i);
            #pragma omp simd
            for (std::size_t k = 0; k < dim; ++k) {
                w[k] += a * row[k];
            }
        }
        #pragma omp parallel for
        for (std::size_t p = 0; p < num_points; ++p) {
            values[p] = kernels::dot(w.data(), points.row_data(p), dim) + bias;
        }
    } else {
        const kernel_params<T> kp{ trained.params().kernel, trained.params().degree,
                                   trained.effective_gamma(), static_cast<T>(trained.params().coef0) };
        #pragma omp parallel for
        for (std::size_t p = 0; p < num_points; ++p) {
            T sum{ 0 };
            const T *x = points.row_data(p);
            for (std::size_t i = 0; i < sv.num_rows(); ++i) {
                sum += alpha[i] * kernels::apply(kp, sv.row_data(i), x, dim);
            }
            values[p] = sum + bias;
        }
    }
    return values;
}

/// Predicted labels in the model's original label domain.
template <typename T>
[[nodiscard]] std::vector<T> predict_labels(const model<T> &trained, const aos_matrix<T> &points) {
    std::vector<T> values = decision_values(trained, points);
    for (T &v : values) {
        v = trained.label_from_decision(v);
    }
    return values;
}

/// Fraction of rows whose predicted label equals @p truth.
template <typename T>
[[nodiscard]] T accuracy(const model<T> &trained, const aos_matrix<T> &points, const std::vector<T> &truth) {
    if (truth.size() != points.num_rows()) {
        throw invalid_data_exception{ "Number of labels does not match the number of data points!" };
    }
    const std::vector<T> predicted = predict_labels(trained, points);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (predicted[i] == truth[i]) {
            ++correct;
        }
    }
    return static_cast<T>(correct) / static_cast<T>(predicted.size());
}

}  // namespace plssvm

#endif  // PLSSVM_CORE_PREDICT_HPP_
