#include "plssvm/core/model.hpp"

#include "plssvm/exceptions.hpp"
#include "plssvm/io/model_io.hpp"

#include <string>
#include <utility>

namespace plssvm {

template <typename T>
model<T>::model(parameter params,
                aos_matrix<T> support_vectors,
                std::vector<T> alpha,
                const T rho,
                const T positive_label,
                const T negative_label) :
    params_{ params },
    support_vectors_{ std::move(support_vectors) },
    alpha_{ std::move(alpha) },
    rho_{ rho },
    positive_label_{ positive_label },
    negative_label_{ negative_label } {
    if (support_vectors_.num_rows() != alpha_.size()) {
        throw invalid_data_exception{ "Model has " + std::to_string(support_vectors_.num_rows()) + " support vectors but " + std::to_string(alpha_.size()) + " weights!" };
    }
    if (support_vectors_.num_rows() == 0) {
        throw invalid_data_exception{ "A model must contain at least one support vector!" };
    }
}

template <typename T>
void model<T>::save(const std::string &filename) const {
    io::model_file<T> file;
    file.params = params_;
    // Persist the gamma actually used so prediction after load is identical
    // even when training relied on the 1/num_features default.
    file.params.gamma = params_.effective_gamma(num_features());
    file.support_vectors = support_vectors_;
    file.alpha = alpha_;
    file.rho = rho_;
    file.positive_label = positive_label_;
    file.negative_label = negative_label_;
    io::write_model_file(filename, file);
}

template <typename T>
model<T> model<T>::load(const std::string &filename) {
    io::model_file<T> file = io::read_model_file<T>(filename);
    return model{ file.params, std::move(file.support_vectors), std::move(file.alpha),
                  file.rho, file.positive_label, file.negative_label };
}

template class model<float>;
template class model<double>;

}  // namespace plssvm
