/**
 * @file
 * @brief Classification and regression quality metrics.
 *
 * Binary classification metrics follow the usual conventions with the
 * model's positive label as the "positive" class; regression metrics support
 * the LS-SVR extension.
 */

#ifndef PLSSVM_CORE_METRICS_HPP_
#define PLSSVM_CORE_METRICS_HPP_

#include <cstddef>
#include <vector>

namespace plssvm::metrics {

/// Binary confusion counts for a given positive label.
struct confusion_matrix {
    std::size_t true_positives{ 0 };
    std::size_t true_negatives{ 0 };
    std::size_t false_positives{ 0 };
    std::size_t false_negatives{ 0 };

    [[nodiscard]] std::size_t total() const noexcept {
        return true_positives + true_negatives + false_positives + false_negatives;
    }
};

/**
 * @brief Tally the confusion matrix of @p predicted against @p truth.
 * @throws plssvm::invalid_data_exception on size mismatch or empty input
 */
template <typename T>
[[nodiscard]] confusion_matrix confusion(const std::vector<T> &predicted, const std::vector<T> &truth, T positive_label);

/// Fraction of correct predictions.
template <typename T>
[[nodiscard]] double accuracy_score(const std::vector<T> &predicted, const std::vector<T> &truth);

/// TP / (TP + FP); 0 when no positive predictions exist.
[[nodiscard]] double precision(const confusion_matrix &cm) noexcept;

/// TP / (TP + FN); 0 when no positive ground truth exists.
[[nodiscard]] double recall(const confusion_matrix &cm) noexcept;

/// Harmonic mean of precision and recall; 0 when either is 0.
[[nodiscard]] double f1_score(const confusion_matrix &cm) noexcept;

/// Mean squared error (regression).
template <typename T>
[[nodiscard]] double mean_squared_error(const std::vector<T> &predicted, const std::vector<T> &truth);

/// Mean absolute error (regression).
template <typename T>
[[nodiscard]] double mean_absolute_error(const std::vector<T> &predicted, const std::vector<T> &truth);

/// Coefficient of determination R^2; 1 is perfect, 0 matches the mean
/// predictor, negative is worse than the mean predictor.
template <typename T>
[[nodiscard]] double r2_score(const std::vector<T> &predicted, const std::vector<T> &truth);

}  // namespace plssvm::metrics

#endif  // PLSSVM_CORE_METRICS_HPP_
