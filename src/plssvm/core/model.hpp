/**
 * @file
 * @brief The trained SVM model: support vectors, weights, bias, and metadata.
 *
 * For an LS-SVM *every* training point is a support vector with a (possibly
 * negative) weight (paper §II-C). The model serialises to the LIBSVM model
 * file format so PLSSVM-trained models can be consumed by LIBSVM tooling and
 * vice versa ("drop-in replacement", paper §I).
 *
 * A `model` is the *training-side* representation. For repeated prediction,
 * compile it into a `plssvm::serve::compiled_model` (or register it with a
 * `plssvm::serve::model_registry`), which precomputes the collapsed linear
 * weight vector, cached RBF norms, and the SoA support-vector layout once.
 */

#ifndef PLSSVM_CORE_MODEL_HPP_
#define PLSSVM_CORE_MODEL_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/core/parameter.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace plssvm {

template <typename T>
class model {
  public:
    using real_type = T;

    model() = default;

    /**
     * @param params the hyper-parameters used for training
     * @param support_vectors all training points (LS-SVM: every point is a SV)
     * @param alpha the learned weights, one per support vector
     * @param rho the negated bias (LIBSVM convention: f(x) = sum_i alpha_i k(sv_i, x) - rho)
     * @param positive_label original label mapped to +1
     * @param negative_label original label mapped to -1
     */
    model(parameter params,
          aos_matrix<T> support_vectors,
          std::vector<T> alpha,
          T rho,
          T positive_label,
          T negative_label);

    [[nodiscard]] const parameter &params() const noexcept { return params_; }
    [[nodiscard]] const aos_matrix<T> &support_vectors() const noexcept { return support_vectors_; }
    [[nodiscard]] const std::vector<T> &alpha() const noexcept { return alpha_; }
    [[nodiscard]] T rho() const noexcept { return rho_; }
    /// Bias of the decision function f(x) = sum alpha_i k(sv_i, x) + bias.
    [[nodiscard]] T bias() const noexcept { return -rho_; }
    [[nodiscard]] T positive_label() const noexcept { return positive_label_; }
    [[nodiscard]] T negative_label() const noexcept { return negative_label_; }
    [[nodiscard]] std::size_t num_support_vectors() const noexcept { return support_vectors_.num_rows(); }
    [[nodiscard]] std::size_t num_features() const noexcept { return support_vectors_.num_cols(); }

    /// Map a decision value to the original label domain.
    [[nodiscard]] T label_from_decision(const T decision) const noexcept {
        return decision > T{ 0 } ? positive_label_ : negative_label_;
    }

    /// gamma resolved against the training feature count.
    [[nodiscard]] T effective_gamma() const { return static_cast<T>(params_.effective_gamma(num_features())); }

    /// Number of CG iterations the training run needed (metadata, may be 0 for loaded models).
    [[nodiscard]] std::size_t num_iterations() const noexcept { return num_iterations_; }
    void set_num_iterations(const std::size_t iterations) noexcept { num_iterations_ = iterations; }

    /// Save in the LIBSVM model file format.
    void save(const std::string &filename) const;

    /// Load a LIBSVM model file.
    [[nodiscard]] static model load(const std::string &filename);

  private:
    parameter params_{};
    aos_matrix<T> support_vectors_{};
    std::vector<T> alpha_{};
    T rho_{ 0 };
    T positive_label_{ 1 };
    T negative_label_{ -1 };
    std::size_t num_iterations_{ 0 };
};

}  // namespace plssvm

#endif  // PLSSVM_CORE_MODEL_HPP_
