#include "plssvm/core/kernel_types.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"

#include <ostream>
#include <string>

namespace plssvm {

std::string_view kernel_type_to_string(const kernel_type kernel) {
    switch (kernel) {
        case kernel_type::linear:
            return "linear";
        case kernel_type::polynomial:
            return "polynomial";
        case kernel_type::rbf:
            return "rbf";
        case kernel_type::sigmoid:
            return "sigmoid";
    }
    return "unknown";
}

kernel_type kernel_type_from_string(const std::string_view name) {
    const std::string lower = detail::to_lower_case(detail::trim(name));
    if (lower == "linear" || lower == "0") {
        return kernel_type::linear;
    }
    if (lower == "polynomial" || lower == "poly" || lower == "1") {
        return kernel_type::polynomial;
    }
    if (lower == "rbf" || lower == "radial" || lower == "2") {
        return kernel_type::rbf;
    }
    if (lower == "sigmoid" || lower == "3") {
        return kernel_type::sigmoid;
    }
    throw invalid_parameter_exception{ "Unknown kernel type: '" + std::string{ name } + "'!" };
}

std::ostream &operator<<(std::ostream &out, const kernel_type kernel) {
    return out << kernel_type_to_string(kernel);
}

}  // namespace plssvm
