#include "plssvm/core/metrics.hpp"

#include "plssvm/exceptions.hpp"

#include <cmath>
#include <string>

namespace plssvm::metrics {

namespace {

template <typename T>
void check_sizes(const std::vector<T> &predicted, const std::vector<T> &truth) {
    if (predicted.size() != truth.size()) {
        throw invalid_data_exception{ "Metric inputs differ in size: " + std::to_string(predicted.size()) + " vs " + std::to_string(truth.size()) + "!" };
    }
    if (predicted.empty()) {
        throw invalid_data_exception{ "Metrics require at least one sample!" };
    }
}

}  // namespace

template <typename T>
confusion_matrix confusion(const std::vector<T> &predicted, const std::vector<T> &truth, const T positive_label) {
    check_sizes(predicted, truth);
    confusion_matrix cm;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const bool predicted_positive = predicted[i] == positive_label;
        const bool actual_positive = truth[i] == positive_label;
        if (predicted_positive && actual_positive) {
            ++cm.true_positives;
        } else if (predicted_positive && !actual_positive) {
            ++cm.false_positives;
        } else if (!predicted_positive && actual_positive) {
            ++cm.false_negatives;
        } else {
            ++cm.true_negatives;
        }
    }
    return cm;
}

template <typename T>
double accuracy_score(const std::vector<T> &predicted, const std::vector<T> &truth) {
    check_sizes(predicted, truth);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        correct += predicted[i] == truth[i];
    }
    return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double precision(const confusion_matrix &cm) noexcept {
    const std::size_t denominator = cm.true_positives + cm.false_positives;
    return denominator == 0 ? 0.0 : static_cast<double>(cm.true_positives) / static_cast<double>(denominator);
}

double recall(const confusion_matrix &cm) noexcept {
    const std::size_t denominator = cm.true_positives + cm.false_negatives;
    return denominator == 0 ? 0.0 : static_cast<double>(cm.true_positives) / static_cast<double>(denominator);
}

double f1_score(const confusion_matrix &cm) noexcept {
    const double p = precision(cm);
    const double r = recall(cm);
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

template <typename T>
double mean_squared_error(const std::vector<T> &predicted, const std::vector<T> &truth) {
    check_sizes(predicted, truth);
    double sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double diff = static_cast<double>(predicted[i]) - static_cast<double>(truth[i]);
        sum += diff * diff;
    }
    return sum / static_cast<double>(predicted.size());
}

template <typename T>
double mean_absolute_error(const std::vector<T> &predicted, const std::vector<T> &truth) {
    check_sizes(predicted, truth);
    double sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        sum += std::abs(static_cast<double>(predicted[i]) - static_cast<double>(truth[i]));
    }
    return sum / static_cast<double>(predicted.size());
}

template <typename T>
double r2_score(const std::vector<T> &predicted, const std::vector<T> &truth) {
    check_sizes(predicted, truth);
    double mean = 0.0;
    for (const T value : truth) {
        mean += static_cast<double>(value);
    }
    mean /= static_cast<double>(truth.size());

    double residual = 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double diff = static_cast<double>(predicted[i]) - static_cast<double>(truth[i]);
        residual += diff * diff;
        const double centered = static_cast<double>(truth[i]) - mean;
        total += centered * centered;
    }
    if (total == 0.0) {
        // constant ground truth: perfect iff the residual is zero
        return residual == 0.0 ? 1.0 : 0.0;
    }
    return 1.0 - residual / total;
}

template confusion_matrix confusion<float>(const std::vector<float> &, const std::vector<float> &, float);
template confusion_matrix confusion<double>(const std::vector<double> &, const std::vector<double> &, double);
template double accuracy_score<float>(const std::vector<float> &, const std::vector<float> &);
template double accuracy_score<double>(const std::vector<double> &, const std::vector<double> &);
template double mean_squared_error<float>(const std::vector<float> &, const std::vector<float> &);
template double mean_squared_error<double>(const std::vector<double> &, const std::vector<double> &);
template double mean_absolute_error<float>(const std::vector<float> &, const std::vector<float> &);
template double mean_absolute_error<double>(const std::vector<double> &, const std::vector<double> &);
template double r2_score<float>(const std::vector<float> &, const std::vector<float> &);
template double r2_score<double>(const std::vector<double> &, const std::vector<double> &);

}  // namespace plssvm::metrics
