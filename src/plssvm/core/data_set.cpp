#include "plssvm/core/data_set.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/io/arff.hpp"
#include "plssvm/io/libsvm.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace plssvm {

template <typename T>
data_set<T>::data_set(aos_matrix<T> points) :
    points_{ std::move(points) } {
    if (points_.num_rows() == 0 || points_.num_cols() == 0) {
        throw invalid_data_exception{ "A data set must contain at least one data point with at least one feature!" };
    }
}

template <typename T>
data_set<T>::data_set(aos_matrix<T> points, std::vector<T> labels) :
    points_{ std::move(points) },
    labels_{ std::move(labels) } {
    if (points_.num_rows() == 0 || points_.num_cols() == 0) {
        throw invalid_data_exception{ "A data set must contain at least one data point with at least one feature!" };
    }
    if (labels_.size() != points_.num_rows()) {
        throw invalid_data_exception{ "Number of labels (" + std::to_string(labels_.size()) + ") does not match the number of data points (" + std::to_string(points_.num_rows()) + ")!" };
    }
    build_label_mapping();
}

template <typename T>
void data_set<T>::build_label_mapping() {
    distinct_labels_.clear();
    for (const T label : labels_) {
        if (std::find(distinct_labels_.begin(), distinct_labels_.end(), label) == distinct_labels_.end()) {
            distinct_labels_.push_back(label);
        }
    }
    binary_labels_.clear();
    if (distinct_labels_.size() == 2) {
        binary_labels_.reserve(labels_.size());
        for (const T label : labels_) {
            binary_labels_.push_back(label == distinct_labels_[0] ? T{ 1 } : T{ -1 });
        }
    }
}

template <typename T>
const std::vector<T> &data_set<T>::binary_labels() const {
    if (!is_binary()) {
        throw invalid_data_exception{ "The data set is not a binary classification problem (found " + std::to_string(distinct_labels_.size()) + " distinct labels)!" };
    }
    return binary_labels_;
}

template <typename T>
T data_set<T>::original_label(const T binary_label) const {
    if (!is_binary()) {
        throw invalid_data_exception{ "Label back-mapping requires a binary data set!" };
    }
    return binary_label > T{ 0 } ? distinct_labels_[0] : distinct_labels_[1];
}

template <typename T>
data_set<T> data_set<T>::from_file(const std::string &filename, const std::size_t min_num_features) {
    if (detail::ends_with(detail::to_lower_case(filename), ".arff")) {
        return from_arff_file(filename);
    }
    return from_libsvm_file(filename, min_num_features);
}

template <typename T>
data_set<T> data_set<T>::from_libsvm_file(const std::string &filename, const std::size_t min_num_features) {
    io::libsvm_parse_result<T> parsed = io::parse_libsvm_file<T>(filename, min_num_features);
    if (parsed.has_labels) {
        return data_set{ std::move(parsed.points), std::move(parsed.labels) };
    }
    return data_set{ std::move(parsed.points) };
}

template <typename T>
data_set<T> data_set<T>::from_arff_file(const std::string &filename) {
    io::arff_parse_result<T> parsed = io::parse_arff_file<T>(filename);
    if (parsed.has_labels) {
        return data_set{ std::move(parsed.points), std::move(parsed.labels) };
    }
    return data_set{ std::move(parsed.points) };
}

template <typename T>
void data_set<T>::save_libsvm(const std::string &filename, const bool sparse) const {
    io::write_libsvm_file(filename, points_, labels_.empty() ? nullptr : &labels_, sparse);
}

template <typename T>
io::scaling<T> data_set<T>::scale(const T lo, const T hi) {
    io::scaling<T> factors{ lo, hi };
    factors.fit_transform(points_);
    return factors;
}

template <typename T>
void data_set<T>::scale(const io::scaling<T> &factors) {
    factors.transform(points_);
}

template class data_set<float>;
template class data_set<double>;

}  // namespace plssvm
