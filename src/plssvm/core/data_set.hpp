/**
 * @file
 * @brief The labeled/unlabeled data set abstraction handed to `csvm::fit` and
 *        `csvm::predict`.
 *
 * A `data_set` owns the dense points (zeros materialised for sparse inputs)
 * plus, if present, the original numeric labels and their mapping onto the
 * internal binary +-1 representation. Binary classification is what the paper
 * ships; the one-vs-all extension in `plssvm::ext` builds on the raw labels.
 */

#ifndef PLSSVM_CORE_DATA_SET_HPP_
#define PLSSVM_CORE_DATA_SET_HPP_

#include "plssvm/core/matrix.hpp"
#include "plssvm/io/scaling.hpp"

#include <string>
#include <vector>

namespace plssvm {

template <typename T>
class data_set {
  public:
    using real_type = T;

    /// Create an unlabeled data set (prediction input).
    explicit data_set(aos_matrix<T> points);

    /**
     * @brief Create a labeled data set. Labels may be arbitrary numeric values;
     *        for binary problems exactly two distinct values are expected and
     *        mapped onto +1 (first distinct value in file order) and -1.
     * @throws plssvm::invalid_data_exception on size mismatch or empty data
     */
    data_set(aos_matrix<T> points, std::vector<T> labels);

    /// Load from a file; format auto-detected (".arff" -> ARFF, else LIBSVM).
    [[nodiscard]] static data_set from_file(const std::string &filename, std::size_t min_num_features = 0);

    /// Load explicitly as LIBSVM.
    [[nodiscard]] static data_set from_libsvm_file(const std::string &filename, std::size_t min_num_features = 0);

    /// Load explicitly as ARFF.
    [[nodiscard]] static data_set from_arff_file(const std::string &filename);

    /// Save in LIBSVM format (sparse by default).
    void save_libsvm(const std::string &filename, bool sparse = true) const;

    [[nodiscard]] std::size_t num_data_points() const noexcept { return points_.num_rows(); }
    [[nodiscard]] std::size_t num_features() const noexcept { return points_.num_cols(); }
    [[nodiscard]] const aos_matrix<T> &points() const noexcept { return points_; }

    [[nodiscard]] bool has_labels() const noexcept { return !labels_.empty(); }
    /// Original numeric labels as given by the user/file.
    [[nodiscard]] const std::vector<T> &labels() const noexcept { return labels_; }
    /// Labels mapped to +-1 (only valid for binary problems).
    [[nodiscard]] const std::vector<T> &binary_labels() const;
    /// The distinct original label values, in first-occurrence order.
    [[nodiscard]] const std::vector<T> &distinct_labels() const noexcept { return distinct_labels_; }
    /// True if exactly two distinct labels exist.
    [[nodiscard]] bool is_binary() const noexcept { return distinct_labels_.size() == 2; }

    /// Map an internal +-1 prediction back to the original label domain.
    [[nodiscard]] T original_label(T binary_label) const;

    /// Scale all features into [lo, hi] in place and return the learned factors.
    io::scaling<T> scale(T lo = T{ -1 }, T hi = T{ 1 });

    /// Apply previously learned scaling factors (test data path).
    void scale(const io::scaling<T> &factors);

  private:
    void build_label_mapping();

    aos_matrix<T> points_;
    std::vector<T> labels_;           ///< original labels
    std::vector<T> binary_labels_;    ///< +-1 representation (binary problems)
    std::vector<T> distinct_labels_;  ///< first-occurrence order
};

}  // namespace plssvm

#endif  // PLSSVM_CORE_DATA_SET_HPP_
