/**
 * @file
 * @brief Runtime backend selection: create a `csvm` for any backend.
 */

#ifndef PLSSVM_CORE_CSVM_FACTORY_HPP_
#define PLSSVM_CORE_CSVM_FACTORY_HPP_

#include "plssvm/backends/backend_types.hpp"
#include "plssvm/core/csvm.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/sim/cost_model.hpp"
#include "plssvm/sim/device_spec.hpp"

#include <memory>
#include <vector>

namespace plssvm {

/**
 * @brief Create an SVM using @p backend.
 * @param backend one of openmp / cuda / opencl / sycl
 * @param params SVM hyper-parameters
 * @param devices simulated devices for the device backends; empty selects the
 *        default (one NVIDIA A100); ignored by the openmp backend
 * @param cfg device kernel blocking configuration
 * @throws plssvm::unsupported_backend_exception for invalid combinations
 *         (e.g. CUDA with an AMD device)
 */
template <typename T>
[[nodiscard]] std::unique_ptr<csvm<T>> make_csvm(backend_type backend,
                                                 const parameter &params,
                                                 const std::vector<sim::device_spec> &devices = {},
                                                 const sim::block_config &cfg = {});

}  // namespace plssvm

#endif  // PLSSVM_CORE_CSVM_FACTORY_HPP_
