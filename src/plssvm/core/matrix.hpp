/**
 * @file
 * @brief Dense matrix types and the AoS -> SoA layout transform (paper §III-A).
 *
 * Training data is first parsed into an `aos_matrix` (one row per data point,
 * row-major, the natural parsing layout). Before device execution it is
 * transformed into an `soa_matrix`: feature-major (column-major) with the
 * point dimension padded to a multiple of the block size, so the blocked
 * device kernels never have to check boundary conditions (§III-C-1) and
 * feature-wise accesses are coalesced/cache-friendly.
 */

#ifndef PLSSVM_CORE_MATRIX_HPP_
#define PLSSVM_CORE_MATRIX_HPP_

#include "plssvm/detail/assert.hpp"

#include <cstddef>
#include <vector>

namespace plssvm {

/**
 * @brief Row-major dense matrix: entry (point, feature) at `data[point * cols + feature]`.
 */
template <typename T>
class aos_matrix {
  public:
    using value_type = T;

    aos_matrix() = default;

    /// Create a zero-initialised @p rows x @p cols matrix.
    aos_matrix(const std::size_t rows, const std::size_t cols) :
        rows_{ rows },
        cols_{ cols },
        data_(rows * cols, T{ 0 }) {}

    /// Create from existing storage (size must be rows * cols).
    aos_matrix(const std::size_t rows, const std::size_t cols, std::vector<T> data) :
        rows_{ rows },
        cols_{ cols },
        data_{ std::move(data) } {
        PLSSVM_ASSERT(data_.size() == rows_ * cols_, "Storage size does not match the matrix shape!");
    }

    [[nodiscard]] std::size_t num_rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t num_cols() const noexcept { return cols_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] T &operator()(const std::size_t row, const std::size_t col) noexcept {
        PLSSVM_ASSERT(row < rows_ && col < cols_, "Matrix index out of bounds!");
        return data_[row * cols_ + col];
    }

    [[nodiscard]] const T &operator()(const std::size_t row, const std::size_t col) const noexcept {
        PLSSVM_ASSERT(row < rows_ && col < cols_, "Matrix index out of bounds!");
        return data_[row * cols_ + col];
    }

    /// Pointer to the beginning of row @p row (contiguous, `num_cols()` entries).
    [[nodiscard]] const T *row_data(const std::size_t row) const noexcept {
        PLSSVM_ASSERT(row < rows_, "Row index out of bounds!");
        return data_.data() + row * cols_;
    }

    [[nodiscard]] T *row_data(const std::size_t row) noexcept {
        PLSSVM_ASSERT(row < rows_, "Row index out of bounds!");
        return data_.data() + row * cols_;
    }

    [[nodiscard]] const std::vector<T> &data() const noexcept { return data_; }
    [[nodiscard]] std::vector<T> &data() noexcept { return data_; }

    [[nodiscard]] bool operator==(const aos_matrix &) const = default;

  private:
    std::size_t rows_{ 0 };
    std::size_t cols_{ 0 };
    std::vector<T> data_;
};

/**
 * @brief Feature-major (Structure-of-Arrays) matrix with padded point dimension.
 *
 * Entry (point, feature) lives at `data[feature * padded_rows + point]`;
 * entries with `point >= num_rows()` are padding and always zero. Zero padding
 * is semantically safe for all shipped kernels: it adds zero summands to the
 * scalar products of the linear/polynomial/sigmoid kernels and zero distance
 * contributions to the RBF kernel.
 */
template <typename T>
class soa_matrix {
  public:
    using value_type = T;

    soa_matrix() = default;

    /// Create a zero-initialised matrix for @p rows points, padding the point
    /// dimension up to a multiple of @p row_padding (>= 1).
    soa_matrix(const std::size_t rows, const std::size_t cols, const std::size_t row_padding) :
        rows_{ rows },
        cols_{ cols },
        padded_rows_{ round_up(rows, row_padding) },
        data_(padded_rows_ * cols, T{ 0 }) {}

    [[nodiscard]] std::size_t num_rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t num_cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t padded_rows() const noexcept { return padded_rows_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] T &operator()(const std::size_t row, const std::size_t col) noexcept {
        PLSSVM_ASSERT(row < padded_rows_ && col < cols_, "Matrix index out of bounds!");
        return data_[col * padded_rows_ + row];
    }

    [[nodiscard]] const T &operator()(const std::size_t row, const std::size_t col) const noexcept {
        PLSSVM_ASSERT(row < padded_rows_ && col < cols_, "Matrix index out of bounds!");
        return data_[col * padded_rows_ + row];
    }

    /// Pointer to the contiguous column of feature @p col (`padded_rows()` entries).
    [[nodiscard]] const T *feature_data(const std::size_t col) const noexcept {
        PLSSVM_ASSERT(col < cols_, "Feature index out of bounds!");
        return data_.data() + col * padded_rows_;
    }

    [[nodiscard]] const std::vector<T> &data() const noexcept { return data_; }

    [[nodiscard]] bool operator==(const soa_matrix &) const = default;

    [[nodiscard]] static std::size_t round_up(const std::size_t value, const std::size_t multiple) noexcept {
        PLSSVM_ASSERT(multiple > 0, "Padding multiple must be positive!");
        return (value + multiple - 1) / multiple * multiple;
    }

  private:
    std::size_t rows_{ 0 };
    std::size_t cols_{ 0 };
    std::size_t padded_rows_{ 0 };
    std::vector<T> data_;
};

/**
 * @brief The "transform" pipeline component (paper Fig. 2): convert the parsed
 *        row-major data into the padded feature-major device layout.
 */
template <typename T>
[[nodiscard]] soa_matrix<T> transform_to_soa(const aos_matrix<T> &aos, const std::size_t row_padding) {
    soa_matrix<T> soa{ aos.num_rows(), aos.num_cols(), row_padding };
    // Iterate row-major over the source for sequential reads; the strided
    // writes are the unavoidable part of the transpose.
    for (std::size_t row = 0; row < aos.num_rows(); ++row) {
        const T *src = aos.row_data(row);
        for (std::size_t col = 0; col < aos.num_cols(); ++col) {
            soa(row, col) = src[col];
        }
    }
    return soa;
}

/// Inverse transform (used by tests and the model writer).
template <typename T>
[[nodiscard]] aos_matrix<T> transform_to_aos(const soa_matrix<T> &soa) {
    aos_matrix<T> aos{ soa.num_rows(), soa.num_cols() };
    for (std::size_t row = 0; row < soa.num_rows(); ++row) {
        for (std::size_t col = 0; col < soa.num_cols(); ++col) {
            aos(row, col) = soa(row, col);
        }
    }
    return aos;
}

}  // namespace plssvm

#endif  // PLSSVM_CORE_MATRIX_HPP_
