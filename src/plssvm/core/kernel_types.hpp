/**
 * @file
 * @brief Kernel function identifiers (paper §II-E).
 *
 * The paper ships linear, polynomial, and radial (RBF) kernels; the sigmoid
 * kernel is listed as LIBSVM/ThunderSVM-only functionality and implemented
 * here as the extension the paper's §IV-H calls out.
 */

#ifndef PLSSVM_CORE_KERNEL_TYPES_HPP_
#define PLSSVM_CORE_KERNEL_TYPES_HPP_

#include <iosfwd>
#include <string>
#include <string_view>

namespace plssvm {

/// Supported kernel functions k(x, y).
enum class kernel_type {
    linear = 0,      ///< <x, y>
    polynomial = 1,  ///< (gamma * <x, y> + coef0)^degree
    rbf = 2,         ///< exp(-gamma * ||x - y||^2)
    sigmoid = 3,     ///< tanh(gamma * <x, y> + coef0)  (extension, §IV-H)
};

/// Name used in model files and CLI flags (matches LIBSVM's `-t` naming).
[[nodiscard]] std::string_view kernel_type_to_string(kernel_type kernel);

/**
 * @brief Parse a kernel name ("linear", "polynomial"/"poly", "rbf"/"radial",
 *        "sigmoid"; case-insensitive) or a LIBSVM numeric id ("0".."3").
 * @throws plssvm::invalid_parameter_exception on unknown names.
 */
[[nodiscard]] kernel_type kernel_type_from_string(std::string_view name);

/// Stream the canonical kernel name.
std::ostream &operator<<(std::ostream &out, kernel_type kernel);

}  // namespace plssvm

#endif  // PLSSVM_CORE_KERNEL_TYPES_HPP_
