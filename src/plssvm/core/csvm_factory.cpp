#include "plssvm/core/csvm_factory.hpp"

#include "plssvm/backends/cuda/csvm.hpp"
#include "plssvm/backends/opencl/csvm.hpp"
#include "plssvm/backends/openmp/csvm.hpp"
#include "plssvm/backends/sycl/csvm.hpp"

#include <memory>
#include <vector>

namespace plssvm {

template <typename T>
std::unique_ptr<csvm<T>> make_csvm(const backend_type backend,
                                   const parameter &params,
                                   const std::vector<sim::device_spec> &devices,
                                   const sim::block_config &cfg) {
    const std::vector<sim::device_spec> &specs =
        devices.empty() ? std::vector<sim::device_spec>{ sim::devices::nvidia_a100() } : devices;
    switch (backend) {
        case backend_type::openmp:
            return std::make_unique<backend::openmp::csvm<T>>(params);
        case backend_type::cuda:
            return std::make_unique<backend::cuda::csvm<T>>(params, specs, cfg);
        case backend_type::opencl:
            return std::make_unique<backend::opencl::csvm<T>>(params, specs, cfg);
        case backend_type::sycl:
            return std::make_unique<backend::sycl::csvm<T>>(params, specs, cfg);
    }
    throw unsupported_backend_exception{ "Unknown backend!" };
}

template std::unique_ptr<csvm<float>> make_csvm<float>(backend_type, const parameter &, const std::vector<sim::device_spec> &, const sim::block_config &);
template std::unique_ptr<csvm<double>> make_csvm<double>(backend_type, const parameter &, const std::vector<sim::device_spec> &, const sim::block_config &);

}  // namespace plssvm
