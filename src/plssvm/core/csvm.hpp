/**
 * @file
 * @brief The user-facing SVM class: `fit`, `predict`, `score`.
 *
 * `csvm` is the backend-independent front-end. Concrete backends (OpenMP,
 * CUDA, OpenCL, SYCL — the latter three running on the simulated device
 * layer, see DESIGN.md) implement the expensive part: solving the reduced
 * LS-SVM system. The training pipeline is the paper's four steps
 * (§III): read (done by `data_set`), transform, solve (CG), write; each step
 * reports its runtime through the performance tracker so the component
 * figures (Fig. 2/4) can be regenerated.
 */

#ifndef PLSSVM_CORE_CSVM_HPP_
#define PLSSVM_CORE_CSVM_HPP_

#include "plssvm/core/data_set.hpp"
#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/model.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/detail/tracker.hpp"

#include <cstddef>
#include <string_view>
#include <vector>

namespace plssvm {

template <typename T>
class csvm {
  public:
    using real_type = T;

    explicit csvm(parameter params);
    csvm(const csvm &) = delete;
    csvm &operator=(const csvm &) = delete;
    virtual ~csvm() = default;

    /**
     * @brief Train an LS-SVM classifier on @p data.
     * @param data a labeled, binary data set with at least two points
     * @param ctrl CG termination controls (epsilon, iteration budget)
     * @throws plssvm::invalid_data_exception if @p data is unlabeled or not binary
     */
    [[nodiscard]] model<T> fit(const data_set<T> &data, const solver_control &ctrl = {});

    /**
     * @brief Train an LS-SVM *regressor* (LS-SVR) on @p data.
     *
     * The least-squares dual system is label-agnostic: with real-valued
     * targets the identical reduced system (Eq. 14) yields a kernel ridge
     * regressor — the regression support the paper lists as future work (§V).
     * Predictions are the raw decision values (`predict_values`).
     *
     * @param data a labeled data set; labels are the regression targets
     * @throws plssvm::invalid_data_exception if @p data is unlabeled
     */
    [[nodiscard]] model<T> fit_regression(const data_set<T> &data, const solver_control &ctrl = {});

    /// Decision values f(x) = sum_i alpha_i k(sv_i, x) - rho for every point.
    /// The device backends override this with their device prediction kernels.
    [[nodiscard]] virtual std::vector<T> predict_values(const model<T> &trained, const data_set<T> &data) const;

    /// Predicted labels in the original label domain of the trained model.
    [[nodiscard]] std::vector<T> predict(const model<T> &trained, const data_set<T> &data) const;

    /**
     * @brief Classification accuracy of @p trained on labeled @p data, in [0, 1].
     * @throws plssvm::invalid_data_exception if @p data has no labels
     */
    [[nodiscard]] T score(const model<T> &trained, const data_set<T> &data) const;

    [[nodiscard]] const parameter &params() const noexcept { return params_; }

    /// Human-readable backend identifier ("openmp", "cuda", ...).
    [[nodiscard]] virtual std::string_view backend_name() const noexcept = 0;

    /// Component timings of the last `fit` call (read/transform/cg/write/...).
    [[nodiscard]] detail::tracker &performance_tracker() noexcept { return tracker_; }
    [[nodiscard]] const detail::tracker &performance_tracker() const noexcept { return tracker_; }

  protected:
    /// Result of a backend solve: full weight vector (size m), bias, CG stats.
    struct solve_result {
        std::vector<T> alpha;
        T bias{ 0 };
        std::size_t iterations{ 0 };
        double final_relative_residual{ 0.0 };
    };

    /**
     * @brief Backend hook: solve the reduced system Q~ alpha~ = y¯ - y_m 1 and
     *        recover (full alpha, bias).
     * @param points the training points (row-major host layout)
     * @param labels the +-1 labels (size m)
     * @param kp kernel parameters with gamma resolved
     * @param ctrl CG controls
     */
    [[nodiscard]] virtual solve_result solve_lssvm(const aos_matrix<T> &points,
                                                   const std::vector<T> &labels,
                                                   const kernel_params<T> &kp,
                                                   const solver_control &ctrl) = 0;

    /// Resolve `parameter` into runtime kernel params for @p num_features.
    [[nodiscard]] kernel_params<T> make_kernel_params(std::size_t num_features) const;

    parameter params_;
    mutable detail::tracker tracker_;
};

}  // namespace plssvm

#endif  // PLSSVM_CORE_CSVM_HPP_
