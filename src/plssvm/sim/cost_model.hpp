/**
 * @file
 * @brief Analytic cost model of the simulated device layer.
 *
 * Every kernel launch carries a `kernel_cost` describing the work it
 * performs: floating point operations and the global-memory traffic after the
 * shared-memory blocking of §III-C has been applied. The simulated execution
 * time follows the roofline model
 *
 *     t = launch_overhead + max(flops / achieved_flops, bytes / bandwidth)
 *
 * with achieved_flops = peak * device_efficiency * backend_efficiency.
 *
 * The cost formulas for the library's own kernels live here as free functions
 * so the *functional* launch sites and the *analytic* paper-scale projections
 * (used where a 2^15 x 2^12 problem cannot be executed numerically on this
 * host) are guaranteed to charge identical costs.
 */

#ifndef PLSSVM_SIM_COST_MODEL_HPP_
#define PLSSVM_SIM_COST_MODEL_HPP_

#include "plssvm/core/kernel_types.hpp"
#include "plssvm/sim/device_spec.hpp"
#include "plssvm/sim/runtime_profile.hpp"

#include <cstddef>

namespace plssvm::sim {

/// Work performed by one kernel launch.
struct kernel_cost {
    double flops{ 0.0 };
    double global_bytes{ 0.0 };

    kernel_cost &operator+=(const kernel_cost &other) noexcept {
        flops += other.flops;
        global_bytes += other.global_bytes;
        return *this;
    }
};

/// Blocking configuration of the device kernels (§III-C-1/3/4). Both sizes
/// are compile-time-tunable in real PLSSVM; here they are runtime knobs so
/// the ablation bench can sweep them.
struct block_config {
    /// Threads per block dimension (thread block = block_size x block_size).
    std::size_t block_size{ 16 };
    /// Sub-tile edge each thread computes in registers (thread-level caching).
    std::size_t internal_size{ 4 };
    /// Whether only the upper triangular blocks are computed and mirrored.
    bool triangular{ true };
    /// Whether the q vector is precomputed (3 kernel evals per entry -> 1).
    bool cache_q{ true };

    /// Points covered per block edge.
    [[nodiscard]] std::size_t tile() const noexcept { return block_size * internal_size; }
};

/**
 * @brief First-order execution model of the *host* CPU running the serving
 *        layer's blocked batch kernels.
 *
 * Used by `serve::predict_dispatcher` to decide, per batch, whether a
 * prediction sweep should run on the host (no launch/transfer overhead, but
 * modest throughput) or on a device (high throughput behind a fixed
 * per-batch overhead). Same roofline shape as the device model; the
 * defaults describe a single commodity core and are meant to be calibrated
 * by the embedder (e.g. from a `bench_serve_throughput` run).
 */
struct host_profile {
    /// Achieved per-thread FP64 GFLOP/s on the blocked predict kernels.
    double effective_gflops{ 4.0 };
    /// Achieved memory bandwidth in GB/s for the streaming sweeps.
    double effective_bandwidth_gbs{ 10.0 };
    /// Worker threads evaluating one batch; 0 means "auto" (the serving
    /// engines resolve it to their pool size, `host_roofline_seconds`
    /// treats it as 1).
    std::size_t num_threads{ 0 };
    /// Fraction of linear speedup the thread-parallel sweep reaches.
    double parallel_efficiency{ 0.85 };
};

/// Host seconds for one blocked-kernel sweep with cost @p cost.
[[nodiscard]] double host_roofline_seconds(const host_profile &host, const kernel_cost &cost);

/// Simulated seconds for one launch of a kernel with cost @p cost.
[[nodiscard]] double roofline_seconds(const device_spec &spec, const runtime_profile &profile, const kernel_cost &cost);

/// Simulated seconds for a host<->device copy of @p bytes.
[[nodiscard]] double transfer_seconds(const device_spec &spec, const runtime_profile &profile, double bytes);

// --- cost formulas of the library's device kernels -------------------------

/**
 * @brief Cost of `device_kernel_q`: q_i = k(x_i, x_m) for the n = m-1 reduced
 *        rows (kernel evaluation = 2d flops; reads the full feature slice).
 */
[[nodiscard]] kernel_cost q_kernel_cost(std::size_t n, std::size_t dim, kernel_type kernel, std::size_t real_bytes);

/**
 * @brief Cost of the implicit matrix-vector kernel `device_kernel_svm`.
 *
 * With triangular blocking only ~half of the n^2 pairwise kernel evaluations
 * are computed (2d flops each, plus the epilogue); block-level caching means
 * each tile of points is loaded from global memory once per opposing block.
 *
 * @param n system size (m - 1, padded internally to full tiles)
 * @param dim features on this device (feature split divides this, §III-C-5)
 * @param kernel kernel function (changes the epilogue flops only)
 * @param cfg blocking configuration
 * @param real_bytes sizeof(float) or sizeof(double)
 */
[[nodiscard]] kernel_cost svm_kernel_cost(std::size_t n, std::size_t dim, kernel_type kernel, const block_config &cfg, std::size_t real_bytes);

/// Cost of the BLAS-1 style vector kernels inside CG (axpy/dot/etc.).
[[nodiscard]] kernel_cost vector_kernel_cost(std::size_t n, std::size_t real_bytes);

/// Cost of the w-vector / prediction kernels (linear prediction path).
[[nodiscard]] kernel_cost predict_kernel_cost(std::size_t num_predict, std::size_t num_sv, std::size_t dim, kernel_type kernel, std::size_t real_bytes);

/**
 * @brief Cost of one *serving* batch predict against precompiled model state.
 *
 * Unlike `predict_kernel_cost` (which models the training-time predict path,
 * where the linear normal vector `w` is collapsed per call), serving pays the
 * w collapse / SoA transform once at `compiled_model` build time: a linear
 * batch costs only the `batch x dim` GEMV, a non-linear batch the
 * `batch x num_sv` kernel sweep. Used by `serve::predict_dispatcher`.
 */
[[nodiscard]] kernel_cost serve_predict_cost(std::size_t batch, std::size_t num_sv, std::size_t dim, kernel_type kernel, std::size_t real_bytes);

/**
 * @brief Cost of one serving batch predict along the *sparse* execution
 *        paths (`serve::batch` CSR sweeps) of a model whose support-vector
 *        panel was compiled into CSR form.
 *
 * The nnz-aware counterpart of `serve_predict_cost`. The sparse sweeps touch
 * only the stored entries, but every touched entry is an indexed scalar
 * access (a gather for the dense-query x CSC sweep, a compare-and-advance
 * merge step for the CSR x CSR row pairs) while the dense kernels run wide
 * FMA tiles — so each sparse step is charged a *flop-equivalent* constant
 * calibrated against the measured blocked-kernel rate (see the constants in
 * the implementation). That keeps the host-profile comparison honest: the
 * sparse path only wins when nnz is genuinely small, not merely smaller
 * than `num_sv * dim`.
 *
 * @param sv_nnz stored SV-panel entries
 * @param query_nnz total stored query entries (pass `batch * dim` for dense
 *        query batches)
 * @param sparse_query whether the queries arrive as CSR (merge-join row
 *        pairs) or dense (feature-major gather sweep) — the two sparse
 *        kernels have very different per-step costs
 * @param point_tile queries per streaming pass over the SV panel
 */
[[nodiscard]] kernel_cost serve_sparse_predict_cost(std::size_t batch, std::size_t num_sv, std::size_t dim,
                                                    std::size_t sv_nnz, std::size_t query_nnz, bool sparse_query,
                                                    kernel_type kernel, std::size_t real_bytes,
                                                    std::size_t point_tile = 16);

}  // namespace plssvm::sim

#endif  // PLSSVM_SIM_COST_MODEL_HPP_
