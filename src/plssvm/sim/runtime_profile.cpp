#include "plssvm/sim/runtime_profile.hpp"

#include "plssvm/exceptions.hpp"

#include <string>

namespace plssvm::sim {

std::string_view backend_runtime_to_string(const backend_runtime runtime) {
    switch (runtime) {
        case backend_runtime::cuda:
            return "cuda";
        case backend_runtime::opencl:
            return "opencl";
        case backend_runtime::sycl:
            return "sycl";
    }
    return "unknown";
}

runtime_profile runtime_profile::for_device(const backend_runtime runtime, const device_spec &spec) {
    runtime_profile profile;
    profile.runtime = runtime;
    switch (runtime) {
        case backend_runtime::cuda:
            if (spec.vendor != vendor_type::nvidia) {
                throw unsupported_backend_exception{ "The CUDA backend requires an NVIDIA device, got '" + spec.name + "'!" };
            }
            profile.kernel_launch_overhead_s = 5e-6;
            profile.init_overhead_s = 0.25;
            profile.efficiency_factor = 1.0;
            break;
        case backend_runtime::opencl:
            profile.kernel_launch_overhead_s = 10e-6;
            profile.init_overhead_s = 0.35;
            // OpenCL trails CUDA slightly on NVIDIA (Table I: a few percent up
            // to ~45 % on the V100); a single factor models the common case.
            profile.efficiency_factor = 0.92;
            break;
        case backend_runtime::sycl:
            profile.kernel_launch_overhead_s = 12e-6;
            profile.init_overhead_s = 0.40;
            if (spec.vendor == vendor_type::nvidia) {
                // hipSYCL: near-OpenCL on compute capability >= 7.0, over 3x
                // slower than CUDA/OpenCL on older architectures (Table I).
                profile.efficiency_factor = spec.compute_capability >= 7.0 ? 0.80 : 0.30;
            } else if (spec.vendor == vendor_type::amd) {
                // hipSYCL on AMD: "again slightly slower compared to OpenCL"
                profile.efficiency_factor = 0.74;
            } else {
                // DPC++ on the Intel iGPU: "two times slower than OpenCL"
                profile.efficiency_factor = 0.46;
            }
            break;
    }
    return profile;
}

}  // namespace plssvm::sim
