#include "plssvm/sim/cpu_model.hpp"

#include "plssvm/detail/assert.hpp"

#include <cmath>

namespace plssvm::sim {

double cpu_model::compute_speedup(const std::size_t threads) const {
    PLSSVM_ASSERT(threads > 0, "Thread count must be positive!");
    return std::pow(static_cast<double>(threads), compute_eff);
}

double cpu_model::io_speedup(const std::size_t threads) const {
    PLSSVM_ASSERT(threads > 0, "Thread count must be positive!");
    const std::size_t socket_threads = cores_per_socket;  // one thread per core within a socket
    if (threads <= socket_threads) {
        return std::pow(static_cast<double>(threads), io_eff);
    }
    // beyond one socket: every doubling of threads costs a NUMA penalty
    const double base = std::pow(static_cast<double>(socket_threads), io_eff);
    const double doublings = std::log2(static_cast<double>(threads) / static_cast<double>(socket_threads));
    return base / std::pow(numa_penalty, doublings);
}

double cpu_model::project(const double single_core_seconds, const std::size_t threads, const bool compute_bound) const {
    const double speedup = compute_bound ? compute_speedup(threads) : io_speedup(threads);
    return single_core_seconds / speedup;
}

}  // namespace plssvm::sim
