/**
 * @file
 * @brief Analytic many-core CPU scaling model (Fig. 4a substitute).
 *
 * The paper measures PLSSVM's OpenMP backend on a 2-socket, 2x64-core
 * (256-thread) AMD EPYC 7742 node: the compute-bound "cg" component scales to
 * a parallel speedup of 74.7 at 256 threads, while the I/O-bound "read" and
 * "write" components scale up to ~16 cores and then *degrade once OpenMP
 * spans both sockets* (>64 cores). This host has a single core, so the
 * scaling curves are produced by a parametric model that encodes exactly
 * those two mechanisms:
 *
 *  - compute components follow a power law speedup S(p) = p^eff — fitted to
 *    the paper's two anchor points (S(16) ~ 8.2, S(256) = 74.7 gives
 *    eff ~ 0.78),
 *  - I/O components scale sub-linearly up to one socket and pay a NUMA
 *    penalty factor beyond it.
 *
 * The model multiplies *measured single-core component times* of the real
 * OpenMP backend, so everything except the thread-scaling curve itself is
 * real measurement.
 */

#ifndef PLSSVM_SIM_CPU_MODEL_HPP_
#define PLSSVM_SIM_CPU_MODEL_HPP_

#include <cstddef>

namespace plssvm::sim {

struct cpu_model {
    /// Physical cores per socket (EPYC 7742: 64).
    std::size_t cores_per_socket{ 64 };
    /// Number of sockets (paper machine: 2).
    std::size_t num_sockets{ 2 };
    /// SMT threads per core (EPYC: 2).
    std::size_t threads_per_core{ 2 };
    /// Power-law exponent of compute-bound components: S(p) = p^compute_eff.
    double compute_eff{ 0.78 };
    /// Power-law exponent of I/O-bound components up to one socket.
    double io_eff{ 0.62 };
    /// Per-doubling slowdown factor of I/O components beyond one socket
    /// (cross-socket page traffic); Fig. 4a shows read/write getting *slower*.
    double numa_penalty{ 1.45 };

    [[nodiscard]] std::size_t max_threads() const noexcept {
        return cores_per_socket * num_sockets * threads_per_core;
    }

    /// Parallel speedup of a compute-bound component on @p threads threads.
    [[nodiscard]] double compute_speedup(std::size_t threads) const;

    /// Parallel speedup (possibly < its smaller-thread values) of an
    /// I/O-bound component on @p threads threads.
    [[nodiscard]] double io_speedup(std::size_t threads) const;

    /// Projected runtime of a component measured at @p single_core_seconds.
    [[nodiscard]] double project(double single_core_seconds, std::size_t threads, bool compute_bound) const;
};

}  // namespace plssvm::sim

#endif  // PLSSVM_SIM_CPU_MODEL_HPP_
