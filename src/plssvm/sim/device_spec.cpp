#include "plssvm/sim/device_spec.hpp"

#include "plssvm/detail/string_utils.hpp"
#include "plssvm/exceptions.hpp"

#include <string>
#include <vector>

namespace plssvm::sim::devices {

// Data-sheet numbers; fp64_efficiency calibrated against Table I (DESIGN.md §1).
// The high-FP64 data-center GPUs achieve 26-39 % of peak (the paper profiles
// 32 % on the A100); consumer cards with 1/32-1/64 FP64 ratios are so
// FLOP-starved that the kernel runs close to their (tiny) FP64 peak.

device_spec nvidia_a100() {
    return device_spec{ "NVIDIA A100", vendor_type::nvidia, 9.7, 1555.0, 40.0, 8.0, 0.32, 20.0 };
}

device_spec nvidia_v100() {
    return device_spec{ "NVIDIA V100", vendor_type::nvidia, 7.8, 900.0, 32.0, 7.0, 0.385, 12.0 };
}

device_spec nvidia_p100() {
    return device_spec{ "NVIDIA P100", vendor_type::nvidia, 4.7, 732.0, 16.0, 6.0, 0.26, 12.0 };
}

device_spec nvidia_gtx_1080_ti() {
    return device_spec{ "NVIDIA GTX 1080 Ti", vendor_type::nvidia, 0.355, 484.0, 11.0, 6.1, 0.88, 12.0 };
}

device_spec nvidia_rtx_3080() {
    return device_spec{ "NVIDIA RTX 3080", vendor_type::nvidia, 0.465, 760.0, 10.0, 8.6, 0.90, 16.0 };
}

device_spec amd_radeon_vii() {
    return device_spec{ "AMD Radeon VII", vendor_type::amd, 3.36, 1024.0, 16.0, 0.0, 0.245, 12.0 };
}

device_spec intel_uhd_p630() {
    return device_spec{ "Intel UHD Graphics Gen9 P630", vendor_type::intel, 0.115, 41.6, 8.0, 0.0, 0.30, 8.0 };
}

const std::vector<device_spec> &all() {
    static const std::vector<device_spec> registry{
        nvidia_gtx_1080_ti(),
        nvidia_rtx_3080(),
        nvidia_p100(),
        nvidia_v100(),
        nvidia_a100(),
        amd_radeon_vii(),
        intel_uhd_p630(),
    };
    return registry;
}

device_spec by_name(const std::string_view name) {
    const std::string lower = detail::to_lower_case(name);
    for (const device_spec &spec : all()) {
        if (detail::to_lower_case(spec.name) == lower) {
            return spec;
        }
    }
    // short aliases for CLI convenience
    if (lower == "a100") { return nvidia_a100(); }
    if (lower == "v100") { return nvidia_v100(); }
    if (lower == "p100") { return nvidia_p100(); }
    if (lower == "gtx1080ti" || lower == "1080ti") { return nvidia_gtx_1080_ti(); }
    if (lower == "rtx3080" || lower == "3080") { return nvidia_rtx_3080(); }
    if (lower == "radeonvii" || lower == "radeon7") { return amd_radeon_vii(); }
    if (lower == "p630" || lower == "uhd630") { return intel_uhd_p630(); }
    throw invalid_parameter_exception{ "Unknown simulated device: '" + std::string{ name } + "'!" };
}

}  // namespace plssvm::sim::devices
