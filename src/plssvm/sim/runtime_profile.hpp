/**
 * @file
 * @brief Per-backend runtime characteristics of the simulated devices.
 *
 * The paper runs the *same* kernels through CUDA, OpenCL, and SYCL and
 * observes backend-dependent slowdowns (Table I): OpenCL close to CUDA,
 * hipSYCL slightly slower on compute capability >= 7.0 but over 3x slower on
 * older NVIDIA GPUs ("indicating that PLSSVM uses a feature which hipSYCL
 * does not efficiently map to older NVIDIA GPUs"), and DPC++ about 2x slower
 * than OpenCL on the Intel iGPU. The profile below encodes exactly these
 * effects: a per-launch overhead and a multiplicative kernel-efficiency
 * factor that may depend on the device.
 */

#ifndef PLSSVM_SIM_RUNTIME_PROFILE_HPP_
#define PLSSVM_SIM_RUNTIME_PROFILE_HPP_

#include "plssvm/sim/device_spec.hpp"

#include <string>
#include <string_view>

namespace plssvm::sim {

/// Which programming-model runtime drives the simulated device.
enum class backend_runtime {
    cuda,
    opencl,
    sycl,
};

[[nodiscard]] std::string_view backend_runtime_to_string(backend_runtime runtime);

/// Runtime-dependent execution parameters.
struct runtime_profile {
    backend_runtime runtime{ backend_runtime::cuda };
    /// Seconds of host-side overhead per kernel launch.
    double kernel_launch_overhead_s{ 5e-6 };
    /// Fixed one-time runtime/context initialisation cost in seconds
    /// (the "small overhead accessing the GPU" of §V).
    double init_overhead_s{ 0.2 };
    /// Per-transfer latency in seconds (on top of bytes / PCIe bandwidth).
    double transfer_latency_s{ 10e-6 };
    /// Multiplicative efficiency factor applied on top of the device's
    /// calibrated kernel efficiency; depends on (runtime, device).
    double efficiency_factor{ 1.0 };

    /**
     * @brief Build the profile for @p runtime on @p spec, encoding the
     *        Table I observations described above.
     * @throws plssvm::unsupported_backend_exception for CUDA on non-NVIDIA devices
     */
    [[nodiscard]] static runtime_profile for_device(backend_runtime runtime, const device_spec &spec);
};

}  // namespace plssvm::sim

#endif  // PLSSVM_SIM_RUNTIME_PROFILE_HPP_
