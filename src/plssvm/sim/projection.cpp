#include "plssvm/sim/projection.hpp"

#include "plssvm/core/matrix.hpp"
#include "plssvm/detail/assert.hpp"

#include <cstddef>

namespace plssvm::sim {

projection_result project_plssvm_training(const device_spec &spec,
                                          const backend_runtime runtime,
                                          const projection_params &params) {
    PLSSVM_ASSERT(params.num_points >= 2, "Projection requires at least two data points!");
    PLSSVM_ASSERT(params.num_devices >= 1, "Projection requires at least one device!");

    const runtime_profile profile = runtime_profile::for_device(runtime, spec);
    const std::size_t n = params.num_points - 1;
    const std::size_t padded = soa_matrix<double>::round_up(params.num_points, params.blocking.tile());
    // balanced feature split; the slowest (largest) slice gates progress
    const std::size_t dim_per_device =
        (params.num_features + params.num_devices - 1) / params.num_devices;
    const double rb = static_cast<double>(params.real_bytes);

    projection_result result;
    result.init_seconds = profile.init_overhead_s;

    // data upload: slice matrix + the three padded vectors
    const double data_bytes = static_cast<double>(padded) * static_cast<double>(dim_per_device) * rb;
    result.h2d_seconds = transfer_seconds(spec, profile, data_bytes);
    result.per_device_memory_bytes = data_bytes + 3.0 * static_cast<double>(padded) * rb;

    // one q kernel per device
    result.q_kernel_seconds =
        roofline_seconds(spec, profile, q_kernel_cost(n, dim_per_device, params.kernel, params.real_bytes));

    // per CG iteration: upload direction, svm kernel, download partial result
    const kernel_cost svm_cost = svm_kernel_cost(n, dim_per_device, params.kernel, params.blocking, params.real_bytes);
    const double vector_bytes = static_cast<double>(padded) * rb;
    const double per_iteration = transfer_seconds(spec, profile, vector_bytes)
                                 + roofline_seconds(spec, profile, svm_cost)
                                 + transfer_seconds(spec, profile, vector_bytes);
    result.cg_seconds = static_cast<double>(params.cg_iterations) * per_iteration;
    result.svm_kernel_flops = static_cast<double>(params.cg_iterations) * svm_cost.flops;

    result.total_seconds = result.init_seconds + result.h2d_seconds + result.q_kernel_seconds + result.cg_seconds;
    return result;
}

projection_result project_thunder_training(const device_spec &spec,
                                           const thunder_projection_params &params) {
    PLSSVM_ASSERT(params.num_points >= 2, "Projection requires at least two data points!");

    device_spec thunder_spec = spec;
    thunder_spec.fp64_efficiency = params.kernel_efficiency;
    const runtime_profile profile = runtime_profile::for_device(backend_runtime::cuda, thunder_spec);

    const double m = static_cast<double>(params.num_points);
    const double dim = static_cast<double>(params.num_features);
    const double rb = static_cast<double>(params.real_bytes);
    const double epilogue = params.kernel == kernel_type::linear ? 0.0 : 10.0;

    projection_result result;
    result.init_seconds = profile.init_overhead_s;
    result.h2d_seconds = transfer_seconds(spec, profile, m * dim * rb);
    // dense data + device-resident kernel row cache (ThunderSVM's footprint
    // exceeds the raw data size, §IV-G)
    result.per_device_memory_bytes = m * dim * rb * 1.6;

    // per SMO step: two selection reductions, the tiny two-variable update,
    // and the gradient update (the same launches the functional baseline
    // issues through the simulated device)
    const double per_step = 2.0 * roofline_seconds(thunder_spec, profile,
                                                   vector_kernel_cost(params.num_points, params.real_bytes))
                            + roofline_seconds(thunder_spec, profile, vector_kernel_cost(64, params.real_bytes))
                            + roofline_seconds(thunder_spec, profile,
                                               vector_kernel_cost(2 * params.num_points, params.real_bytes));
    // kernel-row computations for every distinct row touched
    kernel_cost row_cost;
    row_cost.flops = m * (2.0 * dim + epilogue);
    row_cost.global_bytes = (m * dim + 2.0 * m) * rb;
    const double rows_seconds = static_cast<double>(params.distinct_rows)
                                * roofline_seconds(thunder_spec, profile, row_cost);
    result.cg_seconds = static_cast<double>(params.total_steps) * per_step + rows_seconds;
    result.svm_kernel_flops = static_cast<double>(params.distinct_rows) * row_cost.flops;
    result.total_seconds = result.init_seconds + result.h2d_seconds + result.cg_seconds;
    return result;
}

}  // namespace plssvm::sim
