#include "plssvm/sim/profiler.hpp"

#include <string>

namespace plssvm::sim {

void profiler::record(const std::string_view name, const kernel_cost &cost, const double seconds) {
    kernel_stats &stats = kernels_[std::string{ name }];
    ++stats.launches;
    stats.flops += cost.flops;
    stats.global_bytes += cost.global_bytes;
    stats.seconds += seconds;
}

std::size_t profiler::total_launches() const noexcept {
    std::size_t sum = 0;
    for (const auto &[name, stats] : kernels_) {
        sum += stats.launches;
    }
    return sum;
}

double profiler::total_seconds() const noexcept {
    double sum = 0.0;
    for (const auto &[name, stats] : kernels_) {
        sum += stats.seconds;
    }
    return sum;
}

}  // namespace plssvm::sim
