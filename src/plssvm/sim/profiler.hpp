/**
 * @file
 * @brief Per-kernel execution statistics of a simulated device.
 *
 * Mirrors what the paper extracts from NVIDIA Nsight Compute (§IV-C): number
 * of kernel launches, their compute intensity, and the achieved FLOPS. The
 * `bench_profile_kernels` binary reproduces the paper's "3 big kernels at
 * 32 % of peak vs. >1600 tiny kernels at 2.4 %" comparison from these
 * numbers.
 */

#ifndef PLSSVM_SIM_PROFILER_HPP_
#define PLSSVM_SIM_PROFILER_HPP_

#include "plssvm/sim/cost_model.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace plssvm::sim {

class profiler {
  public:
    /// Aggregated statistics of one kernel (by name).
    struct kernel_stats {
        std::size_t launches{ 0 };
        double flops{ 0.0 };
        double global_bytes{ 0.0 };
        double seconds{ 0.0 };

        /// Average achieved TFLOPS over all launches of this kernel.
        [[nodiscard]] double achieved_tflops() const noexcept {
            return seconds > 0.0 ? flops / seconds / 1e12 : 0.0;
        }
    };

    /// Record one launch of @p name with cost @p cost taking @p seconds.
    void record(std::string_view name, const kernel_cost &cost, double seconds);

    [[nodiscard]] const std::map<std::string, kernel_stats> &kernels() const noexcept { return kernels_; }

    /// Number of *distinct* kernels launched at least once.
    [[nodiscard]] std::size_t num_distinct_kernels() const noexcept { return kernels_.size(); }

    /// Total number of launches across all kernels.
    [[nodiscard]] std::size_t total_launches() const noexcept;

    /// Total simulated kernel seconds.
    [[nodiscard]] double total_seconds() const noexcept;

    void clear() noexcept { kernels_.clear(); }

  private:
    std::map<std::string, kernel_stats> kernels_;
};

}  // namespace plssvm::sim

#endif  // PLSSVM_SIM_PROFILER_HPP_
