/**
 * @file
 * @brief The simulated accelerator: memory accounting, transfers, launches.
 *
 * A `device` owns a simulated clock. Kernel launches execute their body
 * *functionally on the host* (bit-identical math to a native backend) while
 * the clock advances by the roofline time of the launch's declared
 * `kernel_cost`. Memory is accounted against the device's real capacity so
 * out-of-memory behaviour (the reason the paper's multi-GPU mode exists,
 * §IV-G) is faithfully reproduced.
 */

#ifndef PLSSVM_SIM_DEVICE_HPP_
#define PLSSVM_SIM_DEVICE_HPP_

#include "plssvm/detail/assert.hpp"
#include "plssvm/exceptions.hpp"
#include "plssvm/sim/cost_model.hpp"
#include "plssvm/sim/device_spec.hpp"
#include "plssvm/sim/profiler.hpp"
#include "plssvm/sim/runtime_profile.hpp"

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace plssvm::sim {

class device {
  public:
    /// Create a device; constructing models the one-time runtime/context
    /// initialisation overhead (charged to the simulated clock).
    device(device_spec spec, runtime_profile profile);

    device(const device &) = delete;
    device &operator=(const device &) = delete;
    device(device &&) = default;
    device &operator=(device &&) = default;

    [[nodiscard]] const device_spec &spec() const noexcept { return spec_; }
    [[nodiscard]] const runtime_profile &profile() const noexcept { return profile_; }

    /**
     * @brief Launch a kernel: run @p body on the host, advance the simulated
     *        clock by the roofline time of @p cost, record it in the profiler.
     */
    void launch(std::string_view name, const kernel_cost &cost, const std::function<void()> &body);

    /// Account a host-to-device transfer of @p bytes.
    void transfer_h2d(double bytes);

    /// Account a device-to-host transfer of @p bytes.
    void transfer_d2h(double bytes);

    /// Simulated seconds elapsed on this device since construction/reset.
    [[nodiscard]] double clock_seconds() const noexcept { return clock_seconds_; }
    void reset_clock() noexcept { clock_seconds_ = 0.0; }

    [[nodiscard]] std::size_t allocated_bytes() const noexcept { return allocated_bytes_; }
    [[nodiscard]] std::size_t peak_allocated_bytes() const noexcept { return peak_allocated_bytes_; }

    [[nodiscard]] profiler &prof() noexcept { return profiler_; }
    [[nodiscard]] const profiler &prof() const noexcept { return profiler_; }

  private:
    template <typename T>
    friend class device_buffer;

    /// @throws plssvm::device_exception when the allocation exceeds capacity
    void account_alloc(std::size_t bytes);
    void account_free(std::size_t bytes) noexcept;

    device_spec spec_;
    runtime_profile profile_;
    double clock_seconds_{ 0.0 };
    std::size_t allocated_bytes_{ 0 };
    std::size_t peak_allocated_bytes_{ 0 };
    profiler profiler_;
};

/**
 * @brief RAII "device memory" allocation backed by host storage.
 *
 * Copies between host and buffer advance the owning device's simulated clock
 * by the PCIe transfer time of the copied bytes.
 */
template <typename T>
class device_buffer {
  public:
    device_buffer(device &dev, const std::size_t size) :
        device_{ &dev },
        storage_(size, T{ 0 }) {
        device_->account_alloc(size * sizeof(T));
    }

    device_buffer(const device_buffer &) = delete;
    device_buffer &operator=(const device_buffer &) = delete;

    device_buffer(device_buffer &&other) noexcept :
        device_{ other.device_ },
        storage_{ std::move(other.storage_) } {
        other.device_ = nullptr;
    }

    device_buffer &operator=(device_buffer &&other) noexcept {
        if (this != &other) {
            release();
            device_ = other.device_;
            storage_ = std::move(other.storage_);
            other.device_ = nullptr;
        }
        return *this;
    }

    ~device_buffer() { release(); }

    [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }

    /// Copy @p count values from @p src into the buffer at @p offset (H2D).
    void copy_from_host(const T *src, const std::size_t count, const std::size_t offset = 0) {
        if (offset + count > storage_.size()) {
            throw device_exception{ "H2D copy out of bounds!" };
        }
        std::copy(src, src + count, storage_.begin() + static_cast<std::ptrdiff_t>(offset));
        device_->transfer_h2d(static_cast<double>(count * sizeof(T)));
    }

    /// Copy the whole buffer (or @p count values) back to @p dst (D2H).
    void copy_to_host(T *dst, const std::size_t count) const {
        if (count > storage_.size()) {
            throw device_exception{ "D2H copy out of bounds!" };
        }
        std::copy(storage_.begin(), storage_.begin() + static_cast<std::ptrdiff_t>(count), dst);
        device_->transfer_d2h(static_cast<double>(count * sizeof(T)));
    }

    /// Raw access for kernel bodies (device-side view; no clock cost).
    [[nodiscard]] T *data() noexcept { return storage_.data(); }
    [[nodiscard]] const T *data() const noexcept { return storage_.data(); }

  private:
    void release() noexcept {
        if (device_ != nullptr) {
            device_->account_free(storage_.size() * sizeof(T));
            device_ = nullptr;
        }
    }

    device *device_;
    std::vector<T> storage_;
};

}  // namespace plssvm::sim

#endif  // PLSSVM_SIM_DEVICE_HPP_
