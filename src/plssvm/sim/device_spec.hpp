/**
 * @file
 * @brief Specifications of the simulated accelerator devices.
 *
 * This repository reproduces a GPU paper on a machine without GPUs; the
 * device layer executes the real blocked kernels numerically while an
 * analytic cost model advances a simulated clock (see DESIGN.md §1).
 *
 * The registry below contains every GPU of the paper's Table I and §IV-A.
 * Peak FLOPS / bandwidth / memory are the public data-sheet numbers; the
 * per-device `fp64_efficiency` (the fraction of peak the paper's style of
 * implicit-matrix kernel achieves) is calibrated once against Table I and
 * then reused unchanged for every other experiment — the validation is that
 * the *shapes* of Figures 1-4 follow without further tuning.
 */

#ifndef PLSSVM_SIM_DEVICE_SPEC_HPP_
#define PLSSVM_SIM_DEVICE_SPEC_HPP_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace plssvm::sim {

/// GPU vendor; influences which backends are available (CUDA is NVIDIA-only).
enum class vendor_type {
    nvidia,
    amd,
    intel,
};

/// Static description of one accelerator.
struct device_spec {
    std::string name;
    vendor_type vendor{ vendor_type::nvidia };
    /// Peak double-precision throughput in TFLOPS.
    double fp64_peak_tflops{ 1.0 };
    /// Global memory bandwidth in GB/s.
    double mem_bandwidth_gbs{ 100.0 };
    /// Global memory capacity in GiB.
    double mem_capacity_gib{ 8.0 };
    /// NVIDIA compute capability (major.minor as e.g. 7.0); 0 for non-NVIDIA.
    double compute_capability{ 0.0 };
    /// Calibrated fraction of FP64 peak the implicit-matrix kernel achieves.
    double fp64_efficiency{ 0.35 };
    /// Effective host<->device transfer bandwidth in GB/s (PCIe).
    double pcie_bandwidth_gbs{ 12.0 };

    [[nodiscard]] double peak_flops() const noexcept { return fp64_peak_tflops * 1e12; }
    [[nodiscard]] double bandwidth_bytes_per_s() const noexcept { return mem_bandwidth_gbs * 1e9; }
    [[nodiscard]] std::size_t capacity_bytes() const noexcept {
        return static_cast<std::size_t>(mem_capacity_gib * 1024.0 * 1024.0 * 1024.0);
    }
};

/// All devices of the paper's evaluation, plus lookup by name.
namespace devices {

[[nodiscard]] device_spec nvidia_a100();
[[nodiscard]] device_spec nvidia_v100();
[[nodiscard]] device_spec nvidia_p100();
[[nodiscard]] device_spec nvidia_gtx_1080_ti();
[[nodiscard]] device_spec nvidia_rtx_3080();
[[nodiscard]] device_spec amd_radeon_vii();
[[nodiscard]] device_spec intel_uhd_p630();

/// Every registered device (Table I order).
[[nodiscard]] const std::vector<device_spec> &all();

/// @throws plssvm::invalid_parameter_exception for unknown names.
[[nodiscard]] device_spec by_name(std::string_view name);

}  // namespace devices

}  // namespace plssvm::sim

#endif  // PLSSVM_SIM_DEVICE_SPEC_HPP_
