#include "plssvm/sim/cost_model.hpp"

#include <algorithm>
#include <cstddef>

namespace plssvm::sim {

namespace {

/// Fraction of the data-sheet bandwidth streaming kernels actually reach.
constexpr double effective_bandwidth_fraction = 0.75;

/// Approximate flop cost of the kernel epilogue per matrix entry (§II-E):
/// the linear kernel is a bare inner product; polynomial adds the fused
/// multiply-add plus the exponentiation by squaring; rbf/sigmoid pay for the
/// transcendental.
[[nodiscard]] double epilogue_flops(const kernel_type kernel) noexcept {
    switch (kernel) {
        case kernel_type::linear:
            return 0.0;
        case kernel_type::polynomial:
            return 6.0;
        case kernel_type::rbf:
            return 10.0;
        case kernel_type::sigmoid:
            return 14.0;
    }
    return 0.0;
}

[[nodiscard]] std::size_t round_up(const std::size_t value, const std::size_t multiple) noexcept {
    return (value + multiple - 1) / multiple * multiple;
}

}  // namespace

double host_roofline_seconds(const host_profile &host, const kernel_cost &cost) {
    const double threads = static_cast<double>(std::max<std::size_t>(host.num_threads, 1));
    const double thread_scale = threads > 1.0 ? threads * host.parallel_efficiency : 1.0;
    const double flop_rate = host.effective_gflops * 1e9 * thread_scale;
    const double compute_time = cost.flops / flop_rate;
    // the streaming sweeps saturate the shared memory system regardless of
    // the thread count, so bandwidth is not scaled by threads
    const double memory_time = cost.global_bytes / (host.effective_bandwidth_gbs * 1e9);
    return std::max(compute_time, memory_time);
}

double roofline_seconds(const device_spec &spec, const runtime_profile &profile, const kernel_cost &cost) {
    const double achieved_flops = spec.peak_flops() * spec.fp64_efficiency * profile.efficiency_factor;
    const double achieved_bandwidth = spec.bandwidth_bytes_per_s() * effective_bandwidth_fraction;
    const double compute_time = cost.flops / achieved_flops;
    const double memory_time = cost.global_bytes / achieved_bandwidth;
    return profile.kernel_launch_overhead_s + std::max(compute_time, memory_time);
}

double transfer_seconds(const device_spec &spec, const runtime_profile &profile, const double bytes) {
    return profile.transfer_latency_s + bytes / (spec.pcie_bandwidth_gbs * 1e9);
}

kernel_cost q_kernel_cost(const std::size_t n, const std::size_t dim, const kernel_type kernel, const std::size_t real_bytes) {
    kernel_cost cost;
    const double evals = static_cast<double>(n);
    cost.flops = evals * (2.0 * static_cast<double>(dim) + epilogue_flops(kernel));
    // reads all n rows plus x_m once, writes the q vector
    cost.global_bytes = (static_cast<double>(n) * static_cast<double>(dim) + static_cast<double>(dim) + static_cast<double>(n)) * static_cast<double>(real_bytes);
    return cost;
}

kernel_cost svm_kernel_cost(const std::size_t n, const std::size_t dim, const kernel_type kernel, const block_config &cfg, const std::size_t real_bytes) {
    const std::size_t tile = std::max<std::size_t>(1, cfg.tile());
    const std::size_t n_pad = round_up(n, tile);

    // pairwise kernel evaluations; triangular blocking halves them (§III-C-1)
    double pairs = static_cast<double>(n_pad) * static_cast<double>(n_pad);
    if (cfg.triangular) {
        pairs *= 0.5;
    }
    // without the cached q vector, each entry costs three kernel evaluations
    // instead of one (§III-C-2)
    const double evals_per_entry = cfg.cache_q ? 1.0 : 3.0;

    kernel_cost cost;
    cost.flops = pairs * evals_per_entry * (2.0 * static_cast<double>(dim) + epilogue_flops(kernel))
                 // rank-one corrections and the diagonal term, O(n) work
                 + 6.0 * static_cast<double>(n_pad);

    // Block-level caching (§III-C-3): each tile pair loads 2 * tile * dim
    // values from global memory once, then reuses them tile^2 times out of
    // shared memory / registers. Traffic per pair is therefore 2 * dim / tile.
    const double tile_traffic = pairs * evals_per_entry * 2.0 * static_cast<double>(dim) / static_cast<double>(tile);
    // input/output vectors and the q vector
    const double vector_traffic = 4.0 * static_cast<double>(n_pad);
    cost.global_bytes = (tile_traffic + vector_traffic) * static_cast<double>(real_bytes);
    return cost;
}

kernel_cost vector_kernel_cost(const std::size_t n, const std::size_t real_bytes) {
    kernel_cost cost;
    cost.flops = 2.0 * static_cast<double>(n);
    cost.global_bytes = 3.0 * static_cast<double>(n) * static_cast<double>(real_bytes);
    return cost;
}

kernel_cost predict_kernel_cost(const std::size_t num_predict, const std::size_t num_sv, const std::size_t dim, const kernel_type kernel, const std::size_t real_bytes) {
    kernel_cost cost;
    if (kernel == kernel_type::linear) {
        // w accumulation plus one dot product per prediction point
        cost.flops = 2.0 * static_cast<double>(num_sv) * static_cast<double>(dim)
                     + 2.0 * static_cast<double>(num_predict) * static_cast<double>(dim);
        cost.global_bytes = (static_cast<double>(num_sv) + static_cast<double>(num_predict)) * static_cast<double>(dim) * static_cast<double>(real_bytes);
    } else {
        cost.flops = static_cast<double>(num_predict) * static_cast<double>(num_sv) * (2.0 * static_cast<double>(dim) + epilogue_flops(kernel));
        cost.global_bytes = (static_cast<double>(num_sv) + static_cast<double>(num_predict)) * static_cast<double>(dim) * static_cast<double>(real_bytes);
    }
    return cost;
}

kernel_cost serve_predict_cost(const std::size_t batch, const std::size_t num_sv, const std::size_t dim, const kernel_type kernel, const std::size_t real_bytes) {
    kernel_cost cost;
    if (kernel == kernel_type::linear) {
        // w is precompiled: one dot product per prediction point
        cost.flops = 2.0 * static_cast<double>(batch) * static_cast<double>(dim);
        cost.global_bytes = (static_cast<double>(batch) * static_cast<double>(dim) + static_cast<double>(dim) + static_cast<double>(batch)) * static_cast<double>(real_bytes);
    } else {
        cost.flops = static_cast<double>(batch) * static_cast<double>(num_sv) * (2.0 * static_cast<double>(dim) + epilogue_flops(kernel));
        cost.global_bytes = (static_cast<double>(num_sv) + static_cast<double>(batch)) * static_cast<double>(dim) * static_cast<double>(real_bytes);
    }
    return cost;
}

namespace {

// Flop-equivalent charges of the sparse serving sweeps, calibrated against
// the bench_serve_throughput sparsity sweep on a commodity x86-64 host: the
// dense blocked kernels run wide FMA tiles (tens of scalar flops per cycle),
// while every sparse step is an indexed scalar access. Charging sparse steps
// at these multiples of a "dense flop" makes the shared host-profile roofline
// comparison land on the empirically faster path across 95/99/99.9% zeros.

/// Indexed gather step (dense-query x CSC sweep, linear w gather).
constexpr double sparse_gather_step_flops = 16.0;
/// Compare-and-advance step of the CSR x CSR merge-join (branchy, serial).
constexpr double sparse_merge_step_flops = 128.0;
/// Fixed per-(point, SV)-pair overhead of the merge-join row sweep (pointer
/// setup, loop prologue) on top of the shared kernel epilogue.
constexpr double sparse_merge_pair_flops = 96.0;

}  // namespace

kernel_cost serve_sparse_predict_cost(const std::size_t batch, const std::size_t num_sv, const std::size_t dim,
                                      const std::size_t sv_nnz, const std::size_t query_nnz, const bool sparse_query,
                                      const kernel_type kernel, const std::size_t real_bytes,
                                      const std::size_t point_tile) {
    // a CSR entry is one value plus a 4-byte column index
    const double entry_bytes = static_cast<double>(real_bytes) + 4.0;
    const double query_bytes = sparse_query ? static_cast<double>(query_nnz) * entry_bytes
                                            : static_cast<double>(batch) * static_cast<double>(dim) * static_cast<double>(real_bytes);
    kernel_cost cost;
    if (kernel == kernel_type::linear) {
        // one indexed gather per stored query entry against the precompiled
        // w, plus a small per-row loop overhead
        cost.flops = sparse_gather_step_flops * static_cast<double>(query_nnz) + 8.0 * static_cast<double>(batch);
        cost.global_bytes = query_bytes
                            + (static_cast<double>(dim) + static_cast<double>(batch)) * static_cast<double>(real_bytes);
    } else {
        const double pairs = static_cast<double>(batch) * static_cast<double>(num_sv);
        // the kernel epilogue runs once per (point, SV) pair, exactly like
        // the dense path; RBF adds the query-norm pass
        cost.flops = pairs * (1.0 + epilogue_flops(kernel))
                     + (kernel == kernel_type::rbf ? 2.0 * static_cast<double>(query_nnz) : 0.0);
        if (sparse_query) {
            // CSR x CSR merge-join: each pair advances through both rows
            const double merge_steps = static_cast<double>(batch) * static_cast<double>(sv_nnz)
                                       + static_cast<double>(num_sv) * static_cast<double>(query_nnz);
            cost.flops += sparse_merge_step_flops * merge_steps + sparse_merge_pair_flops * pairs;
        } else {
            // dense-query x CSC sweep: one gather-FMA per stored SV entry per point
            cost.flops += sparse_gather_step_flops * static_cast<double>(batch) * static_cast<double>(sv_nnz);
        }
        // SV panel streamed once per point tile, queries and results once
        const double tiles = static_cast<double>((batch + point_tile - 1) / std::max<std::size_t>(point_tile, 1));
        cost.global_bytes = tiles * static_cast<double>(sv_nnz) * entry_bytes
                            + query_bytes
                            + static_cast<double>(batch) * static_cast<double>(real_bytes);
    }
    return cost;
}

}  // namespace plssvm::sim
