#include "plssvm/sim/device.hpp"

#include <string>
#include <utility>

namespace plssvm::sim {

device::device(device_spec spec, runtime_profile profile) :
    spec_{ std::move(spec) },
    profile_{ profile } {
    // one-time runtime/context initialisation (paper §V: "The GPU
    // implementations have a small overhead accessing the GPU(s)")
    clock_seconds_ += profile_.init_overhead_s;
}

void device::launch(const std::string_view name, const kernel_cost &cost, const std::function<void()> &body) {
    if (body) {
        body();
    }
    const double seconds = roofline_seconds(spec_, profile_, cost);
    clock_seconds_ += seconds;
    profiler_.record(name, cost, seconds);
}

void device::transfer_h2d(const double bytes) {
    clock_seconds_ += transfer_seconds(spec_, profile_, bytes);
}

void device::transfer_d2h(const double bytes) {
    clock_seconds_ += transfer_seconds(spec_, profile_, bytes);
}

void device::account_alloc(const std::size_t bytes) {
    if (allocated_bytes_ + bytes > spec_.capacity_bytes()) {
        throw device_exception{ "Device '" + spec_.name + "' out of memory: requested " + std::to_string(bytes) + " B on top of " + std::to_string(allocated_bytes_) + " B allocated (capacity " + std::to_string(spec_.capacity_bytes()) + " B)!" };
    }
    allocated_bytes_ += bytes;
    peak_allocated_bytes_ = std::max(peak_allocated_bytes_, allocated_bytes_);
}

void device::account_free(const std::size_t bytes) noexcept {
    allocated_bytes_ = bytes > allocated_bytes_ ? 0 : allocated_bytes_ - bytes;
}

}  // namespace plssvm::sim
