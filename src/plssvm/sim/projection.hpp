/**
 * @file
 * @brief Paper-scale analytic training-time projection.
 *
 * The paper's largest experiments (e.g. 2^15 points x 2^12 features, Table I
 * / Figs. 1c-4b) perform ~10^14 FLOPs per run — far beyond what this
 * single-core host can execute functionally. The library therefore offers a
 * projection facility that walks the *identical* launch sequence the device
 * backend would issue (data upload, one q kernel, per-CG-iteration direction
 * upload + svm kernel + result download per device) and sums the same
 * `cost_model` times a real run would accumulate. Benches run functionally
 * at reduced scale and use this projection for paper-scale rows; both paths
 * share every cost formula, so they agree by construction where they overlap
 * (enforced by tests).
 *
 * CG iteration counts are an input: the paper reports them directly (e.g. 26
 * iterations at 2^15 x 2^10) and they are nearly size-independent (§IV-C),
 * so benches pass counts measured functionally at reduced scale.
 */

#ifndef PLSSVM_SIM_PROJECTION_HPP_
#define PLSSVM_SIM_PROJECTION_HPP_

#include "plssvm/core/kernel_types.hpp"
#include "plssvm/sim/cost_model.hpp"
#include "plssvm/sim/device_spec.hpp"
#include "plssvm/sim/runtime_profile.hpp"

#include <cstddef>

namespace plssvm::sim {

/// Problem description for a projected PLSSVM training run.
struct projection_params {
    std::size_t num_points{ 0 };
    std::size_t num_features{ 0 };
    kernel_type kernel{ kernel_type::linear };
    std::size_t cg_iterations{ 25 };
    std::size_t num_devices{ 1 };
    std::size_t real_bytes{ sizeof(double) };
    block_config blocking{};
};

/// Projected component times (simulated device seconds).
struct projection_result {
    double init_seconds{ 0.0 };
    double h2d_seconds{ 0.0 };
    double q_kernel_seconds{ 0.0 };
    double cg_seconds{ 0.0 };  ///< per-iteration transfers + svm kernel, summed
    double total_seconds{ 0.0 };
    double per_device_memory_bytes{ 0.0 };
    double svm_kernel_flops{ 0.0 };  ///< total flops of the implicit matvec kernel
};

/**
 * @brief Project a PLSSVM training run on @p spec via @p runtime.
 *
 * Walks the same launch sequence as `device_csvm::solve_lssvm`; devices work
 * concurrently, so multi-device time is the per-device maximum (the feature
 * split is balanced, making all devices equal).
 */
[[nodiscard]] projection_result project_plssvm_training(const device_spec &spec,
                                                        backend_runtime runtime,
                                                        const projection_params &params);

/// ThunderSVM-style baseline projection inputs.
struct thunder_projection_params {
    std::size_t num_points{ 0 };
    std::size_t num_features{ 0 };
    kernel_type kernel{ kernel_type::linear };
    /// Total SMO steps; each issues 2 reduction + 1 update + 1 gradient launch
    /// (benches fit this from functional measurements; it grows ~quadratically
    /// in the number of points, unlike the near-constant CG counts).
    std::size_t total_steps{ 10000 };
    /// Distinct kernel rows computed on the device (~ number of SVs touched).
    std::size_t distinct_rows{ 1000 };
    std::size_t real_bytes{ sizeof(double) };
    /// Fraction of FP64 peak ThunderSVM's kernels achieve (paper: 2.4 %).
    double kernel_efficiency{ 0.024 };
};

/**
 * @brief Project a ThunderSVM-style training run (single device; ThunderSVM
 *        is CUDA-only and single-GPU, paper §IV-H).
 */
[[nodiscard]] projection_result project_thunder_training(const device_spec &spec,
                                                         const thunder_projection_params &params);

}  // namespace plssvm::sim

#endif  // PLSSVM_SIM_PROJECTION_HPP_
