/**
 * @file
 * @brief Register/cache-tiled batch-prediction kernels of the serving layer.
 *
 * The per-point reference path (`compiled_model::decision_values_reference_into`)
 * re-streams the entire padded SoA support-vector panel from memory for every
 * query point: one pass of `padded_sv * dim` loads, one accumulator load and
 * store per multiply-add. These kernels instead process a *tile* of
 * `batch_point_tile` points against register panels of `batch_sv_tile`
 * support vectors, so
 *
 *  - each SoA column load is reused `batch_point_tile` times,
 *  - the `batch_point_tile x batch_sv_tile` core accumulator lives entirely
 *    in registers across the whole feature sweep (no accumulator traffic),
 *  - the support-vector panel is streamed from memory once per *point tile*
 *    instead of once per *point* — a `batch_point_tile`-fold traffic cut.
 *
 * This is the GEMM-shaped rewrite of the prediction sweep the paper's
 * profiling section motivates: the inner-product core of a batch is exactly
 * `points (B x d) * sv^T (d x num_sv)`.
 *
 * Numerical contract: for every point the arithmetic *order* is identical to
 * the scalar reference path (feature-ascending elementwise core accumulation,
 * support-vector-ascending epilogue sum, identical `kernels::dot` calls for
 * the linear kernel and the RBF `||x||^2` term). Tiling only changes the
 * memory access order. The non-linear kernel is ISA-multi-versioned
 * (`target_clones`): on AVX2/AVX-512 hosts the selected clone may contract
 * multiply+add to FMA, so blocked and reference results agree bit-for-bit on
 * baseline builds and to ~1e-15 relative where FMA contraction differs;
 * parity tests therefore compare bit-tolerantly (rel. error <= 1e-10). The
 * linear path shares `kernels::dot` with the reference and is always
 * bit-identical to it.
 *
 * Tile-size constants can be overridden at configure time, e.g.
 * `cmake -DCMAKE_CXX_FLAGS="-DPLSSVM_SERVE_POINT_TILE=8 -DPLSSVM_SERVE_SV_TILE=8"`;
 * `PLSSVM_SERVE_SV_TILE` must divide `compiled_model_row_padding` (64).
 * Remainder tiles (batch sizes that are not tile multiples, support-vector
 * counts that are not `batch_sv_tile` multiples) are handled explicitly and
 * produce the same per-point arithmetic as full tiles.
 */

#ifndef PLSSVM_SERVE_BATCH_KERNELS_HPP_
#define PLSSVM_SERVE_BATCH_KERNELS_HPP_

#include "plssvm/core/kernel_functions.hpp"
#include "plssvm/core/matrix.hpp"
#include "plssvm/core/sparse_matrix.hpp"

#include <cstddef>

namespace plssvm::serve {

/// Points processed per register tile (B): every SoA column load is reused
/// this many times.
#ifndef PLSSVM_SERVE_POINT_TILE
inline constexpr std::size_t batch_point_tile = 4;
#else
inline constexpr std::size_t batch_point_tile = PLSSVM_SERVE_POINT_TILE;
#endif

/// Support vectors processed per register tile (W): the core accumulator is
/// a `batch_point_tile x batch_sv_tile` block held in registers.
#ifndef PLSSVM_SERVE_SV_TILE
inline constexpr std::size_t batch_sv_tile = 8;
#else
inline constexpr std::size_t batch_sv_tile = PLSSVM_SERVE_SV_TILE;
#endif

/// Points processed per tile of the *sparse* sweeps: the CSR support-vector
/// panel is streamed from memory once per tile of this many queries, and the
/// dense-query x sparse-SV sweep keeps a `sparse_point_tile x num_sv`
/// accumulator block cache-resident across the feature sweep.
#ifndef PLSSVM_SERVE_SPARSE_POINT_TILE
inline constexpr std::size_t sparse_point_tile = 16;
#else
inline constexpr std::size_t sparse_point_tile = PLSSVM_SERVE_SPARSE_POINT_TILE;
#endif

static_assert(batch_point_tile >= 1, "batch_point_tile must be at least 1");
static_assert(batch_sv_tile >= 1, "batch_sv_tile must be at least 1");
static_assert(sparse_point_tile >= 1, "sparse_point_tile must be at least 1");

namespace batch {

/**
 * @brief Blocked linear decision values: `out[p - row_begin] = <w, x_p> + bias`
 *        for rows [@p row_begin, @p row_end) of @p points.
 *
 * The linear kernel needs no SV sweep at serve time (the normal vector `w`
 * is collapsed once at compile time), so the batch shape is a GEMV
 * `X * w`: each contiguous AoS query row is dotted against the
 * register/L1-resident `w`. Uses the same `kernels::dot` as the reference
 * path for bit-identical results.
 *
 * @param w collapsed normal vector (@p dim entries)
 */
template <typename T>
void linear_decision_values(const T *w, T bias, std::size_t dim,
                            const aos_matrix<T> &points, std::size_t row_begin, std::size_t row_end,
                            T *out);

/**
 * @brief Blocked non-linear decision values for rows [@p row_begin, @p row_end)
 *        of @p points against the padded SoA support-vector panel @p sv.
 *
 * Core accumulation is the register-tiled inner-product GEMM described in the
 * file header; the epilogue applies the kernel function per (point, SV) pair
 * and reduces with the SV weights @p alpha.
 *
 * @param sv padded feature-major support vectors
 * @param alpha SV weights (@p num_sv entries; only real SVs are read)
 * @param sv_sq_norms cached `||sv_i||^2` (@p num_sv entries); required for the
 *        RBF kernel (distance core `||sv||^2 + ||x||^2 - 2<sv, x>`), ignored
 *        (may be nullptr) for the inner-product kernels
 */
template <typename T>
void kernel_decision_values(const soa_matrix<T> &sv, const T *alpha, const T *sv_sq_norms,
                            const kernel_params<T> &kp, T bias,
                            const aos_matrix<T> &points, std::size_t row_begin, std::size_t row_end,
                            T *out);

/**
 * @brief Sparse linear decision values: `out[p - row_begin] = <w, x_p> + bias`
 *        for CSR rows [@p row_begin, @p row_end) of @p points, where the
 *        precompiled normal vector is itself stored sparsely.
 *
 * Both sides are sorted by column index, so each row costs one O(nnz_row +
 * nnz_w) merge-join — the LIBSVM-style sparse dot. Terms skipped by the merge
 * are exact zero products, so the result is bit-identical to the dense
 * `kernels::dot` sweep over the densified row.
 *
 * @param w_entries the non-zero entries of the collapsed normal vector `w`,
 *        column-ascending (@p w_nnz of them)
 */
template <typename T>
void sparse_linear_decision_values(const typename csr_matrix<T>::entry *w_entries, std::size_t w_nnz, T bias,
                                   const csr_matrix<T> &points, std::size_t row_begin, std::size_t row_end,
                                   T *out);

/**
 * @brief Sparse non-linear decision values for CSR query rows
 *        [@p row_begin, @p row_end) against the CSR support-vector panel
 *        @p sv: one merge-join row-pair core per (point, SV) pair.
 *
 * Point-tiled like the dense kernels: the whole CSR SV panel is streamed once
 * per `sparse_point_tile` queries instead of once per query. The RBF core is
 * the cached-norm form `||sv||^2 + ||x||^2 - 2<sv, x>` with `||x||^2` summed
 * over the stored query entries (exact: dropped entries are zero).
 *
 * @param sv support vectors in CSR form (row = one SV, column-ascending)
 * @param alpha SV weights (`sv.num_rows()` entries)
 * @param sv_sq_norms cached `||sv_i||^2`; required for RBF, may be nullptr
 *        for the inner-product kernels
 */
template <typename T>
void sparse_kernel_decision_values(const csr_matrix<T> &sv, const T *alpha, const T *sv_sq_norms,
                                   const kernel_params<T> &kp, T bias,
                                   const csr_matrix<T> &points, std::size_t row_begin, std::size_t row_end,
                                   T *out);

/**
 * @brief Sparse non-linear decision values for *dense* query rows
 *        [@p row_begin, @p row_end) against the transposed (feature-major)
 *        CSR support-vector panel @p sv_csc.
 *
 * The sparse analogue of the SoA sweep: for each feature `f`, only the
 * support vectors actually storing `f` receive an accumulator update, so the
 * core accumulation is O(sv_nnz) per point tile instead of O(num_sv * dim).
 * The `sparse_point_tile x num_sv` accumulator block stays cache-resident
 * across the feature sweep, and the panel is streamed once per point tile.
 *
 * @param sv_csc transposed SV panel: row `f` lists the (sv index, value)
 *        pairs of feature `f` (`csr_matrix::transposed()` of the SV CSR)
 * @param num_sv number of support vectors (columns of @p sv_csc)
 */
template <typename T>
void dense_sparse_kernel_decision_values(const csr_matrix<T> &sv_csc, std::size_t num_sv,
                                         const T *alpha, const T *sv_sq_norms,
                                         const kernel_params<T> &kp, T bias,
                                         const aos_matrix<T> &points, std::size_t row_begin, std::size_t row_end,
                                         T *out);

// ISA-multi-versioned explicit specializations (defined in batch_kernels.cpp)
template <>
void kernel_decision_values<float>(const soa_matrix<float> &, const float *, const float *,
                                   const kernel_params<float> &, float,
                                   const aos_matrix<float> &, std::size_t, std::size_t, float *);
template <>
void kernel_decision_values<double>(const soa_matrix<double> &, const double *, const double *,
                                    const kernel_params<double> &, double,
                                    const aos_matrix<double> &, std::size_t, std::size_t, double *);

}  // namespace batch

}  // namespace plssvm::serve

#endif  // PLSSVM_SERVE_BATCH_KERNELS_HPP_
