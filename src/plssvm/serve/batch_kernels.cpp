#include "plssvm/serve/batch_kernels.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

/**
 * Function multi-versioning of the non-linear batch kernel: the baseline
 * build stays portable (plain x86-64 / SSE2), but on CPUs with AVX2+FMA or
 * AVX-512 the runtime resolver picks a clone compiled for that ISA, which
 * widens the register tile's FMA throughput by 2-4x. The clones may contract
 * multiply+add to FMA, so blocked results can differ from the scalar
 * reference path in the last bits on such machines — parity tests compare
 * with rel. tolerance 1e-10 (see batch_kernels.hpp).
 */
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
    // sanitizers cannot handle the ifunc resolvers multi-versioning emits
    // (they run before the sanitizer runtime initializes -> startup crash),
    // so sanitizer builds fall back to the portable baseline clone
    #define PLSSVM_SERVE_TARGET_CLONES __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
    #define PLSSVM_SERVE_TARGET_CLONES
#endif

namespace plssvm::serve::batch {

namespace {

constexpr std::size_t B = batch_point_tile;
constexpr std::size_t W = batch_sv_tile;

/**
 * @brief Core accumulation of one full B x W register tile:
 *        `acc[p][j] = sum_f x_p[f] * sv[i0 + j][f]`.
 *
 * All loop bounds are compile-time constants so the accumulator block stays
 * in registers across the whole feature sweep; each column load `col[j]` is
 * reused for all B points. The feature-ascending elementwise accumulation
 * matches the reference path's arithmetic order exactly.
 *
 * @param col0 SoA column base of the tile, i.e. `sv_data + i0`
 * @param x_rows the B contiguous AoS query rows
 */
template <typename T>
[[gnu::always_inline]] inline void accumulate_tile_full(const T *col0, const std::size_t padded, const std::size_t dim,
                                                        const T *const *x_rows, T acc[B][W]) {
    for (std::size_t p = 0; p < B; ++p) {
        for (std::size_t j = 0; j < W; ++j) {
            acc[p][j] = T{ 0 };
        }
    }
    for (std::size_t f = 0; f < dim; ++f) {
        const T *col = col0 + f * padded;
        for (std::size_t p = 0; p < B; ++p) {
            const T xf = x_rows[p][f];
            #pragma omp simd
            for (std::size_t j = 0; j < W; ++j) {
                acc[p][j] += xf * col[j];
            }
        }
    }
}

/// Remainder-tile core accumulation with runtime point (@p pb) and SV (@p jw)
/// counts; per-point arithmetic is identical to the full-tile version.
template <typename T>
[[gnu::always_inline]] inline void accumulate_tile_partial(const T *col0, const std::size_t padded, const std::size_t dim,
                                                           const T *const *x_rows, const std::size_t pb, const std::size_t jw,
                                                           T acc[B][W]) {
    for (std::size_t p = 0; p < pb; ++p) {
        for (std::size_t j = 0; j < jw; ++j) {
            acc[p][j] = T{ 0 };
        }
    }
    for (std::size_t f = 0; f < dim; ++f) {
        const T *col = col0 + f * padded;
        for (std::size_t p = 0; p < pb; ++p) {
            const T xf = x_rows[p][f];
            #pragma omp simd
            for (std::size_t j = 0; j < jw; ++j) {
                acc[p][j] += xf * col[j];
            }
        }
    }
}

/// Shared body of `kernel_decision_values`; force-inlined into each ISA clone
/// so the register tile compiles with the clone's vector width.
template <typename T>
[[gnu::always_inline]] inline void kernel_decision_values_body(const soa_matrix<T> &sv, const T *alpha, const T *sv_sq_norms,
                                                               const kernel_params<T> &kp, const T bias,
                                                               const aos_matrix<T> &points, const std::size_t row_begin, const std::size_t row_end,
                                                               T *out) {
    const std::size_t dim = sv.num_cols();
    const std::size_t num_sv = sv.num_rows();
    const std::size_t padded = sv.padded_rows();
    const T *sv_data = sv.data().data();
    const bool rbf = !kernels::uses_inner_product_core(kp.kernel);

    for (std::size_t p0 = row_begin; p0 < row_end; p0 += B) {
        const std::size_t pb = std::min(B, row_end - p0);

        const T *x_rows[B] = {};
        T x_sq[B] = {};
        T partial[B] = {};
        for (std::size_t p = 0; p < pb; ++p) {
            x_rows[p] = points.row_data(p0 + p);
            if (rbf) {
                // same dot call as the reference path -> identical ||x||^2
                x_sq[p] = kernels::dot(x_rows[p], x_rows[p], dim);
            }
        }

        for (std::size_t i0 = 0; i0 < num_sv; i0 += W) {
            const std::size_t jw = std::min(W, num_sv - i0);
            T acc[B][W];
            // a full register tile may read the zero padding beyond num_sv
            // (jw < W); the epilogue below only consumes the jw real SVs
            if (pb == B && i0 + W <= padded) {
                accumulate_tile_full(sv_data + i0, padded, dim, x_rows, acc);
            } else {
                accumulate_tile_partial(sv_data + i0, padded, dim, x_rows, pb, jw, acc);
            }
            for (std::size_t p = 0; p < pb; ++p) {
                T sum = partial[p];
                if (rbf) {
                    for (std::size_t j = 0; j < jw; ++j) {
                        // clamp tiny negative rounding residue like the reference
                        const T core = std::max(sv_sq_norms[i0 + j] + x_sq[p] - T{ 2 } * acc[p][j], T{ 0 });
                        sum += alpha[i0 + j] * kernels::finish(kp, core);
                    }
                } else {
                    for (std::size_t j = 0; j < jw; ++j) {
                        sum += alpha[i0 + j] * kernels::finish(kp, acc[p][j]);
                    }
                }
                partial[p] = sum;
            }
        }

        for (std::size_t p = 0; p < pb; ++p) {
            out[p0 - row_begin + p] = partial[p] + bias;
        }
    }
}

}  // namespace

template <typename T>
void linear_decision_values(const T *w, const T bias, const std::size_t dim,
                            const aos_matrix<T> &points, const std::size_t row_begin, const std::size_t row_end,
                            T *out) {
    // GEMV X * w: w is L1-resident after the first row, each query row is
    // streamed exactly once; kernels::dot keeps bit-parity with the
    // reference path.
    for (std::size_t p = row_begin; p < row_end; ++p) {
        out[p - row_begin] = kernels::dot(w, points.row_data(p), dim) + bias;
    }
}

template <>
PLSSVM_SERVE_TARGET_CLONES
void kernel_decision_values<float>(const soa_matrix<float> &sv, const float *alpha, const float *sv_sq_norms,
                                   const kernel_params<float> &kp, const float bias,
                                   const aos_matrix<float> &points, const std::size_t row_begin, const std::size_t row_end,
                                   float *out) {
    kernel_decision_values_body<float>(sv, alpha, sv_sq_norms, kp, bias, points, row_begin, row_end, out);
}

template <>
PLSSVM_SERVE_TARGET_CLONES
void kernel_decision_values<double>(const soa_matrix<double> &sv, const double *alpha, const double *sv_sq_norms,
                                    const kernel_params<double> &kp, const double bias,
                                    const aos_matrix<double> &points, const std::size_t row_begin, const std::size_t row_end,
                                    double *out) {
    kernel_decision_values_body<double>(sv, alpha, sv_sq_norms, kp, bias, points, row_begin, row_end, out);
}

template void linear_decision_values<float>(const float *, float, std::size_t, const aos_matrix<float> &, std::size_t, std::size_t, float *);
template void linear_decision_values<double>(const double *, double, std::size_t, const aos_matrix<double> &, std::size_t, std::size_t, double *);

// --- sparse SV-side sweeps --------------------------------------------------
//
// The sparse kernels are gather/merge bound, not FMA bound, so they are not
// ISA-multi-versioned: there is no register tile for wider vectors to speed
// up, and the branchy merge-joins do not vectorize anyway.

namespace {

/// ||row||^2 over the stored entries (exact: dropped entries are zero).
template <typename T>
[[nodiscard]] inline T row_sq_norm(const typename csr_matrix<T>::entry *e, const typename csr_matrix<T>::entry *e_end) noexcept {
    T sum{ 0 };
    for (; e != e_end; ++e) {
        sum += e->value * e->value;
    }
    return sum;
}

}  // namespace

template <typename T>
void sparse_linear_decision_values(const typename csr_matrix<T>::entry *w_entries, const std::size_t w_nnz, const T bias,
                                   const csr_matrix<T> &points, const std::size_t row_begin, const std::size_t row_end,
                                   T *out) {
    const auto *w_end = w_entries + w_nnz;
    for (std::size_t p = row_begin; p < row_end; ++p) {
        out[p - row_begin] = csr_matrix<T>::merge_dot(w_entries, w_end, points.row_begin(p), points.row_end(p)) + bias;
    }
}

template <typename T>
void sparse_kernel_decision_values(const csr_matrix<T> &sv, const T *alpha, const T *sv_sq_norms,
                                   const kernel_params<T> &kp, const T bias,
                                   const csr_matrix<T> &points, const std::size_t row_begin, const std::size_t row_end,
                                   T *out) {
    constexpr std::size_t S = sparse_point_tile;
    const std::size_t num_sv = sv.num_rows();
    const bool rbf = !kernels::uses_inner_product_core(kp.kernel);

    for (std::size_t p0 = row_begin; p0 < row_end; p0 += S) {
        const std::size_t pb = std::min(S, row_end - p0);
        T x_sq[S] = {};
        T partial[S] = {};
        if (rbf) {
            for (std::size_t p = 0; p < pb; ++p) {
                x_sq[p] = row_sq_norm<T>(points.row_begin(p0 + p), points.row_end(p0 + p));
            }
        }
        // one streaming pass over the CSR SV panel per point tile
        for (std::size_t i = 0; i < num_sv; ++i) {
            const auto *sv_row = sv.row_begin(i);
            const auto *sv_row_end = sv.row_end(i);
            const T a_i = alpha[i];
            for (std::size_t p = 0; p < pb; ++p) {
                const T dot = csr_matrix<T>::merge_dot(sv_row, sv_row_end, points.row_begin(p0 + p), points.row_end(p0 + p));
                T core;
                if (rbf) {
                    // clamp tiny negative rounding residue like the reference
                    core = std::max(sv_sq_norms[i] + x_sq[p] - T{ 2 } * dot, T{ 0 });
                } else {
                    core = dot;
                }
                partial[p] += a_i * kernels::finish(kp, core);
            }
        }
        for (std::size_t p = 0; p < pb; ++p) {
            out[p0 - row_begin + p] = partial[p] + bias;
        }
    }
}

template <typename T>
void dense_sparse_kernel_decision_values(const csr_matrix<T> &sv_csc, const std::size_t num_sv,
                                         const T *alpha, const T *sv_sq_norms,
                                         const kernel_params<T> &kp, const T bias,
                                         const aos_matrix<T> &points, const std::size_t row_begin, const std::size_t row_end,
                                         T *out) {
    constexpr std::size_t S = sparse_point_tile;
    const std::size_t dim = sv_csc.num_rows();  // rows of the transpose = features
    const bool rbf = !kernels::uses_inner_product_core(kp.kernel);
    // per-tile accumulator block: acc[p * num_sv + i] = <sv_i, x_p>; sized for
    // one tile so it stays cache-resident across the whole feature sweep.
    // thread-local scratch: this runs per lane chunk on the serving hot path
    // and must not pay a heap allocation per call (resize only ever grows
    // the capacity) — same pattern as compiled_model::decision_value
    static thread_local std::vector<T> acc;
    acc.resize(std::min(S, row_end > row_begin ? row_end - row_begin : std::size_t{ 0 }) * num_sv);

    for (std::size_t p0 = row_begin; p0 < row_end; p0 += S) {
        const std::size_t pb = std::min(S, row_end - p0);
        const T *x_rows[S] = {};
        T x_sq[S] = {};
        for (std::size_t p = 0; p < pb; ++p) {
            x_rows[p] = points.row_data(p0 + p);
            if (rbf) {
                // same dot call as the reference path -> identical ||x||^2
                x_sq[p] = kernels::dot(x_rows[p], x_rows[p], dim);
            }
        }
        std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(pb * num_sv), T{ 0 });
        // feature-major sweep touching only the stored SV entries; each CSC
        // row (one feature) is reused for the whole point tile
        for (std::size_t f = 0; f < dim; ++f) {
            const auto *col = sv_csc.row_begin(f);
            const auto *col_end = sv_csc.row_end(f);
            if (col == col_end) {
                continue;  // all-zero feature column
            }
            for (std::size_t p = 0; p < pb; ++p) {
                const T xf = x_rows[p][f];
                if (xf == T{ 0 }) {
                    continue;  // skipping exact-zero products is result-neutral
                }
                T *acc_p = acc.data() + p * num_sv;
                for (const auto *e = col; e != col_end; ++e) {
                    acc_p[e->index] += xf * e->value;
                }
            }
        }
        for (std::size_t p = 0; p < pb; ++p) {
            const T *acc_p = acc.data() + p * num_sv;
            T sum{ 0 };
            if (rbf) {
                for (std::size_t i = 0; i < num_sv; ++i) {
                    const T core = std::max(sv_sq_norms[i] + x_sq[p] - T{ 2 } * acc_p[i], T{ 0 });
                    sum += alpha[i] * kernels::finish(kp, core);
                }
            } else {
                for (std::size_t i = 0; i < num_sv; ++i) {
                    sum += alpha[i] * kernels::finish(kp, acc_p[i]);
                }
            }
            out[p0 - row_begin + p] = sum + bias;
        }
    }
}

template void sparse_linear_decision_values<float>(const csr_matrix<float>::entry *, std::size_t, float, const csr_matrix<float> &, std::size_t, std::size_t, float *);
template void sparse_linear_decision_values<double>(const csr_matrix<double>::entry *, std::size_t, double, const csr_matrix<double> &, std::size_t, std::size_t, double *);
template void sparse_kernel_decision_values<float>(const csr_matrix<float> &, const float *, const float *, const kernel_params<float> &, float, const csr_matrix<float> &, std::size_t, std::size_t, float *);
template void sparse_kernel_decision_values<double>(const csr_matrix<double> &, const double *, const double *, const kernel_params<double> &, double, const csr_matrix<double> &, std::size_t, std::size_t, double *);
template void dense_sparse_kernel_decision_values<float>(const csr_matrix<float> &, std::size_t, const float *, const float *, const kernel_params<float> &, float, const aos_matrix<float> &, std::size_t, std::size_t, float *);
template void dense_sparse_kernel_decision_values<double>(const csr_matrix<double> &, std::size_t, const double *, const double *, const kernel_params<double> &, double, const aos_matrix<double> &, std::size_t, std::size_t, double *);

}  // namespace plssvm::serve::batch
