#include "plssvm/serve/batch_kernels.hpp"

#include <algorithm>
#include <cstddef>

/**
 * Function multi-versioning of the non-linear batch kernel: the baseline
 * build stays portable (plain x86-64 / SSE2), but on CPUs with AVX2+FMA or
 * AVX-512 the runtime resolver picks a clone compiled for that ISA, which
 * widens the register tile's FMA throughput by 2-4x. The clones may contract
 * multiply+add to FMA, so blocked results can differ from the scalar
 * reference path in the last bits on such machines — parity tests compare
 * with rel. tolerance 1e-10 (see batch_kernels.hpp).
 */
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
    // sanitizers cannot handle the ifunc resolvers multi-versioning emits
    // (they run before the sanitizer runtime initializes -> startup crash),
    // so sanitizer builds fall back to the portable baseline clone
    #define PLSSVM_SERVE_TARGET_CLONES __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
    #define PLSSVM_SERVE_TARGET_CLONES
#endif

namespace plssvm::serve::batch {

namespace {

constexpr std::size_t B = batch_point_tile;
constexpr std::size_t W = batch_sv_tile;

/**
 * @brief Core accumulation of one full B x W register tile:
 *        `acc[p][j] = sum_f x_p[f] * sv[i0 + j][f]`.
 *
 * All loop bounds are compile-time constants so the accumulator block stays
 * in registers across the whole feature sweep; each column load `col[j]` is
 * reused for all B points. The feature-ascending elementwise accumulation
 * matches the reference path's arithmetic order exactly.
 *
 * @param col0 SoA column base of the tile, i.e. `sv_data + i0`
 * @param x_rows the B contiguous AoS query rows
 */
template <typename T>
[[gnu::always_inline]] inline void accumulate_tile_full(const T *col0, const std::size_t padded, const std::size_t dim,
                                                        const T *const *x_rows, T acc[B][W]) {
    for (std::size_t p = 0; p < B; ++p) {
        for (std::size_t j = 0; j < W; ++j) {
            acc[p][j] = T{ 0 };
        }
    }
    for (std::size_t f = 0; f < dim; ++f) {
        const T *col = col0 + f * padded;
        for (std::size_t p = 0; p < B; ++p) {
            const T xf = x_rows[p][f];
            #pragma omp simd
            for (std::size_t j = 0; j < W; ++j) {
                acc[p][j] += xf * col[j];
            }
        }
    }
}

/// Remainder-tile core accumulation with runtime point (@p pb) and SV (@p jw)
/// counts; per-point arithmetic is identical to the full-tile version.
template <typename T>
[[gnu::always_inline]] inline void accumulate_tile_partial(const T *col0, const std::size_t padded, const std::size_t dim,
                                                           const T *const *x_rows, const std::size_t pb, const std::size_t jw,
                                                           T acc[B][W]) {
    for (std::size_t p = 0; p < pb; ++p) {
        for (std::size_t j = 0; j < jw; ++j) {
            acc[p][j] = T{ 0 };
        }
    }
    for (std::size_t f = 0; f < dim; ++f) {
        const T *col = col0 + f * padded;
        for (std::size_t p = 0; p < pb; ++p) {
            const T xf = x_rows[p][f];
            #pragma omp simd
            for (std::size_t j = 0; j < jw; ++j) {
                acc[p][j] += xf * col[j];
            }
        }
    }
}

/// Shared body of `kernel_decision_values`; force-inlined into each ISA clone
/// so the register tile compiles with the clone's vector width.
template <typename T>
[[gnu::always_inline]] inline void kernel_decision_values_body(const soa_matrix<T> &sv, const T *alpha, const T *sv_sq_norms,
                                                               const kernel_params<T> &kp, const T bias,
                                                               const aos_matrix<T> &points, const std::size_t row_begin, const std::size_t row_end,
                                                               T *out) {
    const std::size_t dim = sv.num_cols();
    const std::size_t num_sv = sv.num_rows();
    const std::size_t padded = sv.padded_rows();
    const T *sv_data = sv.data().data();
    const bool rbf = !kernels::uses_inner_product_core(kp.kernel);

    for (std::size_t p0 = row_begin; p0 < row_end; p0 += B) {
        const std::size_t pb = std::min(B, row_end - p0);

        const T *x_rows[B] = {};
        T x_sq[B] = {};
        T partial[B] = {};
        for (std::size_t p = 0; p < pb; ++p) {
            x_rows[p] = points.row_data(p0 + p);
            if (rbf) {
                // same dot call as the reference path -> identical ||x||^2
                x_sq[p] = kernels::dot(x_rows[p], x_rows[p], dim);
            }
        }

        for (std::size_t i0 = 0; i0 < num_sv; i0 += W) {
            const std::size_t jw = std::min(W, num_sv - i0);
            T acc[B][W];
            // a full register tile may read the zero padding beyond num_sv
            // (jw < W); the epilogue below only consumes the jw real SVs
            if (pb == B && i0 + W <= padded) {
                accumulate_tile_full(sv_data + i0, padded, dim, x_rows, acc);
            } else {
                accumulate_tile_partial(sv_data + i0, padded, dim, x_rows, pb, jw, acc);
            }
            for (std::size_t p = 0; p < pb; ++p) {
                T sum = partial[p];
                if (rbf) {
                    for (std::size_t j = 0; j < jw; ++j) {
                        // clamp tiny negative rounding residue like the reference
                        const T core = std::max(sv_sq_norms[i0 + j] + x_sq[p] - T{ 2 } * acc[p][j], T{ 0 });
                        sum += alpha[i0 + j] * kernels::finish(kp, core);
                    }
                } else {
                    for (std::size_t j = 0; j < jw; ++j) {
                        sum += alpha[i0 + j] * kernels::finish(kp, acc[p][j]);
                    }
                }
                partial[p] = sum;
            }
        }

        for (std::size_t p = 0; p < pb; ++p) {
            out[p0 - row_begin + p] = partial[p] + bias;
        }
    }
}

}  // namespace

template <typename T>
void linear_decision_values(const T *w, const T bias, const std::size_t dim,
                            const aos_matrix<T> &points, const std::size_t row_begin, const std::size_t row_end,
                            T *out) {
    // GEMV X * w: w is L1-resident after the first row, each query row is
    // streamed exactly once; kernels::dot keeps bit-parity with the
    // reference path.
    for (std::size_t p = row_begin; p < row_end; ++p) {
        out[p - row_begin] = kernels::dot(w, points.row_data(p), dim) + bias;
    }
}

template <>
PLSSVM_SERVE_TARGET_CLONES
void kernel_decision_values<float>(const soa_matrix<float> &sv, const float *alpha, const float *sv_sq_norms,
                                   const kernel_params<float> &kp, const float bias,
                                   const aos_matrix<float> &points, const std::size_t row_begin, const std::size_t row_end,
                                   float *out) {
    kernel_decision_values_body<float>(sv, alpha, sv_sq_norms, kp, bias, points, row_begin, row_end, out);
}

template <>
PLSSVM_SERVE_TARGET_CLONES
void kernel_decision_values<double>(const soa_matrix<double> &sv, const double *alpha, const double *sv_sq_norms,
                                    const kernel_params<double> &kp, const double bias,
                                    const aos_matrix<double> &points, const std::size_t row_begin, const std::size_t row_end,
                                    double *out) {
    kernel_decision_values_body<double>(sv, alpha, sv_sq_norms, kp, bias, points, row_begin, row_end, out);
}

template void linear_decision_values<float>(const float *, float, std::size_t, const aos_matrix<float> &, std::size_t, std::size_t, float *);
template void linear_decision_values<double>(const double *, double, std::size_t, const aos_matrix<double> &, std::size_t, std::size_t, double *);

}  // namespace plssvm::serve::batch
