#include "plssvm/serve/thread_pool.hpp"

#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace plssvm::serve {

thread_pool::thread_pool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0) {
            num_threads = 1;
        }
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this]() { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard lock{ mutex_ };
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
}

void thread_pool::enqueue_detached(std::function<void()> job) {
    {
        const std::lock_guard lock{ mutex_ };
        jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void thread_pool::worker_loop() {
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock lock{ mutex_ };
            cv_.wait(lock, [this]() { return stop_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                return;  // stop requested and queue drained
            }
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
    }
}

}  // namespace plssvm::serve
