/**
 * @file
 * @brief NUMA-sharded serving: one `inference_engine` replica per memory
 *        domain with load-balanced request routing.
 *
 * On a multi-socket host a single engine's SV panels live in ONE node's
 * memory: half the workers stream every batch over the interconnect. A
 * `sharded_engine` replicates the compiled model once per NUMA domain —
 * each replica's lane and drain thread are homed on its domain
 * (`engine_config::home_domain`), so the snapshot's panels are first-touched
 * and then always scanned by domain-local cores. Requests are routed with a
 * two-choice least-loaded policy over the replicas' pending-request counts
 * (async `submit`) or plain round-robin (synchronous batches), and
 * `reload()` swaps every replica's snapshot behind the same RCU discipline
 * as a single engine — clients never observe a torn version for longer than
 * the sequential per-replica swap window.
 *
 * On single-node hosts this degrades to exactly one replica, i.e. a plain
 * `inference_engine` with a few pointers of overhead: it is always safe for
 * the registry to serve every model sharded.
 */

#ifndef PLSSVM_SERVE_SHARDED_ENGINE_HPP_
#define PLSSVM_SERVE_SHARDED_ENGINE_HPP_
#pragma once

#include "plssvm/serve/executor.hpp"
#include "plssvm/serve/inference_engine.hpp"
#include "plssvm/serve/serve_stats.hpp"
#include "plssvm/serve/topology.hpp"

#include <algorithm>  // std::max
#include <atomic>     // std::atomic
#include <cstddef>    // std::size_t
#include <future>     // std::future
#include <memory>     // std::unique_ptr, std::make_unique
#include <string>     // std::string
#include <utility>    // std::move
#include <vector>     // std::vector

namespace plssvm::serve {

template <typename T>
class sharded_engine {
  public:
    /**
     * @brief Compile @p trained once per NUMA domain and start the replicas.
     * @param[in] num_shards replica count; 0 = one per executor NUMA domain.
     *            Per-replica `num_threads` defaults to the workers of the
     *            replica's home domain, so the shards exactly partition the
     *            pool instead of all contending for it.
     */
    explicit sharded_engine(const model<T> &trained, engine_config config = {}, scaling_ptr<T> input_scaling = nullptr,
                            std::size_t num_shards = 0) :
        exec_{ config.exec != nullptr ? config.exec : &executor::process_wide() } {
        config.exec = exec_;
        const std::size_t domains = std::max<std::size_t>(std::size_t{ 1 }, exec_->num_domains());
        const std::size_t shards = num_shards != 0 ? num_shards : domains;
        replicas_.reserve(shards);
        for (std::size_t shard = 0; shard < shards; ++shard) {
            engine_config replica_config = config;
            replica_config.home_domain = shard % domains;
            if (replica_config.num_threads == 0 && exec_->pinning_active()) {
                replica_config.num_threads = std::max<std::size_t>(std::size_t{ 1 }, exec_->workers_in_domain(replica_config.home_domain));
            }
            replicas_.push_back(std::make_unique<inference_engine<T>>(
                compile_on_domain(trained, replica_config), replica_config, input_scaling));
        }
    }

    sharded_engine(const sharded_engine &) = delete;
    sharded_engine &operator=(const sharded_engine &) = delete;

    [[nodiscard]] std::size_t num_shards() const noexcept { return replicas_.size(); }
    [[nodiscard]] executor &shared_executor() const noexcept { return *exec_; }
    [[nodiscard]] inference_engine<T> &replica(const std::size_t shard) { return *replicas_[shard]; }
    [[nodiscard]] const inference_engine<T> &replica(const std::size_t shard) const { return *replicas_[shard]; }
    [[nodiscard]] std::size_t num_features() const noexcept { return replicas_.front()->num_features(); }
    /// Version of the served snapshot (identical across replicas outside a
    /// reload's brief sequential swap window).
    [[nodiscard]] std::uint64_t snapshot_version() const { return replicas_.front()->snapshot_version(); }

    /**
     * @brief Route one async request to the least-loaded of two candidate
     *        replicas ("power of two choices": near-optimal balance without
     *        a global queue). Candidate one rotates round-robin so an idle
     *        service still spreads requests evenly.
     */
    [[nodiscard]] std::future<T> submit(std::vector<T> point, const request_options &options = {}) {
        return replicas_[route()]->submit(std::move(point), options);
    }

    /// Wire-traced async submit: routes like the plain overload, then points
    /// the context's `finish` hook at the chosen replica — the wire trace
    /// must be published through the SAME replica's recorder that filled it
    /// (each recorder has its own epoch). The caller owning the replica's
    /// lifetime (the registry dispatcher) re-wraps `finish` with a pin on
    /// this engine.
    [[nodiscard]] std::future<T> submit(std::vector<T> point, const request_options &options,
                                        const std::shared_ptr<obs::wire_trace_context> &wire) {
        inference_engine<T> &replica = *replicas_[route()];
        if (wire != nullptr) {
            wire->finish = [&replica](obs::wire_trace_context &ctx) { replica.publish_wire_trace(ctx); };
        }
        return replica.submit(std::move(point), options, wire);
    }

    [[nodiscard]] std::future<T> submit(const std::vector<typename csr_matrix<T>::entry> &sparse_point, const request_options &options = {}) {
        return replicas_[route()]->submit(sparse_point, options);
    }

    /// Synchronous batch against the next replica round-robin (a sync batch
    /// occupies its replica's lane for the whole call, so rotation — not
    /// queue depth — is the fair signal).
    [[nodiscard]] std::vector<T> predict(const aos_matrix<T> &points) {
        return replicas_[rotate()]->predict(points);
    }

    [[nodiscard]] std::vector<T> decision_values(const aos_matrix<T> &points) {
        return replicas_[rotate()]->decision_values(points);
    }

    /// Zero-downtime reload of every replica (sequential snapshot swaps:
    /// each replica keeps serving its old snapshot until its own swap).
    void reload(const model<T> &trained, scaling_ptr<T> input_scaling = nullptr) {
        for (const std::unique_ptr<inference_engine<T>> &replica : replicas_) {
            replica->reload(trained, input_scaling);
        }
    }

    /// Worst replica health (a degraded shard degrades the model).
    [[nodiscard]] health_state health() const {
        health_state worst = health_state::healthy;
        for (const std::unique_ptr<inference_engine<T>> &replica : replicas_) {
            worst = std::max(worst, replica->health());
        }
        return worst;
    }

    /// Requests accepted but not yet drained, over all replicas.
    [[nodiscard]] std::size_t pending_requests() const {
        std::size_t pending = 0;
        for (const std::unique_ptr<inference_engine<T>> &replica : replicas_) {
            pending += replica->pending_requests();
        }
        return pending;
    }

    /**
     * @brief Aggregated stats over the replicas: counters sum, latency
     *        percentiles and gauges take the worst replica (a documented
     *        approximation — per-replica exact stats via `replica(i)`).
     */
    [[nodiscard]] serve_stats stats() const {
        serve_stats total = replicas_.front()->stats();
        for (std::size_t shard = 1; shard < replicas_.size(); ++shard) {
            const serve_stats s = replicas_[shard]->stats();
            total.total_requests += s.total_requests;
            total.total_batches += s.total_batches;
            total.requests_per_second += s.requests_per_second;
            total.queue_depth += s.queue_depth;
            total.max_queue_depth = std::max(total.max_queue_depth, s.max_queue_depth);
            total.steals += s.steals;
            total.reloads = std::max(total.reloads, s.reloads);
            total.p50_latency_seconds = std::max(total.p50_latency_seconds, s.p50_latency_seconds);
            total.p99_latency_seconds = std::max(total.p99_latency_seconds, s.p99_latency_seconds);
            total.p999_latency_seconds = std::max(total.p999_latency_seconds, s.p999_latency_seconds);
            total.max_latency_seconds = std::max(total.max_latency_seconds, s.max_latency_seconds);
            total.fault.health = std::max(total.fault.health, s.fault.health);
        }
        return total;
    }

    /// `{"shards": N, "replicas": [<serve_stats json>, ...]}`.
    [[nodiscard]] std::string stats_json() const {
        std::string json = "{\"shards\": " + std::to_string(replicas_.size()) + ", \"replicas\": [";
        for (std::size_t shard = 0; shard < replicas_.size(); ++shard) {
            if (shard != 0) {
                json += ", ";
            }
            json += replicas_[shard]->stats_json();
        }
        json += "]}";
        return json;
    }

    /// Every replica's retained flight-recorder traces:
    /// `{"shards": N, "replicas": [<dump json>, ...]}`.
    [[nodiscard]] std::string dump_traces() const {
        std::string json = "{\"shards\": " + std::to_string(replicas_.size()) + ", \"replicas\": [";
        for (std::size_t shard = 0; shard < replicas_.size(); ++shard) {
            if (shard != 0) {
                json += ", ";
            }
            json += replicas_[shard]->dump_traces();
        }
        json += "]}";
        return json;
    }

    /// Per-replica metric families, each additionally labelled `shard="<i>"`.
    void collect_metrics(obs::prometheus_builder &builder, const obs::label_set &labels = {}) const {
        for (std::size_t shard = 0; shard < replicas_.size(); ++shard) {
            obs::label_set shard_labels = labels;
            shard_labels.emplace_back("shard", std::to_string(shard));
            replicas_[shard]->collect_metrics(builder, shard_labels);
        }
    }

  private:
    /// Compile the replica's model snapshot *on its home domain* so the SV
    /// panels are first-touch allocated in domain-local memory. Only worth a
    /// hop when pinning is active; single-node hosts (and callers already on
    /// a worker, which must never block on their own pool) compile inline.
    [[nodiscard]] compiled_model<T> compile_on_domain(const model<T> &trained, const engine_config &replica_config) {
        if (!exec_->pinning_active() || exec_->on_worker_thread()) {
            return compiled_model<T>{ trained, replica_config.compile };
        }
        executor::lane compile_lane = exec_->create_lane(lane_options{
            .name = "shard-compile", .quota = 1, .home_domain = replica_config.home_domain });
        std::future<compiled_model<T>> compiled = compile_lane.enqueue(
            [&trained, &replica_config]() { return compiled_model<T>{ trained, replica_config.compile }; });
        while (compiled.wait_for(std::chrono::milliseconds{ 1 }) != std::future_status::ready) {
            (void) compile_lane.try_run_one();  // help while waiting, never deadlock
        }
        return compiled.get();
    }

    /// Two-choice least-loaded routing for async submits.
    [[nodiscard]] std::size_t route() {
        const std::size_t shards = replicas_.size();
        if (shards == 1) {
            return 0;
        }
        const std::size_t first = rotate();
        const std::size_t second = (first + 1) % shards;
        return replicas_[second]->pending_requests() < replicas_[first]->pending_requests() ? second : first;
    }

    [[nodiscard]] std::size_t rotate() noexcept {
        return rr_.fetch_add(1, std::memory_order_relaxed) % replicas_.size();
    }

    executor *exec_;
    std::vector<std::unique_ptr<inference_engine<T>>> replicas_;
    std::atomic<std::size_t> rr_{ 0 };
};

}  // namespace plssvm::serve

#endif  // PLSSVM_SERVE_SHARDED_ENGINE_HPP_
