/**
 * @file
 * @brief SLO engine of the serving stack: per-class latency/availability
 *        objectives evaluated as multi-window burn rates over the rolling
 *        `obs::time_series_store`.
 *
 * An SLO ("99% of interactive requests under 50 ms over 30 days") implies an
 * error budget (1% of requests may be slow). The *burn rate* is how fast the
 * service is consuming that budget right now: a burn rate of 1 exhausts the
 * budget exactly at the SLO horizon, 14.4 exhausts a 30-day budget in ~2
 * days. Alerting on a single window either flaps (short window) or pages far
 * too late (long window), so — following the multi-window pattern from the
 * SRE workbook — an alert fires only when BOTH a fast window (default 1 m)
 * and a slow window (default 5 m) burn above the threshold: the slow window
 * proves the problem is sustained, the fast window proves it is still
 * happening.
 *
 * The engine is a pure function of (store, now): the clock is injected per
 * call, so burn-rate arithmetic and alert transitions are deterministic
 * under a fake clock in tests. Alerts feed the fault plane's
 * `health_monitor` (degraded/critical) and force flight-recorder dumps.
 */

#ifndef PLSSVM_SERVE_SLO_HPP_
#define PLSSVM_SERVE_SLO_HPP_

#include "plssvm/serve/obs.hpp"
#include "plssvm/serve/qos.hpp"

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace plssvm::serve {

/// One request class's service-level objective.
struct slo_objective {
    /// Off by default: an engine without configured objectives never alerts.
    bool enabled{ false };
    /// A request is "good" (latency-wise) when served within this budget.
    double latency_threshold_s{ 0.050 };
    /// Target fraction of requests under the latency threshold.
    double latency_target{ 0.99 };
    /// Target fraction of offered requests answered (not shed, not failed).
    double availability_target{ 0.999 };
};

/// SLO evaluation configuration of one engine.
struct slo_config {
    /// Per-class objectives (all disabled by default).
    per_class<slo_objective> objectives{};
    /// Fast window: proves the burn is still happening.
    std::chrono::seconds fast_window{ 60 };
    /// Slow window: proves the burn is sustained, not a blip.
    std::chrono::seconds slow_window{ 300 };
    /// Both windows at or above this burn rate -> critical alert.
    double critical_burn{ 14.4 };
    /// Both windows at or above this burn rate -> degraded alert.
    double degraded_burn{ 6.0 };
    /// Minimum offered requests in the fast window before alerting (burn
    /// rates over near-zero traffic are noise).
    std::uint64_t min_requests{ 10 };
};

/// Alert severity of one class (or the engine-worst).
enum class slo_alert_state : std::uint8_t {
    ok = 0,
    degraded = 1,
    critical = 2,
};

[[nodiscard]] constexpr std::string_view slo_alert_state_to_string(const slo_alert_state state) noexcept {
    switch (state) {
        case slo_alert_state::ok:
            return "ok";
        case slo_alert_state::degraded:
            return "degraded";
        case slo_alert_state::critical:
            return "critical";
    }
    return "unknown";
}

/// Burn rates + alert state of one class.
struct slo_class_report {
    bool enabled{ false };
    std::uint64_t fast_offered{ 0 };           ///< requests offered in the fast window
    double latency_fast_burn{ 0.0 };
    double latency_slow_burn{ 0.0 };
    double availability_fast_burn{ 0.0 };
    double availability_slow_burn{ 0.0 };
    slo_alert_state state{ slo_alert_state::ok };
};

/// One evaluation of every class's objectives.
struct slo_report {
    per_class<slo_class_report> classes{};
    slo_alert_state worst{ slo_alert_state::ok };
};

/// Render @p report as a JSON object (the `slo` section of `stats_json()`).
[[nodiscard]] std::string to_json(const slo_report &report);

/**
 * @brief Stateless multi-window burn-rate evaluator over a
 *        `obs::time_series_store`.
 */
class slo_engine {
  public:
    explicit slo_engine(const slo_config &config = {}) :
        config_{ config } {}

    [[nodiscard]] const slo_config &config() const noexcept { return config_; }

    /// True when at least one class has an enabled objective.
    [[nodiscard]] bool any_enabled() const noexcept {
        for (const slo_objective &objective : config_.objectives) {
            if (objective.enabled) {
                return true;
            }
        }
        return false;
    }

    /// Budget-consumption rate of an observed @p error_fraction against an
    /// objective @p target fraction: 1.0 burns the budget exactly at the SLO
    /// horizon. A degenerate target of 1.0 (zero budget) burns infinitely
    /// fast on any error.
    [[nodiscard]] static double burn_rate(double error_fraction, double target) noexcept;

    /// Evaluate every enabled objective against the store's fast + slow
    /// windows ending at @p now (injectable clock: deterministic in tests).
    [[nodiscard]] slo_report evaluate(const obs::time_series_store &store,
                                      std::chrono::steady_clock::time_point now) const;

  private:
    slo_config config_;
};

}  // namespace plssvm::serve

#endif  // PLSSVM_SERVE_SLO_HPP_
