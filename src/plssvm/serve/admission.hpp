/**
 * @file
 * @brief Per-engine admission control: token-bucket rate limiting and
 *        queue-depth load shedding in front of the micro-batcher.
 *
 * Under overload, letting every request into the batcher only moves the
 * queueing delay inside the process — every class's p99 explodes together.
 * The admission controller fails the excess *fast* instead: each request
 * class has a token bucket (sustained rate + burst) and a queue-depth shed
 * threshold, and a request that would exceed either is rejected at the
 * `submit()` call site with a typed `request_shed_exception` before it ever
 * allocates queue state. Shed requests are counted per class in
 * `serve_stats`, so operators can see load shedding happen instead of
 * debugging mystery latency.
 *
 * The token bucket is driven by caller-supplied time points (the engines
 * pass `steady_clock::now()`), which keeps refill arithmetic testable with
 * a fake clock.
 */

#ifndef PLSSVM_SERVE_ADMISSION_HPP_
#define PLSSVM_SERVE_ADMISSION_HPP_

#include "plssvm/exceptions.hpp"
#include "plssvm/serve/qos.hpp"

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace plssvm::serve {

/// Thrown by the async submit path when admission control sheds the
/// request (fail-fast backpressure: the caller is told immediately instead
/// of queueing into an overloaded engine).
class request_shed_exception : public exception {
  public:
    request_shed_exception(const request_class cls, const admission_decision reason,
                           const std::chrono::microseconds retry_after = std::chrono::microseconds{ 0 }) :
        exception{ "request shed: " + std::string{ request_class_to_string(cls) } + " class "
                   + (reason == admission_decision::shed_queue_full ? "backlog is full" : "rate limit exceeded") },
        cls_{ cls },
        reason_{ reason },
        retry_after_{ retry_after } {}

    /// Class of the shed request.
    [[nodiscard]] request_class shed_class() const noexcept { return cls_; }
    /// Which limit shed it (`shed_rate_limited` or `shed_queue_full`).
    [[nodiscard]] admission_decision reason() const noexcept { return reason_; }
    /// Structured backoff hint: how long until the class's token bucket
    /// accrues the next token (0 = retry timing unknown, e.g. queue-full
    /// sheds, which clear as soon as the backlog drains). A network front-end
    /// maps this straight onto a Retry-After response header.
    [[nodiscard]] std::chrono::microseconds retry_after() const noexcept { return retry_after_; }

  private:
    request_class cls_;
    admission_decision reason_;
    std::chrono::microseconds retry_after_;
};

/**
 * @brief Classic token bucket: `rate` tokens/s refill up to a `burst` cap;
 *        each admitted request consumes one token.
 *
 * Time is injected by the caller (monotonic time points), so tests drive it
 * with a fake clock. Not internally synchronized — `admission_controller`
 * serializes access.
 */
class token_bucket {
  public:
    using time_point = std::chrono::steady_clock::time_point;

    /// Unlimited bucket (every acquire succeeds).
    token_bucket() = default;

    /// @param rate_per_second sustained refill rate; <= 0 means unlimited
    /// @param burst bucket capacity; <= 0 means one second of @p rate_per_second
    token_bucket(double rate_per_second, double burst);

    /// True iff the bucket is unlimited (rate <= 0 at construction).
    [[nodiscard]] bool unlimited() const noexcept { return rate_ <= 0.0; }

    /// Refill up to @p now and consume one token if available.
    [[nodiscard]] bool try_acquire(time_point now);

    /// Tokens available after refilling up to @p now (burst cap applied).
    [[nodiscard]] double available(time_point now);

    /// Seconds from @p now until one whole token is available (0 if a token
    /// is available right now or the bucket is unlimited).
    [[nodiscard]] double seconds_until_token(time_point now);

  private:
    void refill(time_point now);

    double rate_{ 0.0 };
    double burst_{ 0.0 };
    double tokens_{ 0.0 };
    time_point last_refill_{};
    bool started_{ false };  ///< first call seeds `last_refill_` (bucket starts full)
};

/**
 * @brief Per-engine admission controller: one token bucket + queue-depth
 *        shed threshold per request class. Thread-safe (submit paths race).
 */
class admission_controller {
  public:
    using time_point = token_bucket::time_point;

    /// Build the per-class buckets from @p config (`qos_config::classes`).
    explicit admission_controller(const qos_config &config);

    admission_controller(const admission_controller &) = delete;
    admission_controller &operator=(const admission_controller &) = delete;

    /**
     * @brief Decide one request's fate.
     *
     * Queue depth is checked before the bucket so a doomed request never
     * burns a token. @p class_pending is the number of requests of @p cls
     * already queued in the micro-batcher.
     */
    [[nodiscard]] admission_decision try_admit(request_class cls, std::size_t class_pending, time_point now);

    /// The (unresolved) QoS limits of @p cls as configured.
    [[nodiscard]] const class_qos_config &config(request_class cls) const noexcept {
        return classes_[class_index(cls)];
    }

    /// Retry-after hint for a rate-limited shed of @p cls: the time until
    /// the class's bucket accrues its next whole token (rounded up to whole
    /// microseconds; 0 for unlimited classes). Attached to
    /// `request_shed_exception` and surfaced per class in `stats_json()`.
    [[nodiscard]] std::chrono::microseconds retry_after(request_class cls, time_point now);

  private:
    per_class<class_qos_config> classes_;
    std::mutex mutex_;
    per_class<token_bucket> buckets_;
};

}  // namespace plssvm::serve

#endif  // PLSSVM_SERVE_ADMISSION_HPP_
