#include "plssvm/serve/executor.hpp"

#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace plssvm::serve {

namespace {
/// The executor (if any) whose worker the current thread is.
thread_local const executor *current_worker_executor = nullptr;
}  // namespace

bool executor::on_worker_thread() const noexcept {
    return current_worker_executor == this;
}

executor::executor(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0) {
            num_threads = 1;
        }
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i]() { worker_loop(i); });
    }
}

executor::~executor() {
    {
        const std::lock_guard lock{ mutex_ };
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
}

executor &executor::process_wide() {
    // Engines referencing the process-wide executor must be destroyed before
    // static destruction tears it down — trivially true for engines with
    // automatic storage duration, the recommended ownership.
    static executor instance{ 0 };
    return instance;
}

std::size_t executor::lane::max_concurrency() const noexcept {
    if (owner_ == nullptr || state_ == nullptr) {
        return 0;
    }
    const std::size_t workers = owner_->size();
    const std::size_t quota = state_->options.quota;  // immutable after creation
    return quota == 0 ? workers : std::min(quota, workers);
}

void executor::lane::enqueue_detached(std::function<void()> job) {
    if (owner_ == nullptr || state_ == nullptr) {
        throw exception{ "executor::lane: enqueue on a detached lane!" };
    }
    {
        const std::lock_guard lock{ owner_->mutex_ };
        if (state_->closed || owner_->stop_) {
            throw exception{ "executor::lane: enqueue after shutdown!" };
        }
        state_->jobs.push_back(std::move(job));
        ++state_->submitted;
        state_->max_queue_depth = std::max(state_->max_queue_depth, state_->jobs.size());
    }
    owner_->work_cv_.notify_one();
}

bool executor::lane::try_run_one() {
    if (owner_ == nullptr || state_ == nullptr) {
        return false;
    }
    std::function<void()> job;
    {
        const std::lock_guard lock{ owner_->mutex_ };
        if (state_->jobs.empty()) {
            return false;
        }
        job = std::move(state_->jobs.front());
        state_->jobs.pop_front();
        ++state_->in_flight;
    }
    job();
    job = nullptr;  // destroy captures outside the lock (see worker_loop)
    {
        const std::lock_guard lock{ owner_->mutex_ };
        --state_->in_flight;
        ++state_->completed;
        if (!state_->jobs.empty()) {
            // quota headroom may have opened up for a sleeping worker
            owner_->work_cv_.notify_one();
        }
        if (state_->closed && state_->jobs.empty() && state_->in_flight == 0) {
            owner_->drain_cv_.notify_all();
        }
    }
    return true;
}

lane_stats executor::lane::stats() const {
    lane_stats stats;
    if (owner_ == nullptr || state_ == nullptr) {
        return stats;
    }
    const std::lock_guard lock{ owner_->mutex_ };
    stats.submitted = state_->submitted;
    stats.completed = state_->completed;
    stats.stolen = state_->stolen;
    stats.queue_depth = state_->jobs.size();
    stats.in_flight = state_->in_flight;
    stats.max_queue_depth = state_->max_queue_depth;
    return stats;
}

void executor::lane::close() {
    if (owner_ != nullptr && state_ != nullptr) {
        owner_->close_lane(state_);
    }
    owner_ = nullptr;
    state_.reset();
}

executor::lane executor::create_lane(lane_options options) {
    if (options.weight == 0) {
        options.weight = 1;
    }
    auto state = std::make_shared<lane_state>();
    state->options = std::move(options);
    {
        const std::lock_guard lock{ mutex_ };
        state->affinity = lane_counter_++ % workers_.size();
        lanes_.push_back(state);
    }
    return lane{ this, std::move(state) };
}

std::size_t executor::num_lanes() const {
    const std::lock_guard lock{ mutex_ };
    return lanes_.size();
}

std::size_t executor::total_steals() const {
    const std::lock_guard lock{ mutex_ };
    return total_steals_;
}

executor_stats executor::stats() const {
    executor_stats stats;
    stats.workers = workers_.size();
    const std::lock_guard lock{ mutex_ };
    stats.lanes = lanes_.size();
    stats.total_steals = total_steals_;
    for (const std::shared_ptr<lane_state> &lane : lanes_) {
        stats.queued += lane->jobs.size();
        stats.in_flight += lane->in_flight;
    }
    return stats;
}

std::vector<lane_report> executor::lane_reports() const {
    std::vector<lane_report> reports;
    const std::lock_guard lock{ mutex_ };
    reports.reserve(lanes_.size());
    for (const std::shared_ptr<lane_state> &lane : lanes_) {
        lane_report &report = reports.emplace_back();
        report.name = lane->options.name;
        report.affinity = lane->affinity;
        report.stats.submitted = lane->submitted;
        report.stats.completed = lane->completed;
        report.stats.stolen = lane->stolen;
        report.stats.queue_depth = lane->jobs.size();
        report.stats.in_flight = lane->in_flight;
        report.stats.max_queue_depth = lane->max_queue_depth;
    }
    return reports;
}

std::string executor::stats_json() const {
    const executor_stats totals = stats();
    const std::vector<lane_report> lanes = lane_reports();
    const auto append_count = [](std::string &out, const char *name, const std::size_t value, const bool trailing_comma = true) {
        char buffer[96];
        std::snprintf(buffer, sizeof(buffer), "\"%s\": %zu%s", name, value, trailing_comma ? ", " : "");
        out += buffer;
    };
    std::string json;
    json.reserve(512 + 256 * lanes.size());
    json += "{ ";
    append_count(json, "workers", totals.workers);
    append_count(json, "num_lanes", totals.lanes);
    append_count(json, "queued", totals.queued);
    append_count(json, "in_flight", totals.in_flight);
    append_count(json, "total_steals", totals.total_steals);
    json += "\"lanes\": [ ";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const lane_report &lane = lanes[i];
        json += "{ \"name\": \"";
        for (const char c : lane.name) {
            // lane names are internal identifiers; escape just enough to
            // never emit malformed JSON
            if (c == '"' || c == '\\') {
                json += '\\';
            }
            json += c;
        }
        json += "\", ";
        append_count(json, "affinity", lane.affinity);
        append_count(json, "submitted", lane.stats.submitted);
        append_count(json, "completed", lane.stats.completed);
        append_count(json, "stolen", lane.stats.stolen);
        append_count(json, "queue_depth", lane.stats.queue_depth);
        append_count(json, "in_flight", lane.stats.in_flight);
        append_count(json, "max_queue_depth", lane.stats.max_queue_depth, false);
        json += i + 1 < lanes.size() ? " }, " : " }";
    }
    json += " ] }";
    return json;
}

bool executor::any_queued_job() const {
    return std::any_of(lanes_.begin(), lanes_.end(),
                       [](const std::shared_ptr<lane_state> &lane) { return !lane->jobs.empty(); });
}

std::shared_ptr<executor::lane_state> executor::pick_runnable_lane() {
    if (lanes_.empty()) {
        return nullptr;
    }
    const auto runnable = [](const lane_state &lane) {
        return !lane.jobs.empty() && (lane.options.quota == 0 || lane.in_flight < lane.options.quota);
    };
    // the cursor's lane keeps its remaining weight credits first ...
    if (rr_credits_ > 0) {
        const std::size_t idx = rr_cursor_ % lanes_.size();
        if (runnable(*lanes_[idx])) {
            --rr_credits_;
            return lanes_[idx];
        }
        rr_credits_ = 0;  // not runnable any more: forfeit and rotate
    }
    // ... then the sweep resumes one past the cursor, so a hot lane cannot
    // recapture the cursor before every other runnable lane had its turn
    for (std::size_t i = 1; i <= lanes_.size(); ++i) {
        const std::size_t idx = (rr_cursor_ + i) % lanes_.size();
        if (runnable(*lanes_[idx])) {
            rr_cursor_ = idx;
            rr_credits_ = lanes_[idx]->options.weight - 1;
            return lanes_[idx];
        }
    }
    return nullptr;
}

void executor::worker_loop(const std::size_t worker_index) {
    current_worker_executor = this;
    std::unique_lock lock{ mutex_ };
    while (true) {
        std::shared_ptr<lane_state> lane;
        work_cv_.wait(lock, [this, &lane]() {
            lane = pick_runnable_lane();
            return lane != nullptr || (stop_ && !any_queued_job());
        });
        if (lane == nullptr) {
            return;  // stop requested and every queue drained
        }
        std::function<void()> job = std::move(lane->jobs.front());
        lane->jobs.pop_front();
        ++lane->in_flight;
        if (lane->affinity != worker_index) {
            ++lane->stolen;
            ++total_steals_;
        }
        lock.unlock();
        job();
        // destroy the closure before re-locking: its captures can hold the
        // last reference to an engine, whose teardown re-enters the executor
        // (lane close) — running that under mutex_ would self-deadlock
        job = nullptr;
        lock.lock();
        --lane->in_flight;
        ++lane->completed;
        if (!lane->jobs.empty()) {
            // quota headroom may have opened up for a sleeping worker
            work_cv_.notify_one();
        }
        if (lane->closed && lane->jobs.empty() && lane->in_flight == 0) {
            drain_cv_.notify_all();
        }
    }
}

void executor::close_lane(const std::shared_ptr<lane_state> &state) {
    std::unique_lock lock{ mutex_ };
    state->closed = true;
    // enqueue-time notifications may all have been consumed already; make
    // sure sleeping workers see the remaining queued jobs of this lane
    work_cv_.notify_all();
    drain_cv_.wait(lock, [&state]() { return state->jobs.empty() && state->in_flight == 0; });
    lanes_.erase(std::remove(lanes_.begin(), lanes_.end(), state), lanes_.end());
    rr_credits_ = 0;  // indices shifted; restart the rotation cleanly
    if (!lanes_.empty()) {
        rr_cursor_ %= lanes_.size();
    } else {
        rr_cursor_ = 0;
    }
}

}  // namespace plssvm::serve
