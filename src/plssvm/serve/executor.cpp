#include "plssvm/serve/executor.hpp"

#include "plssvm/exceptions.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace plssvm::serve {

namespace {

/// The executor (if any) whose worker the current thread is.
thread_local const executor *current_worker_executor = nullptr;

/// run_item caller id used by lane::try_run_one: accounting must not record
/// a helper-thread execution as a steal (it is the lane's own engine helping
/// itself, not an idle worker poaching).
constexpr std::size_t helper_thread = static_cast<std::size_t>(-1);

/// queue_depth = submitted - completed - executing, saturated at 0: the
/// three counters are read independently, so a task completing mid-snapshot
/// could otherwise make the subtraction wrap.
[[nodiscard]] std::size_t saturating_depth(const std::size_t submitted, const std::size_t completed, const std::size_t executing) {
    const std::size_t done = completed + executing;
    return submitted > done ? submitted - done : 0;
}

}  // namespace

bool executor::on_worker_thread() const noexcept {
    return current_worker_executor == this;
}

executor::executor(std::size_t num_threads) :
    executor{ num_threads, executor_options{} } { }

executor::executor(std::size_t num_threads, executor_options options) {
    start(num_threads, std::move(options));
}

void executor::start(std::size_t num_threads, executor_options options) {
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0) {
            num_threads = 1;
        }
    }
    topology_ = options.topology.domains.empty() ? probe_topology() : std::move(options.topology);
    const std::size_t num_domains = topology_.domains.size();
    // pinning pays off only when there is more than one memory domain, and
    // is safe only when every worker still gets a CPU: an oversubscribed
    // pool degrades to the classic unpinned behavior (satellite contract)
    pin_active_ = options.pin_workers && num_domains > 1 && num_threads <= topology_.num_cpus();

    worker_domains_.resize(num_threads);
    domain_workers_.assign(num_domains, {});
    domain_lane_counters_.assign(num_domains, 0);
    states_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        auto state = std::make_unique<worker_state>();
        state->domain = i % num_domains;
        state->rng.seed(static_cast<std::mt19937::result_type>(0x9E3779B9u + i));
        worker_domains_[i] = state->domain;
        domain_workers_[state->domain].push_back(i);
        states_.push_back(std::move(state));
    }
    lanes_.store(std::make_shared<const lane_vector>(), std::memory_order_release);

    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i]() { worker_loop(i); });
    }
}

executor::~executor() {
    stop_.store(true, std::memory_order_seq_cst);
    park_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
    // contract: every lane handle was closed before destruction — but if one
    // was leaked with queued work, free the orphaned items instead of leaking
    const std::shared_ptr<const lane_vector> lanes = lane_snapshot();
    for (const std::shared_ptr<lane_state> &lane : *lanes) {
        const std::lock_guard lock{ lane->buffer_mutex };
        for (work_item *item : lane->buffer) {
            delete item;
        }
        lane->buffer.clear();
    }
}

executor &executor::process_wide() {
    // Engines referencing the process-wide executor must be destroyed before
    // static destruction tears it down — trivially true for engines with
    // automatic storage duration, the recommended ownership.
    static executor instance{ 0 };
    return instance;
}

std::size_t executor::worker_domain(const std::size_t worker_index) const {
    return worker_index < worker_domains_.size() ? worker_domains_[worker_index] : 0;
}

std::size_t executor::workers_in_domain(const std::size_t domain) const {
    return domain < domain_workers_.size() ? domain_workers_[domain].size() : 0;
}

bool executor::pin_current_thread_to_domain(const std::size_t domain) const {
    if (!pin_active_ || domain >= topology_.domains.size()) {
        return false;
    }
    return pin_current_thread(topology_.domains[domain].cpus);
}

// ---------------------------------------------------------------------------
// lane handle
// ---------------------------------------------------------------------------

std::size_t executor::lane::max_concurrency() const noexcept {
    if (owner_ == nullptr || state_ == nullptr) {
        return 0;
    }
    const std::size_t workers = owner_->size();
    const std::size_t quota = state_->options.quota;  // immutable after creation
    return quota == 0 ? workers : std::min(quota, workers);
}

std::size_t executor::lane::home_domain() const noexcept {
    return state_ != nullptr ? state_->home_domain : 0;
}

void executor::lane::enqueue_detached(detail::task job) {
    if (owner_ == nullptr || state_ == nullptr) {
        throw exception{ "executor::lane: enqueue on a detached lane!" };
    }
    lane_state &state = *state_;
    auto item = std::make_unique<work_item>();
    item->job = std::move(job);
    item->lane = state_;
    std::size_t depth;
    {
        const std::lock_guard lock{ state.buffer_mutex };
        // closed is only ever set under buffer_mutex, so an enqueue either
        // observes it (and throws) or its submitted increment is visible to
        // the closer's drain predicate — a task can never slip in unseen
        // behind a completed close
        if (state.closed.load(std::memory_order_relaxed) || owner_->stop_.load(std::memory_order_relaxed)) {
            throw exception{ "executor::lane: enqueue after shutdown!" };
        }
        state.buffer.push_back(item.get());
        item.release();
        depth = state.submitted.fetch_add(1, std::memory_order_seq_cst) + 1
                - state.completed.load(std::memory_order_relaxed)
                - state.executing.load(std::memory_order_relaxed);
        state.pending.fetch_add(1, std::memory_order_seq_cst);
    }
    // racy high-water mark: monotonic CAS max over the racy depth estimate
    std::size_t seen = state.max_queue_depth.load(std::memory_order_relaxed);
    while (depth > seen && !state.max_queue_depth.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
    }
    owner_->park_.notify_one();
}

bool executor::lane::try_run_one() {
    if (owner_ == nullptr || state_ == nullptr) {
        return false;
    }
    lane_state &state = *state_;
    work_item *item = nullptr;
    {
        const std::lock_guard lock{ state.buffer_mutex };
        if (state.buffer.empty()) {
            return false;
        }
        item = state.buffer.front();
        state.buffer.pop_front();
        state.pending.fetch_sub(1, std::memory_order_seq_cst);
    }
    owner_->run_item(item, helper_thread);
    return true;
}

lane_stats executor::lane::stats() const {
    lane_stats stats;
    if (owner_ == nullptr || state_ == nullptr) {
        return stats;
    }
    const lane_state &state = *state_;
    stats.submitted = state.submitted.load(std::memory_order_relaxed);
    stats.completed = state.completed.load(std::memory_order_relaxed);
    stats.stolen = state.stolen.load(std::memory_order_relaxed);
    stats.in_flight = state.executing.load(std::memory_order_relaxed);
    stats.queue_depth = saturating_depth(stats.submitted, stats.completed, stats.in_flight);
    stats.max_queue_depth = state.max_queue_depth.load(std::memory_order_relaxed);
    return stats;
}

void executor::lane::close() {
    if (owner_ != nullptr && state_ != nullptr) {
        owner_->close_lane(state_);
    }
    owner_ = nullptr;
    state_.reset();
}

// ---------------------------------------------------------------------------
// lane registry (cold path)
// ---------------------------------------------------------------------------

executor::lane executor::create_lane(lane_options options) {
    if (options.weight == 0) {
        options.weight = 1;
    }
    auto state = std::make_shared<lane_state>();
    {
        const std::lock_guard lock{ lanes_mutex_ };
        const std::size_t num_domains = domain_workers_.size();
        const std::size_t requested = options.home_domain;
        if (requested != any_numa_domain && num_domains > 0 && !domain_workers_[requested % num_domains].empty()) {
            // home the lane inside its NUMA domain: round-robin over that
            // domain's workers only
            const std::size_t domain = requested % num_domains;
            const std::vector<std::size_t> &members = domain_workers_[domain];
            state->affinity = members[domain_lane_counters_[domain]++ % members.size()];
            state->home_domain = domain;
            ++lane_counter_;
        } else {
            state->affinity = lane_counter_++ % states_.size();
            state->home_domain = worker_domains_[state->affinity];
        }
        state->options = std::move(options);
        auto next = std::make_shared<lane_vector>(*lane_snapshot());
        next->push_back(state);
        lanes_.store(std::shared_ptr<const lane_vector>{ std::move(next) }, std::memory_order_release);
        lanes_version_.fetch_add(1, std::memory_order_release);
    }
    return lane{ this, std::move(state) };
}

void executor::close_lane(const std::shared_ptr<lane_state> &state) {
    {
        // serializes against enqueue: after this store, every further
        // enqueue_detached throws, and every submitted count it could have
        // bumped is visible to the drain predicate below
        const std::lock_guard lock{ state->buffer_mutex };
        state->closed.store(true, std::memory_order_seq_cst);
    }
    // enqueue-time notifications may all have been consumed already; make
    // sure sleeping workers see the remaining queued jobs of this lane
    park_.notify_all();
    {
        std::unique_lock lock{ state->drain_mutex };
        state->drain_cv.wait(lock, [&state]() {
            return state->completed.load(std::memory_order_seq_cst) == state->submitted.load(std::memory_order_seq_cst);
        });
    }
    {
        const std::lock_guard lock{ lanes_mutex_ };
        auto next = std::make_shared<lane_vector>(*lane_snapshot());
        next->erase(std::remove(next->begin(), next->end(), state), next->end());
        lanes_.store(std::shared_ptr<const lane_vector>{ std::move(next) }, std::memory_order_release);
        lanes_version_.fetch_add(1, std::memory_order_release);
    }
}

std::size_t executor::num_lanes() const {
    return lane_snapshot()->size();
}

std::size_t executor::total_steals() const {
    return total_steals_.load(std::memory_order_relaxed);
}

std::size_t executor::deque_steals() const {
    return deque_steals_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// stats (lock-free scrape path)
// ---------------------------------------------------------------------------

executor_stats executor::stats() const {
    executor_stats stats;
    stats.workers = states_.size();
    stats.total_steals = total_steals_.load(std::memory_order_relaxed);
    stats.deque_steals = deque_steals_.load(std::memory_order_relaxed);
    const std::shared_ptr<const lane_vector> lanes = lane_snapshot();
    stats.lanes = lanes->size();
    for (const std::shared_ptr<lane_state> &lane : *lanes) {
        const std::size_t submitted = lane->submitted.load(std::memory_order_relaxed);
        const std::size_t completed = lane->completed.load(std::memory_order_relaxed);
        const std::size_t executing = lane->executing.load(std::memory_order_relaxed);
        stats.queued += saturating_depth(submitted, completed, executing);
        stats.in_flight += executing;
    }
    return stats;
}

std::vector<lane_report> executor::lane_reports() const {
    std::vector<lane_report> reports;
    const std::shared_ptr<const lane_vector> lanes = lane_snapshot();
    reports.reserve(lanes->size());
    for (const std::shared_ptr<lane_state> &lane : *lanes) {
        lane_report &report = reports.emplace_back();
        report.name = lane->options.name;
        report.affinity = lane->affinity;
        report.home_domain = lane->home_domain;
        report.stats.submitted = lane->submitted.load(std::memory_order_relaxed);
        report.stats.completed = lane->completed.load(std::memory_order_relaxed);
        report.stats.stolen = lane->stolen.load(std::memory_order_relaxed);
        report.stats.in_flight = lane->executing.load(std::memory_order_relaxed);
        report.stats.queue_depth = saturating_depth(report.stats.submitted, report.stats.completed, report.stats.in_flight);
        report.stats.max_queue_depth = lane->max_queue_depth.load(std::memory_order_relaxed);
    }
    return reports;
}

std::string executor::stats_json() const {
    const executor_stats totals = stats();
    const std::vector<lane_report> lanes = lane_reports();
    const auto append_count = [](std::string &out, const char *name, const std::size_t value, const bool trailing_comma = true) {
        char buffer[96];
        std::snprintf(buffer, sizeof(buffer), "\"%s\": %zu%s", name, value, trailing_comma ? ", " : "");
        out += buffer;
    };
    const auto append_escaped = [](std::string &out, const std::string &text) {
        for (const char c : text) {
            // names are internal identifiers; escape just enough to never
            // emit malformed JSON
            if (c == '"' || c == '\\') {
                out += '\\';
            }
            out += c;
        }
    };
    std::string json;
    json.reserve(640 + 256 * lanes.size());
    json += "{ ";
    append_count(json, "workers", totals.workers);
    append_count(json, "num_lanes", totals.lanes);
    append_count(json, "queued", totals.queued);
    append_count(json, "in_flight", totals.in_flight);
    append_count(json, "total_steals", totals.total_steals);
    append_count(json, "deque_steals", totals.deque_steals);
    json += "\"topology\": { ";
    append_count(json, "domains", topology_.domains.size());
    json += "\"source\": \"";
    append_escaped(json, topology_.source);
    json += "\", \"pinned\": ";
    json += pin_active_ ? "true" : "false";
    json += ", \"workers_per_domain\": [";
    for (std::size_t d = 0; d < domain_workers_.size(); ++d) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%s%zu", d == 0 ? "" : ", ", domain_workers_[d].size());
        json += buffer;
    }
    json += "] }, ";
    json += "\"lanes\": [ ";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const lane_report &lane = lanes[i];
        json += "{ \"name\": \"";
        append_escaped(json, lane.name);
        json += "\", ";
        append_count(json, "affinity", lane.affinity);
        append_count(json, "home_domain", lane.home_domain);
        append_count(json, "submitted", lane.stats.submitted);
        append_count(json, "completed", lane.stats.completed);
        append_count(json, "stolen", lane.stats.stolen);
        append_count(json, "queue_depth", lane.stats.queue_depth);
        append_count(json, "in_flight", lane.stats.in_flight);
        append_count(json, "max_queue_depth", lane.stats.max_queue_depth, false);
        json += i + 1 < lanes.size() ? " }, " : " }";
    }
    json += " ] }";
    return json;
}

// ---------------------------------------------------------------------------
// worker scheduling (hot path)
// ---------------------------------------------------------------------------

const executor::lane_vector &executor::lane_snapshot_for(worker_state &self) const {
    const std::uint64_t version = lanes_version_.load(std::memory_order_acquire);
    if (self.lanes_version_seen != version || self.lanes_cache == nullptr) {
        self.lanes_cache = lane_snapshot();
        self.lanes_version_seen = version;
    }
    return *self.lanes_cache;
}

bool executor::acquire_lane_work(worker_state &self) {
    const lane_vector &lanes = lane_snapshot_for(self);
    const std::size_t num_lanes = lanes.size();
    if (num_lanes == 0) {
        return false;
    }
    const bool multi_domain = domain_workers_.size() > 1;
    // pass 0 prefers lanes homed on this worker's NUMA domain (their panels
    // are local memory); pass 1 takes anything — throughput beats locality
    for (int pass = multi_domain ? 0 : 1; pass < 2; ++pass) {
        for (std::size_t i = 1; i <= num_lanes; ++i) {
            const std::size_t idx = (self.cursor + i) % num_lanes;
            lane_state &lane = *lanes[idx];
            if (pass == 0 && lane.home_domain != self.domain) {
                continue;
            }
            if (lane.pending.load(std::memory_order_acquire) == 0) {
                continue;
            }
            const std::size_t quota = lane.options.quota;
            std::size_t taken = 0;
            {
                const std::lock_guard lock{ lane.buffer_mutex };
                const std::size_t claimed = lane.claimed.load(std::memory_order_relaxed);
                const std::size_t headroom = quota == 0 ? lane.buffer.size() : (quota > claimed ? quota - claimed : 0);
                const std::size_t want = std::min({ lane.options.weight, headroom, lane.buffer.size() });
                for (; taken < want; ++taken) {
                    work_item *item = lane.buffer.front();
                    lane.buffer.pop_front();
                    item->claimed = true;
                    self.deque.push(item);
                }
                if (taken > 0) {
                    // claim-at-take: the slots stay held until the tasks
                    // complete, wherever they end up running (steals move
                    // the task together with its slot)
                    lane.claimed.fetch_add(taken, std::memory_order_seq_cst);
                    lane.pending.fetch_sub(taken, std::memory_order_seq_cst);
                }
            }
            if (taken == 0) {
                continue;  // quota exhausted or raced empty: next lane
            }
            self.cursor = idx;
            if (taken > 1 || lane.pending.load(std::memory_order_relaxed) > 0) {
                // our deque now holds stealable work / the lane still has
                // more: give a parked worker a chance at it
                park_.notify_one();
            }
            return true;
        }
    }
    return false;
}

bool executor::try_steal(worker_state &self, const std::size_t worker_index) {
    const std::size_t num_workers = states_.size();
    if (num_workers <= 1) {
        return false;
    }
    // two-choice: sample two random victims, try the fuller deque first —
    // near-optimal load balancing at O(1) cost
    std::size_t victim_a = self.rng() % num_workers;
    std::size_t victim_b = self.rng() % num_workers;
    if (victim_a == worker_index) {
        victim_a = (victim_a + 1) % num_workers;
    }
    if (victim_b == worker_index) {
        victim_b = (victim_b + 1) % num_workers;
    }
    if (states_[victim_b]->deque.size_estimate() > states_[victim_a]->deque.size_estimate()) {
        std::swap(victim_a, victim_b);
    }
    for (const std::size_t victim : { victim_a, victim_b }) {
        if (victim == worker_index) {
            continue;
        }
        if (const std::optional<work_item *> item = states_[victim]->deque.steal()) {
            deque_steals_.fetch_add(1, std::memory_order_relaxed);
            run_item(*item, worker_index);
            return true;
        }
    }
    // deterministic sweep so no queued task can hide from an idle worker
    for (std::size_t i = 1; i < num_workers; ++i) {
        const std::size_t victim = (worker_index + i) % num_workers;
        if (const std::optional<work_item *> item = states_[victim]->deque.steal()) {
            deque_steals_.fetch_add(1, std::memory_order_relaxed);
            run_item(*item, worker_index);
            return true;
        }
    }
    return false;
}

void executor::run_item(work_item *item, const std::size_t executed_by) {
    // the shared_ptr keeps the lane state alive through the closure call
    // even if the lane handle is concurrently closing
    const std::shared_ptr<lane_state> lane = std::move(item->lane);
    lane_state &state = *lane;
    const bool claimed = item->claimed;
    state.executing.fetch_add(1, std::memory_order_seq_cst);
    if (executed_by != helper_thread && executed_by != state.affinity) {
        state.stolen.fetch_add(1, std::memory_order_relaxed);
        total_steals_.fetch_add(1, std::memory_order_relaxed);
    }
    item->job();
    // destroy the closure (and the item) before the completion bookkeeping
    // and outside every lock: its captures can hold the last reference to an
    // engine, whose teardown re-enters the executor (lane close)
    delete item;
    state.executing.fetch_sub(1, std::memory_order_seq_cst);
    if (claimed) {
        state.claimed.fetch_sub(1, std::memory_order_seq_cst);
    }
    state.completed.fetch_add(1, std::memory_order_seq_cst);
    if (state.pending.load(std::memory_order_seq_cst) > 0) {
        // quota headroom may have opened up for a parked worker
        park_.notify_one();
    }
    if (state.closed.load(std::memory_order_seq_cst)) {
        // serialize with the closer's predicate wait: without the lock, the
        // notify could fire between its predicate check and its sleep
        const std::lock_guard lock{ state.drain_mutex };
        state.drain_cv.notify_all();
    }
    if (stop_.load(std::memory_order_relaxed)) {
        park_.notify_all();  // completion may unblock the shutdown cascade
    }
}

bool executor::any_runnable_work(const worker_state &self) const {
    const std::shared_ptr<const lane_vector> lanes = lane_snapshot();
    for (const std::shared_ptr<lane_state> &lane : *lanes) {
        if (lane->pending.load(std::memory_order_seq_cst) == 0) {
            continue;
        }
        const std::size_t quota = lane->options.quota;
        if (quota == 0 || lane->claimed.load(std::memory_order_seq_cst) < quota) {
            return true;
        }
    }
    for (const std::unique_ptr<worker_state> &other : states_) {
        if (other.get() != &self && !other->deque.empty_estimate()) {
            return true;
        }
    }
    return false;
}

void executor::worker_loop(const std::size_t worker_index) {
    current_worker_executor = this;
    worker_state &self = *states_[worker_index];
    if (pin_active_) {
        (void) pin_current_thread(topology_.domains[self.domain].cpus);
    }
    while (true) {
        if (const std::optional<work_item *> item = self.deque.pop()) {
            run_item(*item, worker_index);
            continue;
        }
        if (acquire_lane_work(self)) {
            continue;  // loop back to pop what we just took
        }
        if (try_steal(self, worker_index)) {
            continue;
        }
        // nothing runnable found: park — but re-check under the eventcount
        // protocol first, so a concurrent enqueue can never be lost
        const std::uint64_t key = park_.prepare_wait();
        if (any_runnable_work(self)) {
            park_.cancel_wait();
            continue;
        }
        if (stop_.load(std::memory_order_seq_cst)) {
            park_.cancel_wait();
            return;  // stop requested and every queue drained
        }
        park_.wait(key);
    }
}

}  // namespace plssvm::serve
