#include "plssvm/serve/obs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace plssvm::serve::obs {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t value) {
    value = std::max<std::size_t>(value, 2);
    return std::bit_ceil(value);
}

void append_number(std::string &out, const double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    out += buffer;
}

void append_number(std::string &out, const std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
    out += buffer;
}

/// Escape a Prometheus label value (backslash, double quote, newline).
void append_escaped(std::string &out, const std::string_view value) {
    for (const char c : value) {
        switch (c) {
            case '\\':
                out += "\\\\";
                break;
            case '"':
                out += "\\\"";
                break;
            case '\n':
                out += "\\n";
                break;
            default:
                out += c;
        }
    }
}

// --- trace <-> slot-word packing -------------------------------------------

constexpr std::size_t w_id = 0;
constexpr std::size_t w_meta = 1;
constexpr std::size_t w_batch = 2;
constexpr std::size_t w_estimate = 3;
constexpr std::size_t w_stamp0 = 4;  // admit, enqueue, seal, dispatch, complete

[[nodiscard]] std::array<std::uint64_t, 9> encode(const request_trace &trace) {
    std::array<std::uint64_t, 9> words{};
    words[w_id] = trace.id;
    words[w_meta] = static_cast<std::uint64_t>(trace.cls)
        | (static_cast<std::uint64_t>(trace.path) << 8)
        | (static_cast<std::uint64_t>(trace.shed_reason) << 16)
        | (static_cast<std::uint64_t>(trace.shed ? 1 : 0) << 24)
        | (static_cast<std::uint64_t>(trace.deadline_missed ? 1 : 0) << 25);
    words[w_batch] = trace.batch_size;
    words[w_estimate] = std::bit_cast<std::uint64_t>(trace.estimated_batch_seconds);
    words[w_stamp0 + 0] = trace.t_admit_ns;
    words[w_stamp0 + 1] = trace.t_enqueue_ns;
    words[w_stamp0 + 2] = trace.t_seal_ns;
    words[w_stamp0 + 3] = trace.t_dispatch_ns;
    words[w_stamp0 + 4] = trace.t_complete_ns;
    return words;
}

[[nodiscard]] request_trace decode(const std::array<std::uint64_t, 9> &words) {
    request_trace trace{};
    trace.id = words[w_id];
    trace.cls = static_cast<request_class>(words[w_meta] & 0xffu);
    trace.path = static_cast<predict_path>((words[w_meta] >> 8) & 0xffu);
    trace.shed_reason = static_cast<admission_decision>((words[w_meta] >> 16) & 0xffu);
    trace.shed = ((words[w_meta] >> 24) & 1u) != 0;
    trace.deadline_missed = ((words[w_meta] >> 25) & 1u) != 0;
    trace.batch_size = words[w_batch];
    trace.estimated_batch_seconds = std::bit_cast<double>(words[w_estimate]);
    trace.t_admit_ns = words[w_stamp0 + 0];
    trace.t_enqueue_ns = words[w_stamp0 + 1];
    trace.t_seal_ns = words[w_stamp0 + 2];
    trace.t_dispatch_ns = words[w_stamp0 + 3];
    trace.t_complete_ns = words[w_stamp0 + 4];
    return trace;
}

void append_trace_json(std::string &out, const request_trace &trace) {
    out += "{\"id\": ";
    append_number(out, trace.id);
    out += ", \"class\": \"";
    out += request_class_to_string(trace.cls);
    out += '"';
    if (trace.shed) {
        out += ", \"shed\": true, \"reason\": \"";
        out += admission_decision_to_string(trace.shed_reason);
        out += "\", \"t_admit_ns\": ";
        append_number(out, trace.t_admit_ns);
        out += '}';
        return;
    }
    out += ", \"path\": \"";
    out += predict_path_to_string(trace.path);
    out += "\", \"deadline_missed\": ";
    out += trace.deadline_missed ? "true" : "false";
    out += ", \"batch_size\": ";
    append_number(out, trace.batch_size);
    out += ", \"estimated_batch_s\": ";
    append_number(out, trace.estimated_batch_seconds);
    out += ", \"t_admit_ns\": ";
    append_number(out, trace.t_admit_ns);
    out += ", \"t_enqueue_ns\": ";
    append_number(out, trace.t_enqueue_ns);
    out += ", \"t_seal_ns\": ";
    append_number(out, trace.t_seal_ns);
    out += ", \"t_dispatch_ns\": ";
    append_number(out, trace.t_dispatch_ns);
    out += ", \"t_complete_ns\": ";
    append_number(out, trace.t_complete_ns);
    out += ", \"spans_ns\": {";
    const stage_seconds spans = trace.spans_seconds();
    for (const trace_stage stage : all_trace_stages) {
        out += '"';
        out += trace_stage_to_string(stage);
        out += "\": ";
        append_number(out, static_cast<std::uint64_t>(spans[stage_index(stage)] * 1e9 + 0.5));
        out += stage == all_trace_stages.back() ? "" : ", ";
    }
    out += "}}";
}

}  // namespace

// ---------------------------------------------------------------------------
// trace_ring
// ---------------------------------------------------------------------------

void trace_ring::reset(const std::size_t capacity) {
    const std::size_t n = round_up_pow2(capacity);
    slots_ = std::vector<slot>(n);
    mask_ = n - 1;
    head_.store(0, std::memory_order_relaxed);
}

void trace_ring::publish(const request_trace &trace) noexcept {
    if (slots_.empty()) {
        return;
    }
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    slot &s = slots_[static_cast<std::size_t>(ticket) & mask_];
    // odd sequence = write in progress; readers skip the slot
    s.seq.store(2 * ticket + 1, std::memory_order_release);
    const std::array<std::uint64_t, 9> words = encode(trace);
    for (std::size_t i = 0; i < words.size(); ++i) {
        s.words[i].store(words[i], std::memory_order_relaxed);
    }
    s.seq.store(2 * ticket + 2, std::memory_order_release);
}

void trace_ring::collect(std::vector<request_trace> &out) const {
    if (slots_.empty()) {
        return;
    }
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t capacity = slots_.size();
    const std::uint64_t first = head > capacity ? head - capacity : 0;
    for (std::uint64_t ticket = first; ticket < head; ++ticket) {
        const slot &s = slots_[static_cast<std::size_t>(ticket) & mask_];
        if (s.seq.load(std::memory_order_acquire) != 2 * ticket + 2) {
            continue;  // mid-write or already overwritten by a newer lap
        }
        std::array<std::uint64_t, 9> words{};
        for (std::size_t i = 0; i < words.size(); ++i) {
            words[i] = s.words[i].load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != 2 * ticket + 2) {
            continue;  // overwritten while copying — discard the torn record
        }
        out.push_back(decode(words));
    }
}

// ---------------------------------------------------------------------------
// prometheus_builder
// ---------------------------------------------------------------------------

prometheus_builder::family &prometheus_builder::family_for(const std::string_view name, const std::string_view type, const std::string_view help) {
    for (family &fam : families_) {
        if (fam.name == name) {
            return fam;
        }
    }
    families_.push_back(family{ std::string{ name }, std::string{ type }, std::string{ help }, {} });
    return families_.back();
}

void prometheus_builder::add_sample(family &fam, const std::string_view name, const label_set &labels, const double value) {
    std::string line{ name };
    if (!labels.empty()) {
        line += '{';
        for (std::size_t i = 0; i < labels.size(); ++i) {
            line += labels[i].first;
            line += "=\"";
            append_escaped(line, labels[i].second);
            line += '"';
            line += i + 1 < labels.size() ? "," : "";
        }
        line += '}';
    }
    line += ' ';
    append_number(line, value);
    fam.samples.push_back(std::move(line));
}

void prometheus_builder::add_counter(const std::string_view name, const std::string_view help, const label_set &labels, const double value) {
    add_sample(family_for(name, "counter", help), name, labels, value);
}

void prometheus_builder::add_gauge(const std::string_view name, const std::string_view help, const label_set &labels, const double value) {
    add_sample(family_for(name, "gauge", help), name, labels, value);
}

void prometheus_builder::add_histogram(const std::string_view name, const std::string_view help, const label_set &labels, const latency_histogram &hist) {
    // decade-ish ladder from 10us to 10s: fine enough for latency SLOs,
    // coarse enough to keep the exposition small
    static constexpr std::array<double, 15> edges{
        1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 1e-1, 1.0, 5.0, 10.0
    };
    family &fam = family_for(name, "histogram", help);
    const std::string bucket_name = std::string{ name } + "_bucket";
    for (const double edge : edges) {
        label_set bucket_labels = labels;
        char le[32];
        std::snprintf(le, sizeof(le), "%g", edge);
        bucket_labels.emplace_back("le", le);
        add_sample(fam, bucket_name, bucket_labels, static_cast<double>(hist.count_le(edge)));
    }
    label_set inf_labels = labels;
    inf_labels.emplace_back("le", "+Inf");
    add_sample(fam, bucket_name, inf_labels, static_cast<double>(hist.count()));
    add_sample(fam, std::string{ name } + "_sum", labels, hist.sum_seconds());
    add_sample(fam, std::string{ name } + "_count", labels, static_cast<double>(hist.count()));
}

std::string prometheus_builder::text() const {
    std::string out;
    out.reserve(4096);
    for (const family &fam : families_) {
        out += "# HELP ";
        out += fam.name;
        out += ' ';
        out += fam.help;
        out += "\n# TYPE ";
        out += fam.name;
        out += ' ';
        out += fam.type;
        out += '\n';
        for (const std::string &sample : fam.samples) {
            out += sample;
            out += '\n';
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// flight_recorder
// ---------------------------------------------------------------------------

flight_recorder::flight_recorder(const obs_config &config) :
    config_{ config },
    epoch_{ std::chrono::steady_clock::now() } {
    for (const request_class cls : all_request_classes) {
        const double rate = config_.sampling[class_index(cls)];
        std::uint64_t period = 0;
        if (rate >= 1.0) {
            period = 1;
        } else if (rate > 0.0) {
            period = static_cast<std::uint64_t>(std::llround(1.0 / rate));
            period = period == 0 ? 1 : period;
        }
        sample_period_[class_index(cls)] = period;
        rings_[class_index(cls)].reset(config_.flight_recorder_capacity);
    }
    shed_ring_.reset(config_.shed_ring_capacity);
}

bool flight_recorder::should_trace(const request_class cls, const bool has_deadline) noexcept {
    if (!config_.enabled) {
        return false;
    }
    if (has_deadline) {
        return true;
    }
    const std::uint64_t period = sample_period_[class_index(cls)];
    if (period == 1) {
        return true;
    }
    if (period == 0) {
        sampled_out_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const std::uint64_t n = sample_counters_[class_index(cls)].fetch_add(1, std::memory_order_relaxed);
    if (n % period == 0) {
        return true;
    }
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void flight_recorder::record_complete(const request_trace &trace) {
    if (!config_.enabled) {
        return;
    }
    rings_[class_index(trace.cls)].publish(trace);
    traces_recorded_.fetch_add(1, std::memory_order_relaxed);
    if (trace.deadline_missed) {
        deadline_miss_traces_.fetch_add(1, std::memory_order_relaxed);
        maybe_violation_dump("deadline_miss");
    }
}

void flight_recorder::record_shed(const request_class cls, const admission_decision reason) {
    if (!config_.enabled) {
        return;
    }
    request_trace trace{};
    trace.id = next_trace_id();
    trace.cls = cls;
    trace.shed = true;
    trace.shed_reason = reason;
    trace.t_admit_ns = now_ns();
    shed_ring_.publish(trace);
    sheds_recorded_.fetch_add(1, std::memory_order_relaxed);
    maybe_violation_dump("shed");
}

void flight_recorder::record_health_transition(const std::string_view from, const std::string_view to) {
    if (!config_.enabled) {
        return;
    }
    std::string reason{ "health:" };
    reason += from;
    reason += "->";
    reason += to;
    std::string json = dump_json(reason);
    {
        const std::lock_guard lock{ dump_mutex_ };
        last_health_dump_ = std::move(json);
    }
    health_dumps_.fetch_add(1, std::memory_order_relaxed);
}

std::string flight_recorder::dump_json(const std::string_view reason) const {
    std::string out;
    out.reserve(4096);
    out += "{\"reason\": \"";
    out += reason;
    out += "\", \"generated_ns\": ";
    append_number(out, now_ns());
    out += ", \"traces\": {";
    for (const request_class cls : all_request_classes) {
        out += '"';
        out += request_class_to_string(cls);
        out += "\": [";
        const std::vector<request_trace> records = traces(cls);
        for (std::size_t i = 0; i < records.size(); ++i) {
            append_trace_json(out, records[i]);
            out += i + 1 < records.size() ? ", " : "";
        }
        out += ']';
        out += cls == all_request_classes.back() ? "" : ", ";
    }
    out += "}, \"sheds\": [";
    const std::vector<request_trace> sheds = shed_events();
    for (std::size_t i = 0; i < sheds.size(); ++i) {
        append_trace_json(out, sheds[i]);
        out += i + 1 < sheds.size() ? ", " : "";
    }
    out += "]}";
    return out;
}

std::string flight_recorder::last_violation_dump() const {
    const std::lock_guard lock{ dump_mutex_ };
    return last_violation_dump_;
}

std::string flight_recorder::last_health_dump() const {
    const std::lock_guard lock{ dump_mutex_ };
    return last_health_dump_;
}

std::vector<request_trace> flight_recorder::traces(const request_class cls) const {
    std::vector<request_trace> out;
    rings_[class_index(cls)].collect(out);
    return out;
}

std::vector<request_trace> flight_recorder::shed_events() const {
    std::vector<request_trace> out;
    shed_ring_.collect(out);
    return out;
}

void flight_recorder::maybe_violation_dump(const std::string_view reason) {
    const auto interval_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(config_.min_dump_interval).count());
    const std::uint64_t now = now_ns() + 1;  // + 1: keep "never dumped" == 0 distinct
    std::uint64_t last = last_dump_ns_.load(std::memory_order_relaxed);
    if (last != 0 && now - last < interval_ns) {
        return;  // rate-limited: a shed storm must not render JSON per shed
    }
    if (!last_dump_ns_.compare_exchange_strong(last, now, std::memory_order_relaxed)) {
        return;  // another violator won the dump slot
    }
    std::string json = dump_json(reason);
    {
        const std::lock_guard lock{ dump_mutex_ };
        last_violation_dump_ = std::move(json);
    }
    violation_dumps_.fetch_add(1, std::memory_order_relaxed);
}

void flight_recorder::collect(prometheus_builder &builder, const label_set &labels) const {
    builder.add_counter("plssvm_serve_obs_traces_recorded_total", "Completed request traces published into the flight recorder", labels, static_cast<double>(traces_recorded()));
    builder.add_counter("plssvm_serve_obs_sheds_recorded_total", "Shed events published into the flight recorder", labels, static_cast<double>(sheds_recorded()));
    builder.add_counter("plssvm_serve_obs_sampled_out_total", "Admitted requests skipped by trace sampling", labels, static_cast<double>(sampled_out()));
    builder.add_counter("plssvm_serve_obs_deadline_miss_traces_total", "Traces whose request missed its deadline", labels, static_cast<double>(deadline_miss_traces_.load(std::memory_order_relaxed)));
    builder.add_counter("plssvm_serve_obs_violation_dumps_total", "Automatic flight-recorder dumps triggered by sheds or deadline misses", labels, static_cast<double>(violation_dumps()));
    builder.add_counter("plssvm_serve_obs_health_dumps_total", "Forced flight-recorder dumps triggered by health transitions", labels, static_cast<double>(health_dumps()));
}

}  // namespace plssvm::serve::obs
