#include "plssvm/serve/obs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace plssvm::serve::obs {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t value) {
    value = std::max<std::size_t>(value, 2);
    return std::bit_ceil(value);
}

void append_number(std::string &out, const double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    out += buffer;
}

void append_number(std::string &out, const std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
    out += buffer;
}

/// Escape a Prometheus label value (backslash, double quote, newline).
void append_escaped(std::string &out, const std::string_view value) {
    for (const char c : value) {
        switch (c) {
            case '\\':
                out += "\\\\";
                break;
            case '"':
                out += "\\\"";
                break;
            case '\n':
                out += "\\n";
                break;
            default:
                out += c;
        }
    }
}

// --- trace <-> slot-word packing -------------------------------------------

constexpr std::size_t w_id = 0;
constexpr std::size_t w_meta = 1;
constexpr std::size_t w_batch = 2;
constexpr std::size_t w_estimate = 3;
constexpr std::size_t w_stamp0 = 4;  // admit, enqueue, seal, dispatch, complete
constexpr std::size_t w_net0 = 9;    // accepted, read, decoded, dispatch, encoded, flushed

[[nodiscard]] std::array<std::uint64_t, 15> encode(const request_trace &trace) {
    std::array<std::uint64_t, 15> words{};
    words[w_id] = trace.id;
    words[w_meta] = static_cast<std::uint64_t>(trace.cls)
        | (static_cast<std::uint64_t>(trace.path) << 8)
        | (static_cast<std::uint64_t>(trace.shed_reason) << 16)
        | (static_cast<std::uint64_t>(trace.shed ? 1 : 0) << 24)
        | (static_cast<std::uint64_t>(trace.deadline_missed ? 1 : 0) << 25);
    words[w_batch] = trace.batch_size;
    words[w_estimate] = std::bit_cast<std::uint64_t>(trace.estimated_batch_seconds);
    words[w_stamp0 + 0] = trace.t_admit_ns;
    words[w_stamp0 + 1] = trace.t_enqueue_ns;
    words[w_stamp0 + 2] = trace.t_seal_ns;
    words[w_stamp0 + 3] = trace.t_dispatch_ns;
    words[w_stamp0 + 4] = trace.t_complete_ns;
    words[w_net0 + 0] = trace.t_net_accepted_ns;
    words[w_net0 + 1] = trace.t_net_read_ns;
    words[w_net0 + 2] = trace.t_net_decoded_ns;
    words[w_net0 + 3] = trace.t_net_dispatch_ns;
    words[w_net0 + 4] = trace.t_net_encoded_ns;
    words[w_net0 + 5] = trace.t_net_flushed_ns;
    return words;
}

[[nodiscard]] request_trace decode(const std::array<std::uint64_t, 15> &words) {
    request_trace trace{};
    trace.id = words[w_id];
    trace.cls = static_cast<request_class>(words[w_meta] & 0xffu);
    trace.path = static_cast<predict_path>((words[w_meta] >> 8) & 0xffu);
    trace.shed_reason = static_cast<admission_decision>((words[w_meta] >> 16) & 0xffu);
    trace.shed = ((words[w_meta] >> 24) & 1u) != 0;
    trace.deadline_missed = ((words[w_meta] >> 25) & 1u) != 0;
    trace.batch_size = words[w_batch];
    trace.estimated_batch_seconds = std::bit_cast<double>(words[w_estimate]);
    trace.t_admit_ns = words[w_stamp0 + 0];
    trace.t_enqueue_ns = words[w_stamp0 + 1];
    trace.t_seal_ns = words[w_stamp0 + 2];
    trace.t_dispatch_ns = words[w_stamp0 + 3];
    trace.t_complete_ns = words[w_stamp0 + 4];
    trace.t_net_accepted_ns = words[w_net0 + 0];
    trace.t_net_read_ns = words[w_net0 + 1];
    trace.t_net_decoded_ns = words[w_net0 + 2];
    trace.t_net_dispatch_ns = words[w_net0 + 3];
    trace.t_net_encoded_ns = words[w_net0 + 4];
    trace.t_net_flushed_ns = words[w_net0 + 5];
    return trace;
}

void append_trace_json(std::string &out, const request_trace &trace) {
    out += "{\"id\": ";
    append_number(out, trace.id);
    out += ", \"class\": \"";
    out += request_class_to_string(trace.cls);
    out += '"';
    if (trace.shed) {
        out += ", \"shed\": true, \"reason\": \"";
        out += admission_decision_to_string(trace.shed_reason);
        out += "\", \"t_admit_ns\": ";
        append_number(out, trace.t_admit_ns);
        out += '}';
        return;
    }
    out += ", \"path\": \"";
    out += predict_path_to_string(trace.path);
    out += "\", \"deadline_missed\": ";
    out += trace.deadline_missed ? "true" : "false";
    out += ", \"batch_size\": ";
    append_number(out, trace.batch_size);
    out += ", \"estimated_batch_s\": ";
    append_number(out, trace.estimated_batch_seconds);
    out += ", \"t_admit_ns\": ";
    append_number(out, trace.t_admit_ns);
    out += ", \"t_enqueue_ns\": ";
    append_number(out, trace.t_enqueue_ns);
    out += ", \"t_seal_ns\": ";
    append_number(out, trace.t_seal_ns);
    out += ", \"t_dispatch_ns\": ";
    append_number(out, trace.t_dispatch_ns);
    out += ", \"t_complete_ns\": ";
    append_number(out, trace.t_complete_ns);
    if (trace.t_net_accepted_ns != 0) {
        out += ", \"net\": {\"t_accepted_ns\": ";
        append_number(out, trace.t_net_accepted_ns);
        out += ", \"t_read_ns\": ";
        append_number(out, trace.t_net_read_ns);
        out += ", \"t_decoded_ns\": ";
        append_number(out, trace.t_net_decoded_ns);
        out += ", \"t_dispatch_ns\": ";
        append_number(out, trace.t_net_dispatch_ns);
        out += ", \"t_encoded_ns\": ";
        append_number(out, trace.t_net_encoded_ns);
        out += ", \"t_flushed_ns\": ";
        append_number(out, trace.t_net_flushed_ns);
        out += ", \"wire_complete\": ";
        out += trace.wire_complete() ? "true" : "false";
        out += '}';
    }
    out += ", \"spans_ns\": {";
    const stage_seconds spans = trace.spans_seconds();
    for (const trace_stage stage : all_trace_stages) {
        out += '"';
        out += trace_stage_to_string(stage);
        out += "\": ";
        append_number(out, static_cast<std::uint64_t>(spans[stage_index(stage)] * 1e9 + 0.5));
        out += stage == all_trace_stages.back() ? "" : ", ";
    }
    out += "}}";
}

}  // namespace

// ---------------------------------------------------------------------------
// time_series_store
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::int64_t steady_second(const std::chrono::steady_clock::time_point tp) noexcept {
    return std::chrono::duration_cast<std::chrono::seconds>(tp.time_since_epoch()).count();
}

}  // namespace

time_series_store::time_series_store(const std::size_t capacity_seconds) :
    buckets_(std::max<std::size_t>(capacity_seconds, 8)) {}

time_series_store::bucket *time_series_store::acquire_bucket(const std::int64_t second) noexcept {
    bucket &b = buckets_[static_cast<std::size_t>(second) % buckets_.size()];
    std::int64_t current = b.second.load(std::memory_order_acquire);
    if (current != second) {
        if (current > second) {
            return nullptr;  // observation older than the bucket's new lap: drop
        }
        if (b.second.compare_exchange_strong(current, second, std::memory_order_acq_rel)) {
            // we won the rotation: zero the contents before publishing `ready`
            for (std::size_t cls = 0; cls < num_request_classes; ++cls) {
                b.completed[cls].store(0, std::memory_order_relaxed);
                b.shed[cls].store(0, std::memory_order_relaxed);
                b.failed[cls].store(0, std::memory_order_relaxed);
                b.deadline_misses[cls].store(0, std::memory_order_relaxed);
                for (auto &word : b.hist[cls]) {
                    word.store(0, std::memory_order_relaxed);
                }
            }
            b.ready.store(second, std::memory_order_release);
            return &b;
        }
        if (current != second) {
            return current > second ? nullptr : &b;  // raced with an even newer lap
        }
    }
    // join: wait (briefly — zeroing is sub-microsecond) until the rotating
    // writer published `ready`; bail if a newer second laps the bucket
    for (int spin = 0; b.ready.load(std::memory_order_acquire) != second; ++spin) {
        if (b.second.load(std::memory_order_relaxed) != second) {
            return nullptr;
        }
        if (spin > 1024) {
            return nullptr;  // pathological stall: drop the observation
        }
    }
    return &b;
}

void time_series_store::record_complete(const request_class cls, const std::chrono::steady_clock::time_point now,
                                        const double latency_seconds, const bool deadline_missed) noexcept {
    bucket *b = acquire_bucket(steady_second(now));
    if (b == nullptr) {
        return;
    }
    const std::size_t i = class_index(cls);
    b->completed[i].fetch_add(1, std::memory_order_relaxed);
    if (deadline_missed) {
        b->deadline_misses[i].fetch_add(1, std::memory_order_relaxed);
    }
    const double ns_d = latency_seconds > 0.0 ? latency_seconds * 1e9 : 0.0;
    const auto ns = ns_d < static_cast<double>(latency_histogram::max_value_ns)
        ? static_cast<std::uint64_t>(ns_d)
        : latency_histogram::max_value_ns;
    b->hist[i][latency_histogram::bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
}

void time_series_store::record_shed(const request_class cls, const std::chrono::steady_clock::time_point now) noexcept {
    bucket *b = acquire_bucket(steady_second(now));
    if (b != nullptr) {
        b->shed[class_index(cls)].fetch_add(1, std::memory_order_relaxed);
    }
}

void time_series_store::record_failure(const request_class cls, const std::chrono::steady_clock::time_point now) noexcept {
    bucket *b = acquire_bucket(steady_second(now));
    if (b != nullptr) {
        b->failed[class_index(cls)].fetch_add(1, std::memory_order_relaxed);
    }
}

std::vector<time_series_store::window_view> time_series_store::windows(const std::chrono::steady_clock::time_point now,
                                                                       const std::vector<std::chrono::seconds> &spans) const {
    std::vector<window_view> views(spans.size());
    std::int64_t max_span = 0;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        views[i].window = spans[i];
        max_span = std::max<std::int64_t>(max_span, spans[i].count());
    }
    const std::int64_t now_sec = steady_second(now);
    for (const bucket &b : buckets_) {
        const std::int64_t sec = b.ready.load(std::memory_order_acquire);
        if (sec < 0 || sec > now_sec || now_sec - sec >= max_span) {
            continue;  // unused, from the future (clock skew), or expired
        }
        // copy the bucket, then re-validate it was not rotated mid-copy
        per_class<std::uint64_t> completed{};
        per_class<std::uint64_t> shed{};
        per_class<std::uint64_t> failed{};
        per_class<std::uint64_t> misses{};
        std::array<std::array<std::uint64_t, latency_histogram::num_buckets>, num_request_classes> hist{};
        for (std::size_t cls = 0; cls < num_request_classes; ++cls) {
            completed[cls] = b.completed[cls].load(std::memory_order_relaxed);
            shed[cls] = b.shed[cls].load(std::memory_order_relaxed);
            failed[cls] = b.failed[cls].load(std::memory_order_relaxed);
            misses[cls] = b.deadline_misses[cls].load(std::memory_order_relaxed);
            for (std::size_t w = 0; w < latency_histogram::num_buckets; ++w) {
                hist[cls][w] = b.hist[cls][w].load(std::memory_order_relaxed);
            }
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (b.second.load(std::memory_order_relaxed) != sec) {
            continue;  // rotated while copying — drop rather than tear
        }
        for (std::size_t v = 0; v < views.size(); ++v) {
            if (now_sec - sec >= views[v].window.count()) {
                continue;
            }
            for (std::size_t cls = 0; cls < num_request_classes; ++cls) {
                views[v].completed[cls] += completed[cls];
                views[v].shed[cls] += shed[cls];
                views[v].failed[cls] += failed[cls];
                views[v].deadline_misses[cls] += misses[cls];
                for (std::size_t w = 0; w < latency_histogram::num_buckets; ++w) {
                    views[v].latency[cls].accumulate(w, hist[cls][w]);
                }
            }
        }
    }
    return views;
}

// ---------------------------------------------------------------------------
// trace_ring
// ---------------------------------------------------------------------------

void trace_ring::reset(const std::size_t capacity) {
    const std::size_t n = round_up_pow2(capacity);
    slots_ = std::vector<slot>(n);
    mask_ = n - 1;
    head_.store(0, std::memory_order_relaxed);
}

void trace_ring::publish(const request_trace &trace) noexcept {
    if (slots_.empty()) {
        return;
    }
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    slot &s = slots_[static_cast<std::size_t>(ticket) & mask_];
    // odd sequence = write in progress; readers skip the slot
    s.seq.store(2 * ticket + 1, std::memory_order_release);
    const std::array<std::uint64_t, 15> words = encode(trace);
    for (std::size_t i = 0; i < words.size(); ++i) {
        s.words[i].store(words[i], std::memory_order_relaxed);
    }
    s.seq.store(2 * ticket + 2, std::memory_order_release);
}

void trace_ring::collect(std::vector<request_trace> &out) const {
    if (slots_.empty()) {
        return;
    }
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t capacity = slots_.size();
    const std::uint64_t first = head > capacity ? head - capacity : 0;
    for (std::uint64_t ticket = first; ticket < head; ++ticket) {
        const slot &s = slots_[static_cast<std::size_t>(ticket) & mask_];
        if (s.seq.load(std::memory_order_acquire) != 2 * ticket + 2) {
            continue;  // mid-write or already overwritten by a newer lap
        }
        std::array<std::uint64_t, 15> words{};
        for (std::size_t i = 0; i < words.size(); ++i) {
            words[i] = s.words[i].load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != 2 * ticket + 2) {
            continue;  // overwritten while copying — discard the torn record
        }
        out.push_back(decode(words));
    }
}

// ---------------------------------------------------------------------------
// prometheus_builder
// ---------------------------------------------------------------------------

prometheus_builder::family &prometheus_builder::family_for(const std::string_view name, const std::string_view type, const std::string_view help) {
    for (family &fam : families_) {
        if (fam.name == name) {
            return fam;
        }
    }
    families_.push_back(family{ std::string{ name }, std::string{ type }, std::string{ help }, {} });
    return families_.back();
}

void prometheus_builder::add_sample(family &fam, const std::string_view name, const label_set &labels, const double value) {
    std::string line{ name };
    if (!labels.empty()) {
        line += '{';
        for (std::size_t i = 0; i < labels.size(); ++i) {
            line += labels[i].first;
            line += "=\"";
            append_escaped(line, labels[i].second);
            line += '"';
            line += i + 1 < labels.size() ? "," : "";
        }
        line += '}';
    }
    line += ' ';
    append_number(line, value);
    fam.samples.push_back(std::move(line));
}

void prometheus_builder::add_counter(const std::string_view name, const std::string_view help, const label_set &labels, const double value) {
    add_sample(family_for(name, "counter", help), name, labels, value);
}

void prometheus_builder::add_gauge(const std::string_view name, const std::string_view help, const label_set &labels, const double value) {
    add_sample(family_for(name, "gauge", help), name, labels, value);
}

void prometheus_builder::add_histogram(const std::string_view name, const std::string_view help, const label_set &labels, const latency_histogram &hist) {
    // decade-ish ladder from 10us to 10s: fine enough for latency SLOs,
    // coarse enough to keep the exposition small
    static constexpr std::array<double, 15> edges{
        1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 1e-1, 1.0, 5.0, 10.0
    };
    family &fam = family_for(name, "histogram", help);
    const std::string bucket_name = std::string{ name } + "_bucket";
    for (const double edge : edges) {
        label_set bucket_labels = labels;
        char le[32];
        std::snprintf(le, sizeof(le), "%g", edge);
        bucket_labels.emplace_back("le", le);
        add_sample(fam, bucket_name, bucket_labels, static_cast<double>(hist.count_le(edge)));
    }
    label_set inf_labels = labels;
    inf_labels.emplace_back("le", "+Inf");
    add_sample(fam, bucket_name, inf_labels, static_cast<double>(hist.count()));
    add_sample(fam, std::string{ name } + "_sum", labels, hist.sum_seconds());
    add_sample(fam, std::string{ name } + "_count", labels, static_cast<double>(hist.count()));
}

std::string prometheus_builder::text() const {
    std::string out;
    out.reserve(4096);
    for (const family &fam : families_) {
        out += "# HELP ";
        out += fam.name;
        out += ' ';
        out += fam.help;
        out += "\n# TYPE ";
        out += fam.name;
        out += ' ';
        out += fam.type;
        out += '\n';
        for (const std::string &sample : fam.samples) {
            out += sample;
            out += '\n';
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// flight_recorder
// ---------------------------------------------------------------------------

flight_recorder::flight_recorder(const obs_config &config) :
    config_{ config },
    epoch_{ std::chrono::steady_clock::now() } {
    for (const request_class cls : all_request_classes) {
        const double rate = config_.sampling[class_index(cls)];
        std::uint64_t period = 0;
        if (rate >= 1.0) {
            period = 1;
        } else if (rate > 0.0) {
            period = static_cast<std::uint64_t>(std::llround(1.0 / rate));
            period = period == 0 ? 1 : period;
        }
        sample_period_[class_index(cls)] = period;
        rings_[class_index(cls)].reset(config_.flight_recorder_capacity);
    }
    shed_ring_.reset(config_.shed_ring_capacity);
}

bool flight_recorder::should_trace(const request_class cls, const bool has_deadline) noexcept {
    if (!config_.enabled) {
        return false;
    }
    if (has_deadline) {
        return true;
    }
    const std::uint64_t period = sample_period_[class_index(cls)];
    if (period == 1) {
        return true;
    }
    if (period == 0) {
        sampled_out_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const std::uint64_t n = sample_counters_[class_index(cls)].fetch_add(1, std::memory_order_relaxed);
    if (n % period == 0) {
        return true;
    }
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void flight_recorder::record_complete(const request_trace &trace) {
    if (!config_.enabled) {
        return;
    }
    rings_[class_index(trace.cls)].publish(trace);
    traces_recorded_.fetch_add(1, std::memory_order_relaxed);
    if (trace.deadline_missed) {
        deadline_miss_traces_.fetch_add(1, std::memory_order_relaxed);
        maybe_violation_dump("deadline_miss");
    }
}

void flight_recorder::record_shed(const request_class cls, const admission_decision reason) {
    if (!config_.enabled) {
        return;
    }
    request_trace trace{};
    trace.id = next_trace_id();
    trace.cls = cls;
    trace.shed = true;
    trace.shed_reason = reason;
    trace.t_admit_ns = now_ns();
    shed_ring_.publish(trace);
    sheds_recorded_.fetch_add(1, std::memory_order_relaxed);
    maybe_violation_dump("shed");
}

void flight_recorder::record_health_transition(const std::string_view from, const std::string_view to) {
    if (!config_.enabled) {
        return;
    }
    std::string reason{ "health:" };
    reason += from;
    reason += "->";
    reason += to;
    std::string json = dump_json(reason);
    {
        const std::lock_guard lock{ dump_mutex_ };
        last_health_dump_ = std::move(json);
    }
    health_dumps_.fetch_add(1, std::memory_order_relaxed);
}

std::string flight_recorder::dump_json(const std::string_view reason) const {
    std::string out;
    out.reserve(4096);
    out += "{\"reason\": \"";
    out += reason;
    out += "\", \"generated_ns\": ";
    append_number(out, now_ns());
    out += ", \"traces\": {";
    for (const request_class cls : all_request_classes) {
        out += '"';
        out += request_class_to_string(cls);
        out += "\": [";
        const std::vector<request_trace> records = traces(cls);
        for (std::size_t i = 0; i < records.size(); ++i) {
            append_trace_json(out, records[i]);
            out += i + 1 < records.size() ? ", " : "";
        }
        out += ']';
        out += cls == all_request_classes.back() ? "" : ", ";
    }
    out += "}, \"sheds\": [";
    const std::vector<request_trace> sheds = shed_events();
    for (std::size_t i = 0; i < sheds.size(); ++i) {
        append_trace_json(out, sheds[i]);
        out += i + 1 < sheds.size() ? ", " : "";
    }
    out += "]}";
    return out;
}

std::string flight_recorder::last_violation_dump() const {
    const std::lock_guard lock{ dump_mutex_ };
    return last_violation_dump_;
}

std::string flight_recorder::last_health_dump() const {
    const std::lock_guard lock{ dump_mutex_ };
    return last_health_dump_;
}

std::vector<request_trace> flight_recorder::traces(const request_class cls) const {
    std::vector<request_trace> out;
    rings_[class_index(cls)].collect(out);
    return out;
}

std::vector<request_trace> flight_recorder::shed_events() const {
    std::vector<request_trace> out;
    shed_ring_.collect(out);
    return out;
}

void flight_recorder::maybe_violation_dump(const std::string_view reason) {
    const auto interval_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(config_.min_dump_interval).count());
    const std::uint64_t now = now_ns() + 1;  // + 1: keep "never dumped" == 0 distinct
    std::uint64_t last = last_dump_ns_.load(std::memory_order_relaxed);
    if (last != 0 && now - last < interval_ns) {
        return;  // rate-limited: a shed storm must not render JSON per shed
    }
    if (!last_dump_ns_.compare_exchange_strong(last, now, std::memory_order_relaxed)) {
        return;  // another violator won the dump slot
    }
    std::string json = dump_json(reason);
    {
        const std::lock_guard lock{ dump_mutex_ };
        last_violation_dump_ = std::move(json);
    }
    violation_dumps_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// exposition merge + validity
// ---------------------------------------------------------------------------

namespace {

/// Family a sample line belongs to, given the declared histogram families:
/// `name_bucket` / `name_sum` / `name_count` fold back onto `name`.
[[nodiscard]] std::string_view sample_family(const std::string_view series_name,
                                             const std::unordered_map<std::string, std::string> &family_types) {
    if (family_types.count(std::string{ series_name }) != 0) {
        return series_name;
    }
    for (const std::string_view suffix : { std::string_view{ "_bucket" }, std::string_view{ "_sum" }, std::string_view{ "_count" } }) {
        if (series_name.size() > suffix.size() && series_name.substr(series_name.size() - suffix.size()) == suffix) {
            const std::string_view base = series_name.substr(0, series_name.size() - suffix.size());
            const auto it = family_types.find(std::string{ base });
            if (it != family_types.end() && it->second == "histogram") {
                return base;
            }
        }
    }
    return {};
}

/// `name` or `name{labels}` of a sample line (everything before the value).
[[nodiscard]] std::string_view series_key(const std::string_view line) {
    const std::size_t space = line.rfind(' ');
    return space == std::string_view::npos ? line : line.substr(0, space);
}

/// Bare metric name of a series key (strips the label block).
[[nodiscard]] std::string_view series_name(const std::string_view key) {
    const std::size_t brace = key.find('{');
    return brace == std::string_view::npos ? key : key.substr(0, brace);
}

}  // namespace

std::string merge_expositions(const std::vector<std::string> &texts) {
    struct merged_family {
        std::string help_line;
        std::string type_line;
        std::vector<std::string> samples;
    };
    std::vector<std::string> order;                        // family names, first-seen
    std::unordered_map<std::string, merged_family> families;
    std::unordered_set<std::string> seen_series;
    std::string pending_help;                              // HELP line waiting for its TYPE
    std::string current;                                   // family the next samples belong to

    for (const std::string &text : texts) {
        current.clear();
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t end = text.find('\n', pos);
            if (end == std::string::npos) {
                end = text.size();
            }
            const std::string_view line{ text.data() + pos, end - pos };
            pos = end + 1;
            if (line.empty()) {
                continue;
            }
            if (line.rfind("# HELP ", 0) == 0) {
                pending_help = std::string{ line };
                continue;
            }
            if (line.rfind("# TYPE ", 0) == 0) {
                const std::string_view rest = line.substr(7);
                const std::size_t space = rest.find(' ');
                const std::string name{ space == std::string_view::npos ? rest : rest.substr(0, space) };
                auto [it, inserted] = families.try_emplace(name);
                if (inserted) {
                    it->second.help_line = pending_help;
                    it->second.type_line = std::string{ line };
                    order.push_back(name);
                }
                current = name;
                pending_help.clear();
                continue;
            }
            // sample line: group under the family of the preceding TYPE
            // header; duplicate series (same name + labels) keep the first
            const std::string key{ series_key(line) };
            if (!seen_series.insert(key).second) {
                continue;
            }
            auto it = families.find(current);
            if (it != families.end()) {
                it->second.samples.emplace_back(line);
            }
        }
    }

    std::string out;
    out.reserve(4096);
    for (const std::string &name : order) {
        const merged_family &fam = families[name];
        if (!fam.help_line.empty()) {
            out += fam.help_line;
            out += '\n';
        }
        out += fam.type_line;
        out += '\n';
        for (const std::string &sample : fam.samples) {
            out += sample;
            out += '\n';
        }
    }
    return out;
}

bool exposition_valid(const std::string_view text) {
    std::unordered_map<std::string, std::string> family_types;  // name -> type
    std::unordered_set<std::string> seen_series;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string_view::npos) {
            end = text.size();
        }
        const std::string_view line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty() || line.rfind("# HELP ", 0) == 0) {
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            const std::string_view rest = line.substr(7);
            const std::size_t space = rest.find(' ');
            if (space == std::string_view::npos) {
                return false;  // TYPE without a type token
            }
            const std::string name{ rest.substr(0, space) };
            if (!family_types.emplace(name, std::string{ rest.substr(space + 1) }).second) {
                return false;  // family declared twice
            }
            continue;
        }
        if (line[0] == '#') {
            continue;  // comment
        }
        const std::string_view key = series_key(line);
        if (key.size() == line.size()) {
            return false;  // sample line without a value
        }
        if (sample_family(series_name(key), family_types).empty()) {
            return false;  // sample without a declared family
        }
        if (!seen_series.insert(std::string{ key }).second) {
            return false;  // duplicate series
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// build info + uptime
// ---------------------------------------------------------------------------

std::string_view compiled_isa() noexcept {
#if defined(__AVX512F__)
    return "avx512f";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__AVX__)
    return "avx";
#elif defined(__SSE4_2__)
    return "sse4.2";
#elif defined(__SSE2__) || defined(__x86_64__)
    return "sse2";
#elif defined(__aarch64__)
    return "neon";
#else
    return "generic";
#endif
}

namespace {

/// Process-wide serving epoch: first touch of the obs plane.
[[nodiscard]] std::chrono::steady_clock::time_point process_epoch() noexcept {
    static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
    return epoch;
}

}  // namespace

double process_uptime_seconds() noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - process_epoch()).count();
}

void collect_build_info(prometheus_builder &builder) {
    builder.add_gauge("plssvm_serve_build_info", "Serving stack build metadata (constant 1; version/ISA in labels)",
                      { { "version", std::string{ serve_version } }, { "isa", std::string{ compiled_isa() } } }, 1.0);
    builder.add_gauge("plssvm_serve_uptime_seconds", "Seconds since the serving plane was initialized in this process",
                      {}, process_uptime_seconds());
}

void flight_recorder::collect(prometheus_builder &builder, const label_set &labels) const {
    builder.add_counter("plssvm_serve_obs_traces_recorded_total", "Completed request traces published into the flight recorder", labels, static_cast<double>(traces_recorded()));
    builder.add_counter("plssvm_serve_obs_sheds_recorded_total", "Shed events published into the flight recorder", labels, static_cast<double>(sheds_recorded()));
    builder.add_counter("plssvm_serve_obs_sampled_out_total", "Admitted requests skipped by trace sampling", labels, static_cast<double>(sampled_out()));
    builder.add_counter("plssvm_serve_obs_deadline_miss_traces_total", "Traces whose request missed its deadline", labels, static_cast<double>(deadline_miss_traces_.load(std::memory_order_relaxed)));
    builder.add_counter("plssvm_serve_obs_violation_dumps_total", "Automatic flight-recorder dumps triggered by sheds or deadline misses", labels, static_cast<double>(violation_dumps()));
    builder.add_counter("plssvm_serve_obs_health_dumps_total", "Forced flight-recorder dumps triggered by health transitions", labels, static_cast<double>(health_dumps()));
}

}  // namespace plssvm::serve::obs
