/**
 * @file
 * @brief QoS vocabulary and load-adaptive batching policy of the serving
 *        control plane.
 *
 * Until now every request entered the micro-batcher unconditionally and was
 * batched under one static size/deadline policy — under overload, p99
 * exploded uniformly instead of degrading gracefully. This header introduces
 * the traffic-management vocabulary production serving systems put in front
 * of compiled models:
 *
 *  - **request classes** (`request_class`): interactive / batch / background.
 *    Every async submission carries one (plus an optional deadline budget);
 *    the micro-batcher keeps one FIFO per class and always serves the
 *    highest-priority class that is ready.
 *  - **per-class QoS limits** (`class_qos_config`): token-bucket rate limit,
 *    queue-depth shed threshold, default deadline budget, flush-delay range.
 *    Enforced by `serve::admission_controller` (see `admission.hpp`).
 *  - **load-adaptive batching** (`batch_tuner`): the target batch size and
 *    flush deadline of each class adapt continuously from an EWMA of the
 *    engine's executor-lane queue depth and steal counters (plus the
 *    batcher's own backlog and cross-lane executor pressure) and from the
 *    calibrated cost model's per-batch latency estimate. Under load, batches
 *    grow toward `adaptive_batch_config::max_batch_size` for throughput;
 *    idle, they shrink to `min_batch_size` for latency; and a class with a
 *    deadline budget never grows its batches past the point where the
 *    estimated batch execution time would eat the budget.
 *
 * The tuner is deliberately clock-free and purely functional in its inputs
 * (`observe()` takes raw counters, `policies()` is a pure function of the
 * smoothed state), so adaptive growth/shrink is deterministic in tests.
 */

#ifndef PLSSVM_SERVE_QOS_HPP_
#define PLSSVM_SERVE_QOS_HPP_

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

namespace plssvm::serve {

/// Priority class of one serving request. Lower enumerator = higher
/// priority: the micro-batcher always releases the highest-priority class
/// that is ready, so interactive traffic is never stuck behind bulk work.
enum class request_class : std::uint8_t {
    interactive = 0,  ///< latency-sensitive user-facing requests
    batch = 1,        ///< throughput-oriented bulk scoring
    background = 2,   ///< best-effort traffic (backfills, shadow evaluation)
};

/// Number of request classes (array extent of all per-class state).
inline constexpr std::size_t num_request_classes = 3;

/// All classes in priority order, for range-for iteration.
inline constexpr std::array<request_class, num_request_classes> all_request_classes{
    request_class::interactive, request_class::batch, request_class::background
};

/// Per-class storage, indexed by `class_index()`.
template <typename V>
using per_class = std::array<V, num_request_classes>;

[[nodiscard]] constexpr std::size_t class_index(const request_class cls) noexcept {
    return static_cast<std::size_t>(cls);
}

[[nodiscard]] constexpr std::string_view request_class_to_string(const request_class cls) noexcept {
    switch (cls) {
        case request_class::interactive:
            return "interactive";
        case request_class::batch:
            return "batch";
        case request_class::background:
            return "background";
    }
    return "unknown";
}

/// Outcome of one admission decision (recorded per class in `serve_stats`).
enum class admission_decision : std::uint8_t {
    admitted,           ///< request entered the micro-batcher
    shed_rate_limited,  ///< token bucket of the class was empty
    shed_queue_full,    ///< class backlog reached its shed threshold
};

[[nodiscard]] constexpr std::string_view admission_decision_to_string(const admission_decision decision) noexcept {
    switch (decision) {
        case admission_decision::admitted:
            return "admitted";
        case admission_decision::shed_rate_limited:
            return "shed_rate_limited";
        case admission_decision::shed_queue_full:
            return "shed_queue_full";
    }
    return "unknown";
}

/// "This request has no deadline" sentinel.
inline constexpr std::chrono::steady_clock::time_point no_deadline = std::chrono::steady_clock::time_point::max();

/// Per-request submission options of the async serving path.
struct request_options {
    /// Priority class the request is queued and accounted under.
    request_class cls{ request_class::interactive };
    /// Deadline budget from submission to fulfilment; 0 = the class default
    /// (`class_qos_config::deadline_budget`; 0 there too = no deadline).
    std::chrono::microseconds deadline{ 0 };
};

/// QoS limits of one request class. The zero-valued defaults mean
/// "unlimited" / "derive from the engine's base batch policy", so a
/// default-constructed config never sheds and preserves the pre-QoS
/// behaviour of existing embedders.
struct class_qos_config {
    /// Admitted requests per second (token-bucket refill rate); 0 = unlimited.
    double rate_limit{ 0.0 };
    /// Token-bucket capacity (burst size); 0 = one second of `rate_limit`.
    double burst{ 0.0 };
    /// Shed once this many requests of the class are already queued in the
    /// micro-batcher; 0 = never shed on queue depth. The threshold is
    /// approximate under concurrent submitters (the depth check and the
    /// enqueue are not one atomic step, so N racing producers can overshoot
    /// by at most N) — it is a backpressure bound, not an exact capacity.
    std::size_t max_pending{ 0 };
    /// Default per-request deadline budget applied when a submission does
    /// not carry its own; 0 = no deadline.
    std::chrono::microseconds deadline_budget{ 0 };
    /// Flush delay of the class when the engine is idle; 0 = the engine's
    /// `batch_delay` scaled by the class factor (interactive 1x, batch 4x,
    /// background 16x).
    std::chrono::microseconds base_flush_delay{ 0 };
    /// Flush delay ceiling the tuner may stretch to under full load;
    /// 0 = 8x the resolved `base_flush_delay`.
    std::chrono::microseconds max_flush_delay{ 0 };
};

/// Knobs of the load-adaptive batch sizing. All zero-valued defaults are
/// resolved against the engine's base `batch_policy` by the `batch_tuner`.
struct adaptive_batch_config {
    /// Idle target batch size (released as soon as this many requests are
    /// pending); 0 = max(1, engine max_batch_size / 8).
    std::size_t min_batch_size{ 0 };
    /// Overload target ceiling; 0 = 4x the engine max_batch_size.
    std::size_t max_batch_size{ 0 };
    /// EWMA smoothing factor of the pressure and steal-rate signals (0..1;
    /// larger = faster reaction).
    double alpha{ 0.25 };
    /// Weight of the smoothed steal rate inside the pressure signal: steals
    /// mean other lanes' work is spilling onto this engine's home worker,
    /// so the executor is contended beyond what the own queue depth shows.
    double steal_weight{ 4.0 };
    /// Pressure level mapped to full saturation (target = max_batch_size);
    /// 0 = 2x the resolved max_batch_size.
    double backlog_at_max{ 0.0 };
    /// Queue-wait-to-service-time ratio mapped to full saturation. Batches
    /// whose requests wait in the class FIFO much longer than the batch
    /// takes to execute are the direct symptom of undersized batches — the
    /// observability plane measures the split per batch and the tuner reads
    /// it instead of inferring saturation only from depth EWMAs. 0 = 8.0
    /// (waiting 8x the service time saturates the signal).
    double wait_ratio_at_max{ 0.0 };
    /// Fraction of a class's deadline budget that may be spent *executing*
    /// the batch (the rest is queueing/flush headroom). The tuner halves a
    /// deadline-carrying class's target until the cost-model estimate of
    /// one batch fits this fraction of the budget.
    double exec_budget_fraction{ 0.5 };
};

/// Complete QoS configuration of one engine.
struct qos_config {
    /// Per-class admission limits, indexed by `class_index()`.
    per_class<class_qos_config> classes{};
    /// Load-adaptive batching knobs.
    adaptive_batch_config adaptive{};
    /// Switch the adaptive tuner off entirely: every class keeps the
    /// engine's static `max_batch_size` / `batch_delay` policy (the pre-QoS
    /// behaviour; used by tests that need deterministic batch formation).
    bool adaptive_batching{ true };
};

/// Batch-formation policy of one class at one instant — what the adaptive
/// tuner publishes into the micro-batcher after every batch.
struct class_batch_policy {
    /// Release a batch as soon as this many requests of the class are
    /// pending (also the per-batch pop cap).
    std::size_t target_batch_size{ 64 };
    /// Release a partial batch once its oldest request waited this long.
    std::chrono::microseconds flush_delay{ 250 };
    /// Cost-model estimate of executing one target-sized batch; the batcher
    /// reserves it out of a request's deadline (a deadline-carrying request
    /// is flushed no later than `deadline - estimated_batch_latency`).
    std::chrono::microseconds estimated_batch_latency{ 0 };
};

/// The static base policy the per-class policies are derived from (mirrors
/// the engine's historical `max_batch_size` / `batch_delay` knobs).
struct batch_policy {
    /// Release a batch as soon as this many requests are pending (>= 1).
    std::size_t max_batch_size{ 64 };
    /// Release a partial batch once its oldest request has waited this long.
    std::chrono::microseconds max_delay{ 500 };
};

/**
 * @brief Load-adaptive batch policy controller of one engine.
 *
 * The engine's drain thread calls `observe()` after every batch with the
 * current backlog and executor telemetry; `policies()` maps the smoothed
 * state to one `class_batch_policy` per class. Thread-safe (observe from
 * the drain thread, policies also from `stats()` callers).
 *
 * Target computation (see qos.cpp for the details):
 *   pressure   = EWMA(backlog + lane_depth + cross_lane/4)
 *   steal_rate = EWMA(new steals since the last observation)
 *   wait_ratio = EWMA(batch queue-wait / batch service time)   [measured]
 *   saturation = clamp01(max((pressure + steal_weight * steal_rate) / backlog_at_max,
 *                            wait_ratio / wait_ratio_at_max))
 *   target     = min + saturation * (max - min), then halved while the
 *                cost-model batch estimate overruns the class's deadline share
 *   flush      = base_flush + saturation * (max_flush - base_flush)
 *
 * The wait-ratio term is fed from the observability plane's per-batch
 * queue-wait vs service-time split (`obs` stage stamps): requests waiting
 * far longer than their batch executes is direct evidence of saturation
 * that queue-depth EWMAs only proxy.
 */
class batch_tuner {
  public:
    /// Estimated seconds to execute one batch of the given size (the engine
    /// supplies its dispatcher's cost-model estimate); may be empty.
    using latency_estimator = std::function<double(std::size_t)>;

    /// Resolve @p config against @p base and start at idle (saturation 0).
    batch_tuner(const qos_config &config, batch_policy base, latency_estimator estimate);

    batch_tuner(const batch_tuner &) = delete;
    batch_tuner &operator=(const batch_tuner &) = delete;

    /**
     * @brief Feed one telemetry observation and recompute the policies.
     *
     * @param backlog           requests currently queued in the micro-batcher
     * @param lane_queue_depth  tasks queued on the engine's executor lane
     * @param lane_steals_total cumulative steal counter of the lane (the
     *                          tuner differentiates it internally)
     * @param cross_lane_queued tasks queued on *other* lanes of the shared
     *                          executor (cross-tenant pressure)
     * @param queue_wait_seconds mean time the drained batch's requests spent
     *                          waiting in the class FIFO (0 = no measurement:
     *                          the wait-ratio term is skipped, preserving the
     *                          depth-only behaviour)
     * @param service_seconds   execution time of the drained batch
     */
    void observe(std::size_t backlog, std::size_t lane_queue_depth, std::size_t lane_steals_total, std::size_t cross_lane_queued,
                 double queue_wait_seconds = 0.0, double service_seconds = 0.0);

    /// Current per-class batch policies (idle values before any observation).
    [[nodiscard]] per_class<class_batch_policy> policies() const;

    /// Smoothed load signal in [0, 1] (0 = idle, 1 = fully saturated).
    [[nodiscard]] double saturation() const;

    /// The configuration with every zero-valued "auto" field resolved.
    [[nodiscard]] const qos_config &config() const noexcept { return config_; }

  private:
    /// Map the smoothed state to per-class policies (requires `mutex_`).
    void recompute();

    qos_config config_;  ///< resolved (no zero-valued "auto" fields left)
    latency_estimator estimate_;
    mutable std::mutex mutex_;
    double ewma_pressure_{ 0.0 };
    double ewma_steal_rate_{ 0.0 };
    double ewma_wait_ratio_{ 0.0 };
    std::size_t last_steals_total_{ 0 };
    bool steals_initialized_{ false };
    double saturation_{ 0.0 };
    per_class<class_batch_policy> policies_{};
};

}  // namespace plssvm::serve

#endif  // PLSSVM_SERVE_QOS_HPP_
