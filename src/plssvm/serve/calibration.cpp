#include "plssvm/serve/calibration.hpp"

#include "plssvm/core/model.hpp"
#include "plssvm/core/parameter.hpp"
#include "plssvm/detail/rng.hpp"
#include "plssvm/serve/compiled_model.hpp"
#include "plssvm/serve/topology.hpp"

#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace plssvm::serve {

namespace {

/// Extract the number following `"key":` after @p from in @p text; -1.0 if absent.
[[nodiscard]] double parse_number_after(const std::string &text, const std::string &key, const std::size_t from) {
    const std::size_t key_pos = text.find('"' + key + '"', from);
    if (key_pos == std::string::npos) {
        return -1.0;
    }
    const std::size_t colon = text.find(':', key_pos);
    if (colon == std::string::npos) {
        return -1.0;
    }
    const char *begin = text.c_str() + colon + 1;
    char *end = nullptr;
    const double value = std::strtod(begin, &end);
    return end == begin ? -1.0 : value;
}

}  // namespace

bool is_default_host_profile(const sim::host_profile &profile) noexcept {
    const sim::host_profile defaults{};
    return profile.effective_gflops == defaults.effective_gflops
           && profile.effective_bandwidth_gbs == defaults.effective_bandwidth_gbs
           && profile.num_threads == defaults.num_threads
           && profile.parallel_efficiency == defaults.parallel_efficiency;
}

bool host_profile_from_bench_json(const std::string &path, sim::host_profile &out) {
    std::ifstream file{ path };
    if (!file) {
        return false;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();
    const std::size_t section = text.find("\"host_profile\"");
    if (section == std::string::npos) {
        return false;
    }
    const double gflops = parse_number_after(text, "effective_gflops", section);
    const double bandwidth = parse_number_after(text, "effective_bandwidth_gbs", section);
    if (gflops <= 0.0 || bandwidth <= 0.0) {
        return false;
    }
    out.effective_gflops = gflops;
    out.effective_bandwidth_gbs = bandwidth;
    return true;
}

namespace {

/// Pin the calling thread to the first NUMA domain for the duration of a
/// micro-measurement, restoring the previous affinity on destruction. On
/// multi-socket hosts an unpinned measurement can migrate mid-stream and
/// fold remote-memory latency into the profile — the engines' workers run
/// domain-local (see `executor`), so the profile must be domain-local too.
/// Single-node hosts: complete no-op.
class measurement_pin {
  public:
    measurement_pin() {
        const topology_info topo = probe_topology();
        if (topo.multi_node()) {
            previous_ = current_thread_affinity();
            pinned_ = pin_current_thread(topo.domains.front().cpus);
        }
    }

    measurement_pin(const measurement_pin &) = delete;
    measurement_pin &operator=(const measurement_pin &) = delete;

    ~measurement_pin() {
        if (pinned_ && !previous_.empty()) {
            (void) pin_current_thread(previous_);
        }
    }

  private:
    std::vector<int> previous_{};
    bool pinned_{ false };
};

}  // namespace

sim::host_profile measure_host_profile(const std::size_t real_bytes) {
    using clock = std::chrono::steady_clock;
    const measurement_pin pin{};  // domain-local timing on multi-node hosts
    sim::host_profile profile{};

    // --- compute rate: time the blocked RBF batch kernel on a small synthetic
    // --- model and charge it the same flops the dispatcher will charge ------
    constexpr std::size_t num_sv = 256;
    constexpr std::size_t dim = 64;
    constexpr std::size_t batch = 64;
    parameter params;
    params.kernel = kernel_type::rbf;
    params.gamma = 0.25;
    auto engine = detail::make_engine(0x5eed);
    aos_matrix<double> sv{ num_sv, dim };
    for (double &v : sv.data()) {
        v = detail::standard_normal<double>(engine);
    }
    std::vector<double> alpha(num_sv);
    for (double &a : alpha) {
        a = detail::standard_normal<double>(engine);
    }
    const compiled_model<double> compiled{ model<double>{ params, std::move(sv), std::move(alpha), 0.1, 1.0, -1.0 } };
    aos_matrix<double> queries{ batch, dim };
    for (double &v : queries.data()) {
        v = detail::standard_normal<double>(engine);
    }
    std::vector<double> out(batch);

    compiled.decision_values_into(queries, 0, batch, out.data());  // warm up
    const double flops_per_sweep = sim::serve_predict_cost(batch, num_sv, dim, kernel_type::rbf, real_bytes).flops;
    std::size_t sweeps = 0;
    const auto compute_start = clock::now();
    double compute_elapsed = 0.0;
    // run until the window dominates timer noise (>= 2 ms), at least 4 sweeps
    while (sweeps < 4 || compute_elapsed < 2e-3) {
        compiled.decision_values_into(queries, 0, batch, out.data());
        ++sweeps;
        compute_elapsed = std::chrono::duration<double>(clock::now() - compute_start).count();
    }
    if (compute_elapsed > 0.0) {
        profile.effective_gflops = flops_per_sweep * static_cast<double>(sweeps) / compute_elapsed / 1e9;
    }

    // --- bandwidth: a streaming reduction over a buffer far beyond L2 -------
    constexpr std::size_t stream_doubles = 2 * 1024 * 1024;  // 16 MiB
    std::vector<double> stream(stream_doubles, 1.0);
    double sink = 0.0;
    const auto mem_start = clock::now();
    double mem_elapsed = 0.0;
    std::size_t passes = 0;
    while (passes < 2 || mem_elapsed < 2e-3) {
        double sum = 0.0;
        const double *data = stream.data();
        #pragma omp simd reduction(+ : sum)
        for (std::size_t i = 0; i < stream_doubles; ++i) {
            sum += data[i];
        }
        sink += sum;
        ++passes;
        mem_elapsed = std::chrono::duration<double>(clock::now() - mem_start).count();
    }
    if (mem_elapsed > 0.0 && sink != -1.0) {
        profile.effective_bandwidth_gbs = static_cast<double>(passes * stream_doubles * sizeof(double)) / mem_elapsed / 1e9;
    }
    return profile;
}

sim::host_profile calibrated_host_profile(const std::size_t real_bytes) {
    static std::mutex cache_mutex;
    static std::map<std::size_t, sim::host_profile> cache;
    const std::lock_guard lock{ cache_mutex };
    const auto it = cache.find(real_bytes);
    if (it != cache.end()) {
        return it->second;
    }
    sim::host_profile profile{};
    if (!host_profile_from_bench_json(bench_serve_json_path, profile)) {
        profile = measure_host_profile(real_bytes);
    }
    cache.emplace(real_bytes, profile);
    return profile;
}

}  // namespace plssvm::serve
