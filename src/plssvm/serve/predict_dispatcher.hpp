/**
 * @file
 * @brief Cost-model-driven host/device routing of prediction batches.
 *
 * The serving layer has three ways to evaluate a batch (see `predict_path`):
 * the per-point scalar reference sweep, the register/cache-tiled host batch
 * kernels, and the blocked device predict kernels of the `sim`-backed device
 * layer. Which one wins depends on the batch shape: the device amortizes a
 * fixed per-batch cost (kernel launch, point upload, result download) over
 * the batch, the host pays none of that but sustains far fewer FLOP/s, and
 * below a handful of points the blocked kernels cannot fill a register tile
 * and the reference sweep is just as fast.
 *
 * `predict_dispatcher` makes that call per batch by consulting the same
 * `sim::cost_model` formulas the device layer charges at launch time
 * (`predict_kernel_cost` + roofline + transfer costs), so the crossover
 * moves correctly with batch size, #SV, feature count, and kernel type.
 * Every parameter is injectable (`dispatch_params`) for tests and for
 * calibration against measured hardware.
 *
 * The device path is **opt-in** (`allow_device`): on this simulation-backed
 * build the device kernels execute numerically on the host, and their RBF
 * core accumulates squared differences rather than the cached-norm form, so
 * results are only tolerance-equal (~1e-12 relative), not bit-equal, to the
 * host paths. Deployments with a real accelerator flip the flag.
 */

#ifndef PLSSVM_SERVE_PREDICT_DISPATCHER_HPP_
#define PLSSVM_SERVE_PREDICT_DISPATCHER_HPP_

#include "plssvm/core/kernel_types.hpp"
#include "plssvm/serve/serve_stats.hpp"
#include "plssvm/sim/cost_model.hpp"
#include "plssvm/sim/device_spec.hpp"
#include "plssvm/sim/runtime_profile.hpp"

#include <cstddef>

namespace plssvm::serve {

/// Injectable knobs of the dispatch decision.
struct dispatch_params {
    /// Batches smaller than this always take the per-point reference path
    /// (a register tile cannot be filled, so blocking buys nothing).
    std::size_t min_blocked_batch{ 8 };
    /// Host execution model of the blocked batch kernels.
    sim::host_profile host{};
    /// Whether batches may be routed to the device predict kernels at all.
    bool allow_device{ false };
    /// Simulated device evaluated against the host (A100 = paper flagship).
    sim::device_spec device{ sim::devices::nvidia_a100() };
    /// Runtime profile charged for device launches and transfers.
    sim::runtime_profile profile{};
    /// sizeof(real_type) of the served model; 0 means "auto" (the serving
    /// engines resolve it to their `sizeof(T)`, standalone dispatchers
    /// default to sizeof(double)).
    std::size_t real_bytes{ 0 };
    /// Replace a *default* host profile with measured numbers at engine
    /// start (`serve::calibrated_host_profile`): `BENCH_serve.json` if
    /// present, a one-time in-process micro-measurement otherwise.
    /// Explicitly injected host profiles are never overridden.
    bool calibrate_host{ true };
};

/**
 * @brief Shape of one prediction batch, including the sparsity information
 *        the nnz-aware cost terms need.
 *
 * `sv_nnz == 0` means the served model has no sparse compiled form (the
 * sparse SV sweeps are unavailable); `sparse_query` marks CSR query batches
 * with `query_nnz` total stored entries (`query_nnz` is ignored for dense
 * batches — the cost model substitutes `batch_size * dim`).
 */
struct predict_shape {
    std::size_t batch_size{ 0 };
    std::size_t num_sv{ 0 };
    std::size_t dim{ 0 };
    kernel_type kernel{ kernel_type::linear };
    std::size_t sv_nnz{ 0 };       ///< stored SV entries; 0 = no sparse compiled form
    bool sparse_query{ false };    ///< the query batch arrives as CSR
    std::size_t query_nnz{ 0 };    ///< stored query entries (CSR batches only)
};

class predict_dispatcher {
  public:
    predict_dispatcher() :
        predict_dispatcher{ dispatch_params{} } {}

    explicit predict_dispatcher(dispatch_params params) :
        params_{ params } {
        if (params_.real_bytes == 0) {
            params_.real_bytes = sizeof(double);
        }
    }

    [[nodiscard]] const dispatch_params &params() const noexcept { return params_; }

    /// Estimated host seconds for one blocked sweep over the batch.
    [[nodiscard]] double host_seconds(std::size_t batch_size, std::size_t num_sv, std::size_t dim, kernel_type kernel) const;

    /// Estimated host seconds for one sparse sweep over the batch
    /// (`sim::serve_sparse_predict_cost`: O(nnz) core, panel streamed once
    /// per point tile).
    [[nodiscard]] double host_sparse_seconds(const predict_shape &shape) const;

    /// Estimated device seconds: kernel roofline + launch overhead + the
    /// per-batch point upload and result download (SVs are device-resident).
    [[nodiscard]] double device_seconds(std::size_t batch_size, std::size_t num_sv, std::size_t dim, kernel_type kernel) const;

    /// Pick the execution path for one batch of the given shape (dense-model,
    /// dense-query convenience overload).
    [[nodiscard]] predict_path choose(std::size_t batch_size, std::size_t num_sv, std::size_t dim, kernel_type kernel) const;

    /// Estimated seconds of the path `choose(shape)` would pick — the
    /// cost-model per-batch latency estimate the QoS batch tuner feeds on
    /// (reference batches are approximated with the host roofline).
    [[nodiscard]] double estimated_seconds(const predict_shape &shape) const;

    /// Estimated seconds of @p shape along an *already-chosen* @p path —
    /// the attribution the observability plane records per batch, so the
    /// measured-vs-estimated comparison always charges the path the batch
    /// actually ran, even when a caller overrode the dispatch decision.
    [[nodiscard]] double estimated_seconds(const predict_shape &shape, predict_path path) const;

    /**
     * @brief Pick the execution path for one batch with full sparsity
     *        information.
     *
     * The sparse path competes when it exists for the shape: non-linear
     * kernels need the sparse compiled SV panel (`sv_nnz > 0`), the linear
     * kernel needs a CSR query batch (its dense path never touches the SV
     * panel, so SV sparsity is irrelevant there). CSR query batches never
     * route to the device (it has no sparse kernels; the engines would have
     * to densify, forfeiting the point of the sparse client contract).
     */
    [[nodiscard]] predict_path choose(const predict_shape &shape) const;

    /**
     * @brief Pick the execution path among the paths @p allowed permits —
     *        the fallback-ladder overload the fault plane uses.
     *
     * Same cost comparison as `choose(shape)`, but a path whose circuit
     * breaker is open (masked out of @p allowed) never competes: dispatch
     * demotes device -> host_blocked/host_sparse -> reference as breakers
     * trip. `reference` is the unconditional last resort — it is chosen
     * whenever every competitive path is masked (or the batch is too small
     * to block), regardless of the mask's reference bit. With a full mask
     * this reduces exactly to `choose(shape)`.
     */
    [[nodiscard]] predict_path choose(const predict_shape &shape, const fault::path_mask &allowed) const;

  private:
    dispatch_params params_{};
};

}  // namespace plssvm::serve

#endif  // PLSSVM_SERVE_PREDICT_DISPATCHER_HPP_
