/**
 * @file
 * @brief Umbrella header of the batched inference serving subsystem.
 *
 * Typical usage:
 * @code
 * plssvm::serve::model_registry<double> registry;
 * auto engine = registry.load("churn-v3", trained_model);
 * auto labels = engine->predict(points);                 // sync, batched
 * auto label = engine->submit({0.2, -1.3, 0.7}).get();   // async, coalesced
 * auto stats = engine->stats();                          // p50/p99, req/s
 * @endcode
 */

#ifndef PLSSVM_SERVE_SERVE_HPP_
#define PLSSVM_SERVE_SERVE_HPP_

#include "plssvm/serve/admission.hpp"           // IWYU pragma: export
#include "plssvm/serve/batch_kernels.hpp"        // IWYU pragma: export
#include "plssvm/serve/calibration.hpp"         // IWYU pragma: export
#include "plssvm/serve/compiled_model.hpp"      // IWYU pragma: export
#include "plssvm/serve/executor.hpp"            // IWYU pragma: export
#include "plssvm/serve/fault.hpp"               // IWYU pragma: export
#include "plssvm/serve/inference_engine.hpp"    // IWYU pragma: export
#include "plssvm/serve/predict_dispatcher.hpp"  // IWYU pragma: export
#include "plssvm/serve/micro_batcher.hpp"       // IWYU pragma: export
#include "plssvm/serve/model_registry.hpp"      // IWYU pragma: export
#include "plssvm/serve/multiclass_engine.hpp"   // IWYU pragma: export
#include "plssvm/serve/net/framing.hpp"         // IWYU pragma: export
#include "plssvm/serve/net/protocol.hpp"        // IWYU pragma: export
#include "plssvm/serve/net/server.hpp"          // IWYU pragma: export
#include "plssvm/serve/obs.hpp"                 // IWYU pragma: export
#include "plssvm/serve/qos.hpp"                 // IWYU pragma: export
#include "plssvm/serve/serve_stats.hpp"         // IWYU pragma: export
#include "plssvm/serve/sharded_engine.hpp"      // IWYU pragma: export
#include "plssvm/serve/snapshot.hpp"            // IWYU pragma: export
#include "plssvm/serve/topology.hpp"            // IWYU pragma: export
#include "plssvm/serve/work_stealing_deque.hpp"  // IWYU pragma: export

#endif  // PLSSVM_SERVE_SERVE_HPP_
